//! End-to-end integration: the paper's headline behaviours, checked across
//! every crate at once on a scaled-down machine (4 MiB RAM so the tests run
//! in milliseconds; the dynamics are size-independent).

use sleds_repro::apps::grep::{grep, GrepOptions};
use sleds_repro::apps::wc::wc;
use sleds_repro::devices::{DiskDevice, NfsDevice};
use sleds_repro::fs::{Kernel, MachineConfig, MountId, OpenFlags, Whence};
use sleds_repro::lmbench::fill_table;
use sleds_repro::sim_core::{ByteSize, DetRng};
use sleds_repro::sleds::SledsTable;
use sleds_repro::textmatch::Regex;

fn small_machine() -> MachineConfig {
    let mut cfg = MachineConfig::table2();
    cfg.ram = ByteSize::mib(4);
    cfg
}

fn disk_env() -> (Kernel, SledsTable, MountId) {
    let mut k = Kernel::new(small_machine());
    k.mkdir("/data").unwrap();
    let m = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .unwrap();
    let t = fill_table(&mut k, &[("/data", m)]).unwrap();
    k.reset_counters();
    (k, t, m)
}

fn nfs_env() -> (Kernel, SledsTable, MountId) {
    let mut k = Kernel::new(small_machine());
    k.mkdir("/nfs").unwrap();
    let m = k
        .mount_nfs("/nfs", NfsDevice::table2_mount("srv:/x"))
        .unwrap();
    let t = fill_table(&mut k, &[("/nfs", m)]).unwrap();
    k.reset_counters();
    (k, t, m)
}

fn corpus(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        for _ in 0..rng.range_u64(3, 10) {
            for _ in 0..rng.range_u64(2, 8) {
                out.push(b'a' + rng.range_u64(0, 26) as u8);
            }
            out.push(b' ');
        }
        out.push(b'\n');
    }
    out.truncate(n);
    out
}

/// The paper's central claim end to end: on a warm cache with a file 1.5x
/// the cache size, SLEDs-ordered wc beats the linear scan by >2x on NFS.
#[test]
fn warm_nfs_wc_speedup_exceeds_two() {
    let (mut k, table, _) = nfs_env();
    let cache = k.config().cache_bytes().as_u64() as usize;
    let text = corpus(cache * 3 / 2, 1);
    k.install_file("/nfs/big.txt", &text).unwrap();

    wc(&mut k, "/nfs/big.txt", None).unwrap(); // warm
    let j = k.start_job();
    let r_base = wc(&mut k, "/nfs/big.txt", None).unwrap();
    let base = k.finish_job(&j);

    wc(&mut k, "/nfs/big.txt", None).unwrap(); // re-warm in baseline mode
    let j = k.start_job();
    let r_sleds = wc(&mut k, "/nfs/big.txt", Some(&table)).unwrap();
    let with = k.finish_job(&j);

    assert_eq!(r_base, r_sleds, "modes must agree on the counts");
    let speedup = base.elapsed.as_secs_f64() / with.elapsed.as_secs_f64();
    assert!(speedup > 2.0, "NFS warm speedup {speedup:.2} too small");
    assert!(
        with.usage.major_faults < base.usage.major_faults / 2,
        "faults: {} vs {}",
        with.usage.major_faults,
        base.usage.major_faults
    );
}

/// Below the cache size both modes are equal (and SLEDs only slightly
/// slower from its bookkeeping) — the left half of every figure.
#[test]
fn small_files_show_only_small_overhead() {
    let (mut k, table, _) = disk_env();
    let text = corpus(512 << 10, 2);
    k.install_file("/data/small.txt", &text).unwrap();

    wc(&mut k, "/data/small.txt", None).unwrap(); // warm fully
    let j = k.start_job();
    wc(&mut k, "/data/small.txt", None).unwrap();
    let base = k.finish_job(&j);
    let j = k.start_job();
    wc(&mut k, "/data/small.txt", Some(&table)).unwrap();
    let with = k.finish_job(&j);

    assert_eq!(base.usage.major_faults, 0);
    assert_eq!(with.usage.major_faults, 0);
    let overhead = with.elapsed.as_secs_f64() / base.elapsed.as_secs_f64();
    assert!(
        (0.95..1.6).contains(&overhead),
        "cached-file overhead ratio {overhead:.3} out of band"
    );
}

/// The "ideal benchmark": grep -q whose match sits in cache terminates
/// without physical I/O, while the baseline pays for most of the file.
#[test]
fn first_match_grep_ideal_case() {
    let (mut k, table, _) = disk_env();
    let mut text = corpus(2 << 20, 3);
    let pos = (3 * (text.len() / 4)) & !4095;
    text[pos..pos + 4].copy_from_slice(b"ZQXJ");
    k.install_file("/data/hay.txt", &text).unwrap();

    // Warm the region around the match only.
    let fd = k.open("/data/hay.txt", OpenFlags::RDONLY).unwrap();
    k.lseek(fd, pos as i64 - 65536, Whence::Set).unwrap();
    k.read(fd, 128 << 10).unwrap();
    k.close(fd).unwrap();
    k.reset_counters();

    let re = Regex::new("ZQXJ").unwrap();
    let opts = GrepOptions {
        first_match_only: true,
    };
    let j = k.start_job();
    let r = grep(&mut k, "/data/hay.txt", &re, &opts, Some(&table)).unwrap();
    let with = k.finish_job(&j);
    assert!(r.stopped_early);
    assert_eq!(with.usage.major_faults, 0, "cached match needs no I/O");

    let j = k.start_job();
    let r = grep(&mut k, "/data/hay.txt", &re, &opts, None).unwrap();
    let base = k.finish_job(&j);
    assert!(r.stopped_early);
    assert!(
        base.usage.major_faults > 100,
        "baseline must read the cold head"
    );
    let ratio = base.elapsed.as_secs_f64() / with.elapsed.as_secs_f64();
    assert!(
        ratio > 10.0,
        "ideal-case speedup {ratio:.1} should be an order of magnitude"
    );
}

/// Performance degrades gracefully with SLEDs as size grows past the
/// cache (the paper's "more stable performance" claim): the elapsed-time
/// *increase* from 1x to 2x cache size is much smaller with SLEDs.
#[test]
fn graceful_degradation_past_cache_size() {
    let measure = |factor_num: usize, use_sleds: bool| -> f64 {
        let (mut k, table, _) = disk_env();
        let cache = k.config().cache_bytes().as_u64() as usize;
        let text = corpus(cache * factor_num / 4, 42);
        k.install_file("/data/f.txt", &text).unwrap();
        let t = use_sleds.then_some(&table);
        wc(&mut k, "/data/f.txt", t).unwrap(); // warm
        let j = k.start_job();
        wc(&mut k, "/data/f.txt", t).unwrap();
        k.finish_job(&j).elapsed.as_secs_f64()
    };
    // Sizes: 1.0x and 2.0x the cache.
    let base_step = measure(8, false) - measure(4, false);
    let sleds_step = measure(8, true) - measure(4, true);
    assert!(
        sleds_step < base_step * 0.75,
        "SLEDs step {sleds_step:.3}s vs baseline step {base_step:.3}s"
    );
}

/// All-matches grep agrees between modes on a warm, scrambled cache, and
/// total I/O (device reads) goes down with SLEDs.
#[test]
fn grep_all_matches_reduces_total_io() {
    let (mut k, table, _) = disk_env();
    let cache = k.config().cache_bytes().as_u64() as usize;
    let mut text = corpus(cache * 3 / 2, 5);
    // Sprinkle deterministic matches.
    let step = text.len() / 23;
    for i in 0..20 {
        let p = i * step + 100;
        text[p..p + 4].copy_from_slice(b"ZQXJ");
    }
    k.install_file("/data/hay.txt", &text).unwrap();
    let re = Regex::new("ZQXJ").unwrap();

    grep(&mut k, "/data/hay.txt", &re, &GrepOptions::default(), None).unwrap(); // warm
    k.reset_counters();
    let j = k.start_job();
    let base = grep(&mut k, "/data/hay.txt", &re, &GrepOptions::default(), None).unwrap();
    let base_rep = k.finish_job(&j);

    grep(&mut k, "/data/hay.txt", &re, &GrepOptions::default(), None).unwrap(); // re-warm
    let j = k.start_job();
    let with = grep(
        &mut k,
        "/data/hay.txt",
        &re,
        &GrepOptions::default(),
        Some(&table),
    )
    .unwrap();
    let with_rep = k.finish_job(&j);

    assert_eq!(base.matches.len(), with.matches.len());
    for (a, b) in base.matches.iter().zip(&with.matches) {
        assert_eq!(
            (a.offset, a.line_number, &a.line),
            (b.offset, b.line_number, &b.line)
        );
    }
    assert!(
        with_rep.usage.major_faults < base_rep.usage.major_faults,
        "SLEDs must reduce physical reads: {} vs {}",
        with_rep.usage.major_faults,
        base_rep.usage.major_faults
    );
}

/// The sleds table survives being consulted by many kernels' worth of
/// state: delivery estimates track reality within a factor of two.
#[test]
fn delivery_estimates_track_measured_time() {
    let (mut k, table, _) = disk_env();
    let text = corpus(1 << 20, 6);
    k.install_file("/data/f.txt", &text).unwrap();
    let fd = k.open("/data/f.txt", OpenFlags::RDONLY).unwrap();
    let est = sleds_repro::sleds::total_delivery_time(
        &mut k,
        &table,
        fd,
        sleds_repro::sleds::AttackPlan::Linear,
    )
    .unwrap();
    let j = k.start_job();
    let mut pos = 0usize;
    while pos < text.len() {
        pos += k.read(fd, 64 << 10).unwrap().len();
    }
    let measured = k.finish_job(&j).elapsed.as_secs_f64();
    let ratio = measured / est;
    assert!(
        (0.5..2.0).contains(&ratio),
        "estimate {est:.3}s vs measured {measured:.3}s (ratio {ratio:.2})"
    );
    k.close(fd).unwrap();
}
