//! Property-based integration tests: invariants of the SLEDs stack under
//! randomized cache states, file sizes and workloads.
//!
//! Runs under the in-repo `check` harness; enable with
//! `cargo test --features proptests`.

use sleds_repro::apps::grep::{grep, GrepOptions};
use sleds_repro::apps::wc::wc;
use sleds_repro::devices::DiskDevice;
use sleds_repro::fs::{Kernel, MachineConfig, OpenFlags, Whence};
use sleds_repro::sim_core::{check, ByteSize, DetRng, PAGE_SIZE};
use sleds_repro::sleds::{
    estimate_seconds, fsleds_get, AttackPlan, PickConfig, PickSession, SledsEntry, SledsTable,
};
use sleds_repro::textmatch::Regex;

/// A small kernel + static table (no lmbench — property tests need speed).
fn tiny_env() -> (Kernel, SledsTable) {
    let mut cfg = MachineConfig::table2();
    cfg.ram = ByteSize::mib(2);
    let mut k = Kernel::new(cfg);
    k.mkdir("/d").unwrap();
    let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
    let dev = k.device_of_mount(m).unwrap();
    let mut t = SledsTable::new();
    t.fill_memory(SledsEntry::new(175e-9, 48e6));
    t.fill_device(dev, SledsEntry::new(0.018, 9e6));
    (k, t)
}

/// Random page ranges in the shape the old strategies produced.
fn random_ranges(rng: &mut DetRng, max_count: usize) -> Vec<(u64, u64)> {
    let n = rng.range_usize(0, max_count + 1);
    (0..n)
        .map(|_| (rng.range_u64(0, 64), rng.range_u64(0, 8)))
        .collect()
}

/// Warm an arbitrary set of page ranges.
fn warm(k: &mut Kernel, path: &str, ranges: &[(u64, u64)], npages: u64) {
    if npages == 0 {
        return;
    }
    let fd = k.open(path, OpenFlags::RDONLY).unwrap();
    for &(a, b) in ranges {
        let lo = a % npages;
        let hi = (lo + 1 + b % 8).min(npages);
        k.lseek(fd, (lo * PAGE_SIZE) as i64, Whence::Set).unwrap();
        k.read(fd, ((hi - lo) * PAGE_SIZE) as usize).unwrap();
    }
    k.close(fd).unwrap();
}

/// SLEDs tile the file exactly: sorted, contiguous, complete, and
/// alternating in level.
#[test]
fn sleds_tile_the_file() {
    check::run("sleds_tile_the_file", |rng| {
        let size = rng.range_usize(1, 200_000);
        let ranges = random_ranges(rng, 3);
        let (mut k, t) = tiny_env();
        k.install_file("/d/f", &vec![9u8; size]).unwrap();
        let npages = (size as u64).div_ceil(PAGE_SIZE);
        warm(&mut k, "/d/f", &ranges, npages);
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        let sleds = fsleds_get(&mut k, fd, &t).unwrap();
        let mut expect = 0u64;
        for w in sleds.windows(2) {
            assert!(!w[0].same_level(&w[1]), "adjacent SLEDs must differ");
        }
        for s in &sleds {
            assert_eq!(s.offset, expect);
            assert!(s.length > 0);
            expect = s.end();
        }
        assert_eq!(expect, size as u64);
    });
}

/// The pick plan covers every byte exactly once, whatever the cache
/// state and chunk size — byte mode.
#[test]
fn pick_plan_covers_exactly_once() {
    check::run("pick_plan_covers_exactly_once", |rng| {
        let size = rng.range_usize(1, 150_000);
        let preferred = rng.range_usize(1, 40_000);
        let ranges = random_ranges(rng, 3);
        let (mut k, t) = tiny_env();
        k.install_file("/d/f", &vec![1u8; size]).unwrap();
        let npages = (size as u64).div_ceil(PAGE_SIZE);
        warm(&mut k, "/d/f", &ranges, npages);
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        let mut p = PickSession::init(&mut k, &t, fd, PickConfig::bytes(preferred)).unwrap();
        let mut covered = vec![0u8; size];
        while let Some((off, len)) = p.next_read() {
            assert!(len <= preferred);
            for c in &mut covered[off as usize..off as usize + len] {
                *c += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    });
}

/// ... and in record mode, where SLED edges move to separators.
#[test]
fn record_mode_still_covers_exactly_once() {
    check::run("record_mode_still_covers_exactly_once", |rng| {
        let nparas = rng.range_usize(1, 6);
        let paragraphs: Vec<usize> = (0..nparas).map(|_| rng.range_usize(1, 4000)).collect();
        let preferred = rng.range_usize(512, 20_000);
        let ranges = random_ranges(rng, 2);
        let mut data = Vec::new();
        for (i, len) in paragraphs.iter().enumerate() {
            data.extend(std::iter::repeat_n(b'a' + (i % 26) as u8, *len));
            data.push(b'\n');
        }
        let (mut k, t) = tiny_env();
        k.install_file("/d/f", &data).unwrap();
        let npages = (data.len() as u64).div_ceil(PAGE_SIZE);
        warm(&mut k, "/d/f", &ranges, npages);
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        let mut p =
            PickSession::init(&mut k, &t, fd, PickConfig::records(preferred, b'\n')).unwrap();
        let mut covered = vec![0u8; data.len()];
        while let Some((off, len)) = p.next_read() {
            for c in &mut covered[off as usize..off as usize + len] {
                *c += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
    });
}

/// wc agrees between baseline and SLEDs modes for arbitrary byte soup
/// and cache states.
#[test]
fn wc_mode_equivalence() {
    check::run("wc_mode_equivalence", |rng| {
        let data = check::bytes(rng, 60_000);
        let ranges = random_ranges(rng, 3);
        let (mut k, t) = tiny_env();
        k.install_file("/d/f", &data).unwrap();
        let base = wc(&mut k, "/d/f", None).unwrap();
        let npages = (data.len() as u64).div_ceil(PAGE_SIZE);
        warm(&mut k, "/d/f", &ranges, npages);
        let with = wc(&mut k, "/d/f", Some(&t)).unwrap();
        assert_eq!(base, with);
    });
}

/// grep (all matches) agrees between modes: same matches, same line
/// numbers, same offsets — on random line-structured text.
#[test]
fn grep_mode_equivalence() {
    check::run("grep_mode_equivalence", |rng| {
        let nlines = rng.range_usize(1, 60);
        let mut data = Vec::new();
        for _ in 0..nlines {
            let linelen = rng.range_usize(0, 41);
            let hit = rng.range_u64(0, 10);
            if hit == 0 {
                data.extend_from_slice(b"xZQXJx");
            }
            for _ in 0..linelen {
                data.push(b"abcdefghijklmnopqrstuvwxyz "[rng.range_usize(0, 27)]);
            }
            data.push(b'\n');
        }
        let ranges = random_ranges(rng, 3);
        let (mut k, t) = tiny_env();
        k.install_file("/d/f", &data).unwrap();
        let re = Regex::new("ZQXJ").unwrap();
        let base = grep(&mut k, "/d/f", &re, &GrepOptions::default(), None).unwrap();
        let npages = (data.len() as u64).div_ceil(PAGE_SIZE);
        warm(&mut k, "/d/f", &ranges, npages);
        let with = grep(&mut k, "/d/f", &re, &GrepOptions::default(), Some(&t)).unwrap();
        assert_eq!(base, with);
    });
}

/// Delivery estimates: Best never exceeds Linear, and both are
/// monotone under adding cached bytes... i.e. warming pages never
/// increases the estimate.
#[test]
fn warming_never_increases_estimate() {
    check::run("warming_never_increases_estimate", |rng| {
        let size = rng.range_usize(PAGE_SIZE as usize, 300_000);
        let ranges = random_ranges(rng, 3)
            .into_iter()
            .chain([(0, 4)])
            .collect::<Vec<_>>();
        let (mut k, t) = tiny_env();
        k.install_file("/d/f", &vec![0u8; size]).unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        let cold = fsleds_get(&mut k, fd, &t).unwrap();
        let cold_linear = estimate_seconds(&cold, AttackPlan::Linear);
        let cold_best = estimate_seconds(&cold, AttackPlan::Best);
        assert!(cold_best <= cold_linear + 1e-12);
        let npages = (size as u64).div_ceil(PAGE_SIZE);
        warm(&mut k, "/d/f", &ranges, npages);
        let warm_sleds = fsleds_get(&mut k, fd, &t).unwrap();
        let warm_best = estimate_seconds(&warm_sleds, AttackPlan::Best);
        assert!(
            warm_best <= cold_best + 1e-9,
            "warming increased estimate {cold_best} -> {warm_best}"
        );
    });
}

/// The regex engine agrees with a naive substring search for literal
/// patterns on arbitrary haystacks.
#[test]
fn regex_literal_agrees_with_naive() {
    check::run("regex_literal_agrees_with_naive", |rng| {
        let needle: String = (0..rng.range_usize(1, 5))
            .map(|_| b"abc"[rng.range_usize(0, 3)] as char)
            .collect();
        let hay: Vec<u8> = (0..rng.range_usize(0, 200))
            .map(|_| b"abc\n"[rng.range_usize(0, 4)])
            .collect();
        let re = Regex::literal(&needle);
        let naive = hay.windows(needle.len()).any(|w| w == needle.as_bytes());
        assert_eq!(re.is_match(&hay), naive);
    });
}
