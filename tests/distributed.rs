//! Distributed SLEDs: the paper's proposal that SLEDs be "the vocabulary of
//! communication between clients and servers as well as between
//! applications and operating systems" (§2, §6), exercised end to end over
//! a modeled LAN NFS server with its own cache and disk.

use sleds_repro::apps::grep::{grep, GrepOptions};
use sleds_repro::apps::wc::wc;
use sleds_repro::devices::NfsServerDevice;
use sleds_repro::fs::{Kernel, MachineConfig, OpenFlags, Whence};
use sleds_repro::sim_core::{ByteSize, DetRng, PAGE_SIZE};
use sleds_repro::sleds::{fsleds_get, SledsEntry, SledsTable};
use sleds_repro::textmatch::Regex;

fn corpus(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        for _ in 0..rng.range_u64(4, 9) {
            out.push(b'a' + rng.range_u64(0, 26) as u8);
        }
        out.push(if rng.chance(0.2) { b'\n' } else { b' ' });
    }
    out.truncate(n);
    out
}

/// A small client machine mounted on a LAN server. Returns the kernel and
/// a table with a flat NFS row (server reports off by default).
fn lan_env() -> (Kernel, SledsTable) {
    let mut cfg = MachineConfig::table2();
    cfg.ram = ByteSize::mib(2); // small client cache: the server's matters
    let mut k = Kernel::new(cfg);
    k.mkdir("/lan").unwrap();
    let m = k
        .mount_device("/lan", Box::new(NfsServerDevice::lan_mount("lan0")), false)
        .unwrap();
    let dev = k.device_of_mount(m).unwrap();
    let mut t = SledsTable::new();
    t.fill_memory(SledsEntry::new(175e-9, 48e6));
    // Flat row: the pessimistic "everything is a server disk access" view.
    t.fill_device(dev, SledsEntry::new(0.019, 5e6));
    (k, t)
}

#[test]
fn server_cache_state_flows_to_client_sleds() {
    let (mut k, mut t) = lan_env();
    let n = 64 * PAGE_SIZE as usize;
    k.install_file("/lan/f.txt", &corpus(n, 1)).unwrap();
    let fd = k.open("/lan/f.txt", OpenFlags::RDONLY).unwrap();
    // Touch the tail through the mount, then flush the client's own cache.
    k.lseek(fd, (n / 2) as i64, Whence::Set).unwrap();
    k.read(fd, n / 2).unwrap();
    k.drop_caches().unwrap();

    t.set_trust_device_reports(true);
    let sleds = fsleds_get(&mut k, fd, &t).unwrap();
    assert_eq!(sleds.len(), 2);
    assert!(
        sleds[1].latency < sleds[0].latency / 2.0,
        "server-hot tail must be much cheaper: {} vs {}",
        sleds[1].latency,
        sleds[0].latency
    );
    k.close(fd).unwrap();
}

#[test]
fn server_aware_first_match_skips_server_disk() {
    // Fresh environment per mode: the measured run must not inherit server
    // cache state from the other mode's scan.
    let run = |aware: bool| -> f64 {
        let (mut k, mut t) = lan_env();
        let n = 256 * PAGE_SIZE as usize; // 1 MiB
        let mut text = corpus(n, 2);
        let pos = (n * 7 / 8) & !4095;
        text[pos..pos + 4].copy_from_slice(b"ZQXJ");
        k.install_file("/lan/hay.txt", &text).unwrap();

        // Another client (or an earlier session) read the tail: hot on the
        // SERVER, absent from this client's cache.
        let fd = k.open("/lan/hay.txt", OpenFlags::RDONLY).unwrap();
        k.lseek(fd, (3 * n / 4) as i64, Whence::Set).unwrap();
        k.read(fd, n / 4).unwrap();
        k.close(fd).unwrap();
        k.drop_caches().unwrap();
        k.reset_counters();

        t.set_trust_device_reports(aware);
        let re = Regex::new("ZQXJ").unwrap();
        let opts = GrepOptions {
            first_match_only: true,
        };
        let j = k.start_job();
        let r = grep(&mut k, "/lan/hay.txt", &re, &opts, Some(&t)).unwrap();
        assert!(r.stopped_early);
        k.finish_job(&j).elapsed.as_secs_f64()
    };

    // Flat: one uniform NFS level, scan from the front through the
    // server's disk. Server-aware: read the server-hot tail first and find
    // the match without any server-disk access.
    let flat = run(false);
    let aware = run(true);
    assert!(
        aware < 0.5 * flat,
        "server-aware {aware:.4}s vs flat {flat:.4}s"
    );
}

#[test]
fn wc_results_identical_over_the_server_mount() {
    let (mut k, mut t) = lan_env();
    let n = 128 * PAGE_SIZE as usize;
    k.install_file("/lan/f.txt", &corpus(n, 3)).unwrap();
    let base = wc(&mut k, "/lan/f.txt", None).unwrap();
    t.set_trust_device_reports(true);
    let with = wc(&mut k, "/lan/f.txt", Some(&t)).unwrap();
    assert_eq!(base, with);
}
