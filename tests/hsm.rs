//! HSM integration: migration, staging, the offline bit, find -latency,
//! and the jukebox's mount dynamics — the regime where the paper expects
//! SLEDs' gains to be "much more pronounced".

use sleds_repro::apps::find::{find, FindOptions};
use sleds_repro::apps::wc::wc;
use sleds_repro::devices::jukebox::JukeboxParams;
use sleds_repro::devices::{DiskDevice, Jukebox, TapeDevice};
use sleds_repro::fs::{Kernel, OpenFlags};
use sleds_repro::lmbench::fill_table;
use sleds_repro::sim_core::{DetRng, SimDuration, PAGE_SIZE};
use sleds_repro::sleds::{LatencyPredicate, SledsTable};

fn corpus(n: usize, seed: u64) -> Vec<u8> {
    let mut rng = DetRng::new(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        for _ in 0..rng.range_u64(4, 9) {
            out.push(b'a' + rng.range_u64(0, 26) as u8);
        }
        out.push(if rng.chance(0.2) { b'\n' } else { b' ' });
    }
    out.truncate(n);
    out
}

fn hsm_env() -> (Kernel, SledsTable) {
    let mut k = Kernel::table2();
    k.mkdir("/hsm").unwrap();
    let m = k
        .mount_hsm(
            "/hsm",
            DiskDevice::table2_disk("hda"),
            Box::new(TapeDevice::dlt("st0")),
            512,
        )
        .unwrap();
    let t = fill_table(&mut k, &[("/hsm", m)]).unwrap();
    k.reset_counters();
    (k, t)
}

#[test]
fn migrate_stage_roundtrip_preserves_data() {
    let (mut k, _) = hsm_env();
    let data = corpus(6 << 20, 1);
    k.install_file("/hsm/f.dat", &data).unwrap();
    k.hsm_migrate("/hsm/f.dat", true).unwrap();
    assert!(k.hsm_is_offline("/hsm/f.dat").unwrap());

    let fd = k.open("/hsm/f.dat", OpenFlags::RDONLY).unwrap();
    let mut got = Vec::new();
    loop {
        let chunk = k.read(fd, 1 << 20).unwrap();
        if chunk.is_empty() {
            break;
        }
        got.extend_from_slice(&chunk);
    }
    k.close(fd).unwrap();
    assert_eq!(got, data, "staged bytes must match the original");
    assert!(!k.hsm_is_offline("/hsm/f.dat").unwrap(), "file now on disk");
}

#[test]
fn staged_reread_is_orders_of_magnitude_faster() {
    let (mut k, _) = hsm_env();
    let data = corpus(4 << 20, 2);
    k.install_file("/hsm/f.dat", &data).unwrap();
    k.hsm_migrate("/hsm/f.dat", true).unwrap();

    let j = k.start_job();
    wc(&mut k, "/hsm/f.dat", None).unwrap();
    let cold = k.finish_job(&j).elapsed;
    assert!(
        cold > SimDuration::from_secs(40),
        "mount+locate dominates: {cold}"
    );

    let j = k.start_job();
    wc(&mut k, "/hsm/f.dat", None).unwrap();
    let warm = k.finish_job(&j).elapsed;
    assert!(
        warm.as_secs_f64() * 100.0 < cold.as_secs_f64(),
        "cached reread ({warm}) should be >100x faster than staging ({cold})"
    );
}

#[test]
fn sleds_report_offline_files_with_tape_latency() {
    let (mut k, t) = hsm_env();
    let data = corpus(2 << 20, 3);
    k.install_file("/hsm/f.dat", &data).unwrap();
    k.hsm_migrate("/hsm/f.dat", true).unwrap();
    let fd = k.open("/hsm/f.dat", OpenFlags::RDONLY).unwrap();
    let sleds = sleds_repro::sleds::fsleds_get(&mut k, fd, &t).unwrap();
    assert_eq!(sleds.len(), 1);
    assert!(
        sleds[0].latency > 10.0,
        "tape-resident SLED should report tens of seconds, got {}",
        sleds[0].latency
    );
    k.close(fd).unwrap();
}

#[test]
fn find_latency_tracks_migration_state() {
    let (mut k, t) = hsm_env();
    for i in 0..4 {
        k.install_file(&format!("/hsm/f{i}.dat"), &corpus(1 << 20, 10 + i))
            .unwrap();
    }
    k.hsm_migrate("/hsm/f1.dat", true).unwrap();
    k.hsm_migrate("/hsm/f3.dat", true).unwrap();

    let cheap = find(
        &mut k,
        "/hsm",
        &FindOptions {
            latency: Some(LatencyPredicate::parse("-5").unwrap()),
            ..Default::default()
        },
        Some(&t),
    )
    .unwrap();
    let names: Vec<&str> = cheap.iter().map(|h| h.path.as_str()).collect();
    assert_eq!(names, vec!["/hsm/f0.dat", "/hsm/f2.dat"]);

    // Stage f1 back in by reading it; it becomes cheap.
    wc(&mut k, "/hsm/f1.dat", None).unwrap();
    let cheap = find(
        &mut k,
        "/hsm",
        &FindOptions {
            latency: Some(LatencyPredicate::parse("-5").unwrap()),
            ..Default::default()
        },
        Some(&t),
    )
    .unwrap();
    assert_eq!(cheap.len(), 3, "staged file should now pass the predicate");
}

#[test]
fn jukebox_backed_hsm_pays_robot_time_once_per_cartridge() {
    let mut k = Kernel::table2();
    k.mkdir("/hsm").unwrap();
    let jb = Jukebox::new("jb0", 4, 1, JukeboxParams::default());
    k.mount_hsm("/hsm", DiskDevice::table2_disk("hda"), Box::new(jb), 512)
        .unwrap();
    let data = vec![5u8; 64 * PAGE_SIZE as usize];
    k.install_file("/hsm/a.dat", &data).unwrap();
    k.install_file("/hsm/b.dat", &data).unwrap();
    k.hsm_migrate("/hsm/a.dat", true).unwrap();
    k.hsm_migrate("/hsm/b.dat", true).unwrap();

    // Both files land on cartridge 0 (sequential tape allocation), so the
    // second staging should not pay another mount.
    let j = k.start_job();
    wc(&mut k, "/hsm/a.dat", None).unwrap();
    let first = k.finish_job(&j).elapsed;
    let j = k.start_job();
    wc(&mut k, "/hsm/b.dat", None).unwrap();
    let second = k.finish_job(&j).elapsed;
    assert!(first > SimDuration::from_secs(50), "cold mount: {first}");
    assert!(
        second < first / 5,
        "warm cartridge ({second}) must skip the robot+load of ({first})"
    );
}
