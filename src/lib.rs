//! Umbrella crate for the SLEDs reproduction.
//!
//! Re-exports the workspace crates so the top-level `examples/` and `tests/`
//! can exercise the whole stack through one dependency. See `README.md` for a
//! tour and `DESIGN.md` for the system inventory.

pub use sleds;
pub use sleds_apps as apps;
pub use sleds_devices as devices;
pub use sleds_faults as faults;
pub use sleds_fits as fits;
pub use sleds_fs as fs;
pub use sleds_lmbench as lmbench;
pub use sleds_pagecache as pagecache;
pub use sleds_replay as replay;
pub use sleds_sim_core as sim_core;
pub use sleds_textmatch as textmatch;
pub use sleds_trace as trace;
