//! Submission-ring semantics and batched-vs-sequential equivalence.
//!
//! The ring's contract: submission past a full SQ fails with `EAGAIN`, a
//! full CQ defers service to the next enter, every `ring_enter` charges
//! exactly one boundary crossing, and every serviced op returns exactly
//! what its sequential twin returns — same bytes, same errors, same fault
//! behaviour — with rusage differing only by the crossing charges.

use sleds::{
    compile_latency, fsleds_get, pricing_from, sleds_from_prog, total_delivery_time, AttackPlan,
    LatencyPredicate, PickConfig, PickSession, SledsEntry, SledsTable,
};
use sleds_devices::{DiskDevice, FaultPlan};
use sleds_fs::{
    Fd, FileKind, Kernel, OpenFlags, PickProgram, ProgInst, ProgOrder, RingOp, RingPayload,
    SubmissionRing, Whence,
};
use sleds_sim_core::{Errno, SimDuration, SimTime, PAGE_SIZE};

/// Disk-backed kernel with a flat (zone-free) table, one cold 24-page file.
fn setup() -> (Kernel, SledsTable, &'static str) {
    let mut k = Kernel::table2();
    k.mkdir("/data").unwrap();
    let m = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .unwrap();
    let dev = k.device_of_mount(m).unwrap();
    let mut t = SledsTable::new();
    t.fill_memory(SledsEntry::new(175e-9, 48e6));
    t.fill_device(dev, SledsEntry::new(0.018, 9e6));
    k.install_file("/data/f", &vec![7u8; 24 * PAGE_SIZE as usize])
        .unwrap();
    (k, t, "/data/f")
}

fn pread_op(fd: Fd, pos: u64, len: usize) -> RingOp {
    RingOp::Pread { fd, pos, len }
}

#[test]
fn sq_overflow_is_eagain_and_cq_backpressure_defers_service() {
    let (mut k, _, path) = setup();
    let fd = k.open(path, OpenFlags::RDONLY).unwrap();
    let mut ring = SubmissionRing::new(4);

    for i in 0..4 {
        ring.push(i, pread_op(fd, i * PAGE_SIZE, 64)).unwrap();
    }
    let err = ring.push(9, pread_op(fd, 0, 64)).unwrap_err();
    assert_eq!(err.errno, Errno::Eagain);

    // All four fit in the empty CQ.
    assert_eq!(k.ring_enter(&mut ring).unwrap(), 4);

    // CQ now full and unreaped: newly queued ops must wait.
    for i in 0..4 {
        ring.push(10 + i, pread_op(fd, i * PAGE_SIZE, 64)).unwrap();
    }
    assert_eq!(
        k.ring_enter(&mut ring).unwrap(),
        0,
        "CQ full, nothing serviced"
    );

    let reaped = k.ring_reap(&mut ring);
    assert_eq!(reaped.len(), 4);
    assert_eq!(
        reaped.iter().map(|c| c.user_data).collect::<Vec<_>>(),
        vec![0, 1, 2, 3],
        "completions arrive in submission order"
    );
    assert_eq!(
        k.ring_enter(&mut ring).unwrap(),
        4,
        "deferred ops serviced now"
    );
    assert_eq!(k.ring_reap(&mut ring).len(), 4);
}

#[test]
fn each_enter_charges_one_crossing_and_the_cpu_formula_holds() {
    // Twin kernels, both fully warmed, so the only cost difference between
    // sequential preads and one ring batch is the boundary accounting.
    let warmed = || {
        let (mut k, t, path) = setup();
        let fd = k.open(path, OpenFlags::RDONLY).unwrap();
        while !k.read(fd, 64 << 10).unwrap().is_empty() {}
        (k, t, fd)
    };
    const N: u64 = 16;

    let (mut k, _, fd) = warmed();
    let before = k.usage();
    let mut seq_bytes = Vec::new();
    for i in 0..N {
        seq_bytes.push(k.pread(fd, i * PAGE_SIZE, 512).unwrap());
    }
    let seq_u = k.usage().since(&before);

    let (mut k, _, fd) = warmed();
    let enters_before = k.ring_enters();
    let before = k.usage();
    let mut ring = SubmissionRing::new(N as usize);
    for i in 0..N {
        ring.push(i, pread_op(fd, i * PAGE_SIZE, 512)).unwrap();
    }
    assert_eq!(k.ring_enter(&mut ring).unwrap(), N as usize);
    let ring_bytes: Vec<Vec<u8>> = k
        .ring_reap(&mut ring)
        .into_iter()
        .map(|c| match c.result.unwrap() {
            RingPayload::Bytes(b) => b,
            other => panic!("expected bytes, got {other:?}"),
        })
        .collect();
    let ring_u = k.usage().since(&before);

    assert_eq!(seq_bytes, ring_bytes);
    assert_eq!(k.ring_enters() - enters_before, 1);
    assert_eq!(
        seq_u.syscall_crossings, N,
        "one crossing per sequential pread"
    );
    assert_eq!(
        ring_u.syscall_crossings, 1,
        "one crossing for the whole batch"
    );
    assert_eq!(
        seq_u.syscalls, ring_u.syscalls,
        "same logical syscall count"
    );

    let cfg = k.config();
    let expected_gap =
        (N - 1) as f64 * cfg.syscall_cpu.as_secs_f64() - N as f64 * cfg.ring_op_cpu.as_secs_f64();
    let gap = seq_u.cpu.as_secs_f64() - ring_u.cpu.as_secs_f64();
    assert!(
        (gap - expected_gap).abs() < 1e-12,
        "cpu gap {gap} vs expected {expected_gap}"
    );
}

#[test]
fn ring_ops_return_exactly_what_their_sequential_twins_return() {
    let prepared = || {
        let (mut k, t, path) = setup();
        // Warm a middle slice so SLEDs and pick plans are nontrivial.
        let fd = k.open(path, OpenFlags::RDONLY).unwrap();
        k.lseek(fd, 5 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 4 * PAGE_SIZE as usize).unwrap();
        (k, t, path, fd)
    };

    // Sequential answers.
    let (mut k, t, path, fd) = prepared();
    let seq_stat = k.stat(path).unwrap();
    let seq_bytes = k.pread(fd, 3 * PAGE_SIZE, 2048).unwrap();
    let seq_sleds = fsleds_get(&mut k, fd, &t).unwrap();
    let mut pick = PickSession::init(&mut k, &t, fd, PickConfig::bytes(16 << 10)).unwrap();
    let mut seq_plan = Vec::new();
    while let Some(chunk) = pick.next_read() {
        seq_plan.push(chunk);
    }
    pick.finish();

    // The same five ops through one ring batch.
    let (mut k, t, path, fd) = prepared();
    let pricing = pricing_from(&t);
    let mut ring = SubmissionRing::new(8);
    ring.push(
        0,
        RingOp::Open {
            path: path.to_string(),
            flags: OpenFlags::RDONLY,
        },
    )
    .unwrap();
    ring.push(
        1,
        RingOp::Stat {
            path: path.to_string(),
        },
    )
    .unwrap();
    ring.push(2, pread_op(fd, 3 * PAGE_SIZE, 2048)).unwrap();
    ring.push(
        3,
        RingOp::FsledsGet {
            fd,
            pricing: pricing.clone(),
        },
    )
    .unwrap();
    ring.push(
        4,
        RingOp::PickAdvice {
            fd,
            pricing,
            preferred: 16 << 10,
            skip_unavailable: false,
        },
    )
    .unwrap();
    k.ring_enter(&mut ring).unwrap();
    let done = k.ring_reap(&mut ring);
    assert_eq!(done.len(), 5);

    let mut opened = None;
    for c in done {
        match (c.user_data, c.result.unwrap()) {
            (0, RingPayload::Fd(f)) => opened = Some(f),
            (1, RingPayload::Stat(st)) => assert_eq!(st, seq_stat),
            (2, RingPayload::Bytes(b)) => assert_eq!(b, seq_bytes),
            (3, RingPayload::Sleds(s)) => assert_eq!(sleds_from_prog(&s), seq_sleds),
            (4, RingPayload::Plan(p)) => assert_eq!(p, seq_plan),
            (tag, other) => panic!("unexpected completion {tag}: {other:?}"),
        }
    }

    // And Close through the ring releases the descriptor.
    let opened = opened.expect("open completed");
    let mut ring = SubmissionRing::new(2);
    ring.push(0, RingOp::Close { fd: opened }).unwrap();
    k.ring_enter(&mut ring).unwrap();
    assert_eq!(k.ring_reap(&mut ring)[0].result, Ok(RingPayload::Unit));
    assert_eq!(k.pread(opened, 0, 16).unwrap_err().errno, Errno::Ebadf);
}

#[test]
fn prog_install_validate_eval_and_teardown() {
    let (mut k, t, path) = setup();
    let fd = k.open(path, OpenFlags::RDONLY).unwrap();
    let pricing = pricing_from(&t);

    // Verification rejects an underflowing program outright.
    let err = PickProgram::new(vec![ProgInst::Lt]).unwrap_err();
    assert_eq!(err.errno, Errno::Einval);

    // Installing on a dead fd is EBADF-class, not a crash.
    let pred = LatencyPredicate::parse("-m200").unwrap();
    assert!(k.fsleds_prog(Fd(999), compile_latency(&pred)).is_err());

    // Installed program evaluates exactly like the user-space predicate.
    k.fsleds_prog(fd, compile_latency(&pred)).unwrap();
    assert!(k.fd_prog(fd).is_some());
    let (matched, est) = k.fsleds_prog_eval(fd, &pricing).unwrap();
    let seq_est = total_delivery_time(&mut k, &t, fd, AttackPlan::Best).unwrap();
    assert_eq!(est, seq_est, "bit-identical estimate");
    assert_eq!(matched, pred.matches(seq_est));

    // Close tears the program down with the descriptor.
    k.close(fd).unwrap();
    assert!(k.fd_prog(fd).is_none());
    let err = k.fsleds_prog_eval(fd, &pricing).unwrap_err();
    assert_eq!(err.errno, Errno::Ebadf);
}

fn tree_kernel() -> (Kernel, SledsTable) {
    let mut k = Kernel::table2();
    k.mkdir("/data").unwrap();
    let m = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .unwrap();
    let dev = k.device_of_mount(m).unwrap();
    let mut t = SledsTable::new();
    t.fill_memory(SledsEntry::new(175e-9, 48e6));
    t.fill_device(dev, SledsEntry::new(0.018, 9e6));
    k.mkdir("/data/src").unwrap();
    k.install_file("/data/big.bin", &vec![1u8; 8 * PAGE_SIZE as usize])
        .unwrap();
    k.install_file("/data/src/main.c", b"int main(){}\n")
        .unwrap();
    k.install_file("/data/src/util.c", b"void util(){}\n")
        .unwrap();
    (k, t)
}

#[test]
fn walk_visits_in_find_order_and_first_match_exit_stops() {
    let (mut k, t) = tree_kernel();
    let pricing = pricing_from(&t);
    // `+0`: estimate > 0, true for every nonempty file.
    let prog = compile_latency(&LatencyPredicate::parse("+0").unwrap());
    let entries = k.fsleds_walk("/data", &prog, &pricing).unwrap();
    let paths: Vec<&str> = entries.iter().map(|e| e.path.as_str()).collect();
    assert_eq!(
        paths,
        vec![
            "/data",
            "/data/big.bin",
            "/data/src",
            "/data/src/main.c",
            "/data/src/util.c",
        ],
        "depth-first, name order — find's order"
    );
    assert!(entries
        .iter()
        .all(|e| e.matched == (e.kind == FileKind::File)));

    let early = prog.clone().with_first_match_exit();
    let entries = k.fsleds_walk("/data", &early, &pricing).unwrap();
    assert_eq!(
        entries.last().unwrap().path,
        "/data/big.bin",
        "walk stops at the first matching file"
    );
    assert_eq!(entries.len(), 2);
}

#[test]
fn cached_first_order_puts_warm_matches_ahead() {
    let (mut k, t) = tree_kernel();
    let pricing = pricing_from(&t);
    // Warm main.c fully; everything else stays cold.
    let fd = k.open("/data/src/main.c", OpenFlags::RDONLY).unwrap();
    k.read(fd, 4096).unwrap();
    k.close(fd).unwrap();

    let prog =
        compile_latency(&LatencyPredicate::parse("+0").unwrap()).with_order(ProgOrder::CachedFirst);
    let entries = k.fsleds_walk("/data", &prog, &pricing).unwrap();
    assert_eq!(
        entries[0].path, "/data/src/main.c",
        "fully cached match comes first"
    );
    let dirs_after: Vec<&str> = entries
        .iter()
        .filter(|e| e.kind == FileKind::Dir)
        .map(|e| e.path.as_str())
        .collect();
    assert_eq!(
        dirs_after,
        vec!["/data", "/data/src"],
        "non-matches keep file order"
    );
}

#[test]
fn walk_charges_cpu_from_the_cost_certificate_deterministically() {
    // Two programs with the same verdict on every file but different
    // certified worst-case costs: the cheap 3-instruction `+0` compare
    // and a padded version that burns budget on verdict-preserving double
    // negations. The walk must charge exactly `worst_ns` more per priced
    // file for the expensive one, and repeated runs must charge
    // identically — the certificate, not the evaluation path, is the
    // price.
    let cheap = compile_latency(&LatencyPredicate::parse("+0").unwrap());
    let expensive = PickProgram::new(vec![
        ProgInst::PushDeliveryTime,
        ProgInst::PushConst(0.0),
        ProgInst::Gt,
        ProgInst::Not,
        ProgInst::Not,
        ProgInst::Not,
        ProgInst::Not,
    ])
    .unwrap();
    assert!(
        expensive.cert().worst_ns > cheap.cert().worst_ns,
        "fixture must actually differ in certified cost"
    );

    let run = |prog: &PickProgram| {
        let (mut k, t) = tree_kernel();
        let pricing = pricing_from(&t);
        let before = k.usage();
        let entries = k.fsleds_walk("/data", prog, &pricing).unwrap();
        (entries, k.usage().since(&before))
    };

    let (cheap_entries, cheap_usage) = run(&cheap);
    let (cheap_entries2, cheap_usage2) = run(&cheap);
    assert_eq!(cheap_entries, cheap_entries2, "walk is deterministic");
    assert_eq!(cheap_usage, cheap_usage2, "charging is deterministic");

    let (expensive_entries, expensive_usage) = run(&expensive);
    let priced = expensive_entries
        .iter()
        .filter(|e| e.estimate_secs.is_some())
        .count() as u64;
    assert_eq!(priced, 3, "three files priced");
    assert_eq!(
        expensive_entries
            .iter()
            .map(|e| e.matched)
            .collect::<Vec<_>>(),
        cheap_entries.iter().map(|e| e.matched).collect::<Vec<_>>(),
        "same verdicts"
    );
    let per_entry_delta_ns = expensive.cert().worst_ns - cheap.cert().worst_ns;
    let cpu_delta = expensive_usage.cpu - cheap_usage.cpu;
    assert_eq!(
        u128::from(cpu_delta.as_nanos()),
        priced as u128 * per_entry_delta_ns as u128,
        "walk CPU differs by exactly the certified bound per priced entry"
    );
}

#[test]
fn ring_preads_fail_and_retry_exactly_like_sequential_under_faults() {
    let build = |plan: &FaultPlan| {
        let (mut k, t, path) = setup();
        k.drop_caches().unwrap();
        k.apply_fault_plan(plan);
        let fd = k.open(path, OpenFlags::RDONLY).unwrap();
        (k, t, fd)
    };

    // Offline window covering the whole run: both paths fail identically.
    let offline = FaultPlan::new().offline(
        "hda",
        SimTime::ZERO,
        SimTime::from_nanos(3_600_000_000_000),
        SimDuration::from_millis(1),
    );
    let (mut k, _, fd) = build(&offline);
    let seq_err = k.pread(fd, 0, 4096).unwrap_err();

    let (mut k, _, fd) = build(&offline);
    let mut ring = SubmissionRing::new(2);
    ring.push(0, pread_op(fd, 0, 4096)).unwrap();
    k.ring_enter(&mut ring).unwrap();
    let ring_err = k.ring_reap(&mut ring)[0].result.clone().unwrap_err();
    assert_eq!(ring_err.errno, seq_err.errno);
    assert_eq!(ring_err.to_string(), seq_err.to_string(), "same error text");

    // Transient window with a fixed budget: both paths burn the same
    // bounded retries and then deliver the same bytes.
    let transient = FaultPlan::new().transient(
        "hda",
        SimTime::ZERO,
        SimTime::from_nanos(3_600_000_000_000),
        3,
        SimDuration::from_millis(2),
    );
    let (mut k, _, fd) = build(&transient);
    let before = k.usage();
    let seq_bytes = k.pread(fd, 0, 4096).unwrap();
    let seq_u = k.usage().since(&before);

    let (mut k, _, fd) = build(&transient);
    let before = k.usage();
    let mut ring = SubmissionRing::new(2);
    ring.push(0, pread_op(fd, 0, 4096)).unwrap();
    k.ring_enter(&mut ring).unwrap();
    let got = match k.ring_reap(&mut ring)[0].result.clone().unwrap() {
        RingPayload::Bytes(b) => b,
        other => panic!("expected bytes, got {other:?}"),
    };
    let ring_u = k.usage().since(&before);

    assert_eq!(got, seq_bytes);
    assert!(seq_u.io_retries > 0, "the transient window was exercised");
    assert_eq!(seq_u.io_retries, ring_u.io_retries, "same bounded retries");
    assert_eq!(seq_u.retry_backoff, ring_u.retry_backoff);
    assert_eq!(seq_u.major_faults, ring_u.major_faults);
}
