//! Extent walk vs per-page reference walk: equivalence properties.
//!
//! The extent-based residency walk ([`Kernel::page_extents`] /
//! [`Kernel::page_locations`]) must report byte-identical placement to the
//! retained per-page reference walk
//! ([`Kernel::page_locations_per_page_reference`]) on *every* reachable
//! cache state — the walks differ only in cost, never in answer. These
//! properties drive a kernel through randomized layouts (fragmented
//! allocation, ragged tails), cache states (random reads, cache pressure,
//! pins), and HSM staging boundaries, and check the two walks page by page,
//! plus the structural invariants of the extent form itself.
//!
//! Gated behind the `proptests` feature (run with
//! `cargo test -p sleds-fs --features proptests`); case count scales with
//! `SLEDS_CHECK_CASES`.

use sleds_devices::{DiskDevice, TapeDevice};
use sleds_fs::{Fd, Kernel, MachineConfig, OpenFlags, PageLocation, Whence};
use sleds_sim_core::{check, ByteSize, DetRng, PAGE_SIZE};

/// Asserts the extent walk and the per-page reference walk agree exactly,
/// and that the extent form is well-formed (tiling, coalesced, faithful
/// expansion).
fn assert_walks_agree(k: &mut Kernel, fd: Fd, ctx: &str) {
    let reference = k.page_locations_per_page_reference(fd).unwrap();
    let fast = k.page_locations(fd).unwrap();
    assert_eq!(
        fast.len(),
        reference.len(),
        "{ctx}: walk lengths differ ({} vs {})",
        fast.len(),
        reference.len()
    );
    for (p, (a, b)) in fast.iter().zip(&reference).enumerate() {
        assert_eq!(a, b, "{ctx}: page {p} placement differs");
    }

    let extents = k.page_extents(fd).unwrap();
    let mut next = 0;
    for (i, e) in extents.iter().enumerate() {
        assert_eq!(e.first_page, next, "{ctx}: extent {i} leaves a gap");
        assert!(e.pages > 0, "{ctx}: extent {i} is empty");
        // Memory extents must be maximally coalesced; device extents may
        // split at layout-run boundaries (the expansion check below
        // validates their content regardless).
        if i > 0 {
            let same_kind = matches!(
                (&extents[i - 1].location, &e.location),
                (PageLocation::Memory, PageLocation::Memory)
            );
            assert!(!same_kind, "{ctx}: adjacent memory extents not merged");
        }
        next = e.end_page();
    }
    assert_eq!(
        next,
        reference.len() as u64,
        "{ctx}: extents do not tile the file"
    );

    // The expansion of the extents is exactly the per-page vector.
    let mut expanded = Vec::with_capacity(reference.len());
    for e in &extents {
        match e.location {
            PageLocation::Memory => {
                expanded.extend((0..e.pages).map(|_| PageLocation::Memory));
            }
            PageLocation::Device { dev, sector } => {
                expanded.extend((0..e.pages).map(|i| PageLocation::Device {
                    dev,
                    sector: sector + i * sleds_fs::SECTORS_PER_PAGE,
                }));
            }
        }
    }
    assert_eq!(expanded, reference, "{ctx}: extent expansion differs");
}

/// One randomized disk scenario: fragmented layout, ragged tail, random
/// warm/evict/pin traffic.
fn disk_scenario(rng: &mut DetRng) {
    let mut cfg = MachineConfig::table2();
    // Small cache so random traffic actually evicts.
    cfg.ram = ByteSize::mib(rng.range_u64(1, 4));
    let mut k = Kernel::new(cfg);
    k.mkdir("/d").unwrap();
    let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
    if rng.chance(0.7) {
        let chunk = rng.range_u64(1, 8);
        let gap = rng.range_u64(0, 64);
        k.set_fragmentation(m, chunk, gap, rng.range_u64(0, 1 << 32));
    }

    // A file with a ragged tail most of the time.
    let pages = rng.range_u64(1, 96);
    let tail = if rng.chance(0.8) {
        rng.range_u64(1, PAGE_SIZE)
    } else {
        PAGE_SIZE
    };
    let size = ((pages - 1) * PAGE_SIZE + tail) as usize;
    k.install_file("/d/f", &vec![7u8; size]).unwrap();
    let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
    assert_walks_agree(&mut k, fd, "cold disk file");

    // Random traffic: warm ranges, re-read, pin, unpin, flood.
    for round in 0..rng.range_usize(1, 8) {
        let start = rng.range_u64(0, pages);
        let count = rng.range_u64(1, pages - start + 1);
        match rng.range_usize(0, 4) {
            0 => {
                k.lseek(fd, (start * PAGE_SIZE) as i64, Whence::Set)
                    .unwrap();
                k.read(fd, (count * PAGE_SIZE) as usize).unwrap();
            }
            1 => {
                k.pin_range(fd, start * PAGE_SIZE, count * PAGE_SIZE)
                    .unwrap();
            }
            2 => {
                k.unpin_range(fd, 0, u64::MAX).unwrap();
            }
            _ => {
                // Flood with a competing file to force evictions.
                let noise = vec![3u8; 64 * PAGE_SIZE as usize];
                k.install_file("/d/noise", &noise).unwrap();
                let nfd = k.open("/d/noise", OpenFlags::RDONLY).unwrap();
                while !k.read(nfd, 16 << 10).unwrap().is_empty() {}
                k.close(nfd).unwrap();
                k.unlink("/d/noise").unwrap();
            }
        }
        assert_walks_agree(&mut k, fd, &format!("disk round {round}"));
    }
    k.unpin_range(fd, 0, u64::MAX).unwrap();
}

/// One randomized HSM scenario: migrate to tape, stage back in chunks, and
/// check the walks agree across the offline/staged boundary.
fn hsm_scenario(rng: &mut DetRng) {
    let mut k = Kernel::table2();
    k.mkdir("/hsm").unwrap();
    let chunk = rng.range_u64(1, 32);
    k.mount_hsm(
        "/hsm",
        DiskDevice::table2_disk("hda"),
        Box::new(TapeDevice::dlt("st0")),
        chunk,
    )
    .unwrap();
    let pages = rng.range_u64(1, 48);
    let tail = rng.range_u64(1, PAGE_SIZE);
    let size = ((pages - 1) * PAGE_SIZE + tail) as usize;
    k.install_file("/hsm/f", &vec![9u8; size]).unwrap();
    k.hsm_migrate("/hsm/f", rng.chance(0.5)).unwrap();

    let fd = k.open("/hsm/f", OpenFlags::RDONLY).unwrap();
    assert_walks_agree(&mut k, fd, "offline file");

    // Stage back a few random windows; each read crosses staged/offline
    // boundaries mid-file.
    for round in 0..rng.range_usize(1, 5) {
        let start = rng.range_u64(0, pages);
        let count = rng.range_u64(1, pages - start + 1);
        k.lseek(fd, (start * PAGE_SIZE) as i64, Whence::Set)
            .unwrap();
        k.read(fd, (count * PAGE_SIZE) as usize).unwrap();
        assert_walks_agree(&mut k, fd, &format!("hsm round {round}"));
        if rng.chance(0.3) {
            k.drop_caches().unwrap();
            assert_walks_agree(&mut k, fd, &format!("hsm round {round} dropped"));
        }
    }
}

/// Growth via `write`: appends extend the mapping run by run; the walks
/// must agree after every growth step, including sub-page tail growth.
fn growth_scenario(rng: &mut DetRng) {
    let mut k = Kernel::table2();
    k.mkdir("/d").unwrap();
    let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
    if rng.chance(0.5) {
        k.set_fragmentation(m, rng.range_u64(1, 4), rng.range_u64(0, 16), rng.seed());
    }
    k.install_file("/d/g", b"").unwrap();
    let fd = k.open("/d/g", OpenFlags::RDWR).unwrap();
    for round in 0..rng.range_usize(1, 10) {
        let n = rng.range_usize(1, 3 * PAGE_SIZE as usize);
        k.lseek(fd, 0, Whence::End).unwrap();
        k.write(fd, &vec![round as u8; n]).unwrap();
        assert_walks_agree(&mut k, fd, &format!("growth round {round}"));
    }
}

#[test]
fn extent_walk_matches_reference_on_random_disk_states() {
    check::run("extent_vs_reference_disk", disk_scenario);
}

#[test]
fn extent_walk_matches_reference_across_hsm_staging() {
    check::run("extent_vs_reference_hsm", hsm_scenario);
}

#[test]
fn extent_walk_matches_reference_under_growth() {
    check::run("extent_vs_reference_growth", growth_scenario);
}

#[test]
fn sled_generation_is_a_valid_version_stamp() {
    // Deterministic: any residency, layout, or size change moves the stamp.
    let mut k = Kernel::table2();
    k.mkdir("/d").unwrap();
    k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
    k.install_file("/d/f", &vec![1u8; 8 * PAGE_SIZE as usize])
        .unwrap();
    let fd = k.open("/d/f", OpenFlags::RDWR).unwrap();

    let g0 = k.sled_generation(fd).unwrap();
    assert_eq!(
        g0,
        k.sled_generation(fd).unwrap(),
        "stamp is stable at rest"
    );

    k.read(fd, PAGE_SIZE as usize).unwrap();
    let g1 = k.sled_generation(fd).unwrap();
    assert_ne!(g0, g1, "residency change must move the stamp");

    k.lseek(fd, 0, Whence::End).unwrap();
    k.write(fd, b"tail growth").unwrap();
    let g2 = k.sled_generation(fd).unwrap();
    assert_ne!(g1, g2, "size change must move the stamp");

    k.drop_caches().unwrap();
    let g3 = k.sled_generation(fd).unwrap();
    assert_ne!(g2, g3, "eviction must move the stamp");
}
