//! Regression test for deterministic replay (the D006 sweep).
//!
//! `Kernel::drop_caches` walks every inode and writes its dirty pages back;
//! the order of that walk decides which sectors the disk head visits first,
//! and therefore how much virtual time the flush costs. When the inode table
//! was a `HashMap`, each `Kernel` instance hashed with its own random seed,
//! so two identical runs could flush in different orders and finish at
//! different virtual times. The inode table is a `BTreeMap` now; this test
//! pins the guarantee: the same workload on two fresh kernels produces
//! byte-identical reports, elapsed times, and usage counters.

use sleds_devices::{BlockDevice, DiskDevice, FaultPlan, NfsDevice};
use sleds_fs::trace::{chrome_trace_json, Layer, TraceEvent};
use sleds_fs::{
    JobReport, Kernel, OpenFlags, Rusage, SaturationReport, TenantId, VolumeLayout, Whence,
};
use sleds_sim_core::{SimDuration, SimTime, PAGE_SIZE};

/// A workload chosen to be order-sensitive: many files dirty pages scattered
/// across the disk, then one `drop_caches` flushes them all, then cold reads
/// pay whatever head position the flush order left behind.
fn run_workload() -> (JobReport, u64, u64) {
    let (report, ns, sum, _) = run_workload_traced(false);
    (report, ns, sum)
}

/// The same workload, optionally observed by the tracer.
fn run_workload_traced(traced: bool) -> (JobReport, u64, u64, Vec<TraceEvent>) {
    let mut k = Kernel::table2();
    if traced {
        k.enable_tracing();
    }
    k.mkdir("/data").unwrap();
    k.mount_disk("/data", DiskDevice::table2_disk("hda"))
        .unwrap();

    let t = k.start_job();
    let files = 12;
    let pages_per_file = 8usize;
    for i in 0..files {
        let path = format!("/data/f{i}");
        let fd = k.open(&path, OpenFlags::CREATE_RDWR).unwrap();
        let body = vec![i as u8; pages_per_file * PAGE_SIZE as usize];
        k.write(fd, &body).unwrap();
        k.close(fd).unwrap();
    }
    // Dirty one extra page in every other file, out of creation order, so
    // the flush below has interleaved dirty sets to choose from.
    for i in (0..files).rev().step_by(2) {
        let path = format!("/data/f{i}");
        let fd = k.open(&path, OpenFlags::RDWR).unwrap();
        k.lseek(fd, 3 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.write(fd, &[0xAB; 64]).unwrap();
        k.close(fd).unwrap();
    }
    k.drop_caches().unwrap();
    // Cold re-reads: the time these cost depends on the head position the
    // writeback pass ended at, so a nondeterministic flush order shows up
    // here even if the flush itself happened to cost the same.
    let mut checksum = 0u64;
    for i in 0..files {
        let path = format!("/data/f{i}");
        let fd = k.open(&path, OpenFlags::RDONLY).unwrap();
        let data = k.read(fd, pages_per_file * PAGE_SIZE as usize).unwrap();
        checksum = data
            .iter()
            .fold(checksum, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64));
        k.close(fd).unwrap();
    }
    let report = k.finish_job(&t);
    (
        report,
        report.elapsed.as_nanos(),
        checksum,
        k.trace_events(),
    )
}

/// Elapsed virtual time must account exactly: the simulated process is
/// single-threaded and synchronous here, so every nanosecond of the job is
/// either CPU or device wait. Drift between the clock and the rusage
/// counters would mean some path advanced one without the other.
fn assert_rusage_sums(r: &JobReport) {
    assert_eq!(
        r.elapsed,
        r.usage.cpu + r.usage.io_wait,
        "elapsed must equal cpu + io_wait exactly (cpu {}, io_wait {})",
        r.usage.cpu,
        r.usage.io_wait
    );
}

#[test]
fn identical_runs_are_byte_identical() {
    let (r1, ns1, sum1) = run_workload();
    let (r2, ns2, sum2) = run_workload();
    assert_eq!(sum1, sum2, "file contents must replay identically");
    assert_eq!(ns1, ns2, "virtual elapsed time must replay identically");
    assert_eq!(
        r1, r2,
        "full job report (usage counters included) must replay identically"
    );
    assert_rusage_sums(&r1);
}

#[test]
fn tracing_does_not_perturb_the_run() {
    // The tracer is a pure observer: the traced run's virtual results are
    // byte-identical to the untraced run's, and its rusage still sums.
    let (plain, ns_plain, sum_plain, events) = run_workload_traced(false);
    let (traced, ns_traced, sum_traced, traced_events) = run_workload_traced(true);
    assert!(events.is_empty(), "untraced run must record nothing");
    assert!(!traced_events.is_empty(), "traced run must record events");
    assert_eq!(
        sum_plain, sum_traced,
        "contents must not change under trace"
    );
    assert_eq!(ns_plain, ns_traced, "virtual time must not change");
    assert_eq!(plain, traced, "job report must not change under trace");
    assert_rusage_sums(&traced);
}

#[test]
fn identical_traced_runs_export_identical_traces() {
    // Determinism extends to the trace itself: two identical workloads
    // produce byte-identical event buffers and byte-identical exported
    // JSON, so a stored trace is a replayable artifact.
    let (_, _, _, ev1) = run_workload_traced(true);
    let (_, _, _, ev2) = run_workload_traced(true);
    assert_eq!(ev1, ev2, "trace buffers must replay identically");
    assert_eq!(
        chrome_trace_json(&ev1, 0),
        chrome_trace_json(&ev2, 0),
        "exported Chrome trace JSON must replay identically"
    );
}

/// The workload under a fault storm: an offline outage that fails the first
/// read pass, then transient faults the retry machinery must mask plus a
/// degraded window slowing the second pass. Both error and success paths
/// burn virtual time through the same deterministic machinery, so the whole
/// run — including every failure — must replay byte-identically.
fn run_fault_workload(traced: bool) -> (JobReport, u64, u64, Vec<TraceEvent>) {
    let mut k = Kernel::table2();
    if traced {
        k.enable_tracing();
    }
    k.mkdir("/data").unwrap();
    k.mount_disk("/data", DiskDevice::table2_disk("hda"))
        .unwrap();

    let files = 8;
    let pages_per_file = 6usize;
    for i in 0..files {
        let path = format!("/data/f{i}");
        k.install_file(&path, &vec![i as u8; pages_per_file * PAGE_SIZE as usize])
            .unwrap();
    }
    k.drop_caches().unwrap();

    // Installs and the flush above run fault-free; the plan's windows are
    // wide enough that the virtual clock is guaranteed to still be inside
    // the outage when the first read pass starts.
    let plan = FaultPlan::new()
        .offline(
            "hda",
            SimTime::ZERO,
            SimTime::from_nanos(10_000_000_000),
            SimDuration::from_millis(1),
        )
        .transient(
            "hda",
            SimTime::from_nanos(10_000_000_000),
            SimTime::from_nanos(600_000_000_000),
            3,
            SimDuration::from_millis(2),
        )
        .degraded(
            "hda",
            SimTime::from_nanos(10_000_000_000),
            SimTime::from_nanos(600_000_000_000),
            2.5,
        );
    k.apply_fault_plan(&plan);
    assert!(
        k.now() < SimTime::from_nanos(10_000_000_000),
        "setup must finish inside the offline window"
    );

    let t = k.start_job();
    let mut checksum = 0u64;
    // Pass 1: the device is offline; every cold read fails. The errors are
    // part of the replayed result, so fold them into the checksum.
    for i in 0..files {
        let path = format!("/data/f{i}");
        let fd = k.open(&path, OpenFlags::RDONLY).unwrap();
        match k.read(fd, pages_per_file * PAGE_SIZE as usize) {
            Ok(data) => {
                checksum = data
                    .iter()
                    .fold(checksum, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64));
            }
            Err(e) => {
                checksum = e
                    .to_string()
                    .bytes()
                    .fold(checksum, |a, b| a.wrapping_mul(31).wrapping_add(b as u64));
            }
        }
        k.close(fd).unwrap();
    }
    // Wait out the outage, then re-read: transient failures must be masked
    // by the retry policy and the degraded window only slows the pass.
    k.charge_cpu(SimDuration::from_secs(20));
    for i in 0..files {
        let path = format!("/data/f{i}");
        let fd = k.open(&path, OpenFlags::RDONLY).unwrap();
        let data = k
            .read(fd, pages_per_file * PAGE_SIZE as usize)
            .expect("transient faults must be masked by bounded retries");
        checksum = data
            .iter()
            .fold(checksum, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64));
        k.close(fd).unwrap();
    }
    let report = k.finish_job(&t);
    (
        report,
        report.elapsed.as_nanos(),
        checksum,
        k.trace_events(),
    )
}

#[test]
fn fault_storm_replays_byte_identical() {
    let (r1, ns1, sum1, _) = run_fault_workload(false);
    let (r2, ns2, sum2, _) = run_fault_workload(false);
    assert_eq!(sum1, sum2, "faulted contents and errors must replay");
    assert_eq!(ns1, ns2, "faulted virtual time must replay");
    assert_eq!(r1, r2, "faulted job report must replay");
    assert_rusage_sums(&r1);
    assert_eq!(
        r1.usage.io_retries, 3,
        "the transient budget is burned through exactly once"
    );
    assert!(
        !r1.usage.retry_backoff.is_zero(),
        "backoff time was charged"
    );
}

#[test]
fn faulted_run_is_identical_traced_vs_untraced() {
    let (plain, ns_plain, sum_plain, events) = run_fault_workload(false);
    let (traced, ns_traced, sum_traced, traced_events) = run_fault_workload(true);
    assert!(events.is_empty(), "untraced run must record nothing");
    assert_eq!(
        sum_plain, sum_traced,
        "contents must not change under trace"
    );
    assert_eq!(ns_plain, ns_traced, "virtual time must not change");
    assert_eq!(plain, traced, "job report must not change under trace");
    assert_rusage_sums(&traced);
    assert!(
        traced_events.iter().any(|e| e.name == "fault.inject"),
        "injected faults must be visible in the trace"
    );
    assert!(
        traced_events.iter().any(|e| e.name == "io.retry"),
        "retries must be visible in the trace"
    );
}

/// The seed workload followed by a full recalibration loop: fill the table
/// from lmbench probes, read everything cold, recalibrate from what the
/// tracer observed, then read again under the refreshed table. Returns the
/// usual replay signature plus the recalibrated table rows as bit patterns.
fn run_recal_workload(traced: bool) -> (JobReport, u64, u64, Vec<(u64, u64)>) {
    let mut k = Kernel::table2();
    if traced {
        k.enable_tracing();
    }
    k.mkdir("/data").unwrap();
    let m = k
        .mount_disk("/data", DiskDevice::table2_disk("hda"))
        .unwrap();
    let table = sleds_lmbench::fill_table(&mut k, &[("/data", m)]).unwrap();

    let t = k.start_job();
    let files = 6;
    let pages_per_file = 4usize;
    for i in 0..files {
        let path = format!("/data/f{i}");
        k.install_file(&path, &vec![i as u8; pages_per_file * PAGE_SIZE as usize])
            .unwrap();
    }
    k.drop_caches().unwrap();
    let mut checksum = 0u64;
    for i in 0..files {
        let path = format!("/data/f{i}");
        let fd = k.open(&path, OpenFlags::RDONLY).unwrap();
        sleds::total_delivery_time(&mut k, &table, fd, sleds::AttackPlan::Linear).unwrap();
        let data = k.read(fd, pages_per_file * PAGE_SIZE as usize).unwrap();
        checksum = data
            .iter()
            .fold(checksum, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64));
        k.close(fd).unwrap();
    }

    // Recalibrate from the run so far and re-read under the new table.
    let fd = k.open("/data/f0", OpenFlags::RDONLY).unwrap();
    let outcome = sleds::recalibrate(&mut k, &table, fd, &sleds::RecalPolicy::default()).unwrap();
    k.close(fd).unwrap();
    let table = outcome.table;
    k.drop_caches().unwrap();
    for i in 0..files {
        let path = format!("/data/f{i}");
        let fd = k.open(&path, OpenFlags::RDONLY).unwrap();
        sleds::total_delivery_time(&mut k, &table, fd, sleds::AttackPlan::Linear).unwrap();
        let data = k.read(fd, pages_per_file * PAGE_SIZE as usize).unwrap();
        checksum = data
            .iter()
            .fold(checksum, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64));
        k.close(fd).unwrap();
    }
    let report = k.finish_job(&t);
    let rows: Vec<(u64, u64)> = table
        .iter_devices()
        .map(|(_, e)| (e.latency.to_bits(), e.bandwidth.to_bits()))
        .collect();
    (report, report.elapsed.as_nanos(), checksum, rows)
}

/// Three tenants interleaved round-robin on one disk. Each switch parks
/// the outgoing tenant's clock and resumes the target's, so by the second
/// round every tenant submits "while" the disk is still busy with the
/// others' commands — real queue waits, deterministically.
fn run_multitenant_workload(
    traced: bool,
) -> (Rusage, Vec<Rusage>, u64, Vec<TraceEvent>, SaturationReport) {
    let mut k = Kernel::table2();
    if traced {
        k.enable_tracing_with_capacity(1 << 14);
    }
    k.mkdir("/data").unwrap();
    k.mount_disk("/data", DiskDevice::table2_disk("hda"))
        .unwrap();
    let tenants = 3usize;
    let rounds = 4usize;
    let pages = 2usize;
    for t in 0..tenants {
        for r in 0..rounds {
            k.install_file(
                &format!("/data/t{t}_f{r}"),
                &vec![(t * rounds + r) as u8; pages * PAGE_SIZE as usize],
            )
            .unwrap();
        }
    }
    k.drop_caches().unwrap();
    let ids: Vec<TenantId> = (0..tenants)
        .map(|t| k.tenant_register(&format!("tenant-{t}")))
        .collect();
    let mut checksum = 0u64;
    for r in 0..rounds {
        for (t, &id) in ids.iter().enumerate() {
            k.tenant_switch(id).unwrap();
            let fd = k
                .open(&format!("/data/t{t}_f{r}"), OpenFlags::RDONLY)
                .unwrap();
            let data = k.read(fd, pages * PAGE_SIZE as usize).unwrap();
            checksum = data
                .iter()
                .fold(checksum, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64));
            k.close(fd).unwrap();
        }
    }
    k.tenant_switch(TenantId(0)).unwrap();
    let per: Vec<Rusage> = (0..k.tenant_count())
        .map(|i| k.tenant_usage(TenantId(i as u64)).unwrap())
        .collect();
    let report = k.saturation_report();
    (k.usage(), per, checksum, k.trace_events(), report)
}

#[test]
fn multitenant_run_replays_byte_identical() {
    let (u1, per1, sum1, _, rep1) = run_multitenant_workload(false);
    let (u2, per2, sum2, _, rep2) = run_multitenant_workload(false);
    assert_eq!(sum1, sum2, "contents must replay identically");
    assert_eq!(u1, u2, "global usage must replay identically");
    assert_eq!(per1, per2, "per-tenant usage must replay identically");
    assert_eq!(rep1, rep2, "saturation report must replay identically");
    assert!(
        !u1.queue_wait.is_zero(),
        "interleaved tenants must actually have queued"
    );
}

#[test]
fn multitenant_run_is_identical_traced_vs_untraced() {
    let (plain, per_plain, sum_plain, events, rep_plain) = run_multitenant_workload(false);
    let (traced, per_traced, sum_traced, traced_events, rep_traced) =
        run_multitenant_workload(true);
    assert!(events.is_empty(), "untraced run must record nothing");
    assert!(!traced_events.is_empty(), "traced run must record events");
    assert_eq!(sum_plain, sum_traced, "contents must not change");
    assert_eq!(plain, traced, "global usage must not change under trace");
    assert_eq!(per_plain, per_traced, "per-tenant usage must not change");
    assert_eq!(rep_plain, rep_traced, "report must not change under trace");
}

#[test]
fn multitenant_per_tenant_rusage_sums_to_global() {
    let (global, per, _, _, _) = run_multitenant_workload(false);
    let mut total = Rusage::default();
    for u in &per {
        total.accumulate(u);
    }
    assert_eq!(
        total, global,
        "per-tenant usage rows must sum exactly to the global counters"
    );
    // Tenant 0 did the setup; the workers carry all the queue wait.
    let worker_wait: u64 = per[1..].iter().map(|u| u.queue_wait.as_nanos()).sum();
    assert_eq!(worker_wait, global.queue_wait.as_nanos());
}

#[test]
fn queue_wait_and_service_phases_sum_to_the_command_span() {
    let (_, _, _, events, _) = run_multitenant_workload(true);
    // Device events are emitted command-span first, its phase children
    // immediately after; a phase train ends at the next non-device event
    // or the next command span.
    let command_names = ["disk.read", "disk.write"];
    let mut saw_queue_wait = false;
    let mut commands = 0usize;
    let mut i = 0usize;
    while i < events.len() {
        let ev = &events[i];
        if ev.layer != Layer::Device || !command_names.contains(&ev.name) {
            i += 1;
            continue;
        }
        commands += 1;
        let mut nested = 0u64;
        let mut j = i + 1;
        while j < events.len()
            && events[j].layer == Layer::Device
            && !command_names.contains(&events[j].name)
        {
            if events[j].name == "queue_wait" {
                saw_queue_wait = true;
                assert_eq!(
                    events[j].ts, ev.ts,
                    "queue wait starts at the submission instant"
                );
            }
            nested += events[j].dur.as_nanos();
            j += 1;
        }
        assert_eq!(
            nested,
            ev.dur.as_nanos(),
            "phases (queue wait included) must sum exactly to {} span at {}",
            ev.name,
            ev.ts
        );
        i = j;
    }
    assert!(
        commands > 0,
        "the workload must have issued device commands"
    );
    assert!(
        saw_queue_wait,
        "interleaved tenants must produce queue_wait phases"
    );
}

#[test]
fn saturation_attribution_sums_exactly() {
    let (_, per, _, _, report) = run_multitenant_workload(false);
    assert!(!report.devices.is_empty(), "the disk must have rows");
    for t in &report.tenants {
        assert_eq!(
            t.own_service_ns + t.queue_wait_ns,
            t.observed_ns,
            "tenant {}: own service + queue wait must equal observed time",
            t.tenant
        );
        let waited: u64 = t.waited_on.iter().map(|&(_, ns)| ns).sum();
        assert_eq!(
            waited, t.queue_wait_ns,
            "tenant {}: cross-tenant waits must sum to its total queue wait",
            t.tenant
        );
        // The rusage view and the queue view of the same wait agree.
        assert_eq!(
            t.queue_wait_ns,
            per[t.tenant as usize].queue_wait.as_nanos(),
            "tenant {}: queue wait must match its rusage column",
            t.tenant
        );
    }
    for d in &report.devices {
        let share_sum: u64 = d.shares.iter().map(|s| s.load.busy_ns).sum();
        assert_eq!(share_sum, d.busy_ns, "tenant demand must sum to busy time");
        let wait_sum: u64 = d.shares.iter().map(|s| s.load.queue_wait_ns).sum();
        assert_eq!(wait_sum, d.queue_wait_ns, "waits must sum per device too");
    }
}

#[test]
fn tenant_timelines_account_exactly() {
    let mut k = Kernel::table2();
    k.mkdir("/data").unwrap();
    k.mount_disk("/data", DiskDevice::table2_disk("hda"))
        .unwrap();
    for t in 0..2 {
        k.install_file(&format!("/data/f{t}"), &vec![t as u8; PAGE_SIZE as usize])
            .unwrap();
    }
    k.drop_caches().unwrap();
    let a = k.tenant_register("a");
    let b = k.tenant_register("b");
    for (t, &id) in [a, b].iter().enumerate() {
        k.tenant_switch(id).unwrap();
        let fd = k.open(&format!("/data/f{t}"), OpenFlags::RDONLY).unwrap();
        k.read(fd, PAGE_SIZE as usize).unwrap();
        k.close(fd).unwrap();
    }
    k.tenant_switch(TenantId(0)).unwrap();
    for &id in &[a, b] {
        let u = k.tenant_usage(id).unwrap();
        let elapsed = k.tenant_elapsed(id).unwrap();
        assert_eq!(
            elapsed,
            u.cpu + u.io_wait,
            "a tenant's elapsed virtual time is exactly its cpu + io_wait"
        );
    }
}

#[test]
fn recalibration_is_deterministic() {
    // Same trace, same table: two identical traced runs recalibrate to
    // byte-identical rows (bit-for-bit floats, not approximately equal).
    let (r1, ns1, sum1, rows1) = run_recal_workload(true);
    let (r2, ns2, sum2, rows2) = run_recal_workload(true);
    assert_eq!(rows1, rows2, "recalibrated rows must be byte-identical");
    assert_eq!(sum1, sum2);
    assert_eq!(ns1, ns2);
    assert_eq!(r1, r2);
    assert_rusage_sums(&r1);
}

#[test]
fn recalibrated_run_is_identical_traced_vs_untraced() {
    // `FSLEDS_RECAL` must not let observation leak into virtual results:
    // the traced run refreshes table rows and the untraced run keeps its
    // boot-time rows (its snapshot is empty), but the virtual clock,
    // usage counters, and file contents stay byte-identical — the table
    // only changes *estimates*, never the I/O itself.
    let (plain, ns_plain, sum_plain, rows_plain) = run_recal_workload(false);
    let (traced, ns_traced, sum_traced, rows_traced) = run_recal_workload(true);
    assert_eq!(sum_plain, sum_traced, "contents must not change");
    assert_eq!(ns_plain, ns_traced, "virtual time must not change");
    assert_eq!(plain, traced, "job report must not change");
    assert_ne!(
        rows_plain, rows_traced,
        "the traced run must actually have refreshed its rows"
    );
    assert_rusage_sums(&traced);
}

/// Redundant volumes under a fault storm: a mirrored disk + NFS-metro
/// volume whose cheapest member (the metro link) is degraded — every
/// cold run hedges and the disk usually wins — and a (2, 3)-coded volume
/// with an offline member (every read reroutes its fan-out). Hedge decisions, cancellations, failover
/// and the straggler charge all ride the virtual clock, so two identical
/// runs must agree to the byte.
fn run_hedged_workload(traced: bool) -> (JobReport, u64, u64, Vec<TraceEvent>) {
    let mut k = Kernel::table2();
    if traced {
        k.enable_tracing_with_capacity(1 << 14);
    }
    k.mkdir("/vol").unwrap();
    k.mount_volume(
        "/vol",
        VolumeLayout::Mirrored,
        vec![
            Box::new(DiskDevice::table2_disk("vd0")) as Box<dyn BlockDevice>,
            Box::new(NfsDevice::metro_link("net0")),
        ],
    )
    .unwrap();
    k.mkdir("/cod").unwrap();
    k.mount_volume(
        "/cod",
        VolumeLayout::Coded { k: 2 },
        vec![
            Box::new(DiskDevice::table2_disk("cd0")) as Box<dyn BlockDevice>,
            Box::new(DiskDevice::table2_disk("cd1")),
            Box::new(DiskDevice::table2_disk("cd2")),
        ],
    )
    .unwrap();
    let files = 6;
    let pages_per_file = 6usize;
    for i in 0..files {
        k.install_file(
            &format!("/vol/f{i}"),
            &vec![i as u8; pages_per_file * PAGE_SIZE as usize],
        )
        .unwrap();
        k.install_file(
            &format!("/cod/f{i}"),
            &vec![(64 + i) as u8; pages_per_file * PAGE_SIZE as usize],
        )
        .unwrap();
    }
    k.drop_caches().unwrap();
    let plan = FaultPlan::new()
        .degraded("net0", SimTime::ZERO, SimTime::from_nanos(u64::MAX), 8.0)
        .offline(
            "cd0",
            SimTime::ZERO,
            SimTime::from_nanos(u64::MAX),
            SimDuration::from_millis(1),
        );
    k.apply_fault_plan(&plan);

    let t = k.start_job();
    let mut checksum = 0u64;
    for i in 0..files {
        for root in ["/vol", "/cod"] {
            let fd = k.open(&format!("{root}/f{i}"), OpenFlags::RDONLY).unwrap();
            let data = k
                .read(fd, pages_per_file * PAGE_SIZE as usize)
                .expect("redundancy must mask the storm");
            checksum = data
                .iter()
                .fold(checksum, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64));
            k.close(fd).unwrap();
        }
    }
    let report = k.finish_job(&t);
    (
        report,
        report.elapsed.as_nanos(),
        checksum,
        k.trace_events(),
    )
}

#[test]
fn hedged_fault_storm_replays_byte_identical() {
    let (r1, ns1, sum1, _) = run_hedged_workload(false);
    let (r2, ns2, sum2, _) = run_hedged_workload(false);
    assert_eq!(sum1, sum2, "hedged contents must replay identically");
    assert_eq!(ns1, ns2, "hedged virtual time must replay identically");
    assert_eq!(r1, r2, "hedged job report must replay identically");
    assert_rusage_sums(&r1);
    assert!(r1.usage.hedges > 0, "the degraded mirror must have hedged");
    assert_eq!(
        r1.usage.io_retries, 0,
        "redundancy reroutes; nothing should have retried"
    );
}

#[test]
fn hedged_run_is_identical_traced_vs_untraced() {
    let (plain, ns_plain, sum_plain, events) = run_hedged_workload(false);
    let (traced, ns_traced, sum_traced, traced_events) = run_hedged_workload(true);
    assert!(events.is_empty(), "untraced run must record nothing");
    assert_eq!(sum_plain, sum_traced, "contents must not change");
    assert_eq!(ns_plain, ns_traced, "virtual time must not change");
    assert_eq!(plain, traced, "job report must not change under trace");
    assert_rusage_sums(&traced);
    assert!(
        traced_events.iter().any(|e| e.name == "io.hedge"),
        "hedge cancellations must be visible in the trace"
    );
}

// ---------------------------------------------------------------------
// Capture/replay identity: the flight-recorder half of the determinism
// story. Capturing is pure observation (the recorder must not perturb
// the clock), captures of identical runs are byte-identical, and the
// identity replay — same spec, no overrides — reproduces the capture
// byte for byte through the serialized form.

use sleds_replay::{build_kernel, replay, CandidateConfig, CaptureFile, SetupStep, WorkloadSpec};

/// A disk + NFS environment with cold caches, as rebuildable data.
fn capture_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::new("table2");
    spec.setup = vec![
        SetupStep::Mkdir { path: "/d".into() },
        SetupStep::MountDisk {
            path: "/d".into(),
            model: "table2_disk".into(),
            name: "hda".into(),
        },
        SetupStep::InstallSparseFile {
            path: "/d/f".into(),
            size: 24 * PAGE_SIZE,
        },
        SetupStep::DropCaches,
    ];
    spec
}

/// A two-tenant workload with think gaps, cold and warm reads, writes,
/// and metadata ops — enough surface to catch a replay drift anywhere.
fn drive_captured(k: &mut Kernel) {
    let t = k.tenant_register("peer");
    let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
    for p in [0u64, 8, 16, 0] {
        k.pread(fd, p * PAGE_SIZE, PAGE_SIZE as usize).unwrap();
        k.charge_cpu(SimDuration::from_nanos(1_500_000));
    }
    k.tenant_switch(t).unwrap();
    let wfd = k.open("/d/w", OpenFlags::CREATE_RDWR).unwrap();
    k.write(wfd, &[3u8; 2048]).unwrap();
    k.fsync(wfd).unwrap();
    k.close(wfd).unwrap();
    k.tenant_switch(TenantId(0)).unwrap();
    k.stat("/d/w").unwrap();
    k.close(fd).unwrap();
}

fn record_capture() -> CaptureFile {
    let spec = capture_spec();
    let mut k = build_kernel(&spec).unwrap();
    k.start_capture(128);
    drive_captured(&mut k);
    let capture = k.stop_capture().unwrap();
    assert!(capture.complete, "workload must fit the capture budget");
    CaptureFile { spec, capture }
}

#[test]
fn capture_files_of_identical_runs_are_byte_identical() {
    assert_eq!(
        record_capture().to_jsonl(),
        record_capture().to_jsonl(),
        "same spec + same workload ⇒ byte-identical capture file"
    );
}

#[test]
fn capturing_does_not_perturb_the_virtual_clock() {
    // Same workload with and without the recorder armed: the recorder
    // is observation only, so the clock and usage must not move.
    let spec = capture_spec();
    let mut plain = build_kernel(&spec).unwrap();
    drive_captured(&mut plain);

    let mut recorded = build_kernel(&spec).unwrap();
    recorded.start_capture(128);
    drive_captured(&mut recorded);
    let capture = recorded.stop_capture().unwrap();
    assert!(capture.complete);

    assert_eq!(
        plain.now(),
        recorded.now(),
        "recording must not advance the clock"
    );
    assert_eq!(
        plain.usage(),
        recorded.usage(),
        "recording must not charge rusage"
    );
}

#[test]
fn identity_replay_round_trips_through_serialization() {
    // Full loop: capture → serialize → parse → replay identity →
    // serialize again. Every stage must preserve bytes.
    let original = record_capture();
    let text = original.to_jsonl();
    let parsed = CaptureFile::parse(&text).expect("parse");
    let replayed = replay(&parsed, &CandidateConfig::identity()).expect("identity replay");
    assert_eq!(
        replayed.into_file().to_jsonl(),
        text,
        "capture → parse → replay must reproduce the capture byte for byte"
    );
}

/// A mirrored volume whose cheapest member (the metro link) is degraded
/// for the whole run: every cold read hedges, so the capture must record
/// hedge counts and the identity replay must reproduce them (the volume
/// mount, fault plan and hedge policy all travel in the spec).
fn hedged_capture_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::new("table2");
    spec.setup = vec![
        SetupStep::Mkdir {
            path: "/vol".into(),
        },
        SetupStep::MountVolume {
            path: "/vol".into(),
            layout: VolumeLayout::Mirrored,
            members: vec![
                ("table2_disk".into(), "vd0".into()),
                ("nfs_metro".into(), "net0".into()),
            ],
        },
        SetupStep::InstallSparseFile {
            path: "/vol/f".into(),
            size: 16 * PAGE_SIZE,
        },
        SetupStep::DropCaches,
    ];
    spec.fault_plan =
        FaultPlan::new().degraded("net0", SimTime::ZERO, SimTime::from_nanos(u64::MAX), 8.0);
    spec
}

fn drive_hedged_captured(k: &mut Kernel) {
    let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
    for p in [0u64, 4, 8, 12, 0] {
        k.pread(fd, p * PAGE_SIZE, PAGE_SIZE as usize).unwrap();
        k.charge_cpu(SimDuration::from_nanos(900_000));
    }
    k.close(fd).unwrap();
}

#[test]
fn hedged_workload_capture_identity_replay() {
    let spec = hedged_capture_spec();
    let mut k = build_kernel(&spec).unwrap();
    k.start_capture(128);
    drive_hedged_captured(&mut k);
    let capture = k.stop_capture().unwrap();
    assert!(capture.complete, "workload must fit the capture budget");
    let hedges: u64 = capture.ops.iter().map(|op| op.outcome.hedges).sum();
    assert!(hedges > 0, "the degraded pick must have hedged on record");

    let original = CaptureFile { spec, capture };
    let text = original.to_jsonl();
    let parsed = CaptureFile::parse(&text).expect("parse");
    let replayed = replay(&parsed, &CandidateConfig::identity()).expect("identity replay");
    assert_eq!(
        replayed.into_file().to_jsonl(),
        text,
        "hedged capture → parse → replay must reproduce the capture byte for byte"
    );
}
