//! Regression test for deterministic replay (the D006 sweep).
//!
//! `Kernel::drop_caches` walks every inode and writes its dirty pages back;
//! the order of that walk decides which sectors the disk head visits first,
//! and therefore how much virtual time the flush costs. When the inode table
//! was a `HashMap`, each `Kernel` instance hashed with its own random seed,
//! so two identical runs could flush in different orders and finish at
//! different virtual times. The inode table is a `BTreeMap` now; this test
//! pins the guarantee: the same workload on two fresh kernels produces
//! byte-identical reports, elapsed times, and usage counters.

use sleds_devices::DiskDevice;
use sleds_fs::{JobReport, Kernel, OpenFlags, Whence};
use sleds_sim_core::PAGE_SIZE;

/// A workload chosen to be order-sensitive: many files dirty pages scattered
/// across the disk, then one `drop_caches` flushes them all, then cold reads
/// pay whatever head position the flush order left behind.
fn run_workload() -> (JobReport, u64, u64) {
    let mut k = Kernel::table2();
    k.mkdir("/data").unwrap();
    k.mount_disk("/data", DiskDevice::table2_disk("hda"))
        .unwrap();

    let t = k.start_job();
    let files = 12;
    let pages_per_file = 8usize;
    for i in 0..files {
        let path = format!("/data/f{i}");
        let fd = k.open(&path, OpenFlags::CREATE_RDWR).unwrap();
        let body = vec![i as u8; pages_per_file * PAGE_SIZE as usize];
        k.write(fd, &body).unwrap();
        k.close(fd).unwrap();
    }
    // Dirty one extra page in every other file, out of creation order, so
    // the flush below has interleaved dirty sets to choose from.
    for i in (0..files).rev().step_by(2) {
        let path = format!("/data/f{i}");
        let fd = k.open(&path, OpenFlags::RDWR).unwrap();
        k.lseek(fd, 3 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.write(fd, &[0xAB; 64]).unwrap();
        k.close(fd).unwrap();
    }
    k.drop_caches().unwrap();
    // Cold re-reads: the time these cost depends on the head position the
    // writeback pass ended at, so a nondeterministic flush order shows up
    // here even if the flush itself happened to cost the same.
    let mut checksum = 0u64;
    for i in 0..files {
        let path = format!("/data/f{i}");
        let fd = k.open(&path, OpenFlags::RDONLY).unwrap();
        let data = k.read(fd, pages_per_file * PAGE_SIZE as usize).unwrap();
        checksum = data
            .iter()
            .fold(checksum, |a, &b| a.wrapping_mul(31).wrapping_add(b as u64));
        k.close(fd).unwrap();
    }
    let report = k.finish_job(&t);
    (report, report.elapsed.as_nanos(), checksum)
}

#[test]
fn identical_runs_are_byte_identical() {
    let (r1, ns1, sum1) = run_workload();
    let (r2, ns2, sum2) = run_workload();
    assert_eq!(sum1, sum2, "file contents must replay identically");
    assert_eq!(ns1, ns2, "virtual elapsed time must replay identically");
    assert_eq!(
        r1, r2,
        "full job report (usage counters included) must replay identically"
    );
}
