//! Redundant volume behavior at the kernel level: mount validation,
//! fault-driven failover (an offline primary must be invisible to the
//! application), hedged-read accounting, striped placement, coded
//! fan-out, and the `RedundantExtent` view that `FSLEDS_GET` prices.

use sleds_devices::{DiskDevice, FaultPlan};
use sleds_fs::{
    HedgePolicy, JobReport, Kernel, MountId, OpenFlags, PageLocation, VolumeLayout,
    SECTORS_PER_PAGE,
};
use sleds_sim_core::{SimDuration, SimTime, PAGE_SIZE};

fn disks(n: usize) -> Vec<Box<dyn sleds_devices::BlockDevice>> {
    (0..n)
        .map(|i| Box::new(DiskDevice::table2_disk(format!("vd{i}"))) as Box<_>)
        .collect()
}

/// Mounts `/vol` with the given layout and installs one cold file.
fn volume_with_file(k: &mut Kernel, layout: VolumeLayout, n: usize, pages: usize) -> MountId {
    k.mkdir("/vol").unwrap();
    let m = k.mount_volume("/vol", layout, disks(n)).unwrap();
    let body: Vec<u8> = (0..pages * PAGE_SIZE as usize)
        .map(|i| (i / PAGE_SIZE as usize) as u8)
        .collect();
    k.install_file("/vol/f", &body).unwrap();
    k.drop_caches().unwrap();
    m
}

fn assert_conserves(r: &JobReport) {
    assert_eq!(
        r.elapsed,
        r.usage.cpu + r.usage.io_wait,
        "elapsed must equal cpu + io_wait exactly"
    );
}

#[test]
fn mount_volume_validates_member_counts() {
    let mut k = Kernel::table2();
    k.mkdir("/vol").unwrap();
    let err = k
        .mount_volume("/vol", VolumeLayout::Mirrored, disks(1))
        .unwrap_err();
    assert_eq!(err.errno, sleds_sim_core::Errno::Einval);
    let err = k
        .mount_volume("/vol", VolumeLayout::Coded { k: 2 }, disks(2))
        .unwrap_err();
    assert_eq!(err.errno, sleds_sim_core::Errno::Einval);
    let err = k
        .mount_volume("/vol", VolumeLayout::Coded { k: 0 }, disks(3))
        .unwrap_err();
    assert_eq!(err.errno, sleds_sim_core::Errno::Einval);
    // A valid mount still works afterwards.
    let m = k
        .mount_volume("/vol", VolumeLayout::Mirrored, disks(2))
        .unwrap();
    assert_eq!(k.volume_layout(m), Some(VolumeLayout::Mirrored));
    assert_eq!(k.volume_members(m).len(), 2);
}

#[test]
fn mirrored_read_survives_offline_primary_with_zero_app_errors() {
    let pages = 8usize;
    let mut k = Kernel::table2();
    let m = volume_with_file(&mut k, VolumeLayout::Mirrored, 2, pages);
    let members = k.volume_members(m);
    let reads_before: Vec<u64> = members
        .iter()
        .map(|&d| k.device_stats(d).unwrap().reads)
        .collect();

    // Take the primary offline for the whole read phase.
    let plan = FaultPlan::new().offline(
        "vd0",
        SimTime::ZERO,
        SimTime::from_nanos(u64::MAX),
        SimDuration::from_millis(1),
    );
    k.apply_fault_plan(&plan);

    let t = k.start_job();
    let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
    let data = k
        .read(fd, pages * PAGE_SIZE as usize)
        .expect("an offline primary must reroute, not error");
    k.close(fd).unwrap();
    let r = k.finish_job(&t);

    assert_eq!(data.len(), pages * PAGE_SIZE as usize);
    assert_eq!(data[0], 0);
    assert_eq!(data[(pages - 1) * PAGE_SIZE as usize], (pages - 1) as u8);
    // Every cold sector came off the mirror; the offline primary was
    // never issued a command (rerouting, not retrying).
    let vd0 = k.device_stats(members[0]).unwrap();
    let vd1 = k.device_stats(members[1]).unwrap();
    assert_eq!(
        vd0.reads, reads_before[0],
        "offline primary must be skipped"
    );
    assert!(
        vd1.reads > reads_before[1],
        "the mirror must serve the read"
    );
    assert_eq!(r.usage.io_retries, 0, "reroute, not retry");
    assert_conserves(&r);
}

#[test]
fn degraded_primary_triggers_hedge_with_exact_accounting() {
    let pages = 8usize;
    let mut k = Kernel::table2();
    volume_with_file(&mut k, VolumeLayout::Mirrored, 2, pages);

    // A long degraded window on the primary: each cold run hedges to the
    // mirror, which wins on live fault-epoch pricing.
    let plan = FaultPlan::new().degraded("vd0", SimTime::ZERO, SimTime::from_nanos(u64::MAX), 10.0);
    k.apply_fault_plan(&plan);

    let policy = HedgePolicy::default();
    let t = k.start_job();
    let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
    k.read(fd, pages * PAGE_SIZE as usize).unwrap();
    k.close(fd).unwrap();
    let r = k.finish_job(&t);

    assert!(r.usage.hedges >= 1, "a degraded pick must hedge");
    assert_eq!(
        r.usage.hedge_wins, r.usage.hedges,
        "every hedge against a 10x-degraded primary is won by the mirror"
    );
    assert_eq!(
        r.usage.hedge_wait,
        SimDuration::from_nanos(r.usage.hedges * policy.cancel_cost.as_nanos()),
        "hedge overhead is exactly one cancel charge per loser"
    );
    assert_eq!(r.usage.io_retries, 0);
    assert_conserves(&r);
}

#[test]
fn disabled_hedging_never_hedges() {
    let pages = 8usize;
    let mut k = Kernel::table2();
    volume_with_file(&mut k, VolumeLayout::Mirrored, 2, pages);
    k.set_hedge_policy(HedgePolicy::disabled());
    let plan = FaultPlan::new().degraded("vd0", SimTime::ZERO, SimTime::from_nanos(u64::MAX), 10.0);
    k.apply_fault_plan(&plan);

    let t = k.start_job();
    let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
    k.read(fd, pages * PAGE_SIZE as usize).unwrap();
    k.close(fd).unwrap();
    let r = k.finish_job(&t);
    assert_eq!(r.usage.hedges, 0, "max_hedges = 0 must disable hedging");
    assert_eq!(r.usage.hedge_wait, SimDuration::ZERO);
    assert_conserves(&r);
}

#[test]
fn striped_layout_round_robins_across_members() {
    let pages = 8usize;
    let mut k = Kernel::table2();
    let m = volume_with_file(&mut k, VolumeLayout::Striped { stripe_pages: 2 }, 2, pages);
    let members = k.volume_members(m);
    // A cold sequential read shows the placement: two-page chunks
    // alternate members, so each serves exactly half the file.
    let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
    k.read(fd, pages * PAGE_SIZE as usize).unwrap();
    k.close(fd).unwrap();
    let r0 = k.device_stats(members[0]).unwrap().sectors_read;
    let r1 = k.device_stats(members[1]).unwrap().sectors_read;
    assert_eq!(r0, r1, "an even stripe must split the read evenly");
    assert_eq!(r0 + r1, pages as u64 * SECTORS_PER_PAGE);
    assert!(k.device_stats(members[0]).unwrap().reads > 0);
    assert!(k.device_stats(members[1]).unwrap().reads > 0);
}

#[test]
fn coded_read_fans_out_to_the_k_cheapest_members() {
    let pages = 8usize;
    let mut k = Kernel::table2();
    let m = volume_with_file(&mut k, VolumeLayout::Coded { k: 2 }, 3, pages);
    let members = k.volume_members(m);

    let t = k.start_job();
    let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
    k.read(fd, pages * PAGE_SIZE as usize).unwrap();
    k.close(fd).unwrap();
    let r = k.finish_job(&t);

    let reads: Vec<u64> = members
        .iter()
        .map(|&d| k.device_stats(d).unwrap().reads)
        .collect();
    assert!(reads[0] > 0 && reads[1] > 0, "k = 2 fragments fan out");
    assert_eq!(
        reads[2], 0,
        "with all members healthy and equal, the third is never needed"
    );
    // Redundant work is bounded: the fragments sum to the file (give or
    // take one rounding sector per run), not to k copies of it.
    let total: u64 = members
        .iter()
        .map(|&d| k.device_stats(d).unwrap().sectors_read)
        .sum();
    let file_sectors = pages as u64 * SECTORS_PER_PAGE;
    assert!(total >= file_sectors, "all k fragments must arrive");
    assert!(
        total <= file_sectors + 2 * r.usage.device_reads,
        "coded reads must not read whole extra copies (read {total} of {file_sectors})"
    );
    assert_conserves(&r);
}

#[test]
fn coded_read_survives_an_offline_member() {
    let pages = 8usize;
    let mut k = Kernel::table2();
    let m = volume_with_file(&mut k, VolumeLayout::Coded { k: 2 }, 3, pages);
    let members = k.volume_members(m);
    let plan = FaultPlan::new().offline(
        "vd0",
        SimTime::ZERO,
        SimTime::from_nanos(u64::MAX),
        SimDuration::from_millis(1),
    );
    k.apply_fault_plan(&plan);

    let t = k.start_job();
    let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
    k.read(fd, pages * PAGE_SIZE as usize)
        .expect("k of n members remain: the read must complete");
    k.close(fd).unwrap();
    let r = k.finish_job(&t);
    assert_eq!(r.usage.io_retries, 0, "no app-visible errors or retries");
    assert_eq!(k.device_stats(members[0]).unwrap().reads, 0);
    assert!(k.device_stats(members[1]).unwrap().reads > 0);
    assert!(k.device_stats(members[2]).unwrap().reads > 0);
    assert_conserves(&r);
}

#[test]
fn redundant_extents_describe_the_volume_shape() {
    // Mirrored 2-way: one alternative per device extent, no coded_k.
    let mut k = Kernel::table2();
    volume_with_file(&mut k, VolumeLayout::Mirrored, 2, 4);
    let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
    let ext = k.redundant_extents(fd).unwrap();
    assert!(!ext.is_empty());
    for re in &ext {
        assert!(matches!(re.extent.location, PageLocation::Device { .. }));
        assert_eq!(re.alternatives.len(), 1, "2-way mirror has one alternative");
        assert_eq!(re.coded_k, None);
    }
    k.close(fd).unwrap();

    // Coded (2, 3): two alternatives and coded_k = 2.
    let mut k = Kernel::table2();
    volume_with_file(&mut k, VolumeLayout::Coded { k: 2 }, 3, 4);
    let fd = k.open("/vol/f", OpenFlags::RDONLY).unwrap();
    let ext = k.redundant_extents(fd).unwrap();
    assert!(!ext.is_empty());
    for re in &ext {
        assert_eq!(re.alternatives.len(), 2);
        assert_eq!(re.coded_k, Some(2));
    }
    // Warm pages drop their alternatives: a cached extent is priced as
    // memory, redundancy is irrelevant to it.
    k.read(fd, PAGE_SIZE as usize).unwrap();
    let ext = k.redundant_extents(fd).unwrap();
    assert!(matches!(ext[0].extent.location, PageLocation::Memory));
    assert!(ext[0].alternatives.is_empty());
    assert_eq!(ext[0].coded_k, None);
    k.close(fd).unwrap();

    // An unreplicated mount never reports alternatives.
    let mut k = Kernel::table2();
    k.mkdir("/d").unwrap();
    k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
    k.install_file("/d/f", &[7u8; PAGE_SIZE as usize]).unwrap();
    k.drop_caches().unwrap();
    let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
    for re in k.redundant_extents(fd).unwrap() {
        assert!(re.alternatives.is_empty());
        assert_eq!(re.coded_k, None);
    }
    k.close(fd).unwrap();
}
