//! Batched-vs-sequential equivalence properties.
//!
//! For every reachable combination of mount type (disk, CD-ROM, NFS, HSM
//! tape), cache state, and fault window, a batched run over the submission
//! ring must deliver byte-identical results — the same chunk bytes or the
//! same errors, in the same plan order — with rusage identical except for
//! the boundary-crossing accounting, whose CPU difference must equal the
//! crossing charges saved minus the per-op ring cost exactly.
//!
//! Gated behind the `proptests` feature (run with
//! `cargo test -p sleds-fs --features proptests`); case count scales with
//! `SLEDS_CHECK_CASES`.

use sleds::{PickConfig, PickSession, SledsTable};
use sleds_devices::{CdRomDevice, DiskDevice, FaultPlan, NfsDevice, TapeDevice};
use sleds_fs::{Fd, Kernel, OpenFlags, RingOp, RingPayload, SubmissionRing, Whence};
use sleds_lmbench::fill_table;
use sleds_sim_core::{check, DetRng, SimDuration, SimTime, PAGE_SIZE};

/// Everything that varies across a case, drawn up front so the twin
/// kernels can be built identically.
struct Params {
    mount: u64,
    pages: u64,
    tail: u64,
    migrate: bool,
    warms: Vec<(u64, u64)>,
    fault: u64,
    budget: u32,
    chunk: usize,
    ring_entries: usize,
}

impl Params {
    fn draw(rng: &mut DetRng) -> Params {
        let pages = rng.range_u64(1, 40);
        let warms = (0..rng.range_usize(0, 4))
            .map(|_| {
                let start = rng.range_u64(0, pages);
                (start, rng.range_u64(1, pages - start + 1))
            })
            .collect();
        Params {
            mount: rng.range_u64(0, 4),
            pages,
            tail: rng.range_u64(1, PAGE_SIZE + 1),
            migrate: rng.chance(0.5),
            warms,
            fault: rng.range_u64(0, 4),
            budget: rng.range_u64(1, 4) as u32,
            chunk: rng.range_usize(2048, 64 << 10),
            ring_entries: rng.range_usize(1, 33),
        }
    }

    /// Builds one kernel in the drawn configuration. Called twice per
    /// case; everything inside is deterministic in `self`.
    fn build(&self) -> (Kernel, SledsTable, Fd) {
        let mut k = Kernel::table2();
        let (dir, dev_name, m) = match self.mount {
            0 => {
                k.mkdir("/d").unwrap();
                let m = k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
                ("/d", "hda", m)
            }
            1 => {
                k.mkdir("/cd").unwrap();
                let m = k
                    .mount_cdrom("/cd", CdRomDevice::table2_drive("cd0"))
                    .unwrap();
                ("/cd", "cd0", m)
            }
            2 => {
                k.mkdir("/nfs").unwrap();
                let m = k
                    .mount_nfs("/nfs", NfsDevice::table2_mount("srv:/export"))
                    .unwrap();
                ("/nfs", "srv:/export", m)
            }
            _ => {
                k.mkdir("/hsm").unwrap();
                let m = k
                    .mount_hsm(
                        "/hsm",
                        DiskDevice::table2_disk("hda"),
                        Box::new(TapeDevice::dlt("st0")),
                        8,
                    )
                    .unwrap();
                ("/hsm", "hda", m)
            }
        };
        let t = fill_table(&mut k, &[(dir, m)]).unwrap();

        let path = format!("{dir}/f");
        let size = ((self.pages - 1) * PAGE_SIZE + self.tail) as usize;
        k.install_file(&path, &vec![5u8; size]).unwrap();
        if self.mount == 3 && self.migrate {
            k.hsm_migrate(&path, true).unwrap();
        }
        let fd = k.open(&path, OpenFlags::RDONLY).unwrap();
        for &(start, count) in &self.warms {
            k.lseek(fd, (start * PAGE_SIZE) as i64, Whence::Set)
                .unwrap();
            let _ = k.read(fd, (count * PAGE_SIZE) as usize);
        }

        // Wide windows: the whole run happens inside the fault, so both
        // twins see the same device state at every submission.
        let horizon = SimTime::from_nanos(k.now().as_nanos() + 3_600_000_000_000);
        let plan = match self.fault {
            0 => None,
            1 => Some(FaultPlan::new().offline(
                dev_name,
                k.now(),
                horizon,
                SimDuration::from_millis(1),
            )),
            2 => Some(FaultPlan::new().transient(
                dev_name,
                k.now(),
                horizon,
                self.budget,
                SimDuration::from_millis(2),
            )),
            _ => Some(FaultPlan::new().degraded(dev_name, k.now(), horizon, 3.0)),
        };
        if let Some(plan) = &plan {
            k.apply_fault_plan(plan);
        }
        (k, t, fd)
    }
}

/// One chunk's outcome, comparable across the two modes: the bytes, or the
/// full error rendering (errno + message).
type ChunkResult = Result<Vec<u8>, String>;

fn scenario(rng: &mut DetRng) {
    let p = Params::draw(rng);

    // Sequential twin: pick plan drained, then lseek+read per chunk.
    let (mut k, t, fd) = p.build();
    let before = k.usage();
    let mut pick = match PickSession::init(&mut k, &t, fd, PickConfig::bytes(p.chunk)) {
        Ok(pick) => pick,
        Err(e) => {
            // FSLEDS_GET itself failed (e.g. pricing hole); the ring twin
            // must fail the same way, then the case is exhausted.
            let (mut k2, t2, fd2) = p.build();
            let mut ring = SubmissionRing::new(p.ring_entries);
            let e2 =
                PickSession::init_ring(&mut k2, &mut ring, &t2, fd2, PickConfig::bytes(p.chunk))
                    .unwrap_err();
            assert_eq!(e.to_string(), e2.to_string());
            return;
        }
    };
    let mut plan = Vec::new();
    while let Some(chunk) = pick.next_read() {
        plan.push(chunk);
    }
    pick.finish();
    let mut seq_results: Vec<ChunkResult> = Vec::new();
    for &(off, len) in &plan {
        k.lseek(fd, off as i64, Whence::Set).unwrap();
        seq_results.push(k.read(fd, len).map_err(|e| e.to_string()));
    }
    let seq_u = k.usage().since(&before);

    // Ring twin: same session brought up over the ring, chunks batched.
    let (mut k, t, fd) = p.build();
    let ops_before = k.ring_ops_serviced();
    let before = k.usage();
    let mut ring = SubmissionRing::new(p.ring_entries);
    let mut pick = PickSession::init_ring(&mut k, &mut ring, &t, fd, PickConfig::bytes(p.chunk))
        .expect("sequential init succeeded, ring init must too");
    let mut ring_plan = Vec::new();
    let mut ring_results: Vec<ChunkResult> = Vec::new();
    loop {
        let mut queued = 0usize;
        while queued < ring.capacity() {
            let Some((off, len)) = pick.next_read() else {
                break;
            };
            ring_plan.push((off, len));
            ring.push(off, RingOp::Pread { fd, pos: off, len }).unwrap();
            queued += 1;
        }
        if queued == 0 {
            break;
        }
        k.ring_enter(&mut ring).unwrap();
        for c in k.ring_reap(&mut ring) {
            ring_results.push(c.result.map_err(|e| e.to_string()).map(|p| match p {
                RingPayload::Bytes(b) => b,
                other => panic!("pread completed with {other:?}"),
            }));
        }
    }
    pick.finish();
    let ring_u = k.usage().since(&before);
    let ring_ops = k.ring_ops_serviced() - ops_before;

    // Same plan, same bytes, same errors, same order.
    assert_eq!(plan, ring_plan, "identical pick plans");
    assert_eq!(seq_results, ring_results, "byte-identical chunk outcomes");

    // Same data motion, paging and fault handling.
    assert_eq!(seq_u.bytes_read, ring_u.bytes_read);
    assert_eq!(seq_u.major_faults, ring_u.major_faults);
    assert_eq!(seq_u.minor_faults, ring_u.minor_faults);
    assert_eq!(seq_u.device_reads, ring_u.device_reads);
    assert_eq!(seq_u.io_retries, ring_u.io_retries);
    assert_eq!(seq_u.retry_backoff, ring_u.retry_backoff);

    // Fewer crossings (batching can only help), and the CPU difference is
    // exactly the crossing charges saved minus the ring's per-op cost.
    assert!(
        ring_u.syscall_crossings <= seq_u.syscall_crossings,
        "ring {} vs sequential {} crossings",
        ring_u.syscall_crossings,
        seq_u.syscall_crossings
    );
    let cfg = k.config();
    let expected = (seq_u.syscall_crossings - ring_u.syscall_crossings) as f64
        * cfg.syscall_cpu.as_secs_f64()
        - ring_ops as f64 * cfg.ring_op_cpu.as_secs_f64();
    let gap = seq_u.cpu.as_secs_f64() - ring_u.cpu.as_secs_f64();
    assert!(
        (gap - expected).abs() < 1e-9,
        "cpu gap {gap} vs expected {expected} (mount {}, fault {})",
        p.mount,
        p.fault
    );
}

#[test]
fn batched_and_sequential_runs_are_equivalent_everywhere() {
    check::run("ring_vs_sequential", scenario);
}
