//! Asynchronous I/O, the paper's related-work comparator.
//!
//! Section 2: "In theory, posting asynchronous read requests for the entire
//! file, and processing them as they arrive, would allow behavior similar
//! to SLEDs. This would need to be coupled with a system-assigned buffer
//! address scheme such as containers, since allocating enough buffers for
//! files larger than memory would result in significant virtual memory
//! thrashing."
//!
//! [`Kernel::aio_read_file`] models exactly that: every chunk of the file
//! is posted at once; cached chunks complete immediately (so, like SLEDs,
//! the application consumes cached data before it can be evicted), device
//! chunks stream in offset order, and application CPU overlaps the I/O
//! (elapsed = max(cpu, io) rather than their sum). The cost the paper
//! warns about is modeled too: posting the whole file requires buffers for
//! every byte not yet consumed, and when the file exceeds physical memory
//! the overflow pages swap through the mount's device.

use sleds_pagecache::PageKey;
use sleds_sim_core::{Errno, SimDuration, SimError, SimResult, PAGE_SIZE};

use crate::inode::Ino;
use crate::kernel::{Fd, Kernel};

/// Chunks of a completed asynchronous read, as `(offset, bytes)` pairs in
/// completion order.
pub type AioChunks = Vec<(u64, Vec<u8>)>;

/// Accounting for one asynchronous whole-file read.
#[derive(Clone, Copy, Debug, Default)]
pub struct AioReport {
    /// Wall-clock time of the whole operation.
    pub elapsed: SimDuration,
    /// CPU component (copies + application processing).
    pub cpu: SimDuration,
    /// Device component (reads + swap traffic).
    pub io: SimDuration,
    /// Pages read from devices.
    pub major_faults: u64,
    /// Pages served from cache.
    pub minor_faults: u64,
    /// Extra time lost to buffer-overflow swapping (included in `io`).
    pub thrash: SimDuration,
}

impl Kernel {
    /// Reads an entire open file asynchronously, delivering chunks in
    /// completion order (cached first, then device order).
    ///
    /// `cpu_ns_per_byte` is the application's processing cost, overlapped
    /// with the I/O. Returns the chunks as `(offset, bytes)` plus the
    /// accounting; the virtual clock advances by `elapsed`.
    pub fn aio_read_file(
        &mut self,
        fd: Fd,
        chunk_size: usize,
        cpu_ns_per_byte: u64,
    ) -> SimResult<(AioChunks, AioReport)> {
        let chunk_size = chunk_size.max(PAGE_SIZE as usize);
        let (ino, size) = {
            let st = self.fstat(fd)?;
            if st.kind != crate::inode::FileKind::File {
                return Err(SimError::new(Errno::Eisdir, "aio_read_file on directory"));
            }
            (st.ino, st.size)
        };
        if size == 0 {
            return Ok((Vec::new(), AioReport::default()));
        }

        // Partition chunks by residency at submission time.
        let mut cached: Vec<u64> = Vec::new();
        let mut uncached: Vec<u64> = Vec::new();
        let mut off = 0u64;
        while off < size {
            let first_page = off / PAGE_SIZE;
            let last_page = (size.min(off + chunk_size as u64) - 1) / PAGE_SIZE;
            let resident = (first_page..=last_page).all(|p| self.cache_contains(ino, p));
            if resident {
                cached.push(off);
            } else {
                uncached.push(off);
            }
            off += chunk_size as u64;
        }

        let mut report = AioReport::default();
        let mut order: AioChunks = Vec::with_capacity(cached.len() + uncached.len());

        // Completion order: cached chunks first (they finish "instantly"),
        // then device chunks as the hardware delivers them.
        for &off in cached.iter().chain(uncached.iter()) {
            let len = (size - off).min(chunk_size as u64) as usize;
            // The fault/copy costs of this chunk, measured around a normal
            // positioned read so device state stays honest.
            let before_usage = self.usage();
            let t0 = self.now();
            let data = self.pread(fd, off, len)?;
            let spent = self.now() - t0;
            let delta = self.usage().since(&before_usage);
            report.major_faults += delta.major_faults;
            report.minor_faults += delta.minor_faults;
            report.cpu += delta.cpu;
            report.io += delta.io_wait;
            // Application processing, overlapped: counted as CPU.
            report.cpu += SimDuration::from_nanos(cpu_ns_per_byte * data.len() as u64);
            // `pread` advanced the clock serially; rewind-by-accounting is
            // impossible, so track what it added and correct at the end.
            let _ = spent;
            order.push((off, data));
        }

        // Buffer pressure: every byte posted but not yet consumed needs a
        // buffer. The pessimistic bound the paper uses is the whole file;
        // overflow beyond physical RAM swaps through the mount's device
        // (one write out, one read back per overflow page).
        let ram = self.config().ram.as_u64();
        let overflow = size.saturating_sub(ram);
        if overflow > 0 {
            let dev_bw = {
                let st = self.fstat(fd)?;
                st.dev
                    .and_then(|d| self.device_profile(d))
                    .map(|p| p.nominal_bandwidth.as_bytes_per_sec())
                    .unwrap_or(1e6)
            };
            let thrash = SimDuration::from_secs_f64(2.0 * overflow as f64 / dev_bw.max(1.0));
            report.thrash = thrash;
            report.io += thrash;
            self.charge_io_public(thrash);
        }

        // Overlap correction: the serial preads advanced the clock by
        // cpu + io; an asynchronous run takes max(cpu, io) instead. The
        // clock cannot run backwards, so the difference is recorded in the
        // report and callers use `report.elapsed`.
        report.elapsed = report.cpu.max(report.io);
        Ok((order, report))
    }

    fn cache_contains(&self, ino: Ino, page: u64) -> bool {
        self.cache_probe(PageKey::new(ino.0, page))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{OpenFlags, Whence};
    use crate::machine::MachineConfig;
    use sleds_devices::DiskDevice;
    use sleds_sim_core::ByteSize;

    fn kernel(ram_mib: u64) -> Kernel {
        let mut cfg = MachineConfig::table2();
        cfg.ram = ByteSize::mib(ram_mib);
        let mut k = Kernel::new(cfg);
        k.mkdir("/d").unwrap();
        k.mount_disk("/d", DiskDevice::table2_disk("hda")).unwrap();
        k
    }

    #[test]
    fn delivers_every_byte_once_cached_first() {
        let mut k = kernel(8);
        let n = 32 * PAGE_SIZE as usize;
        let data: Vec<u8> = (0..n).map(|i| (i % 251) as u8).collect();
        k.install_file("/d/f", &data).unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        // Warm the middle half.
        k.lseek(fd, 8 * PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 16 * PAGE_SIZE as usize).unwrap();

        let (chunks, rep) = k.aio_read_file(fd, 4 * PAGE_SIZE as usize, 5).unwrap();
        // Coverage: every byte exactly once.
        let mut covered = vec![0u8; n];
        for (off, bytes) in &chunks {
            for (i, &b) in bytes.iter().enumerate() {
                covered[*off as usize + i] += 1;
                assert_eq!(b, data[*off as usize + i]);
            }
        }
        assert!(covered.iter().all(|&c| c == 1));
        // Cached chunks lead the completion order.
        assert_eq!(chunks[0].0, 8 * PAGE_SIZE);
        assert!(rep.minor_faults >= 16);
        assert_eq!(rep.thrash, SimDuration::ZERO);
        assert!(rep.elapsed >= rep.cpu.max(rep.io) - SimDuration::from_nanos(1));
    }

    #[test]
    fn io_and_cpu_overlap() {
        let mut k = kernel(8);
        let n = 64 * PAGE_SIZE as usize;
        k.install_file("/d/f", &vec![1u8; n]).unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        // Heavy per-byte CPU: elapsed should be CPU-bound, not cpu+io.
        let (_, rep) = k.aio_read_file(fd, 64 << 10, 500).unwrap();
        assert!(rep.cpu > rep.io);
        assert_eq!(rep.elapsed, rep.cpu);
        assert!(rep.elapsed < rep.cpu + rep.io);
    }

    #[test]
    fn files_beyond_ram_thrash() {
        let mut k = kernel(4);
        let n = 6 << 20; // 6 MiB file, 4 MiB RAM
        k.install_file("/d/f", &vec![2u8; n]).unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        let (_, rep) = k.aio_read_file(fd, 64 << 10, 5).unwrap();
        assert!(
            rep.thrash > SimDuration::ZERO,
            "2 MiB of overflow must swap"
        );
        // Same file within RAM: no thrash.
        let mut k2 = kernel(16);
        k2.install_file("/d/f", &vec![2u8; n]).unwrap();
        let fd2 = k2.open("/d/f", OpenFlags::RDONLY).unwrap();
        let (_, rep2) = k2.aio_read_file(fd2, 64 << 10, 5).unwrap();
        assert_eq!(rep2.thrash, SimDuration::ZERO);
        assert!(rep.elapsed > rep2.elapsed);
    }

    #[test]
    fn inflight_requests_hit_offline_window() {
        use sleds_devices::FaultPlan;
        let mut k = kernel(8);
        let n = 16 * PAGE_SIZE as usize;
        k.install_file("/d/f", &vec![3u8; n]).unwrap();
        k.drop_caches().unwrap();
        let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
        // The outage opens 5 ms in: the first posted chunk is submitted
        // before it and completes, the chunks still in flight when the
        // clock crosses the boundary fail with the injected EIO.
        let start = k.now() + SimDuration::from_millis(5);
        let end = start + SimDuration::from_secs(10);
        k.apply_fault_plan(&FaultPlan::new().offline(
            "hda",
            start,
            end,
            SimDuration::from_millis(1),
        ));
        let err = k.aio_read_file(fd, 4 * PAGE_SIZE as usize, 5).unwrap_err();
        assert_eq!(err.errno, Errno::Eio);
        assert!(
            err.context.ends_with("injected fault"),
            "unexpected failure: {err}"
        );
        // The descriptor survives the outage: once the window closes, the
        // same whole-file read completes normally.
        k.charge_cpu(SimDuration::from_secs(20));
        let (chunks, rep) = k.aio_read_file(fd, 4 * PAGE_SIZE as usize, 5).unwrap();
        let total: usize = chunks.iter().map(|(_, b)| b.len()).sum();
        assert_eq!(total, n, "recovered read delivers every byte");
        assert!(rep.major_faults > 0, "the retry really went to the device");
    }

    #[test]
    fn empty_file_is_trivial() {
        let mut k = kernel(8);
        k.install_file("/d/e", b"").unwrap();
        let fd = k.open("/d/e", OpenFlags::RDONLY).unwrap();
        let (chunks, rep) = k.aio_read_file(fd, 4096, 5).unwrap();
        assert!(chunks.is_empty());
        assert_eq!(rep.elapsed, SimDuration::ZERO);
    }
}
