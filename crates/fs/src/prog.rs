//! In-kernel pick programs: a small, verified predicate and ordering
//! bytecode evaluated against a file's SLED vector *inside* the kernel.
//!
//! The pick library's sequential protocol pays one boundary crossing per
//! file just to ask "is this file cheap?" — at archive scale the crossings
//! dominate. A [`PickProgram`] moves the question across the boundary once:
//! installed per fd (`FSLEDS_PROG`) or passed to a directory walk
//! (`fsleds_walk`), it is evaluated in-kernel against the same extent walk
//! `FSLEDS_GET` performs, so `find -latency` and `grep -q` prune and
//! reorder whole trees without per-file round-trips.
//!
//! # Verification: the certificate is the admission ticket
//!
//! Running user-supplied bytecode below the syscall boundary is safe only
//! if the kernel can *prove* what it costs before agreeing to run it —
//! the same posture BPF takes. Two verifiers exist here:
//!
//! * [`PickProgram::verify_syntactic`] — the legacy linear pass: one sweep
//!   over the instruction list simulating stack depth as if execution were
//!   straight-line. It predates the jump instructions and is **unsound**
//!   in their presence (it never follows an edge), which is exactly why it
//!   is kept: tests pin the programs it wrongly admits — backward jumps
//!   that spin forever, over-budget paths — and prove the abstract
//!   interpreter rejects them.
//! * [`PickProgram::certify`] — the abstract interpreter that `new` runs.
//!   It walks the bytecode's control-flow graph, tracking an interval of
//!   possible stack depths at every reachable pc, and proves:
//!   **termination** (every jump must land strictly forward, so the CFG is
//!   a DAG and the pc strictly increases at each step), **stack safety**
//!   (no underflow on any path, depth never past [`MAX_PROG_STACK`]),
//!   **arity** (every path reaches the exit with exactly one value),
//!   **liveness** (no unreachable instruction — dead bytecode in a pick
//!   predicate is a bug), and a **worst-case cost bound**: the longest
//!   root-to-exit path weighted by per-instruction nanosecond costs, which
//!   must not exceed [`MAX_PROG_COST_NS`].
//!
//! The proof is stamped into the program as a [`CostCert`]. `fsleds_walk`
//! and `FSLEDS_PROG_EVAL` charge virtual CPU *from the certificate* — the
//! admission-time worst-case bound — rather than metering the path actually
//! taken. That keeps the charge a pure function of the installed program:
//! evaluation cost cannot depend on file contents, so accounting stays
//! deterministic and a hostile program cannot make its own billing cheap.
//!
//! Floating-point parity matters more than expressiveness: the equivalence
//! proofs require the kernel's verdict to match the user-space predicate
//! bit for bit, so the instruction set includes `Div`/`Floor`/`Eq` purely
//! to express `find -latency n`'s whole-unit comparison with the exact
//! operation order `LatencyPredicate::matches` uses. The jumps add
//! short-circuit evaluation (skip the expensive half of an `or` when the
//! cheap half already decided) without giving up any of the proofs above.

use sleds_sim_core::{Errno, SimError, SimResult};

use crate::inode::FileKind;
use crate::kernel::DeviceId;

/// Maximum instructions a program may hold. Small on purpose: a pick
/// predicate is a comparison or two, and the bound keeps in-kernel
/// evaluation O(1) per file.
pub const MAX_PROG_LEN: usize = 64;

/// Maximum operand-stack depth the verifier admits.
pub const MAX_PROG_STACK: usize = 8;

/// Worst-case interpreted nanoseconds a program may cost per evaluation.
/// Budget, not estimate: certification rejects any program whose longest
/// weighted path exceeds it, so one walk entry can never cost more than
/// this much program CPU no matter what bytecode user space ships.
pub const MAX_PROG_COST_NS: u64 = 120;

/// One bytecode instruction. Comparisons push `1.0` for true and `0.0`
/// for false; the program's final value is truthy when nonzero.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProgInst {
    /// Push the file's first-byte latency (seconds): the latency of its
    /// first SLED, `0.0` for an empty file.
    PushFirstLatency,
    /// Push the file's total delivery time (seconds) under the best
    /// attack plan — each storage level pays its latency once and streams
    /// its bytes. Mirrors `sleds_total_delivery_time(SLEDS_BEST)`.
    PushDeliveryTime,
    /// Push the fraction of the file's bytes currently at the memory
    /// level, in `[0.0, 1.0]` (`0.0` for an empty file).
    PushCachedFraction,
    /// Push a constant. NaN constants fail verification.
    PushConst(f64),
    /// Pop `b`, pop `a`, push `a < b`.
    Lt,
    /// Pop `b`, pop `a`, push `a > b`.
    Gt,
    /// Pop `b`, pop `a`, push `a == b` (IEEE equality).
    Eq,
    /// Pop `b`, pop `a`, push `a / b`.
    Div,
    /// Pop `a`, push `a.floor()`.
    Floor,
    /// Pop `b`, pop `a`, push `a ≠ 0 ∧ b ≠ 0`.
    And,
    /// Pop `b`, pop `a`, push `a ≠ 0 ∨ b ≠ 0`.
    Or,
    /// Pop `a`, push `a == 0`.
    Not,
    /// Relative jump: continue at `pc + 1 + offset`. Certification
    /// requires the target to be strictly forward and at most one past
    /// the last instruction (= program exit).
    Jmp(i32),
    /// Pop `a`; jump like [`ProgInst::Jmp`] when `a == 0.0`, else fall
    /// through. The conditional consumes the flag it tests.
    Jz(i32),
}

impl ProgInst {
    /// (pops, pushes) stack effect, for both verifiers.
    fn stack_effect(&self) -> (usize, usize) {
        match self {
            ProgInst::PushFirstLatency
            | ProgInst::PushDeliveryTime
            | ProgInst::PushCachedFraction
            | ProgInst::PushConst(_) => (0, 1),
            ProgInst::Lt
            | ProgInst::Gt
            | ProgInst::Eq
            | ProgInst::Div
            | ProgInst::And
            | ProgInst::Or => (2, 1),
            ProgInst::Floor | ProgInst::Not => (1, 1),
            ProgInst::Jmp(_) => (0, 0),
            ProgInst::Jz(_) => (1, 0),
        }
    }

    /// Interpreted cost of one execution of this instruction, in
    /// worst-case nanoseconds of in-kernel dispatch. The table is part of
    /// the kernel's cost model: certification sums it along the longest
    /// path, and the walk charges that bound per priced entry.
    fn cost_ns(&self) -> u64 {
        match self {
            // Input pushes read a precomputed scalar out of ProgInputs.
            ProgInst::PushFirstLatency
            | ProgInst::PushDeliveryTime
            | ProgInst::PushCachedFraction
            | ProgInst::PushConst(_) => 2,
            // Division and floor are the slow FP ops.
            ProgInst::Div | ProgInst::Floor => 4,
            // Compare/logic are one FP compare plus a select.
            ProgInst::Lt
            | ProgInst::Gt
            | ProgInst::Eq
            | ProgInst::And
            | ProgInst::Or
            | ProgInst::Not => 1,
            ProgInst::Jmp(_) => 1,
            // Jz pays the compare and the branch.
            ProgInst::Jz(_) => 2,
        }
    }
}

/// The proof `certify` stamps into an admitted program: worst-case bounds
/// over *every* path the bytecode can take. `fsleds_walk` charges
/// `worst_ns` of virtual CPU per entry it evaluates the program on, so
/// the certificate is simultaneously the safety proof and the price tag.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CostCert {
    /// Longest root-to-exit path, in instructions executed.
    pub worst_insts: u32,
    /// Longest root-to-exit path, weighted by per-instruction cost.
    /// Always `<=` [`MAX_PROG_COST_NS`].
    pub worst_ns: u64,
    /// Deepest operand stack any path reaches. Always `<=`
    /// [`MAX_PROG_STACK`].
    pub max_stack: u32,
}

/// How a walk orders the entries it returns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProgOrder {
    /// Depth-first name order — the order `find` visits entries.
    #[default]
    FileOrder,
    /// Matched files sorted most-cached first (stable, so ties keep file
    /// order): the paper's "drain the cheap level first" applied across
    /// files instead of within one.
    CachedFirst,
}

/// A verified pick program: the predicate bytecode, its cost certificate,
/// and walk directives.
#[derive(Clone, Debug, PartialEq)]
pub struct PickProgram {
    insts: Vec<ProgInst>,
    cert: CostCert,
    /// Result ordering directive for `fsleds_walk`.
    pub order: ProgOrder,
    /// Stop a walk at its first matching file (`grep -q` semantics).
    pub first_match_exit: bool,
}

impl PickProgram {
    /// Builds a program, admitting it only if [`PickProgram::certify`]
    /// proves termination, stack safety, single-result arity, liveness,
    /// and a worst-case cost within [`MAX_PROG_COST_NS`]. Fails with
    /// `EINVAL` otherwise.
    pub fn new(insts: Vec<ProgInst>) -> SimResult<PickProgram> {
        let cert = Self::certify(&insts)?;
        Ok(PickProgram {
            insts,
            cert,
            order: ProgOrder::FileOrder,
            first_match_exit: false,
        })
    }

    /// Sets the walk-result ordering directive.
    pub fn with_order(mut self, order: ProgOrder) -> PickProgram {
        self.order = order;
        self
    }

    /// Makes walks stop at the first matching file.
    pub fn with_first_match_exit(mut self) -> PickProgram {
        self.first_match_exit = true;
        self
    }

    /// The cost certificate stamped at admission.
    pub fn cert(&self) -> CostCert {
        self.cert
    }

    /// The **legacy** verifier: one linear sweep simulating stack depth
    /// as if execution were straight-line. Sound for the original
    /// jump-free instruction set; unsound once jumps exist — it ignores
    /// control flow entirely, so it admits backward jumps (which never
    /// terminate) and never bounds cost. Kept public so tests can pin the
    /// exact programs it wrongly accepts and the abstract interpreter
    /// rejects. Not used for admission.
    pub fn verify_syntactic(insts: &[ProgInst]) -> SimResult<()> {
        let bad = |msg: String| SimError::new(Errno::Einval, msg);
        if insts.is_empty() {
            return Err(bad("FSLEDS_PROG: empty program".into()));
        }
        if insts.len() > MAX_PROG_LEN {
            return Err(bad(format!(
                "FSLEDS_PROG: program too long ({} > {MAX_PROG_LEN})",
                insts.len()
            )));
        }
        let mut depth = 0usize;
        for (i, inst) in insts.iter().enumerate() {
            if let ProgInst::PushConst(c) = inst {
                if c.is_nan() {
                    return Err(bad(format!("FSLEDS_PROG: NaN constant at {i}")));
                }
            }
            let (pops, pushes) = inst.stack_effect();
            if depth < pops {
                return Err(bad(format!("FSLEDS_PROG: stack underflow at {i}")));
            }
            depth = depth - pops + pushes;
            if depth > MAX_PROG_STACK {
                return Err(bad(format!(
                    "FSLEDS_PROG: stack overflow at {i} (> {MAX_PROG_STACK})"
                )));
            }
        }
        if depth != 1 {
            return Err(bad(format!(
                "FSLEDS_PROG: program leaves {depth} values, want 1"
            )));
        }
        Ok(())
    }

    /// The abstract interpreter: walks the bytecode's CFG tracking an
    /// interval `[min, max]` of possible stack depths at every pc, and
    /// returns the cost certificate on success.
    ///
    /// Because every admitted jump lands strictly forward, pcs in
    /// increasing order are already a topological order of the CFG: one
    /// pass suffices for the depth intervals (all predecessors of a pc
    /// have smaller pcs), and one reverse pass computes the longest
    /// weighted path to the exit. Rejections, in check order per pc:
    /// NaN constants, unreachable instructions, backward or out-of-range
    /// jump targets, stack underflow (on *any* path, i.e. against the
    /// interval minimum), stack overflow (against the maximum), then at
    /// exit: arity (every path must leave exactly one value) and the
    /// cost budget.
    pub fn certify(insts: &[ProgInst]) -> SimResult<CostCert> {
        let bad = |msg: String| SimError::new(Errno::Einval, msg);
        if insts.is_empty() {
            return Err(bad("FSLEDS_PROG: empty program".into()));
        }
        if insts.len() > MAX_PROG_LEN {
            return Err(bad(format!(
                "FSLEDS_PROG: program too long ({} > {MAX_PROG_LEN})",
                insts.len()
            )));
        }
        let len = insts.len();
        // states[pc] = interval of stack depths on entry to pc; states[len]
        // is the exit. None = not reached by any edge.
        let mut states: Vec<Option<(usize, usize)>> = vec![None; len + 1];
        states[0] = Some((0, 0));
        let mut max_stack = 0usize;
        // Forward targets of each pc, for the cost pass.
        let mut succs: Vec<[Option<usize>; 2]> = vec![[None, None]; len];

        for (pc, inst) in insts.iter().enumerate() {
            let Some((min, max)) = states[pc] else {
                return Err(bad(format!("FSLEDS_PROG: unreachable instruction at {pc}")));
            };
            if let ProgInst::PushConst(c) = inst {
                if c.is_nan() {
                    return Err(bad(format!("FSLEDS_PROG: NaN constant at {pc}")));
                }
            }
            let (pops, pushes) = inst.stack_effect();
            if min < pops {
                return Err(bad(format!("FSLEDS_PROG: stack underflow at {pc}")));
            }
            let after = (min - pops + pushes, max - pops + pushes);
            if after.1 > MAX_PROG_STACK {
                return Err(bad(format!(
                    "FSLEDS_PROG: stack overflow at {pc} (> {MAX_PROG_STACK})"
                )));
            }
            max_stack = max_stack.max(after.1);
            let mut edge = |target: usize, slot: usize| {
                states[target] = Some(match states[target] {
                    None => after,
                    Some((lo, hi)) => (lo.min(after.0), hi.max(after.1)),
                });
                succs[pc][slot] = Some(target);
            };
            match inst {
                ProgInst::Jmp(off) => edge(jump_target(pc, *off, len)?, 0),
                ProgInst::Jz(off) => {
                    edge(pc + 1, 0);
                    edge(jump_target(pc, *off, len)?, 1);
                }
                _ => edge(pc + 1, 0),
            }
        }

        match states[len] {
            Some((1, 1)) => {}
            Some((lo, hi)) if lo == hi => {
                return Err(bad(format!(
                    "FSLEDS_PROG: program leaves {lo} values, want 1"
                )));
            }
            Some((lo, hi)) => {
                return Err(bad(format!(
                    "FSLEDS_PROG: exit stack depth depends on the path taken \
                     ({lo}..{hi} values), want exactly 1"
                )));
            }
            // Unreachable exit requires a cycle, which forward-only jumps
            // already exclude; kept for defense in depth.
            None => return Err(bad("FSLEDS_PROG: exit is unreachable".into())),
        }

        // Longest path to exit, in instructions and in weighted cost.
        // Reverse pc order is reverse-topological for a forward-only CFG.
        let mut worst_insts = vec![0u32; len + 1];
        let mut worst_ns = vec![0u64; len + 1];
        for pc in (0..len).rev() {
            let follow = |t: &Option<usize>| t.map(|t| (worst_insts[t], worst_ns[t]));
            let (si, sn) = succs[pc]
                .iter()
                .filter_map(follow)
                .fold((0, 0), |(ai, an), (bi, bn)| (ai.max(bi), an.max(bn)));
            worst_insts[pc] = 1 + si;
            worst_ns[pc] = insts[pc].cost_ns() + sn;
        }
        if worst_ns[0] > MAX_PROG_COST_NS {
            return Err(bad(format!(
                "FSLEDS_PROG: worst-case cost {}ns over budget ({MAX_PROG_COST_NS}ns)",
                worst_ns[0]
            )));
        }
        Ok(CostCert {
            worst_insts: worst_insts[0],
            worst_ns: worst_ns[0],
            // Lossless: max_stack ≤ MAX_PROG_STACK, enforced above.
            max_stack: u32::try_from(max_stack).unwrap_or(u32::MAX),
        })
    }

    /// Instruction count (static size, not the certified path length).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program holds no instructions (never, post-verify).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Evaluates the program over precomputed inputs. Certification
    /// guarantees the stack discipline and that every jump lands strictly
    /// forward, so the pc advances every step and the loop runs at most
    /// `len` iterations; the defensive `0.0` defaults are unreachable.
    pub fn eval(&self, inputs: &ProgInputs) -> f64 {
        let mut stack: Vec<f64> = Vec::with_capacity(MAX_PROG_STACK);
        let mut pc = 0usize;
        while pc < self.insts.len() {
            let inst = &self.insts[pc];
            match inst {
                ProgInst::PushFirstLatency => stack.push(inputs.first_latency),
                ProgInst::PushDeliveryTime => stack.push(inputs.delivery_time),
                ProgInst::PushCachedFraction => stack.push(inputs.cached_fraction),
                ProgInst::PushConst(c) => stack.push(*c),
                ProgInst::Jmp(off) => {
                    pc = (pc as i64 + 1 + *off as i64) as usize;
                    continue;
                }
                ProgInst::Jz(off) => {
                    let a = stack.pop().unwrap_or(0.0);
                    pc = if a == 0.0 {
                        (pc as i64 + 1 + *off as i64) as usize
                    } else {
                        pc + 1
                    };
                    continue;
                }
                ProgInst::Lt
                | ProgInst::Gt
                | ProgInst::Eq
                | ProgInst::Div
                | ProgInst::And
                | ProgInst::Or => {
                    let b = stack.pop().unwrap_or(0.0);
                    let a = stack.pop().unwrap_or(0.0);
                    stack.push(match inst {
                        ProgInst::Lt => bool_to_f64(a < b),
                        ProgInst::Gt => bool_to_f64(a > b),
                        ProgInst::Eq => bool_to_f64(a == b),
                        ProgInst::Div => a / b,
                        ProgInst::And => bool_to_f64(a != 0.0 && b != 0.0),
                        _ => bool_to_f64(a != 0.0 || b != 0.0),
                    });
                }
                ProgInst::Floor | ProgInst::Not => {
                    let a = stack.pop().unwrap_or(0.0);
                    stack.push(match inst {
                        ProgInst::Floor => a.floor(),
                        _ => bool_to_f64(a == 0.0),
                    });
                }
            }
            pc += 1;
        }
        stack.pop().unwrap_or(0.0)
    }

    /// True when the program accepts the inputs (nonzero result).
    pub fn matches(&self, inputs: &ProgInputs) -> bool {
        self.eval(inputs) != 0.0
    }
}

/// Resolves a relative jump at `pc` and enforces the termination rule:
/// the target must land strictly past `pc` (forward-only, so the CFG is a
/// DAG) and at most `len` (one past the last instruction = exit).
fn jump_target(pc: usize, off: i32, len: usize) -> SimResult<usize> {
    let target = pc as i64 + 1 + off as i64;
    if target <= pc as i64 {
        return Err(SimError::new(
            Errno::Einval,
            format!(
                "FSLEDS_PROG: backward jump at {pc} (target {target}); \
                 termination is unprovable, loops are not admitted"
            ),
        ));
    }
    if target > len as i64 {
        return Err(SimError::new(
            Errno::Einval,
            format!("FSLEDS_PROG: jump target {target} out of range at {pc}"),
        ));
    }
    Ok(target as usize)
}

/// Truthiness encoding shared by every comparison and logic instruction.
fn bool_to_f64(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// One latency/bandwidth row pushed across the boundary with a program or
/// a ring op — the kernel has no access to the user-space `SledsTable`, so
/// callers flatten the rows they want priced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgEntry {
    /// Estimated latency to first byte, seconds.
    pub latency: f64,
    /// Estimated streaming bandwidth, bytes/second.
    pub bandwidth: f64,
}

/// The flattened pricing rows for in-kernel SLED construction: the memory
/// row plus one row per device. Zone tables and `trust_device_reports`
/// are deliberately *not* expressible — pushdown covers the flat-table
/// common case and callers needing either stay on the sequential path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProgPricing {
    /// The memory row (`None` reproduces the sequential path's "table not
    /// filled" error).
    pub memory: Option<ProgEntry>,
    /// Per-device rows, in any order.
    pub devices: Vec<(DeviceId, ProgEntry)>,
}

impl ProgPricing {
    /// The row for `dev`, if one was pushed.
    pub fn device(&self, dev: DeviceId) -> Option<ProgEntry> {
        self.devices
            .iter()
            .find(|(d, _)| *d == dev)
            .map(|(_, e)| *e)
    }
}

/// A SLED as the kernel builds it: same fields and coalescing rules as
/// the user-space `Sled`, mirrored here because the dependency points the
/// other way (`sleds` depends on `sleds-fs`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgSled {
    /// Byte offset within the file.
    pub offset: u64,
    /// Length in bytes.
    pub length: u64,
    /// Latency to first byte, seconds.
    pub latency: f64,
    /// Streaming bandwidth, bytes/second.
    pub bandwidth: f64,
}

/// The three scalars a program can read, precomputed from a SLED vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProgInputs {
    /// Latency of the first SLED (`0.0` for an empty file).
    pub first_latency: f64,
    /// `SLEDS_BEST` total delivery time, seconds.
    pub delivery_time: f64,
    /// Fraction of bytes at the memory level, `[0.0, 1.0]`.
    pub cached_fraction: f64,
}

/// Computes program inputs from a SLED vector. `memory` is the pricing
/// row that identifies the memory level (bit-identity, like
/// `Sled::same_level`).
pub fn prog_inputs(sleds: &[ProgSled], memory: ProgEntry) -> ProgInputs {
    let first_latency = sleds.first().map(|s| s.latency).unwrap_or(0.0);
    // Best-plan estimate, operation-for-operation identical to the
    // user-space `estimate_seconds(.., SLEDS_BEST)`: group levels by bit
    // identity in first-appearance order, then one latency + stream per
    // level, summed in that order.
    let mut levels: Vec<(f64, f64, u64)> = Vec::new();
    for s in sleds {
        match levels.iter_mut().find(|(lat, bw, _)| {
            lat.to_bits() == s.latency.to_bits() && bw.to_bits() == s.bandwidth.to_bits()
        }) {
            Some((_, _, bytes)) => *bytes += s.length,
            None => levels.push((s.latency, s.bandwidth, s.length)),
        }
    }
    let delivery_time: f64 = levels
        .into_iter()
        .map(|(lat, bw, bytes)| {
            if bytes == 0 {
                0.0
            } else if bw <= 0.0 {
                f64::INFINITY
            } else {
                lat + bytes as f64 / bw
            }
        })
        .sum();
    let total: u64 = sleds.iter().map(|s| s.length).sum();
    let cached: u64 = sleds
        .iter()
        .filter(|s| {
            s.latency.to_bits() == memory.latency.to_bits()
                && s.bandwidth.to_bits() == memory.bandwidth.to_bits()
        })
        .map(|s| s.length)
        .sum();
    let cached_fraction = if total == 0 {
        0.0
    } else {
        cached as f64 / total as f64
    };
    ProgInputs {
        first_latency,
        delivery_time,
        cached_fraction,
    }
}

/// One entry of a program-driven directory walk (`fsleds_walk`): the stat
/// information plus — for regular files the walk could price — the
/// program's verdict and the estimate it saw.
#[derive(Clone, Debug, PartialEq)]
pub struct WalkEntry {
    /// Absolute path.
    pub path: String,
    /// Entry kind.
    pub kind: FileKind,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// The delivery-time estimate the program evaluated, for files whose
    /// SLEDs could be built.
    pub estimate_secs: Option<f64>,
    /// Program verdict. Directories and errored files never match.
    pub matched: bool,
    /// Why the walk could not price this entry, when it could not.
    pub error: Option<SimError>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(first: f64, total: f64, cached: f64) -> ProgInputs {
        ProgInputs {
            first_latency: first,
            delivery_time: total,
            cached_fraction: cached,
        }
    }

    #[test]
    fn verifier_accepts_simple_comparison() {
        let p = PickProgram::new(vec![
            ProgInst::PushDeliveryTime,
            ProgInst::PushConst(0.5),
            ProgInst::Lt,
        ])
        .unwrap();
        assert!(p.matches(&inputs(0.0, 0.1, 0.0)));
        assert!(!p.matches(&inputs(0.0, 0.9, 0.0)));
    }

    #[test]
    fn verifier_rejects_underflow_overflow_and_arity() {
        assert!(PickProgram::new(vec![ProgInst::Lt]).is_err());
        assert!(PickProgram::new(vec![]).is_err());
        assert!(
            PickProgram::new(vec![ProgInst::PushConst(1.0), ProgInst::PushConst(2.0)]).is_err(),
            "two leftover values"
        );
        let deep = vec![ProgInst::PushConst(1.0); MAX_PROG_STACK + 1];
        assert!(PickProgram::new(deep).is_err(), "stack overflow");
        let long = vec![ProgInst::PushConst(1.0); MAX_PROG_LEN + 1];
        assert!(PickProgram::new(long).is_err(), "too long");
        assert!(PickProgram::new(vec![ProgInst::PushConst(f64::NAN)]).is_err());
    }

    #[test]
    fn whole_unit_equality_matches_predicate_semantics() {
        // (est / unit).floor() == n, the `-latency 5` form.
        let p = PickProgram::new(vec![
            ProgInst::PushDeliveryTime,
            ProgInst::PushConst(1.0),
            ProgInst::Div,
            ProgInst::Floor,
            ProgInst::PushConst(5.0),
            ProgInst::Eq,
        ])
        .unwrap();
        assert!(p.matches(&inputs(0.0, 5.0, 0.0)));
        assert!(p.matches(&inputs(0.0, 5.9, 0.0)));
        assert!(!p.matches(&inputs(0.0, 6.0, 0.0)));
        assert!(!p.matches(&inputs(0.0, f64::INFINITY, 0.0)));
    }

    #[test]
    fn logic_ops_compose() {
        // cached_fraction > 0.5 AND NOT (delivery > 1.0)
        let p = PickProgram::new(vec![
            ProgInst::PushCachedFraction,
            ProgInst::PushConst(0.5),
            ProgInst::Gt,
            ProgInst::PushDeliveryTime,
            ProgInst::PushConst(1.0),
            ProgInst::Gt,
            ProgInst::Not,
            ProgInst::And,
        ])
        .unwrap();
        assert!(p.matches(&inputs(0.0, 0.2, 0.9)));
        assert!(!p.matches(&inputs(0.0, 2.0, 0.9)));
        assert!(!p.matches(&inputs(0.0, 0.2, 0.1)));
    }

    /// Short-circuit `or` via Jz: `cached > 0.5 || delivery < 0.1`,
    /// skipping the delivery comparison when the cached half decides.
    fn short_circuit_or() -> Vec<ProgInst> {
        vec![
            ProgInst::PushCachedFraction, // 0
            ProgInst::PushConst(0.5),     // 1
            ProgInst::Gt,                 // 2
            ProgInst::Jz(2),              // 3: false -> 6, true -> 4
            ProgInst::PushConst(1.0),     // 4
            ProgInst::Jmp(3),             // 5: -> 9 (exit)
            ProgInst::PushDeliveryTime,   // 6
            ProgInst::PushConst(0.1),     // 7
            ProgInst::Lt,                 // 8
        ]
    }

    #[test]
    fn forward_jumps_evaluate_and_certify() {
        let p = PickProgram::new(short_circuit_or()).unwrap();
        assert!(p.matches(&inputs(0.0, 5.0, 0.9)), "left arm decides");
        assert!(p.matches(&inputs(0.0, 0.05, 0.1)), "right arm decides");
        assert!(!p.matches(&inputs(0.0, 5.0, 0.1)), "both false");
        // Worst path: 0,1,2,3 fall through Jz, 6,7,8 = 7 insts;
        // cost 2+2+1+2 + 2+2+1 = 12ns. The taken-jump path is shorter
        // (0..5 = 6 insts, 11ns); the certificate must price the longest.
        let cert = p.cert();
        assert_eq!(cert.worst_insts, 7);
        assert_eq!(cert.worst_ns, 12);
        assert_eq!(cert.max_stack, 2);
    }

    #[test]
    fn straight_line_cert_prices_every_instruction() {
        let p = PickProgram::new(vec![
            ProgInst::PushDeliveryTime,
            ProgInst::PushConst(0.5),
            ProgInst::Lt,
        ])
        .unwrap();
        assert_eq!(
            p.cert(),
            CostCert {
                worst_insts: 3,
                worst_ns: 5,
                max_stack: 2,
            }
        );
    }

    #[test]
    fn backward_jump_accepted_by_legacy_verifier_rejected_by_interpreter() {
        // Push then jump back over the push: spins forever while keeping
        // the *linear* stack walk perfectly balanced — the legacy
        // verifier admits it, which is exactly the hole certification
        // closes.
        let spin = vec![ProgInst::PushConst(1.0), ProgInst::Jmp(-2)];
        assert!(
            PickProgram::verify_syntactic(&spin).is_ok(),
            "legacy verifier must accept the non-terminating program"
        );
        let err = PickProgram::new(spin).unwrap_err();
        assert_eq!(err.errno, Errno::Einval);
        assert!(err.to_string().contains("backward jump"), "got: {err}");
    }

    #[test]
    fn over_budget_program_accepted_by_legacy_verifier_rejected_by_interpreter() {
        // One push, then 31 (push, div) pairs: 63 instructions, stack
        // always balanced, worst path 2 + 31*(2+4) = 188ns > budget. The
        // legacy verifier sees valid straight-line bytecode and admits it.
        let mut insts = vec![ProgInst::PushConst(1.0)];
        for _ in 0..31 {
            insts.push(ProgInst::PushConst(2.0));
            insts.push(ProgInst::Div);
        }
        assert!(PickProgram::verify_syntactic(&insts).is_ok());
        let err = PickProgram::new(insts).unwrap_err();
        assert!(err.to_string().contains("over budget"), "got: {err}");
    }

    #[test]
    fn unreachable_instruction_is_rejected() {
        let dead = vec![
            ProgInst::PushConst(1.0),
            ProgInst::Jmp(1),
            ProgInst::PushConst(2.0), // skipped by every path
        ];
        let err = PickProgram::new(dead).unwrap_err();
        assert!(err.to_string().contains("unreachable"), "got: {err}");
    }

    #[test]
    fn path_dependent_exit_depth_is_rejected() {
        // One path exits with 0 values, the other with 1.
        let prog = vec![
            ProgInst::PushConst(1.0),
            ProgInst::Jz(1), // pops; zero -> exit with 0, else fall
            ProgInst::PushConst(1.0),
        ];
        let err = PickProgram::new(prog).unwrap_err();
        assert!(
            err.to_string().contains("depends on the path"),
            "got: {err}"
        );
    }

    #[test]
    fn jump_targets_must_stay_in_range() {
        let far = vec![ProgInst::Jmp(5), ProgInst::PushConst(1.0)];
        let err = PickProgram::new(far).unwrap_err();
        assert!(err.to_string().contains("out of range"), "got: {err}");
    }

    #[test]
    fn prog_inputs_mirror_best_estimate_and_cached_fraction() {
        let mem = ProgEntry {
            latency: 175e-9,
            bandwidth: 48e6,
        };
        let sleds = vec![
            ProgSled {
                offset: 0,
                length: 1_000_000,
                latency: 0.018,
                bandwidth: 1e6,
            },
            ProgSled {
                offset: 1_000_000,
                length: 1_000_000,
                latency: 175e-9,
                bandwidth: 48e6,
            },
            ProgSled {
                offset: 2_000_000,
                length: 2_000_000,
                latency: 0.018,
                bandwidth: 1e6,
            },
        ];
        let inp = prog_inputs(&sleds, mem);
        let expect = (0.018 + 3.0) + (175e-9 + 1.0 / 48.0);
        assert!((inp.delivery_time - expect).abs() < 1e-9);
        assert_eq!(inp.first_latency, 0.018);
        assert!((inp.cached_fraction - 0.25).abs() < 1e-12);
        assert_eq!(prog_inputs(&[], mem), ProgInputs::default());
    }

    #[test]
    fn infinite_levels_propagate() {
        let mem = ProgEntry {
            latency: 175e-9,
            bandwidth: 48e6,
        };
        let sleds = vec![ProgSled {
            offset: 0,
            length: 10,
            latency: f64::INFINITY,
            bandwidth: 0.0,
        }];
        assert!(prog_inputs(&sleds, mem).delivery_time.is_infinite());
    }
}
