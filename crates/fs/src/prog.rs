//! In-kernel pick programs: a small, verified, loop-free predicate and
//! ordering bytecode evaluated against a file's SLED vector *inside* the
//! kernel.
//!
//! The pick library's sequential protocol pays one boundary crossing per
//! file just to ask "is this file cheap?" — at archive scale the crossings
//! dominate. A [`PickProgram`] moves the question across the boundary once:
//! installed per fd (`FSLEDS_PROG`) or passed to a directory walk
//! (`fsleds_walk`), it is evaluated in-kernel against the same extent walk
//! `FSLEDS_GET` performs, so `find -latency` and `grep -q` prune and
//! reorder whole trees without per-file round-trips.
//!
//! The bytecode is deliberately tiny and total:
//!
//! * **loop-free by construction** — a straight-line instruction list, no
//!   jumps, bounded by [`MAX_PROG_LEN`];
//! * **verified at install** — [`PickProgram::new`] simulates the stack and
//!   rejects underflow, overflow past [`MAX_PROG_STACK`], NaN constants,
//!   and programs that do not leave exactly one result;
//! * **pure** — inputs are three precomputed floats ([`ProgInputs`]), so
//!   evaluation cannot touch kernel state and costs O(len).
//!
//! Floating-point parity matters more than expressiveness here: the
//! equivalence proofs require the kernel's verdict to match the user-space
//! predicate bit for bit, so the instruction set includes `Div`/`Floor`/`Eq`
//! purely to express `find -latency n`'s whole-unit comparison with the
//! exact operation order `LatencyPredicate::matches` uses.

use sleds_sim_core::{Errno, SimError, SimResult};

use crate::inode::FileKind;
use crate::kernel::DeviceId;

/// Maximum instructions a program may hold. Small on purpose: a pick
/// predicate is a comparison or two, and the bound keeps in-kernel
/// evaluation O(1) per file.
pub const MAX_PROG_LEN: usize = 32;

/// Maximum operand-stack depth the verifier admits.
pub const MAX_PROG_STACK: usize = 8;

/// One bytecode instruction. Comparisons push `1.0` for true and `0.0`
/// for false; the program's final value is truthy when nonzero.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ProgInst {
    /// Push the file's first-byte latency (seconds): the latency of its
    /// first SLED, `0.0` for an empty file.
    PushFirstLatency,
    /// Push the file's total delivery time (seconds) under the best
    /// attack plan — each storage level pays its latency once and streams
    /// its bytes. Mirrors `sleds_total_delivery_time(SLEDS_BEST)`.
    PushDeliveryTime,
    /// Push the fraction of the file's bytes currently at the memory
    /// level, in `[0.0, 1.0]` (`0.0` for an empty file).
    PushCachedFraction,
    /// Push a constant. NaN constants fail verification.
    PushConst(f64),
    /// Pop `b`, pop `a`, push `a < b`.
    Lt,
    /// Pop `b`, pop `a`, push `a > b`.
    Gt,
    /// Pop `b`, pop `a`, push `a == b` (IEEE equality).
    Eq,
    /// Pop `b`, pop `a`, push `a / b`.
    Div,
    /// Pop `a`, push `a.floor()`.
    Floor,
    /// Pop `b`, pop `a`, push `a ≠ 0 ∧ b ≠ 0`.
    And,
    /// Pop `b`, pop `a`, push `a ≠ 0 ∨ b ≠ 0`.
    Or,
    /// Pop `a`, push `a == 0`.
    Not,
}

impl ProgInst {
    /// (pops, pushes) stack effect, for the verifier.
    fn stack_effect(&self) -> (usize, usize) {
        match self {
            ProgInst::PushFirstLatency
            | ProgInst::PushDeliveryTime
            | ProgInst::PushCachedFraction
            | ProgInst::PushConst(_) => (0, 1),
            ProgInst::Lt
            | ProgInst::Gt
            | ProgInst::Eq
            | ProgInst::Div
            | ProgInst::And
            | ProgInst::Or => (2, 1),
            ProgInst::Floor | ProgInst::Not => (1, 1),
        }
    }
}

/// How a walk orders the entries it returns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ProgOrder {
    /// Depth-first name order — the order `find` visits entries.
    #[default]
    FileOrder,
    /// Matched files sorted most-cached first (stable, so ties keep file
    /// order): the paper's "drain the cheap level first" applied across
    /// files instead of within one.
    CachedFirst,
}

/// A verified pick program: the predicate bytecode plus walk directives.
#[derive(Clone, Debug, PartialEq)]
pub struct PickProgram {
    insts: Vec<ProgInst>,
    /// Result ordering directive for `fsleds_walk`.
    pub order: ProgOrder,
    /// Stop a walk at its first matching file (`grep -q` semantics).
    pub first_match_exit: bool,
}

impl PickProgram {
    /// Builds and verifies a program. Fails with `EINVAL` when the
    /// bytecode is empty, too long, under- or overflows its stack, leaves
    /// more or less than one result, or embeds a NaN constant.
    pub fn new(insts: Vec<ProgInst>) -> SimResult<PickProgram> {
        Self::verify(&insts)?;
        Ok(PickProgram {
            insts,
            order: ProgOrder::FileOrder,
            first_match_exit: false,
        })
    }

    /// Sets the walk-result ordering directive.
    pub fn with_order(mut self, order: ProgOrder) -> PickProgram {
        self.order = order;
        self
    }

    /// Makes walks stop at the first matching file.
    pub fn with_first_match_exit(mut self) -> PickProgram {
        self.first_match_exit = true;
        self
    }

    /// The verifier: abstract interpretation over stack depth. Programs
    /// are loop-free by construction (no jump instructions exist), so one
    /// linear pass is exact.
    fn verify(insts: &[ProgInst]) -> SimResult<()> {
        let bad = |msg: String| SimError::new(Errno::Einval, msg);
        if insts.is_empty() {
            return Err(bad("FSLEDS_PROG: empty program".into()));
        }
        if insts.len() > MAX_PROG_LEN {
            return Err(bad(format!(
                "FSLEDS_PROG: program too long ({} > {MAX_PROG_LEN})",
                insts.len()
            )));
        }
        let mut depth = 0usize;
        for (i, inst) in insts.iter().enumerate() {
            if let ProgInst::PushConst(c) = inst {
                if c.is_nan() {
                    return Err(bad(format!("FSLEDS_PROG: NaN constant at {i}")));
                }
            }
            let (pops, pushes) = inst.stack_effect();
            if depth < pops {
                return Err(bad(format!("FSLEDS_PROG: stack underflow at {i}")));
            }
            depth = depth - pops + pushes;
            if depth > MAX_PROG_STACK {
                return Err(bad(format!(
                    "FSLEDS_PROG: stack overflow at {i} (> {MAX_PROG_STACK})"
                )));
            }
        }
        if depth != 1 {
            return Err(bad(format!(
                "FSLEDS_PROG: program leaves {depth} values, want 1"
            )));
        }
        Ok(())
    }

    /// Instruction count (for cost accounting).
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program holds no instructions (never, post-verify).
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Evaluates the program over precomputed inputs. Verification
    /// guarantees the stack discipline, so the defensive `0.0` defaults
    /// are unreachable.
    pub fn eval(&self, inputs: &ProgInputs) -> f64 {
        let mut stack: Vec<f64> = Vec::with_capacity(MAX_PROG_STACK);
        for inst in &self.insts {
            match inst {
                ProgInst::PushFirstLatency => stack.push(inputs.first_latency),
                ProgInst::PushDeliveryTime => stack.push(inputs.delivery_time),
                ProgInst::PushCachedFraction => stack.push(inputs.cached_fraction),
                ProgInst::PushConst(c) => stack.push(*c),
                ProgInst::Lt
                | ProgInst::Gt
                | ProgInst::Eq
                | ProgInst::Div
                | ProgInst::And
                | ProgInst::Or => {
                    let b = stack.pop().unwrap_or(0.0);
                    let a = stack.pop().unwrap_or(0.0);
                    stack.push(match inst {
                        ProgInst::Lt => bool_to_f64(a < b),
                        ProgInst::Gt => bool_to_f64(a > b),
                        ProgInst::Eq => bool_to_f64(a == b),
                        ProgInst::Div => a / b,
                        ProgInst::And => bool_to_f64(a != 0.0 && b != 0.0),
                        _ => bool_to_f64(a != 0.0 || b != 0.0),
                    });
                }
                ProgInst::Floor | ProgInst::Not => {
                    let a = stack.pop().unwrap_or(0.0);
                    stack.push(match inst {
                        ProgInst::Floor => a.floor(),
                        _ => bool_to_f64(a == 0.0),
                    });
                }
            }
        }
        stack.pop().unwrap_or(0.0)
    }

    /// True when the program accepts the inputs (nonzero result).
    pub fn matches(&self, inputs: &ProgInputs) -> bool {
        self.eval(inputs) != 0.0
    }
}

/// Truthiness encoding shared by every comparison and logic instruction.
fn bool_to_f64(b: bool) -> f64 {
    if b {
        1.0
    } else {
        0.0
    }
}

/// One latency/bandwidth row pushed across the boundary with a program or
/// a ring op — the kernel has no access to the user-space `SledsTable`, so
/// callers flatten the rows they want priced.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgEntry {
    /// Estimated latency to first byte, seconds.
    pub latency: f64,
    /// Estimated streaming bandwidth, bytes/second.
    pub bandwidth: f64,
}

/// The flattened pricing rows for in-kernel SLED construction: the memory
/// row plus one row per device. Zone tables and `trust_device_reports`
/// are deliberately *not* expressible — pushdown covers the flat-table
/// common case and callers needing either stay on the sequential path.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ProgPricing {
    /// The memory row (`None` reproduces the sequential path's "table not
    /// filled" error).
    pub memory: Option<ProgEntry>,
    /// Per-device rows, in any order.
    pub devices: Vec<(DeviceId, ProgEntry)>,
}

impl ProgPricing {
    /// The row for `dev`, if one was pushed.
    pub fn device(&self, dev: DeviceId) -> Option<ProgEntry> {
        self.devices
            .iter()
            .find(|(d, _)| *d == dev)
            .map(|(_, e)| *e)
    }
}

/// A SLED as the kernel builds it: same fields and coalescing rules as
/// the user-space `Sled`, mirrored here because the dependency points the
/// other way (`sleds` depends on `sleds-fs`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ProgSled {
    /// Byte offset within the file.
    pub offset: u64,
    /// Length in bytes.
    pub length: u64,
    /// Latency to first byte, seconds.
    pub latency: f64,
    /// Streaming bandwidth, bytes/second.
    pub bandwidth: f64,
}

/// The three scalars a program can read, precomputed from a SLED vector.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProgInputs {
    /// Latency of the first SLED (`0.0` for an empty file).
    pub first_latency: f64,
    /// `SLEDS_BEST` total delivery time, seconds.
    pub delivery_time: f64,
    /// Fraction of bytes at the memory level, `[0.0, 1.0]`.
    pub cached_fraction: f64,
}

/// Computes program inputs from a SLED vector. `memory` is the pricing
/// row that identifies the memory level (bit-identity, like
/// `Sled::same_level`).
pub fn prog_inputs(sleds: &[ProgSled], memory: ProgEntry) -> ProgInputs {
    let first_latency = sleds.first().map(|s| s.latency).unwrap_or(0.0);
    // Best-plan estimate, operation-for-operation identical to the
    // user-space `estimate_seconds(.., SLEDS_BEST)`: group levels by bit
    // identity in first-appearance order, then one latency + stream per
    // level, summed in that order.
    let mut levels: Vec<(f64, f64, u64)> = Vec::new();
    for s in sleds {
        match levels.iter_mut().find(|(lat, bw, _)| {
            lat.to_bits() == s.latency.to_bits() && bw.to_bits() == s.bandwidth.to_bits()
        }) {
            Some((_, _, bytes)) => *bytes += s.length,
            None => levels.push((s.latency, s.bandwidth, s.length)),
        }
    }
    let delivery_time: f64 = levels
        .into_iter()
        .map(|(lat, bw, bytes)| {
            if bytes == 0 {
                0.0
            } else if bw <= 0.0 {
                f64::INFINITY
            } else {
                lat + bytes as f64 / bw
            }
        })
        .sum();
    let total: u64 = sleds.iter().map(|s| s.length).sum();
    let cached: u64 = sleds
        .iter()
        .filter(|s| {
            s.latency.to_bits() == memory.latency.to_bits()
                && s.bandwidth.to_bits() == memory.bandwidth.to_bits()
        })
        .map(|s| s.length)
        .sum();
    let cached_fraction = if total == 0 {
        0.0
    } else {
        cached as f64 / total as f64
    };
    ProgInputs {
        first_latency,
        delivery_time,
        cached_fraction,
    }
}

/// One entry of a program-driven directory walk (`fsleds_walk`): the stat
/// information plus — for regular files the walk could price — the
/// program's verdict and the estimate it saw.
#[derive(Clone, Debug, PartialEq)]
pub struct WalkEntry {
    /// Absolute path.
    pub path: String,
    /// Entry kind.
    pub kind: FileKind,
    /// File size in bytes (0 for directories).
    pub size: u64,
    /// The delivery-time estimate the program evaluated, for files whose
    /// SLEDs could be built.
    pub estimate_secs: Option<f64>,
    /// Program verdict. Directories and errored files never match.
    pub matched: bool,
    /// Why the walk could not price this entry, when it could not.
    pub error: Option<SimError>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(first: f64, total: f64, cached: f64) -> ProgInputs {
        ProgInputs {
            first_latency: first,
            delivery_time: total,
            cached_fraction: cached,
        }
    }

    #[test]
    fn verifier_accepts_simple_comparison() {
        let p = PickProgram::new(vec![
            ProgInst::PushDeliveryTime,
            ProgInst::PushConst(0.5),
            ProgInst::Lt,
        ])
        .unwrap();
        assert!(p.matches(&inputs(0.0, 0.1, 0.0)));
        assert!(!p.matches(&inputs(0.0, 0.9, 0.0)));
    }

    #[test]
    fn verifier_rejects_underflow_overflow_and_arity() {
        assert!(PickProgram::new(vec![ProgInst::Lt]).is_err());
        assert!(PickProgram::new(vec![]).is_err());
        assert!(
            PickProgram::new(vec![ProgInst::PushConst(1.0), ProgInst::PushConst(2.0)]).is_err(),
            "two leftover values"
        );
        let deep = vec![ProgInst::PushConst(1.0); MAX_PROG_STACK + 1];
        assert!(PickProgram::new(deep).is_err(), "stack overflow");
        let long = vec![ProgInst::PushConst(1.0); MAX_PROG_LEN + 1];
        assert!(PickProgram::new(long).is_err(), "too long");
        assert!(PickProgram::new(vec![ProgInst::PushConst(f64::NAN)]).is_err());
    }

    #[test]
    fn whole_unit_equality_matches_predicate_semantics() {
        // (est / unit).floor() == n, the `-latency 5` form.
        let p = PickProgram::new(vec![
            ProgInst::PushDeliveryTime,
            ProgInst::PushConst(1.0),
            ProgInst::Div,
            ProgInst::Floor,
            ProgInst::PushConst(5.0),
            ProgInst::Eq,
        ])
        .unwrap();
        assert!(p.matches(&inputs(0.0, 5.0, 0.0)));
        assert!(p.matches(&inputs(0.0, 5.9, 0.0)));
        assert!(!p.matches(&inputs(0.0, 6.0, 0.0)));
        assert!(!p.matches(&inputs(0.0, f64::INFINITY, 0.0)));
    }

    #[test]
    fn logic_ops_compose() {
        // cached_fraction > 0.5 AND NOT (delivery > 1.0)
        let p = PickProgram::new(vec![
            ProgInst::PushCachedFraction,
            ProgInst::PushConst(0.5),
            ProgInst::Gt,
            ProgInst::PushDeliveryTime,
            ProgInst::PushConst(1.0),
            ProgInst::Gt,
            ProgInst::Not,
            ProgInst::And,
        ])
        .unwrap();
        assert!(p.matches(&inputs(0.0, 0.2, 0.9)));
        assert!(!p.matches(&inputs(0.0, 2.0, 0.9)));
        assert!(!p.matches(&inputs(0.0, 0.2, 0.1)));
    }

    #[test]
    fn prog_inputs_mirror_best_estimate_and_cached_fraction() {
        let mem = ProgEntry {
            latency: 175e-9,
            bandwidth: 48e6,
        };
        let sleds = vec![
            ProgSled {
                offset: 0,
                length: 1_000_000,
                latency: 0.018,
                bandwidth: 1e6,
            },
            ProgSled {
                offset: 1_000_000,
                length: 1_000_000,
                latency: 175e-9,
                bandwidth: 48e6,
            },
            ProgSled {
                offset: 2_000_000,
                length: 2_000_000,
                latency: 0.018,
                bandwidth: 1e6,
            },
        ];
        let inp = prog_inputs(&sleds, mem);
        let expect = (0.018 + 3.0) + (175e-9 + 1.0 / 48.0);
        assert!((inp.delivery_time - expect).abs() < 1e-9);
        assert_eq!(inp.first_latency, 0.018);
        assert!((inp.cached_fraction - 0.25).abs() < 1e-12);
        assert_eq!(prog_inputs(&[], mem), ProgInputs::default());
    }

    #[test]
    fn infinite_levels_propagate() {
        let mem = ProgEntry {
            latency: 175e-9,
            bandwidth: 48e6,
        };
        let sleds = vec![ProgSled {
            offset: 0,
            length: 10,
            latency: f64::INFINITY,
            bandwidth: 0.0,
        }];
        assert!(prog_inputs(&sleds, mem).delivery_time.is_infinite());
    }
}
