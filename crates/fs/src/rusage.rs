//! Resource usage accounting, in the spirit of `getrusage(2)` and `time(1)`.
//!
//! The paper measures elapsed time and page faults with `time`; experiments
//! here bracket a workload between [`JobTimer`] snapshots and report the
//! delta as a [`JobReport`].

use sleds_sim_core::{SimDuration, SimTime};

/// Cumulative resource usage of the (single) simulated process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Rusage {
    /// CPU time: syscall overhead, memory copies, fault handling, and
    /// whatever the application charges for its own computation.
    pub cpu: SimDuration,
    /// Time spent waiting for devices.
    pub io_wait: SimDuration,
    /// Page faults that required device I/O (`ru_majflt`).
    pub major_faults: u64,
    /// Page-cache hits on the read path (`ru_minflt` analogue).
    pub minor_faults: u64,
    /// System calls issued (ring operations count here too: each serviced
    /// ring op is one logical syscall, it just skips the boundary).
    pub syscalls: u64,
    /// Kernel boundary crossings: one per ordinary syscall, one per
    /// `ring_enter` batch however many ops it carries. The gap between
    /// `syscalls` and `syscall_crossings` is exactly what batching buys.
    pub syscall_crossings: u64,
    /// Bytes returned by `read`.
    pub bytes_read: u64,
    /// Bytes accepted by `write`.
    pub bytes_written: u64,
    /// Device read commands issued on this process's behalf.
    pub device_reads: u64,
    /// Device write commands issued on this process's behalf (including
    /// writeback of dirty pages evicted to make room for its reads).
    pub device_writes: u64,
    /// Device commands reissued after a transient fault.
    pub io_retries: u64,
    /// Time spent backing off between retry attempts (part of `io_wait`).
    pub retry_backoff: SimDuration,
}

impl Rusage {
    /// Component-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &Rusage) -> Rusage {
        Rusage {
            cpu: self.cpu - earlier.cpu,
            io_wait: self.io_wait - earlier.io_wait,
            major_faults: self.major_faults.saturating_sub(earlier.major_faults),
            minor_faults: self.minor_faults.saturating_sub(earlier.minor_faults),
            syscalls: self.syscalls.saturating_sub(earlier.syscalls),
            syscall_crossings: self
                .syscall_crossings
                .saturating_sub(earlier.syscall_crossings),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            device_reads: self.device_reads.saturating_sub(earlier.device_reads),
            device_writes: self.device_writes.saturating_sub(earlier.device_writes),
            io_retries: self.io_retries.saturating_sub(earlier.io_retries),
            retry_backoff: self.retry_backoff.saturating_sub(earlier.retry_backoff),
        }
    }
}

/// Snapshot taken at the start of a measured job.
#[derive(Clone, Copy, Debug)]
pub struct JobTimer {
    /// Virtual time at the start.
    pub started: SimTime,
    /// Usage at the start.
    pub usage: Rusage,
}

/// Measured result of a job: elapsed virtual time plus usage deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobReport {
    /// Wall-clock (virtual) time elapsed.
    pub elapsed: SimDuration,
    /// Resource usage during the job.
    pub usage: Rusage,
}

impl JobReport {
    /// Elapsed time in seconds — the y-axis of most of the paper's figures.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_componentwise() {
        let a = Rusage {
            cpu: SimDuration::from_secs(1),
            io_wait: SimDuration::from_secs(2),
            major_faults: 10,
            minor_faults: 20,
            syscalls: 30,
            syscall_crossings: 28,
            bytes_read: 40,
            bytes_written: 50,
            device_reads: 6,
            device_writes: 7,
            io_retries: 1,
            retry_backoff: SimDuration::from_millis(5),
        };
        let b = Rusage {
            cpu: SimDuration::from_secs(3),
            io_wait: SimDuration::from_secs(5),
            major_faults: 15,
            minor_faults: 29,
            syscalls: 31,
            syscall_crossings: 30,
            bytes_read: 45,
            bytes_written: 55,
            device_reads: 9,
            device_writes: 8,
            io_retries: 4,
            retry_backoff: SimDuration::from_millis(25),
        };
        let d = b.since(&a);
        assert_eq!(d.cpu, SimDuration::from_secs(2));
        assert_eq!(d.io_wait, SimDuration::from_secs(3));
        assert_eq!(d.major_faults, 5);
        assert_eq!(d.minor_faults, 9);
        assert_eq!(d.syscalls, 1);
        assert_eq!(d.syscall_crossings, 2);
        assert_eq!(d.device_reads, 3);
        assert_eq!(d.device_writes, 1);
        assert_eq!(d.io_retries, 3);
        assert_eq!(d.retry_backoff, SimDuration::from_millis(20));
    }

    #[test]
    fn since_saturates() {
        let big = Rusage {
            major_faults: 5,
            ..Rusage::default()
        };
        let d = Rusage::default().since(&big);
        assert_eq!(d.major_faults, 0);
    }
}
