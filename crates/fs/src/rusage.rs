//! Resource usage accounting, in the spirit of `getrusage(2)` and `time(1)`.
//!
//! The paper measures elapsed time and page faults with `time`; experiments
//! here bracket a workload between [`JobTimer`] snapshots and report the
//! delta as a [`JobReport`].

use sleds_sim_core::{SimDuration, SimTime};

/// Cumulative resource usage of the (single) simulated process.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Rusage {
    /// CPU time: syscall overhead, memory copies, fault handling, and
    /// whatever the application charges for its own computation.
    pub cpu: SimDuration,
    /// Time spent waiting for devices.
    pub io_wait: SimDuration,
    /// Page faults that required device I/O (`ru_majflt`).
    pub major_faults: u64,
    /// Page-cache hits on the read path (`ru_minflt` analogue).
    pub minor_faults: u64,
    /// System calls issued (ring operations count here too: each serviced
    /// ring op is one logical syscall, it just skips the boundary).
    pub syscalls: u64,
    /// Kernel boundary crossings: one per ordinary syscall, one per
    /// `ring_enter` batch however many ops it carries. The gap between
    /// `syscalls` and `syscall_crossings` is exactly what batching buys.
    pub syscall_crossings: u64,
    /// Bytes returned by `read`.
    pub bytes_read: u64,
    /// Bytes accepted by `write`.
    pub bytes_written: u64,
    /// Device read commands issued on this process's behalf.
    pub device_reads: u64,
    /// Device write commands issued on this process's behalf (including
    /// writeback of dirty pages evicted to make room for its reads).
    pub device_writes: u64,
    /// Device commands reissued after a transient fault.
    pub io_retries: u64,
    /// Time spent backing off between retry attempts (part of `io_wait`).
    pub retry_backoff: SimDuration,
    /// Time device commands spent queued behind other commands before
    /// service began (part of `io_wait`). Zero in single-tenant runs.
    pub queue_wait: SimDuration,
    /// Redundant (hedged) read commands issued on this process's behalf
    /// against replica devices of a redundant volume.
    pub hedges: u64,
    /// Hedged reads whose redundant request won — the primary was beaten
    /// and cancelled instead of the hedge.
    pub hedge_wins: u64,
    /// Time spent issuing and revoking hedged requests that lost (part of
    /// `io_wait`): the explicit overhead of redundant work, kept separate
    /// so own-service + queue-wait + hedge overhead sums to observed I/O.
    pub hedge_wait: SimDuration,
}

impl Rusage {
    /// Component-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &Rusage) -> Rusage {
        Rusage {
            cpu: self.cpu - earlier.cpu,
            io_wait: self.io_wait - earlier.io_wait,
            major_faults: self.major_faults.saturating_sub(earlier.major_faults),
            minor_faults: self.minor_faults.saturating_sub(earlier.minor_faults),
            syscalls: self.syscalls.saturating_sub(earlier.syscalls),
            syscall_crossings: self
                .syscall_crossings
                .saturating_sub(earlier.syscall_crossings),
            bytes_read: self.bytes_read.saturating_sub(earlier.bytes_read),
            bytes_written: self.bytes_written.saturating_sub(earlier.bytes_written),
            device_reads: self.device_reads.saturating_sub(earlier.device_reads),
            device_writes: self.device_writes.saturating_sub(earlier.device_writes),
            io_retries: self.io_retries.saturating_sub(earlier.io_retries),
            retry_backoff: self.retry_backoff.saturating_sub(earlier.retry_backoff),
            queue_wait: self.queue_wait.saturating_sub(earlier.queue_wait),
            hedges: self.hedges.saturating_sub(earlier.hedges),
            hedge_wins: self.hedge_wins.saturating_sub(earlier.hedge_wins),
            hedge_wait: self.hedge_wait.saturating_sub(earlier.hedge_wait),
        }
    }

    /// Component-wise accumulation `self += delta` (saturating). Used by
    /// per-tenant accounting: each tenant's usage is the sum of the
    /// global-counter deltas observed while it was active, so per-tenant
    /// rows sum exactly to the global usage.
    pub fn accumulate(&mut self, delta: &Rusage) {
        self.cpu = self.cpu.saturating_add(delta.cpu);
        self.io_wait = self.io_wait.saturating_add(delta.io_wait);
        self.major_faults = self.major_faults.saturating_add(delta.major_faults);
        self.minor_faults = self.minor_faults.saturating_add(delta.minor_faults);
        self.syscalls = self.syscalls.saturating_add(delta.syscalls);
        self.syscall_crossings = self
            .syscall_crossings
            .saturating_add(delta.syscall_crossings);
        self.bytes_read = self.bytes_read.saturating_add(delta.bytes_read);
        self.bytes_written = self.bytes_written.saturating_add(delta.bytes_written);
        self.device_reads = self.device_reads.saturating_add(delta.device_reads);
        self.device_writes = self.device_writes.saturating_add(delta.device_writes);
        self.io_retries = self.io_retries.saturating_add(delta.io_retries);
        self.retry_backoff = self.retry_backoff.saturating_add(delta.retry_backoff);
        self.queue_wait = self.queue_wait.saturating_add(delta.queue_wait);
        self.hedges = self.hedges.saturating_add(delta.hedges);
        self.hedge_wins = self.hedge_wins.saturating_add(delta.hedge_wins);
        self.hedge_wait = self.hedge_wait.saturating_add(delta.hedge_wait);
    }
}

/// Snapshot taken at the start of a measured job.
#[derive(Clone, Copy, Debug)]
pub struct JobTimer {
    /// Virtual time at the start.
    pub started: SimTime,
    /// Usage at the start.
    pub usage: Rusage,
}

/// Measured result of a job: elapsed virtual time plus usage deltas.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobReport {
    /// Wall-clock (virtual) time elapsed.
    pub elapsed: SimDuration,
    /// Resource usage during the job.
    pub usage: Rusage,
}

impl JobReport {
    /// Elapsed time in seconds — the y-axis of most of the paper's figures.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts_componentwise() {
        let a = Rusage {
            cpu: SimDuration::from_secs(1),
            io_wait: SimDuration::from_secs(2),
            major_faults: 10,
            minor_faults: 20,
            syscalls: 30,
            syscall_crossings: 28,
            bytes_read: 40,
            bytes_written: 50,
            device_reads: 6,
            device_writes: 7,
            io_retries: 1,
            retry_backoff: SimDuration::from_millis(5),
            queue_wait: SimDuration::from_millis(1),
            hedges: 2,
            hedge_wins: 1,
            hedge_wait: SimDuration::from_micros(100),
        };
        let b = Rusage {
            cpu: SimDuration::from_secs(3),
            io_wait: SimDuration::from_secs(5),
            major_faults: 15,
            minor_faults: 29,
            syscalls: 31,
            syscall_crossings: 30,
            bytes_read: 45,
            bytes_written: 55,
            device_reads: 9,
            device_writes: 8,
            io_retries: 4,
            retry_backoff: SimDuration::from_millis(25),
            queue_wait: SimDuration::from_millis(3),
            hedges: 5,
            hedge_wins: 2,
            hedge_wait: SimDuration::from_micros(350),
        };
        let d = b.since(&a);
        assert_eq!(d.cpu, SimDuration::from_secs(2));
        assert_eq!(d.io_wait, SimDuration::from_secs(3));
        assert_eq!(d.major_faults, 5);
        assert_eq!(d.minor_faults, 9);
        assert_eq!(d.syscalls, 1);
        assert_eq!(d.syscall_crossings, 2);
        assert_eq!(d.device_reads, 3);
        assert_eq!(d.device_writes, 1);
        assert_eq!(d.io_retries, 3);
        assert_eq!(d.retry_backoff, SimDuration::from_millis(20));
        assert_eq!(d.queue_wait, SimDuration::from_millis(2));
        assert_eq!(d.hedges, 3);
        assert_eq!(d.hedge_wins, 1);
        assert_eq!(d.hedge_wait, SimDuration::from_micros(250));
        let mut acc = a;
        acc.accumulate(&d);
        assert_eq!(acc, b, "since then accumulate round-trips");
    }

    #[test]
    fn since_saturates() {
        let big = Rusage {
            major_faults: 5,
            ..Rusage::default()
        };
        let d = Rusage::default().since(&big);
        assert_eq!(d.major_faults, 0);
    }
}
