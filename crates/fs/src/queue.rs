//! Per-device bounded command queues: queue-wait pricing and saturation
//! telemetry.
//!
//! The kernel owns one [`CmdQueue`] per attached device. Service is FIFO
//! in submission order: the queue remembers when the device is busy until,
//! and a command submitted at `now` waits `busy_until - now` before its
//! service starts. In a single-tenant run the caller's clock has always
//! advanced past the previous command's completion, so the wait is zero
//! and this layer is invisible — queue wait only appears when several
//! tenants' timelines interleave on one device.
//!
//! Besides pricing the wait, the queue is the saturation observatory's
//! sensor: it keeps a bounded drop-oldest history of occupancy segments
//! (who held the device when) used to attribute each wait to the tenants
//! it was spent behind, a bounded ring of depth/throughput samples on the
//! virtual clock, and cumulative per-tenant load. All counters are
//! integers and all containers are bounded (sledlint D009) or keyed by
//! registered tenants, so snapshots replay bit-identically.

use std::collections::{BTreeMap, VecDeque};

use sleds_sim_core::stats::LogHistogram;
use sleds_sim_core::time::NANOS_PER_SEC;
use sleds_sim_core::{SimDuration, SimTime};

/// Occupancy segments and depth samples retained per device queue
/// (drop-oldest beyond this).
pub const CMD_QUEUE_CAPACITY: usize = 64;

/// A device is *saturated* when it was busy for at least this share
/// (parts per million) of its active window and someone actually waited.
pub const SATURATION_UTIL_PPM: u64 = 800_000;

/// A tenant is a *bully* when its demand share of a saturated device is
/// at least this (parts per million).
pub const BULLY_SHARE_PPM: u64 = 250_000;

/// One past service interval on the device, tagged with its owner.
#[derive(Clone, Copy, Debug)]
struct Segment {
    owner: u64,
    start: SimTime,
    end: SimTime,
}

/// One utilization sample, taken at each command submission: queue depth
/// ahead of the command and cumulative busy time / bytes at that instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct QueueSample {
    /// Virtual instant of the submission.
    pub at: SimTime,
    /// Commands scheduled to finish after `at` (the line we joined).
    pub depth: u64,
    /// Cumulative device busy time at `at`, nanoseconds.
    pub busy_ns: u64,
    /// Cumulative bytes moved at `at`.
    pub bytes: u64,
}

/// Cumulative load one tenant has placed on one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TenantLoad {
    /// Commands completed (successful or fault-charged).
    pub commands: u64,
    /// Bytes moved by those commands.
    pub bytes: u64,
    /// Own service time: nanoseconds the device worked for this tenant.
    pub busy_ns: u64,
    /// Nanoseconds this tenant's commands waited in queue before service.
    pub queue_wait_ns: u64,
    /// Observed device latency: queue wait + service, as charged to the
    /// tenant's clock. Tracked independently so reports can *check* that
    /// own-service + queue-wait sums to what was observed.
    pub observed_ns: u64,
}

/// The bounded FIFO command queue and telemetry for one device.
#[derive(Debug)]
pub struct CmdQueue {
    /// Bound on retained segments and samples (D009: the capacity bound).
    capacity: usize,
    /// The device services commands in submission order; it is busy until
    /// this instant.
    busy_until: SimTime,
    /// Recent occupancy segments, oldest first, bounded drop-oldest.
    segments: VecDeque<Segment>,
    /// Recent depth/throughput samples, oldest first, bounded drop-oldest.
    samples: VecDeque<QueueSample>,
    /// First submission seen (the active window opens here).
    first_submit: Option<SimTime>,
    /// Commands completed.
    commands: u64,
    /// Bytes moved.
    bytes: u64,
    /// Total device busy time, nanoseconds.
    busy_ns: u64,
    /// Total queue wait, nanoseconds.
    queue_wait_ns: u64,
    /// Deepest line any command joined.
    depth_high_water: u64,
    /// Hedged commands revoked on this queue before (full) service.
    cancels: u64,
    /// Per-tenant cumulative load.
    per_tenant: BTreeMap<u64, TenantLoad>,
    /// Cross-tenant wait attribution: `(waiter, owner) -> ns` the waiter
    /// spent queued behind the owner's occupancy. Sums exactly to
    /// `queue_wait_ns` by construction.
    waits: BTreeMap<(u64, u64), u64>,
    /// Per-command service time (fixed 64 log buckets: bounded, D009).
    service_hist: LogHistogram,
    /// Per-command queue wait (fixed 64 log buckets: bounded, D009).
    queue_wait_hist: LogHistogram,
}

impl CmdQueue {
    /// A queue retaining at most `capacity` (at least 1) segments/samples.
    pub fn new(capacity: usize) -> CmdQueue {
        CmdQueue {
            capacity: capacity.max(1),
            busy_until: SimTime::ZERO,
            segments: VecDeque::new(),
            samples: VecDeque::new(),
            first_submit: None,
            commands: 0,
            bytes: 0,
            busy_ns: 0,
            queue_wait_ns: 0,
            depth_high_water: 0,
            cancels: 0,
            per_tenant: BTreeMap::new(),
            waits: BTreeMap::new(),
            service_hist: LogHistogram::new(),
            queue_wait_hist: LogHistogram::new(),
        }
    }

    /// The retention bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How long a command submitted at `now` waits before service starts.
    /// Pure query: zero whenever the device is already idle.
    pub fn queue_wait(&self, now: SimTime) -> SimDuration {
        self.busy_until.duration_since(now)
    }

    /// Records one completed command: submitted at `now`, waited `qwait`,
    /// serviced for `service`, moved `bytes`. Updates occupancy, samples,
    /// per-tenant load, and attributes the wait to the tenants whose
    /// retained occupancy segments it overlapped (any portion older than
    /// the retained history goes to the oldest retained owner, so the
    /// attribution still sums exactly to the total wait).
    pub fn note_command(
        &mut self,
        tenant: u64,
        now: SimTime,
        qwait: SimDuration,
        service: SimDuration,
        bytes: u64,
    ) {
        if self.first_submit.is_none() {
            self.first_submit = Some(now);
        }
        // Depth sample at submission: how many retained occupancies were
        // still scheduled to finish after we arrived.
        let depth = self.segments.iter().filter(|s| s.end > now).count() as u64;
        self.depth_high_water = self.depth_high_water.max(depth);
        if self.samples.len() == self.capacity {
            self.samples.pop_front();
        }
        self.samples.push_back(QueueSample {
            at: now,
            depth,
            busy_ns: self.busy_ns,
            bytes: self.bytes,
        });

        // Attribute the wait interval [now, busy_until) across the
        // retained segments it was spent behind.
        if !qwait.is_zero() {
            let mut covered = 0u64;
            for seg in &self.segments {
                let lo = if seg.start > now { seg.start } else { now };
                let hi = if seg.end < self.busy_until {
                    seg.end
                } else {
                    self.busy_until
                };
                let part = hi.duration_since(lo).as_nanos();
                if part > 0 {
                    *self.waits.entry((tenant, seg.owner)).or_insert(0) += part;
                    covered = covered.saturating_add(part);
                }
            }
            let leftover = qwait.as_nanos().saturating_sub(covered);
            if leftover > 0 {
                // History older than the retained window: charge the
                // oldest retained owner (or ourselves if nothing is left).
                let owner = self.segments.front().map_or(tenant, |s| s.owner);
                *self.waits.entry((tenant, owner)).or_insert(0) += leftover;
            }
            self.queue_wait_ns = self.queue_wait_ns.saturating_add(qwait.as_nanos());
        }

        // The new occupancy: service starts when the wait ends.
        let start = now + qwait;
        let end = start + service;
        self.busy_until = end;
        if self.segments.len() == self.capacity {
            self.segments.pop_front();
        }
        self.segments.push_back(Segment {
            owner: tenant,
            start,
            end,
        });

        self.commands += 1;
        self.bytes = self.bytes.saturating_add(bytes);
        self.busy_ns = self.busy_ns.saturating_add(service.as_nanos());
        self.service_hist.record(service.as_nanos());
        self.queue_wait_hist.record(qwait.as_nanos());
        let load = self.per_tenant.entry(tenant).or_default();
        load.commands += 1;
        load.bytes = load.bytes.saturating_add(bytes);
        load.busy_ns = load.busy_ns.saturating_add(service.as_nanos());
        load.queue_wait_ns = load.queue_wait_ns.saturating_add(qwait.as_nanos());
        load.observed_ns = load
            .observed_ns
            .saturating_add(qwait.as_nanos().saturating_add(service.as_nanos()));
    }

    /// Records a hedged command revoked before full service: it holds the
    /// queue *tail* for exactly `cost` (the issue-and-revoke overhead) and
    /// moves no bytes. Modeled as an ordinary zero-wait occupancy segment
    /// at the tail instant, so `busy_until` stays monotone and both the
    /// per-segment wait attribution and the per-tenant conservation law
    /// (`own_service + queue_wait == observed`) hold by construction.
    pub fn note_cancel(&mut self, tenant: u64, now: SimTime, cost: SimDuration) {
        self.cancels += 1;
        let tail = if self.busy_until > now {
            self.busy_until
        } else {
            now
        };
        self.note_command(tenant, tail, SimDuration::ZERO, cost, 0);
    }

    /// Hedged commands revoked on this queue.
    pub fn cancels(&self) -> u64 {
        self.cancels
    }

    /// The instant the device falls idle.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }

    /// Commands completed.
    pub fn commands(&self) -> u64 {
        self.commands
    }

    /// Bytes moved.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Total device busy time, nanoseconds.
    pub fn busy_ns(&self) -> u64 {
        self.busy_ns
    }

    /// Total queue wait, nanoseconds.
    pub fn queue_wait_ns(&self) -> u64 {
        self.queue_wait_ns
    }

    /// Deepest line any command joined.
    pub fn depth_high_water(&self) -> u64 {
        self.depth_high_water
    }

    /// First submission, if any (the active window opens here).
    pub fn first_submit(&self) -> Option<SimTime> {
        self.first_submit
    }

    /// The active window: first submission to last completion, nanoseconds.
    pub fn window_ns(&self) -> u64 {
        match self.first_submit {
            Some(t0) => self.busy_until.duration_since(t0).as_nanos(),
            None => 0,
        }
    }

    /// Device utilization over its active window, parts per million.
    pub fn utilization_ppm(&self) -> u64 {
        let w = self.window_ns();
        if w == 0 {
            return 0;
        }
        ((self.busy_ns as u128 * 1_000_000) / w as u128) as u64
    }

    /// Effective throughput over busy time, bytes per second.
    pub fn throughput_bytes_per_sec(&self) -> u64 {
        if self.busy_ns == 0 {
            return 0;
        }
        ((self.bytes as u128 * NANOS_PER_SEC as u128) / self.busy_ns as u128) as u64
    }

    /// Per-tenant cumulative load rows, ascending by tenant.
    pub fn tenant_loads(&self) -> impl Iterator<Item = (u64, &TenantLoad)> + '_ {
        self.per_tenant.iter().map(|(&t, l)| (t, l))
    }

    /// Cross-tenant wait attribution rows `((waiter, owner), ns)`,
    /// ascending by key.
    pub fn wait_rows(&self) -> impl Iterator<Item = ((u64, u64), u64)> + '_ {
        self.waits.iter().map(|(&k, &v)| (k, v))
    }

    /// Retained depth/throughput samples, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = &QueueSample> + '_ {
        self.samples.iter()
    }

    /// Per-command service-time histogram.
    pub fn service_hist(&self) -> &LogHistogram {
        &self.service_hist
    }

    /// Per-command queue-wait histogram.
    pub fn queue_wait_hist(&self) -> &LogHistogram {
        &self.queue_wait_hist
    }

    /// Clears the cumulative telemetry (used between a warm-up and a
    /// measured run). Occupancy state — `busy_until` and the retained
    /// segments — persists: like a disk arm position, the device's
    /// schedule is physical reality, not a counter.
    pub fn reset_telemetry(&mut self) {
        self.samples.clear();
        self.first_submit = None;
        self.commands = 0;
        self.bytes = 0;
        self.busy_ns = 0;
        self.queue_wait_ns = 0;
        self.depth_high_water = 0;
        self.cancels = 0;
        self.per_tenant.clear();
        self.waits.clear();
        self.service_hist = LogHistogram::new();
        self.queue_wait_hist = LogHistogram::new();
    }
}

// ---------------------------------------------------------------------
// Saturation report
// ---------------------------------------------------------------------

/// A four-point latency summary (count-weighted bucket means from a
/// [`LogHistogram`]): monotone `p50 <= p90 <= p99 <= p999` by
/// construction, integer nanoseconds, so reports replay bit-identically.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencySummary {
    /// Median, nanoseconds.
    pub p50_ns: u64,
    /// 90th percentile, nanoseconds.
    pub p90_ns: u64,
    /// 99th percentile, nanoseconds.
    pub p99_ns: u64,
    /// 99.9th percentile, nanoseconds.
    pub p999_ns: u64,
}

impl LatencySummary {
    /// Summarizes a histogram at the report's four quantiles.
    pub fn of(h: &LogHistogram) -> LatencySummary {
        LatencySummary {
            p50_ns: h.p50(),
            p90_ns: h.p90(),
            p99_ns: h.p99(),
            p999_ns: h.p999(),
        }
    }
}

/// One tenant's share of one device, derived for the report.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantShare {
    /// The tenant.
    pub tenant: u64,
    /// Its cumulative load on this device.
    pub load: TenantLoad,
    /// Its share of the device's busy time, parts per million.
    pub demand_share_ppm: u64,
    /// True when the device is saturated and this share crosses
    /// [`BULLY_SHARE_PPM`].
    pub bully: bool,
}

/// Saturation state of one device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeviceSaturation {
    /// Device index (the kernel's `DeviceId`).
    pub device: usize,
    /// Device name.
    pub name: String,
    /// Device-class code (as in trace events).
    pub class_code: u64,
    /// Active window (first submission to last completion), nanoseconds.
    pub window_ns: u64,
    /// Busy time inside the window, nanoseconds.
    pub busy_ns: u64,
    /// Total queue wait commands paid on this device, nanoseconds.
    pub queue_wait_ns: u64,
    /// `busy / window`, parts per million.
    pub utilization_ppm: u64,
    /// Commands completed.
    pub commands: u64,
    /// Bytes moved.
    pub bytes: u64,
    /// Bytes over busy time, bytes per second.
    pub throughput_bytes_per_sec: u64,
    /// Deepest queue any command joined.
    pub depth_high_water: u64,
    /// Utilization at or above [`SATURATION_UTIL_PPM`] with nonzero wait.
    pub saturated: bool,
    /// Per-command service-time quantiles.
    pub service_latency: LatencySummary,
    /// Per-command queue-wait quantiles.
    pub queue_wait_latency: LatencySummary,
    /// Per-tenant shares, ascending by tenant id.
    pub shares: Vec<TenantShare>,
}

/// One tenant's latency attribution across every device.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TenantAttribution {
    /// The tenant.
    pub tenant: u64,
    /// Its registered name.
    pub name: String,
    /// Nanoseconds devices spent servicing its own commands.
    pub own_service_ns: u64,
    /// Nanoseconds its commands waited in queues.
    pub queue_wait_ns: u64,
    /// Observed device latency (wait + service) charged to its clock.
    /// Equals `own_service_ns + queue_wait_ns` exactly.
    pub observed_ns: u64,
    /// Who the waiting was behind: `(owner tenant, ns)`, descending by
    /// ns then ascending by owner. Sums exactly to `queue_wait_ns`.
    pub waited_on: Vec<(u64, u64)>,
}

/// The `FSLEDS_SATSTAT` payload: who is saturating what, and who pays.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SaturationReport {
    /// Per-device saturation rows, ascending by device index.
    pub devices: Vec<DeviceSaturation>,
    /// Per-tenant attribution rows, ascending by tenant id.
    pub tenants: Vec<TenantAttribution>,
}

impl SaturationReport {
    /// Tenants flagged as bullies on any saturated device, ascending,
    /// deduplicated.
    pub fn bullies(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self
            .devices
            .iter()
            .flat_map(|d| d.shares.iter().filter(|s| s.bully).map(|s| s.tenant))
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(n: u64) -> SimDuration {
        SimDuration::from_nanos(n)
    }

    fn at(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn idle_device_has_no_wait() {
        let mut q = CmdQueue::new(8);
        assert!(q.queue_wait(at(0)).is_zero());
        q.note_command(0, at(0), ns(0), ns(100), 512);
        // The caller's clock has advanced past completion, as in any
        // single-tenant run: still no wait.
        assert!(q.queue_wait(at(100)).is_zero());
        assert_eq!(q.busy_ns(), 100);
        assert_eq!(q.queue_wait_ns(), 0);
        assert_eq!(q.commands(), 1);
    }

    #[test]
    fn wait_is_attributed_to_the_occupying_tenant() {
        let mut q = CmdQueue::new(8);
        // Tenant 1 holds the device for [0, 100).
        q.note_command(1, at(0), ns(0), ns(100), 512);
        // Tenant 2 arrives at 40, waits 60 behind tenant 1.
        let w = q.queue_wait(at(40));
        assert_eq!(w.as_nanos(), 60);
        q.note_command(2, at(40), w, ns(50), 512);
        assert_eq!(q.busy_until(), at(150));
        assert_eq!(q.queue_wait_ns(), 60);
        let waits: Vec<_> = q.wait_rows().collect();
        assert_eq!(waits, vec![((2, 1), 60)]);
        let loads: Vec<_> = q.tenant_loads().map(|(t, l)| (t, *l)).collect();
        assert_eq!(loads[1].0, 2);
        assert_eq!(loads[1].1.queue_wait_ns, 60);
        assert_eq!(loads[1].1.busy_ns, 50);
        assert_eq!(loads[1].1.observed_ns, 110);
    }

    #[test]
    fn wait_spanning_two_owners_splits_exactly() {
        let mut q = CmdQueue::new(8);
        q.note_command(1, at(0), ns(0), ns(100), 0); // [0,100) owner 1
        let w2 = q.queue_wait(at(100));
        assert!(w2.is_zero());
        q.note_command(2, at(100), w2, ns(50), 0); // [100,150) owner 2
                                                   // Tenant 3 arrives at 30: waits 120 = 70 behind 1 + 50 behind 2.
        let w3 = q.queue_wait(at(30));
        assert_eq!(w3.as_nanos(), 120);
        q.note_command(3, at(30), w3, ns(10), 0);
        let waits: Vec<_> = q.wait_rows().collect();
        assert_eq!(waits, vec![((3, 1), 70), ((3, 2), 50)]);
        // Attribution sums exactly to the total wait.
        let total: u64 = q.wait_rows().map(|(_, v)| v).sum();
        assert_eq!(total, q.queue_wait_ns());
    }

    #[test]
    fn dropped_history_still_sums_exactly() {
        let mut q = CmdQueue::new(1); // retain only the newest segment
        q.note_command(1, at(0), ns(0), ns(100), 0);
        q.note_command(2, at(100), ns(0), ns(100), 0); // drops owner 1's segment
        let w = q.queue_wait(at(10));
        assert_eq!(w.as_nanos(), 190);
        q.note_command(3, at(10), w, ns(5), 0);
        // [100,200) is retained (owner 2); the [10,100) remainder is
        // charged to the oldest retained owner — still tenant 2 here.
        let total: u64 = q.wait_rows().map(|(_, v)| v).sum();
        assert_eq!(total, q.queue_wait_ns());
        assert_eq!(total, 190);
    }

    #[test]
    fn depth_and_samples_are_bounded() {
        let mut q = CmdQueue::new(4);
        let mut now = at(0);
        for i in 0..10u64 {
            let w = q.queue_wait(now);
            q.note_command(i % 3, now, w, ns(100), 64);
            now += ns(10); // arrivals outpace service: depth grows
        }
        assert!(q.samples().count() <= 4);
        assert!(q.depth_high_water() >= 1);
        assert_eq!(q.commands(), 10);
    }

    #[test]
    fn utilization_and_throughput_are_integer_exact() {
        let mut q = CmdQueue::new(8);
        q.note_command(0, at(0), ns(0), ns(400), 4_000);
        // Window [0,1000): second command at 600 (idle 200 in between).
        q.note_command(0, at(600), ns(0), ns(400), 4_000);
        assert_eq!(q.window_ns(), 1_000);
        assert_eq!(q.busy_ns(), 800);
        assert_eq!(q.utilization_ppm(), 800_000);
        assert_eq!(q.throughput_bytes_per_sec(), 8_000 * NANOS_PER_SEC / 800);
    }

    #[test]
    fn reset_keeps_occupancy_but_clears_telemetry() {
        let mut q = CmdQueue::new(8);
        q.note_command(0, at(0), ns(0), ns(100), 512);
        q.reset_telemetry();
        assert_eq!(q.commands(), 0);
        assert_eq!(q.busy_ns(), 0);
        assert_eq!(q.busy_until(), at(100), "schedule is physical reality");
        assert!(q.queue_wait(at(50)).as_nanos() == 50);
    }
}
