//! The batched submission ring: many syscalls, one boundary crossing.
//!
//! An io_uring-style pair of bounded queues. The application fills the
//! submission queue with [`RingOp`]s, calls `Kernel::ring_enter` — which
//! charges **one** boundary crossing (`syscall_cpu`) plus a small
//! per-operation dispatch cost (`ring_op_cpu`) — and then drains the
//! completion queue with `Kernel::ring_reap` for free (the queues live in
//! user-mapped memory; reaping crosses nothing).
//!
//! Every serviced operation still counts as one logical syscall in rusage
//! (`syscalls`), and performs *exactly* the same faulting, memcpy and
//! device accounting as its sequential twin — the equivalence suite pins
//! batched and sequential runs byte-identical in output and identical in
//! rusage except for `syscall_crossings` and the crossing CPU they carry.
//!
//! Both queues are bounded by the same `capacity` (sledlint rule D009
//! requires every kernel-path queue to name its bound): submission past a
//! full SQ fails with `EAGAIN`, and `ring_enter` stops servicing when the
//! CQ is full, leaving the remaining submissions queued for the next
//! enter — exactly how a fixed-size shared-memory ring degrades.

use std::collections::VecDeque;

use sleds_sim_core::{Errno, SimError, SimResult, TenantId};

use crate::inode::Stat;
use crate::kernel::{Fd, OpenFlags};
use crate::prog::{ProgPricing, ProgSled};

/// Default ring size used by the apps' batched modes.
pub const DEFAULT_RING_ENTRIES: usize = 64;

/// One submitted operation. Each maps to exactly one sequential syscall
/// (or, for [`RingOp::FsledsGet`]/[`RingOp::PickAdvice`], one compound
/// ioctl) and completes with the matching [`RingPayload`].
#[derive(Clone, Debug)]
pub enum RingOp {
    /// `open(path, flags)` → [`RingPayload::Fd`].
    Open {
        /// Absolute path.
        path: String,
        /// Open flags.
        flags: OpenFlags,
    },
    /// `close(fd)` → [`RingPayload::Unit`].
    Close {
        /// Descriptor to close.
        fd: Fd,
    },
    /// `pread(fd, pos, len)` → [`RingPayload::Bytes`]. Does not move the
    /// file offset, like its sequential twin.
    Pread {
        /// Open descriptor.
        fd: Fd,
        /// Absolute file position.
        pos: u64,
        /// Bytes wanted.
        len: usize,
    },
    /// `stat(path)` → [`RingPayload::Stat`].
    Stat {
        /// Absolute path.
        path: String,
    },
    /// `FSLEDS_GET`: build the file's SLED vector in-kernel from the
    /// pushed pricing rows → [`RingPayload::Sleds`].
    FsledsGet {
        /// Open descriptor.
        fd: Fd,
        /// Flattened latency/bandwidth rows.
        pricing: ProgPricing,
    },
    /// Pick advice: build SLEDs and plan chunk order in-kernel →
    /// [`RingPayload::Plan`]. Byte-oriented only (record adjustment needs
    /// content probes and stays in the library).
    PickAdvice {
        /// Open descriptor.
        fd: Fd,
        /// Flattened latency/bandwidth rows.
        pricing: ProgPricing,
        /// Preferred chunk size in bytes.
        preferred: usize,
        /// Prune unavailable extents instead of deferring them.
        skip_unavailable: bool,
    },
}

/// A completed operation's result value.
#[derive(Clone, Debug, PartialEq)]
pub enum RingPayload {
    /// From [`RingOp::Open`].
    Fd(Fd),
    /// From [`RingOp::Close`].
    Unit,
    /// From [`RingOp::Pread`].
    Bytes(Vec<u8>),
    /// From [`RingOp::Stat`].
    Stat(Stat),
    /// From [`RingOp::FsledsGet`].
    Sleds(Vec<ProgSled>),
    /// From [`RingOp::PickAdvice`]: `(offset, len)` chunks in pick order.
    Plan(Vec<(u64, usize)>),
}

/// One completion queue entry.
#[derive(Clone, Debug)]
pub struct RingCompletion {
    /// The tag the submitter attached to the op.
    pub user_data: u64,
    /// The op's outcome — the same `SimResult` its sequential twin
    /// returns, error text included.
    pub result: SimResult<RingPayload>,
}

/// The bounded submission/completion queue pair.
#[derive(Debug)]
pub struct SubmissionRing {
    /// Bound on each queue's length (D009: the capacity bound).
    capacity: usize,
    /// Tenant every op in this ring is charged to; `ring_enter` runs the
    /// batch on that tenant's timeline.
    tenant: TenantId,
    sq: VecDeque<(u64, RingOp)>,
    cq: VecDeque<RingCompletion>,
}

impl SubmissionRing {
    /// A ring with room for `entries` (at least 1) in each queue, owned by
    /// the main tenant.
    pub fn new(entries: usize) -> SubmissionRing {
        SubmissionRing::with_tenant(entries, TenantId(0))
    }

    /// A ring owned by `tenant`: every serviced op is charged to that
    /// tenant's clock and rusage, whoever calls `ring_enter`.
    pub fn with_tenant(entries: usize, tenant: TenantId) -> SubmissionRing {
        SubmissionRing {
            capacity: entries.max(1),
            tenant,
            sq: VecDeque::new(),
            cq: VecDeque::new(),
        }
    }

    /// The tenant this ring's ops are charged to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The per-queue bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Queued, not-yet-serviced submissions.
    pub fn sq_len(&self) -> usize {
        self.sq.len()
    }

    /// Completions awaiting reap.
    pub fn cq_len(&self) -> usize {
        self.cq.len()
    }

    /// Enqueues an op tagged `user_data`. Fails with `EAGAIN` when the
    /// submission queue is at capacity.
    pub fn push(&mut self, user_data: u64, op: RingOp) -> SimResult<()> {
        if self.sq.len() >= self.capacity {
            return Err(SimError::new(
                Errno::Eagain,
                format!("ring: submission queue full ({} entries)", self.capacity),
            ));
        }
        self.sq.push_back((user_data, op));
        Ok(())
    }

    /// Room left in the completion queue.
    pub(crate) fn cq_has_room(&self) -> bool {
        self.cq.len() < self.capacity
    }

    /// Next submission to service (kernel side).
    pub(crate) fn pop_op(&mut self) -> Option<(u64, RingOp)> {
        self.sq.pop_front()
    }

    /// Posts a completion (kernel side).
    pub(crate) fn complete(&mut self, c: RingCompletion) {
        self.cq.push_back(c);
    }

    /// Drains the completion queue (user side, via `Kernel::ring_reap`).
    pub(crate) fn drain_completions(&mut self) -> Vec<RingCompletion> {
        self.cq.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_respects_capacity() {
        let mut r = SubmissionRing::new(2);
        assert_eq!(r.capacity(), 2);
        r.push(0, RingOp::Close { fd: Fd(3) }).unwrap();
        r.push(1, RingOp::Close { fd: Fd(4) }).unwrap();
        let err = r.push(2, RingOp::Close { fd: Fd(5) }).unwrap_err();
        assert_eq!(err.errno, Errno::Eagain);
        assert_eq!(r.sq_len(), 2);
    }

    #[test]
    fn zero_entry_ring_still_holds_one() {
        let r = SubmissionRing::new(0);
        assert_eq!(r.capacity(), 1);
    }

    #[test]
    fn completions_drain_in_order() {
        let mut r = SubmissionRing::new(4);
        r.complete(RingCompletion {
            user_data: 7,
            result: Ok(RingPayload::Unit),
        });
        r.complete(RingCompletion {
            user_data: 8,
            result: Ok(RingPayload::Unit),
        });
        let out = r.drain_completions();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].user_data, 7);
        assert_eq!(out[1].user_data, 8);
        assert_eq!(r.cq_len(), 0);
    }
}
