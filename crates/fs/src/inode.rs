//! Inodes: files and directories.

use std::collections::BTreeMap;

use sleds_sim_core::{SimTime, PAGE_SIZE};

use crate::kernel::{DeviceId, MountId};

/// An inode number, unique across the whole kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Ino(pub u64);

/// What kind of object an inode is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// A regular file.
    File,
    /// A directory.
    Dir,
}

/// Where one page of a file lives on stable storage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PagePlace {
    /// The device holding the page.
    pub dev: DeviceId,
    /// First sector of the page on that device.
    pub sector: u64,
}

/// A regular file's metadata and contents.
#[derive(Clone, Debug, Default)]
pub struct FileNode {
    /// Logical size in bytes.
    pub size: u64,
    /// File contents. The simulator holds real bytes so applications
    /// compute real answers; devices only model cost.
    pub data: Vec<u8>,
    /// Stable-storage location of each page. `pages.len() == size.pages()`.
    pub pages: Vec<PagePlace>,
    /// For HSM files: the tape home of each page, kept while the page is
    /// staged on disk so it can be discarded without copying back.
    pub tape_home: Option<Vec<PagePlace>>,
}

impl FileNode {
    /// Number of pages the file spans.
    pub fn page_count(&self) -> u64 {
        self.size.div_ceil(PAGE_SIZE)
    }
}

/// The body of an inode.
#[derive(Clone, Debug)]
pub enum InodeBody {
    /// A regular file.
    File(FileNode),
    /// A directory: name -> child inode.
    Dir(BTreeMap<String, Ino>),
}

/// An inode.
#[derive(Clone, Debug)]
pub struct Inode {
    /// This inode's number.
    pub ino: Ino,
    /// The mount the inode belongs to, if any. The root directory tree
    /// outside any mount has `None`; files can only exist inside a mount.
    pub mount: Option<MountId>,
    /// File or directory payload.
    pub body: InodeBody,
    /// Last modification time.
    pub mtime: SimTime,
}

impl Inode {
    /// What kind of object this is.
    pub fn kind(&self) -> FileKind {
        match self.body {
            InodeBody::File(_) => FileKind::File,
            InodeBody::Dir(_) => FileKind::Dir,
        }
    }

    /// The file payload, if this is a file.
    pub fn as_file(&self) -> Option<&FileNode> {
        match &self.body {
            InodeBody::File(f) => Some(f),
            InodeBody::Dir(_) => None,
        }
    }

    /// Mutable file payload, if this is a file.
    pub fn as_file_mut(&mut self) -> Option<&mut FileNode> {
        match &mut self.body {
            InodeBody::File(f) => Some(f),
            InodeBody::Dir(_) => None,
        }
    }

    /// The directory payload, if this is a directory.
    pub fn as_dir(&self) -> Option<&BTreeMap<String, Ino>> {
        match &self.body {
            InodeBody::Dir(d) => Some(d),
            InodeBody::File(_) => None,
        }
    }

    /// Mutable directory payload, if this is a directory.
    pub fn as_dir_mut(&mut self) -> Option<&mut BTreeMap<String, Ino>> {
        match &mut self.body {
            InodeBody::Dir(d) => Some(d),
            InodeBody::File(_) => None,
        }
    }
}

/// The result of `stat(2)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: Ino,
    /// Object kind.
    pub kind: FileKind,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Owning mount, if any.
    pub mount: Option<MountId>,
    /// Device the data lives on, if any.
    pub dev: Option<DeviceId>,
    /// Last modification time.
    pub mtime: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_page_count_rounds_up() {
        let mut f = FileNode::default();
        assert_eq!(f.page_count(), 0);
        f.size = 1;
        assert_eq!(f.page_count(), 1);
        f.size = PAGE_SIZE;
        assert_eq!(f.page_count(), 1);
        f.size = PAGE_SIZE + 1;
        assert_eq!(f.page_count(), 2);
    }

    #[test]
    fn inode_accessors_match_kind() {
        let f = Inode {
            ino: Ino(1),
            mount: None,
            body: InodeBody::File(FileNode::default()),
            mtime: SimTime::ZERO,
        };
        assert_eq!(f.kind(), FileKind::File);
        assert!(f.as_file().is_some());
        assert!(f.as_dir().is_none());

        let d = Inode {
            ino: Ino(2),
            mount: None,
            body: InodeBody::Dir(BTreeMap::new()),
            mtime: SimTime::ZERO,
        };
        assert_eq!(d.kind(), FileKind::Dir);
        assert!(d.as_dir().is_some());
        assert!(d.as_file().is_none());
    }
}
