//! Inodes: files and directories.
//!
//! File layout is kept run-length encoded: a [`PageMap`] stores maximal
//! `(start_page, pages, dev, sector)` runs instead of one `PagePlace` per
//! page, so layout queries cost O(log runs) and the SLED page walk can move
//! extent by extent instead of page by page. The map also carries a
//! generation counter, bumped on every layout or size change, which the
//! kernel combines with the page cache's per-inode residency generation to
//! version SLED vectors.

use std::collections::BTreeMap;

use sleds_sim_core::{SimTime, PAGE_SIZE, SECTOR_SIZE};

use crate::kernel::{DeviceId, MountId};

/// Sectors per page.
pub const SECTORS_PER_PAGE: u64 = PAGE_SIZE / SECTOR_SIZE;

/// An inode number, unique across the whole kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct Ino(pub u64);

/// What kind of object an inode is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FileKind {
    /// A regular file.
    File,
    /// A directory.
    Dir,
}

/// Where one page of a file lives on stable storage.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PagePlace {
    /// The device holding the page.
    pub dev: DeviceId,
    /// First sector of the page on that device.
    pub sector: u64,
}

/// One run of a file's layout: `pages` consecutive file pages starting at
/// `start_page`, stored device-contiguously starting at `sector` on `dev`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct LayoutRun {
    /// First file page of the run.
    pub start_page: u64,
    /// Number of pages in the run.
    pub pages: u64,
    /// The device holding the run.
    pub dev: DeviceId,
    /// First sector of `start_page` on that device.
    pub sector: u64,
}

impl LayoutRun {
    /// First file page past the run.
    pub fn end_page(&self) -> u64 {
        // Saturation intended: a run at the top of the page space still
        // compares correctly as "ends at the end".
        self.start_page.saturating_add(self.pages)
    }

    /// Where `page` lives. `page` must lie inside the run.
    pub fn place_of(&self, page: u64) -> PagePlace {
        debug_assert!(self.start_page <= page && page < self.end_page());
        PagePlace {
            dev: self.dev,
            sector: self.sector + (page - self.start_page) * SECTORS_PER_PAGE,
        }
    }
}

/// A file's stable-storage layout as sorted, maximal runs.
///
/// Invariants: runs are sorted by `start_page` and tile `[0, page_count)`
/// contiguously (files are always fully mapped); adjacent runs that are
/// device-contiguous are merged, so each run is maximal and the run count
/// equals the number of genuine layout discontinuities plus one.
#[derive(Clone, Debug, Default)]
pub struct PageMap {
    runs: Vec<LayoutRun>,
    pages: u64,
    /// Bumped on every mutation (append, remap, clear) and by the kernel on
    /// size changes; never reset, so `(residency gen, layout gen)` pairs
    /// version SLED vectors without ABA.
    gen: u64,
}

impl PageMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        PageMap::default()
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// True when nothing is mapped.
    pub fn is_empty(&self) -> bool {
        self.pages == 0
    }

    /// Number of layout runs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The layout generation: changes whenever the mapping changes.
    pub fn generation(&self) -> u64 {
        self.gen
    }

    /// Bumps the generation without changing the mapping — the kernel calls
    /// this when the file *size* changes within the already-mapped pages
    /// (a ragged tail growing), which changes SLED lengths.
    pub fn bump_generation(&mut self) {
        self.gen += 1;
    }

    /// All runs, ascending by `start_page`.
    pub fn runs(&self) -> &[LayoutRun] {
        &self.runs
    }

    fn run_index_of(&self, page: u64) -> Option<usize> {
        if page >= self.pages {
            return None;
        }
        // Runs tile [0, pages), so the last run starting at or before `page`
        // contains it.
        let idx = self.runs.partition_point(|r| r.start_page <= page);
        debug_assert!(idx > 0);
        Some(idx - 1)
    }

    /// The run containing `page`, if mapped.
    pub fn run_of(&self, page: u64) -> Option<LayoutRun> {
        self.run_index_of(page).map(|i| self.runs[i])
    }

    /// Where `page` lives, if mapped. O(log runs).
    pub fn place_of(&self, page: u64) -> Option<PagePlace> {
        self.run_of(page).map(|r| r.place_of(page))
    }

    /// First page past `page` at which the layout stops being
    /// device-contiguous with `page` — the end of its (maximal) run.
    pub fn contiguous_end(&self, page: u64) -> Option<u64> {
        self.run_of(page).map(|r| r.end_page())
    }

    /// The runs overlapping `first..=last`, clipped to it, ascending.
    pub fn runs_in(&self, first: u64, last: u64) -> Vec<LayoutRun> {
        if first > last {
            return Vec::new();
        }
        let start = self.runs.partition_point(|r| r.end_page() <= first);
        let mut out = Vec::new();
        for r in &self.runs[start..] {
            if r.start_page > last {
                break;
            }
            let s = r.start_page.max(first);
            let e = r.end_page().min(last.saturating_add(1));
            out.push(LayoutRun {
                start_page: s,
                pages: e - s,
                dev: r.dev,
                sector: r.sector + (s - r.start_page) * SECTORS_PER_PAGE,
            });
        }
        out
    }

    fn push_coalescing(out: &mut Vec<LayoutRun>, r: LayoutRun) {
        if r.pages == 0 {
            return;
        }
        if let Some(last) = out.last_mut() {
            if last.dev == r.dev
                && last.end_page() == r.start_page
                && last.sector + last.pages * SECTORS_PER_PAGE == r.sector
            {
                last.pages += r.pages;
                return;
            }
        }
        out.push(r);
    }

    /// Appends `pages` pages at the end of the mapping, starting at
    /// `sector` on `dev`; merges with the final run when contiguous.
    pub fn append_run(&mut self, dev: DeviceId, sector: u64, pages: u64) {
        if pages == 0 {
            return;
        }
        let r = LayoutRun {
            start_page: self.pages,
            pages,
            dev,
            sector,
        };
        Self::push_coalescing(&mut self.runs, r);
        self.pages += pages;
        self.gen += 1;
    }

    /// Remaps pages `[start_page, start_page + pages)` — which must already
    /// be mapped — to a device-contiguous run starting at `sector` on `dev`.
    /// Used by HSM staging (tape run → disk copy) and migration.
    pub fn remap_run(&mut self, start_page: u64, pages: u64, dev: DeviceId, sector: u64) {
        if pages == 0 {
            return;
        }
        let end = start_page + pages;
        assert!(end <= self.pages, "remap_run beyond mapping");
        let mut out: Vec<LayoutRun> = Vec::with_capacity(self.runs.len() + 2);
        let new_run = LayoutRun {
            start_page,
            pages,
            dev,
            sector,
        };
        let mut inserted = false;
        for &r in &self.runs {
            if r.end_page() <= start_page {
                Self::push_coalescing(&mut out, r);
                continue;
            }
            if r.start_page >= end {
                if !inserted {
                    Self::push_coalescing(&mut out, new_run);
                    inserted = true;
                }
                Self::push_coalescing(&mut out, r);
                continue;
            }
            // Overlap: keep the head before the remapped range...
            if r.start_page < start_page {
                Self::push_coalescing(
                    &mut out,
                    LayoutRun {
                        start_page: r.start_page,
                        pages: start_page - r.start_page,
                        dev: r.dev,
                        sector: r.sector,
                    },
                );
            }
            if !inserted {
                Self::push_coalescing(&mut out, new_run);
                inserted = true;
            }
            // ...and the tail after it.
            if r.end_page() > end {
                Self::push_coalescing(
                    &mut out,
                    LayoutRun {
                        start_page: end,
                        pages: r.end_page() - end,
                        dev: r.dev,
                        sector: r.sector + (end - r.start_page) * SECTORS_PER_PAGE,
                    },
                );
            }
        }
        if !inserted {
            Self::push_coalescing(&mut out, new_run);
        }
        self.runs = out;
        self.gen += 1;
    }

    /// Unmaps everything (truncate). The generation keeps counting.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.pages = 0;
        self.gen += 1;
    }
}

/// A regular file's metadata and contents.
#[derive(Clone, Debug, Default)]
pub struct FileNode {
    /// Logical size in bytes.
    pub size: u64,
    /// File contents. The simulator holds real bytes so applications
    /// compute real answers; devices only model cost.
    pub data: Vec<u8>,
    /// Stable-storage layout, run-length encoded. Covers at least
    /// `size.div_ceil(PAGE_SIZE)` pages.
    pub pages: PageMap,
    /// For HSM files: the tape-home layout, kept while pages are staged on
    /// disk so the staged copy can be discarded without copying back.
    pub tape_home: Option<PageMap>,
    /// For files on redundant volumes: one full replica layout per
    /// non-primary member device (mirrored and coded layouts). Each map
    /// covers the same page range as `pages`, placed on its own device.
    /// Empty for unreplicated and striped files.
    pub replicas: Vec<PageMap>,
}

impl FileNode {
    /// Number of pages the file spans.
    pub fn page_count(&self) -> u64 {
        self.size.div_ceil(PAGE_SIZE)
    }
}

/// The body of an inode.
#[derive(Clone, Debug)]
pub enum InodeBody {
    /// A regular file.
    File(FileNode),
    /// A directory: name -> child inode.
    Dir(BTreeMap<String, Ino>),
}

/// An inode.
#[derive(Clone, Debug)]
pub struct Inode {
    /// This inode's number.
    pub ino: Ino,
    /// The mount the inode belongs to, if any. The root directory tree
    /// outside any mount has `None`; files can only exist inside a mount.
    pub mount: Option<MountId>,
    /// File or directory payload.
    pub body: InodeBody,
    /// Last modification time.
    pub mtime: SimTime,
}

impl Inode {
    /// What kind of object this is.
    pub fn kind(&self) -> FileKind {
        match self.body {
            InodeBody::File(_) => FileKind::File,
            InodeBody::Dir(_) => FileKind::Dir,
        }
    }

    /// The file payload, if this is a file.
    pub fn as_file(&self) -> Option<&FileNode> {
        match &self.body {
            InodeBody::File(f) => Some(f),
            InodeBody::Dir(_) => None,
        }
    }

    /// Mutable file payload, if this is a file.
    pub fn as_file_mut(&mut self) -> Option<&mut FileNode> {
        match &mut self.body {
            InodeBody::File(f) => Some(f),
            InodeBody::Dir(_) => None,
        }
    }

    /// The directory payload, if this is a directory.
    pub fn as_dir(&self) -> Option<&BTreeMap<String, Ino>> {
        match &self.body {
            InodeBody::Dir(d) => Some(d),
            InodeBody::File(_) => None,
        }
    }

    /// Mutable directory payload, if this is a directory.
    pub fn as_dir_mut(&mut self) -> Option<&mut BTreeMap<String, Ino>> {
        match &mut self.body {
            InodeBody::Dir(d) => Some(d),
            InodeBody::File(_) => None,
        }
    }
}

/// The result of `stat(2)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stat {
    /// Inode number.
    pub ino: Ino,
    /// Object kind.
    pub kind: FileKind,
    /// Size in bytes (0 for directories).
    pub size: u64,
    /// Owning mount, if any.
    pub mount: Option<MountId>,
    /// Device the data lives on, if any.
    pub dev: Option<DeviceId>,
    /// Last modification time.
    pub mtime: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_page_count_rounds_up() {
        let mut f = FileNode::default();
        assert_eq!(f.page_count(), 0);
        f.size = 1;
        assert_eq!(f.page_count(), 1);
        f.size = PAGE_SIZE;
        assert_eq!(f.page_count(), 1);
        f.size = PAGE_SIZE + 1;
        assert_eq!(f.page_count(), 2);
    }

    #[test]
    fn inode_accessors_match_kind() {
        let f = Inode {
            ino: Ino(1),
            mount: None,
            body: InodeBody::File(FileNode::default()),
            mtime: SimTime::ZERO,
        };
        assert_eq!(f.kind(), FileKind::File);
        assert!(f.as_file().is_some());
        assert!(f.as_dir().is_none());

        let d = Inode {
            ino: Ino(2),
            mount: None,
            body: InodeBody::Dir(BTreeMap::new()),
            mtime: SimTime::ZERO,
        };
        assert_eq!(d.kind(), FileKind::Dir);
        assert!(d.as_dir().is_some());
        assert!(d.as_file().is_none());
    }

    const D0: DeviceId = DeviceId(0);
    const D1: DeviceId = DeviceId(1);

    #[test]
    fn append_run_merges_contiguous_allocations() {
        let mut m = PageMap::new();
        m.append_run(D0, 2048, 4);
        m.append_run(D0, 2048 + 4 * SECTORS_PER_PAGE, 4);
        assert_eq!(m.run_count(), 1, "contiguous appends must merge");
        assert_eq!(m.page_count(), 8);
        // A gap breaks the run.
        m.append_run(D0, 9000, 2);
        assert_eq!(m.run_count(), 2);
        assert_eq!(m.page_count(), 10);
        // A different device always breaks the run.
        m.append_run(D1, 9000 + 2 * SECTORS_PER_PAGE, 1);
        assert_eq!(m.run_count(), 3);
    }

    #[test]
    fn place_of_matches_per_page_expansion() {
        let mut m = PageMap::new();
        m.append_run(D0, 2048, 4);
        m.append_run(D0, 9000, 3);
        for (page, want) in [
            (0u64, (D0, 2048)),
            (3, (D0, 2048 + 3 * SECTORS_PER_PAGE)),
            (4, (D0, 9000)),
            (6, (D0, 9000 + 2 * SECTORS_PER_PAGE)),
        ] {
            let p = m.place_of(page).unwrap();
            assert_eq!((p.dev, p.sector), want, "page {page}");
        }
        assert!(m.place_of(7).is_none(), "beyond the mapping");
    }

    #[test]
    fn contiguous_end_is_run_end() {
        let mut m = PageMap::new();
        m.append_run(D0, 2048, 4);
        m.append_run(D0, 9000, 3);
        assert_eq!(m.contiguous_end(0), Some(4));
        assert_eq!(m.contiguous_end(3), Some(4));
        assert_eq!(m.contiguous_end(4), Some(7));
        assert_eq!(m.contiguous_end(7), None);
    }

    #[test]
    fn runs_in_clips() {
        let mut m = PageMap::new();
        m.append_run(D0, 2048, 4); // pages 0..4
        m.append_run(D0, 9000, 4); // pages 4..8
        let clipped = m.runs_in(2, 5);
        assert_eq!(clipped.len(), 2);
        assert_eq!(clipped[0].start_page, 2);
        assert_eq!(clipped[0].pages, 2);
        assert_eq!(clipped[0].sector, 2048 + 2 * SECTORS_PER_PAGE);
        assert_eq!(clipped[1].start_page, 4);
        assert_eq!(clipped[1].pages, 2);
        assert_eq!(clipped[1].sector, 9000);
        assert!(m.runs_in(8, 20).is_empty());
        assert!(m.runs_in(5, 2).is_empty());
    }

    #[test]
    fn remap_run_splits_and_coalesces() {
        let mut m = PageMap::new();
        m.append_run(D0, 2048, 8); // pages 0..8 on disk
        let g0 = m.generation();
        // Stage pages 2..5 somewhere else.
        m.remap_run(2, 3, D1, 100);
        assert!(m.generation() > g0);
        assert_eq!(m.page_count(), 8);
        assert_eq!(m.run_count(), 3);
        assert_eq!(m.place_of(1).unwrap().sector, 2048 + SECTORS_PER_PAGE);
        assert_eq!(
            m.place_of(2).unwrap(),
            PagePlace {
                dev: D1,
                sector: 100
            }
        );
        assert_eq!(
            m.place_of(4).unwrap(),
            PagePlace {
                dev: D1,
                sector: 100 + 2 * SECTORS_PER_PAGE
            }
        );
        assert_eq!(
            m.place_of(5).unwrap(),
            PagePlace {
                dev: D0,
                sector: 2048 + 5 * SECTORS_PER_PAGE
            }
        );
        // Remapping back to the original location re-coalesces to one run.
        m.remap_run(2, 3, D0, 2048 + 2 * SECTORS_PER_PAGE);
        assert_eq!(m.run_count(), 1);
    }

    #[test]
    fn remap_whole_mapping_replaces_it() {
        let mut m = PageMap::new();
        m.append_run(D0, 2048, 4);
        m.append_run(D0, 9000, 4);
        m.remap_run(0, 8, D1, 0);
        assert_eq!(m.run_count(), 1);
        assert_eq!(m.place_of(7).unwrap().dev, D1);
    }

    #[test]
    fn clear_keeps_generation_counting() {
        let mut m = PageMap::new();
        m.append_run(D0, 2048, 4);
        let g = m.generation();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.page_count(), 0);
        assert!(m.generation() > g, "clear must advance the generation");
        m.append_run(D0, 4096, 1);
        assert_eq!(m.place_of(0).unwrap().sector, 4096);
    }
}
