//! Machine configuration: RAM, cache share, CPU cost parameters.

use sleds_pagecache::PolicyKind;
use sleds_sim_core::{Bandwidth, ByteSize, SimDuration, PAGE_SIZE};

use crate::volume::HedgePolicy;

/// Static configuration of the simulated machine.
///
/// The defaults reproduce the paper's testbed: 64 MiB of RAM of which
/// roughly two thirds is available to cache file pages ("roughly three times
/// the size of the portion of memory available to cache file pages" is how
/// the paper describes its 128 MB upper test size), LRU replacement, and the
/// memory latency/bandwidth of Table 2.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Physical memory size.
    pub ram: ByteSize,
    /// Fraction of RAM available to the page cache.
    pub cache_fraction: f64,
    /// Page replacement policy.
    pub policy: PolicyKind,
    /// Latency of a memory access (Table 2/3 "memory" row).
    pub mem_latency: SimDuration,
    /// Copy bandwidth of memory (Table 2/3 "memory" row).
    pub mem_bandwidth: Bandwidth,
    /// Fixed CPU cost of entering and leaving a system call — the price of
    /// one kernel boundary crossing.
    pub syscall_cpu: SimDuration,
    /// CPU cost of servicing one already-submitted ring operation. A ring
    /// batch pays `syscall_cpu` once to enter the kernel, then this much
    /// per operation — the dispatch-table hop that remains when the
    /// boundary crossing is amortized away.
    pub ring_op_cpu: SimDuration,
    /// CPU cost of handling one page fault (kernel path, not the I/O).
    pub fault_cpu: SimDuration,
    /// CPU cost per *extent probe* of the SLED residency walk. With the
    /// run-length residency index the walk performs one probe per extent it
    /// emits rather than one per page; this is the probe's cost (it was the
    /// per-page cost before the index existed, and still is for the
    /// retained per-page reference walk).
    pub page_walk_cpu: SimDuration,
    /// Per-page floor of the SLED residency walk: copying the result out
    /// and bookkeeping still touch every page's worth of output, so even a
    /// one-extent walk over a huge file is not free.
    pub page_walk_floor_cpu: SimDuration,
    /// Pages to prefetch beyond a demand-miss run (0 disables readahead).
    ///
    /// Off by default: the paper's measured fault counts scale with file
    /// pages, i.e. per-page accounting. The ablation benches turn this on
    /// to show how readahead changes fault counts but not the SLEDs story.
    pub readahead_pages: u64,
    /// Per-device command-queue retention bound: how many occupancy
    /// segments and depth samples each [`crate::queue::CmdQueue`] keeps
    /// (drop-oldest beyond it). This bounds *telemetry*, not admission —
    /// completion times never depend on it — so shrinking it degrades
    /// queue-wait attribution fidelity and depth sampling, which is
    /// exactly the trade the replay harness lets a candidate config
    /// explore. Defaults to [`crate::queue::CMD_QUEUE_CAPACITY`].
    pub cmd_queue_capacity: usize,
    /// Hedged-read policy for redundant volumes: when the kernel issues a
    /// redundant request and what a cancelled loser costs. The default
    /// hedges at most once per command; `HedgePolicy::disabled()` gives
    /// retry-only behavior.
    pub hedge: HedgePolicy,
}

impl MachineConfig {
    /// The machine the Unix-utility experiments ran on (Table 2).
    pub fn table2() -> Self {
        MachineConfig {
            ram: ByteSize::mib(64),
            cache_fraction: 0.66,
            policy: PolicyKind::Lru,
            mem_latency: SimDuration::from_nanos(175),
            mem_bandwidth: Bandwidth::mb_per_sec(48.0),
            syscall_cpu: SimDuration::from_micros(5),
            ring_op_cpu: SimDuration::from_nanos(150),
            fault_cpu: SimDuration::from_micros(2),
            page_walk_cpu: SimDuration::from_nanos(250),
            page_walk_floor_cpu: SimDuration::from_nanos(1),
            readahead_pages: 0,
            cmd_queue_capacity: crate::queue::CMD_QUEUE_CAPACITY,
            hedge: HedgePolicy::default(),
        }
    }

    /// The machine the LHEASOFT experiments ran on (Table 3).
    pub fn table3() -> Self {
        MachineConfig {
            mem_latency: SimDuration::from_nanos(210),
            mem_bandwidth: Bandwidth::mb_per_sec(87.0),
            ..MachineConfig::table2()
        }
    }

    /// CPU cost of a SLED residency walk that emitted `extents` extents
    /// covering `pages` pages: one probe per extent plus the per-page
    /// floor. O(runs) with a per-page floor — the extent-index cost model.
    pub fn page_walk_cost(&self, extents: u64, pages: u64) -> SimDuration {
        SimDuration::from_nanos(
            self.page_walk_cpu.as_nanos() * extents + self.page_walk_floor_cpu.as_nanos() * pages,
        )
    }

    /// CPU cost of the legacy per-page residency walk over `pages` pages —
    /// what every walk cost before the extent index.
    pub fn page_walk_cost_per_page(&self, pages: u64) -> SimDuration {
        SimDuration::from_nanos(self.page_walk_cpu.as_nanos() * pages)
    }

    /// Number of pages the page cache may hold.
    pub fn cache_pages(&self) -> usize {
        let bytes = self.ram.as_u64() as f64 * self.cache_fraction.clamp(0.01, 1.0);
        ((bytes as u64) / PAGE_SIZE).max(1) as usize
    }

    /// Bytes the page cache may hold.
    pub fn cache_bytes(&self) -> ByteSize {
        ByteSize::bytes(self.cache_pages() as u64 * PAGE_SIZE)
    }
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig::table2()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_cache_is_about_42mib() {
        let m = MachineConfig::table2();
        let mib = m.cache_bytes().as_u64() as f64 / (1 << 20) as f64;
        assert!((40.0..44.0).contains(&mib), "cache {mib} MiB");
    }

    #[test]
    fn cache_pages_never_zero() {
        let mut m = MachineConfig::table2();
        m.ram = ByteSize::bytes(100);
        m.cache_fraction = 0.0001;
        assert!(m.cache_pages() >= 1);
    }

    #[test]
    fn table3_differs_only_in_memory() {
        let (a, b) = (MachineConfig::table2(), MachineConfig::table3());
        assert_eq!(a.ram, b.ram);
        assert_ne!(a.mem_latency, b.mem_latency);
        assert_ne!(
            a.mem_bandwidth.as_bytes_per_sec(),
            b.mem_bandwidth.as_bytes_per_sec()
        );
    }
}
