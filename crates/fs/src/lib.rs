//! The simulated storage-stack kernel.
//!
//! This crate stands in for the paper's modified Linux 2.2: a virtual file
//! system layer with a syscall-style API (`open`/`read`/`write`/`lseek`/
//! `stat`/`readdir`/...), a page cache (from `sleds-pagecache`), block
//! devices (from `sleds-devices`), mount points, per-job resource usage, and
//! — the hook the SLEDs API needs — a page-residency walk
//! ([`Kernel::page_extents`]) that reports, extent by extent, whether an
//! open file's pages are in the buffer cache and on which device sectors
//! they live otherwise. The walk is run-length throughout: file layout is a
//! [`inode::PageMap`] of maximal device-contiguous runs, residency is the
//! page cache's extent index, and the walk's cost is one probe per extent
//! plus a per-page floor rather than one probe per page.
//!
//! Unlike a real kernel, file *contents* are held in memory (`Vec<u8>`) so
//! applications compute real answers, while all *costs* are charged against
//! the device models and a virtual clock. Time and bytes are decoupled:
//! correctness of data and fidelity of timing are separate mechanisms.
//!
//! A hierarchical storage manager is included ([`Kernel::mount_hsm`]):
//! files can be migrated to tape and are staged back to the disk cache
//! chunk-by-chunk on access, which is the regime where the paper expects
//! SLEDs to shine the most.

pub mod aio;
pub mod capture;
pub mod inode;
pub mod kernel;
pub mod machine;
pub mod prog;
pub mod queue;
pub mod ring;
pub mod rusage;
pub mod volume;

pub use aio::AioReport;
pub use capture::{
    fold_bytes, Capture, CapturedCall, CapturedOp, CapturedRingOp, ClassCost, OpOutcome,
    WorkloadRecorder, CAPTURE_SCHEMA, WHENCE_CUR, WHENCE_END, WHENCE_SET,
};
pub use inode::{FileKind, Ino, LayoutRun, PageMap, PagePlace, Stat, SECTORS_PER_PAGE};
pub use kernel::{
    DeviceId, Fd, Kernel, MountId, OpenFlags, PageExtent, PageLocation, RedundantExtent,
    ReplicaPlace, Whence,
};
pub use machine::MachineConfig;
pub use prog::{
    prog_inputs, CostCert, PickProgram, ProgEntry, ProgInputs, ProgInst, ProgOrder, ProgPricing,
    ProgSled, WalkEntry, MAX_PROG_COST_NS, MAX_PROG_LEN, MAX_PROG_STACK,
};
pub use queue::{
    CmdQueue, DeviceSaturation, LatencySummary, QueueSample, SaturationReport, TenantAttribution,
    TenantLoad, TenantShare, BULLY_SHARE_PPM, CMD_QUEUE_CAPACITY, SATURATION_UTIL_PPM,
};
pub use ring::{RingCompletion, RingOp, RingPayload, SubmissionRing, DEFAULT_RING_ENTRIES};
pub use rusage::{JobReport, JobTimer, Rusage};
pub use sleds_sim_core::{TenantId, VirtualSubmitter};
pub use sleds_trace as trace;
pub use volume::{HedgePolicy, VolumeLayout};
