//! The simulated storage-stack kernel.
//!
//! This crate stands in for the paper's modified Linux 2.2: a virtual file
//! system layer with a syscall-style API (`open`/`read`/`write`/`lseek`/
//! `stat`/`readdir`/...), a page cache (from `sleds-pagecache`), block
//! devices (from `sleds-devices`), mount points, per-job resource usage, and
//! — the hook the SLEDs API needs — a page-residency walk
//! ([`Kernel::page_locations`]) that reports, for every page of an open
//! file, whether it is in the buffer cache and on which device sectors it
//! lives otherwise.
//!
//! Unlike a real kernel, file *contents* are held in memory (`Vec<u8>`) so
//! applications compute real answers, while all *costs* are charged against
//! the device models and a virtual clock. Time and bytes are decoupled:
//! correctness of data and fidelity of timing are separate mechanisms.
//!
//! A hierarchical storage manager is included ([`Kernel::mount_hsm`]):
//! files can be migrated to tape and are staged back to the disk cache
//! chunk-by-chunk on access, which is the regime where the paper expects
//! SLEDs to shine the most.

pub mod aio;
pub mod inode;
pub mod kernel;
pub mod machine;
pub mod rusage;

pub use aio::AioReport;
pub use inode::{FileKind, Ino, PagePlace, Stat};
pub use kernel::{DeviceId, Fd, Kernel, MountId, OpenFlags, PageLocation, Whence};
pub use machine::MachineConfig;
pub use rusage::{JobReport, JobTimer, Rusage};
