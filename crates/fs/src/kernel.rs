//! The kernel: syscalls, mounts, the read/write path, and the SLED hook.
//!
//! Cost model of the read path (the part every experiment depends on):
//!
//! * each `read(2)` pays a fixed syscall CPU cost plus a memory-copy cost
//!   for the bytes delivered (the Table 2 "memory" row);
//! * pages already in the buffer cache are **minor faults**: no device work;
//! * missing pages are **major faults**: contiguous runs of missing pages
//!   (same device, adjacent sectors) are clustered into one device command,
//!   so a cold sequential scan is bandwidth-limited while scattered misses
//!   pay positioning per run — exactly the latency/bandwidth split a SLED
//!   describes;
//! * pages brought in are inserted into the cache; dirty pages evicted to
//!   make room are written back to their home device at the caller's
//!   expense, which is how a write-heavy job (fimhisto) interferes with its
//!   own read caching.
//!
//! HSM mounts add one more step: a missing page whose home is the tape
//! device is *staged* — a chunk of pages is read from tape, written to the
//! staging disk, and the file's page map is rewritten to point at the disk
//! copy — before the read proceeds. The tape home is remembered so a later
//! purge can drop the disk copy without copying data back.

use std::collections::BTreeMap;

use sleds_devices::{BlockDevice, DevStats, DeviceClass, FaultPlan, FaultState, PhaseKind};
use sleds_pagecache::{PageCache, PageKey};
use sleds_sim_core::{
    Clock, DetRng, Errno, RetryPolicy, SimDuration, SimError, SimResult, SimTime, TenantId,
    PAGE_SIZE, SECTOR_SIZE,
};
use sleds_trace::{Layer, Metrics, TraceEvent, Tracer};

use crate::capture::{Capture, CapturedCall, WorkloadRecorder};
use crate::inode::{FileKind, FileNode, Ino, Inode, InodeBody, PageMap, PagePlace, Stat};
use crate::machine::MachineConfig;
use crate::prog::{
    prog_inputs, PickProgram, ProgEntry, ProgOrder, ProgPricing, ProgSled, WalkEntry,
};
use crate::queue::{
    CmdQueue, DeviceSaturation, LatencySummary, SaturationReport, TenantAttribution, TenantShare,
    BULLY_SHARE_PPM, SATURATION_UTIL_PPM,
};
use crate::ring::{RingCompletion, RingOp, RingPayload, SubmissionRing};
use crate::rusage::{JobReport, JobTimer, Rusage};
use crate::volume::{HedgePolicy, VolumeLayout};

pub use crate::inode::SECTORS_PER_PAGE;

/// Number of device classes `class_code` can produce; sizes the kernel's
/// per-class retry-policy table.
const NUM_CLASSES: usize = 5;

/// Seed for the kernel's retry-backoff jitter stream. A fixed constant so
/// two kernels running the same workload under the same fault plan back
/// off identically.
const RETRY_JITTER_SEED: u64 = 0x5EED_FA17;

/// Delivery-time estimate in integer nanoseconds for trace marks:
/// `u64::MAX` stands in for non-finite (offline) estimates.
fn estimate_ns(secs: f64) -> u64 {
    if secs.is_finite() {
        (secs * 1e9) as u64
    } else {
        u64::MAX
    }
}

/// Identifies a device registered with the kernel.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct DeviceId(pub usize);

/// Identifies a mount.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct MountId(pub usize);

/// A file descriptor.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Fd(pub u64);

/// `lseek` origins.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Whence {
    /// From the start of the file.
    Set,
    /// From the current position.
    Cur,
    /// From the end of the file.
    End,
}

/// Open flags, in the spirit of `open(2)`.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct OpenFlags {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Create if missing.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// All writes go to the end of the file.
    pub append: bool,
}

impl OpenFlags {
    /// Read-only.
    pub const RDONLY: OpenFlags = OpenFlags {
        read: true,
        write: false,
        create: false,
        truncate: false,
        append: false,
    };

    /// Read-write.
    pub const RDWR: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: false,
        truncate: false,
        append: false,
    };

    /// Write-only, creating and truncating — `open(.., O_WRONLY|O_CREAT|O_TRUNC)`.
    pub const CREATE: OpenFlags = OpenFlags {
        read: false,
        write: true,
        create: true,
        truncate: true,
        append: false,
    };

    /// Read-write, creating and truncating.
    pub const CREATE_RDWR: OpenFlags = OpenFlags {
        read: true,
        write: true,
        create: true,
        truncate: true,
        append: false,
    };
}

/// Where one page of an open file currently lives — the kernel half of the
/// `FSLEDS_GET` ioctl. The `sleds` crate turns a vector of these plus the
/// calibrated device table into the SLED vector applications see.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PageLocation {
    /// Resident in the buffer cache.
    Memory,
    /// On a device, at the given first sector.
    Device {
        /// Home device.
        dev: DeviceId,
        /// First sector of the page.
        sector: u64,
    },
}

/// One run of consecutive pages of an open file sharing a location — the
/// run-length form of the `FSLEDS_GET` answer. For a `Device` location,
/// `location.sector` is the sector of `first_page`; subsequent pages follow
/// at `SECTORS_PER_PAGE` intervals.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct PageExtent {
    /// First file page of the extent.
    pub first_page: u64,
    /// Number of pages in the extent.
    pub pages: u64,
    /// Where those pages live.
    pub location: PageLocation,
}

impl PageExtent {
    /// First file page past the extent.
    pub fn end_page(&self) -> u64 {
        self.first_page + self.pages
    }
}

/// One alternative copy (or coded fragment) of a redundant extent: the
/// member device holding it and the sector of the extent's first page
/// there.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ReplicaPlace {
    /// Member device holding the copy.
    pub dev: DeviceId,
    /// First sector of the extent's first page on that device.
    pub sector: u64,
}

/// A [`PageExtent`] together with every other place that can serve it —
/// the kernel half of `FSLEDS_GET` on a redundant volume. For mirrored
/// files each alternative is a full copy; for a (k, n)-coded file the
/// primary plus alternatives are the n fragment homes and `coded_k`
/// carries the k needed to reconstruct. Memory-resident extents and
/// unreplicated files have no alternatives.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RedundantExtent {
    /// The extent, located at its primary home (or in memory).
    pub extent: PageExtent,
    /// Non-primary places holding the same pages, in member order.
    pub alternatives: Vec<ReplicaPlace>,
    /// `Some(k)` when the volume is (k, n)-coded: delivery needs any k
    /// of the n places, so the extent prices as the k-th cheapest.
    pub coded_k: Option<u32>,
}

/// Optional file-layout fragmentation for a mount.
#[derive(Clone, Debug)]
struct FragConfig {
    chunk_pages: u64,
    gap_pages: u64,
    rng: DetRng,
}

/// HSM configuration of a mount.
#[derive(Clone, Copy, Debug)]
struct HsmConfig {
    tape: DeviceId,
    stage_chunk_pages: u64,
    tape_next_sector: u64,
}

/// Redundant-volume state of a mount: the member devices and their
/// allocation cursors. The mount's `dev` is always `devices[0]` (the
/// primary); the extra members hold mirrors, stripes or coded fragments
/// depending on the layout.
#[derive(Debug)]
struct VolumeState {
    layout: VolumeLayout,
    /// Member devices; index 0 is the mount's primary device.
    devices: Vec<DeviceId>,
    /// Allocation cursor per non-primary member (the primary allocates
    /// through `Mount::next_sector` as on any mount).
    replica_next: Vec<u64>,
    /// Round-robin cursor for striped allocation.
    stripe_cursor: usize,
}

/// A mounted file system.
#[derive(Debug)]
struct Mount {
    dev: DeviceId,
    root: Ino,
    next_sector: u64,
    read_only: bool,
    frag: Option<FragConfig>,
    hsm: Option<HsmConfig>,
    volume: Option<VolumeState>,
}

/// An open file description.
#[derive(Clone, Copy, Debug)]
struct OpenFile {
    ino: Ino,
    pos: u64,
    flags: OpenFlags,
}

/// One registered tenant: its own timeline and accumulated usage.
///
/// The kernel runs one tenant at a time; [`Kernel::tenant_switch`] parks
/// the active tenant's clock here and resumes the target's. Per-tenant
/// usage is maintained by snapshot-diff against the global counters at
/// switch points, so the per-tenant rows always sum exactly to the global
/// [`Rusage`] — every charge site feeds both without knowing tenants exist.
#[derive(Clone, Debug)]
struct TenantState {
    name: String,
    /// Where this tenant's timeline is parked while it is not active.
    clock_at: SimTime,
    /// Virtual instant the tenant was registered; its elapsed time is
    /// measured from here.
    registered_at: SimTime,
    /// Usage accumulated over the tenant's past active slices.
    usage: Rusage,
}

/// Maps a ring submission onto the capture vocabulary. The pushdown
/// ioctls (`FsledsGet`, `PickAdvice`) carry pricing tables the capture
/// format does not model; servicing one during a capture poisons it.
fn ring_capture_call(op: &RingOp) -> Result<CapturedCall, &'static str> {
    match op {
        RingOp::Open { path, flags } => Ok(CapturedCall::Open {
            path: path.clone(),
            flags: *flags,
        }),
        RingOp::Close { fd } => Ok(CapturedCall::Close { fd: fd.0 }),
        RingOp::Pread { fd, pos, len } => Ok(CapturedCall::Pread {
            fd: fd.0,
            pos: *pos,
            len: *len as u64,
        }),
        RingOp::Stat { path } => Ok(CapturedCall::Stat { path: path.clone() }),
        RingOp::FsledsGet { .. } => Err("ring.fsleds_get"),
        RingOp::PickAdvice { .. } => Err("ring.pick_advice"),
    }
}

/// The simulated kernel.
pub struct Kernel {
    cfg: MachineConfig,
    clock: Clock,
    cache: PageCache,
    devices: Vec<Box<dyn BlockDevice>>,
    mounts: Vec<Mount>,
    inodes: BTreeMap<Ino, Inode>,
    next_ino: u64,
    fds: BTreeMap<u64, OpenFile>,
    next_fd: u64,
    usage: Rusage,
    root: Ino,
    tracer: Tracer,
    /// Count of `FSLEDS_RECAL` calls. Folded into [`Kernel::sled_generation`]
    /// so every cached SLED vector and lease goes stale the moment the
    /// sleds table is recalibrated, without the cache or lease layers
    /// knowing recalibration exists.
    sleds_epoch: u64,
    /// Retry policy applied to failed device commands, per device class
    /// (indexed by `class_code`).
    retry_policies: [RetryPolicy; NUM_CLASSES],
    /// Jitter stream for retry backoff; only consumed when a command
    /// actually fails, so fault-free runs never draw from it.
    retry_rng: DetRng,
    /// Pick programs installed per fd via `FSLEDS_PROG`; dropped on close.
    fd_progs: BTreeMap<u64, PickProgram>,
    /// Lifetime count of `ring_enter` batches serviced (cheap stat for
    /// benches; crossings proper live in rusage).
    ring_enters: u64,
    /// Lifetime count of ring operations serviced.
    ring_ops: u64,
    /// One bounded command queue per attached device (same index as
    /// `devices`): queue-wait pricing and saturation telemetry.
    queues: Vec<CmdQueue>,
    /// Registered tenants; index 0 is the implicit main tenant every
    /// kernel boots with, so single-tenant workloads never see this layer.
    tenants: Vec<TenantState>,
    /// Index into `tenants` of the tenant whose timeline `clock` is.
    active_tenant: usize,
    /// Global usage at the last tenant switch; the delta since is the
    /// active tenant's not-yet-flushed share.
    tenant_snapshot: Rusage,
    /// Armed flight recorder, when a capture is in progress. Unlike the
    /// trace ring it is lossless: any kernel entry it cannot record
    /// poisons the capture instead of being dropped.
    recorder: Option<WorkloadRecorder>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Kernel")
            .field("now", &self.clock.now())
            .field("mounts", &self.mounts.len())
            .field("inodes", &self.inodes.len())
            .field("cache", &self.cache)
            .finish()
    }
}

impl Kernel {
    /// Boots a machine: empty root directory, no mounts.
    pub fn new(cfg: MachineConfig) -> Self {
        let cache = PageCache::new(cfg.cache_pages(), cfg.policy);
        let root = Ino(1);
        let mut inodes = BTreeMap::new();
        inodes.insert(
            root,
            Inode {
                ino: root,
                mount: None,
                body: InodeBody::Dir(Default::default()),
                mtime: SimTime::ZERO,
            },
        );
        Kernel {
            cfg,
            clock: Clock::new(),
            cache,
            devices: Vec::new(),
            mounts: Vec::new(),
            inodes,
            next_ino: 2,
            fds: BTreeMap::new(),
            next_fd: 3, // 0..2 reserved, as tradition demands
            usage: Rusage::default(),
            root,
            tracer: Tracer::disabled(),
            sleds_epoch: 0,
            retry_policies: [RetryPolicy::default(); NUM_CLASSES],
            retry_rng: DetRng::new(RETRY_JITTER_SEED),
            fd_progs: BTreeMap::new(),
            ring_enters: 0,
            ring_ops: 0,
            queues: Vec::new(),
            tenants: vec![TenantState {
                name: "main".to_string(),
                clock_at: SimTime::ZERO,
                registered_at: SimTime::ZERO,
                usage: Rusage::default(),
            }],
            active_tenant: 0,
            tenant_snapshot: Rusage::default(),
            recorder: None,
        }
    }

    /// Boots the paper's Table 2 machine.
    pub fn table2() -> Self {
        Kernel::new(MachineConfig::table2())
    }

    /// Boots the paper's Table 3 machine.
    pub fn table3() -> Self {
        Kernel::new(MachineConfig::table3())
    }

    // ------------------------------------------------------------------
    // Time, usage, stats
    // ------------------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Cumulative resource usage.
    pub fn usage(&self) -> Rusage {
        self.usage
    }

    /// Page-cache counters.
    pub fn cache_stats(&self) -> sleds_pagecache::CacheStats {
        self.cache.stats()
    }

    /// Number of pages currently resident.
    pub fn cache_resident_pages(&self) -> usize {
        self.cache.len()
    }

    /// Number of resident pages that are dirty — the writeback debt the
    /// trace viewer reports next to residency.
    pub fn cache_dirty_pages(&self) -> u64 {
        self.cache.dirty_count()
    }

    /// Page-cache capacity in pages.
    pub fn cache_capacity_pages(&self) -> usize {
        self.cache.capacity()
    }

    // ------------------------------------------------------------------
    // Tenants: interleaved timelines on shared devices
    // ------------------------------------------------------------------

    /// Registers a new tenant named `name`; its timeline starts at the
    /// current virtual time. Returns its id. Tenant 0 ("main") always
    /// exists — it is the tenant every kernel boots as.
    pub fn tenant_register(&mut self, name: &str) -> TenantId {
        if self.capture_active() {
            self.rec_begin(CapturedCall::TenantRegister {
                name: name.to_string(),
            });
        }
        let now = self.clock.now();
        self.tenants.push(TenantState {
            name: name.to_string(),
            clock_at: now,
            registered_at: now,
            usage: Rusage::default(),
        });
        let t = TenantId((self.tenants.len() - 1) as u64);
        self.rec_finish(Ok((t.0, None)));
        t
    }

    /// Makes `t` the active tenant: parks the current tenant's clock and
    /// usage share, and resumes `t`'s timeline where it left off. The
    /// virtual clock may move *backward* across a switch — tenants are
    /// concurrent processes, each with its own monotone timeline — but a
    /// device's command queue keeps every device's schedule monotone, so
    /// queue waits (and only queue waits) reflect the interleaving.
    pub fn tenant_switch(&mut self, t: TenantId) -> SimResult<()> {
        let idx = t.0 as usize;
        if idx >= self.tenants.len() {
            return Err(SimError::new(
                Errno::Einval,
                format!("tenant_switch: no tenant {}", t.0),
            ));
        }
        if idx == self.active_tenant {
            return Ok(());
        }
        // Flush the outgoing tenant's usage share and park its clock.
        let delta = self.usage.since(&self.tenant_snapshot);
        self.tenants[self.active_tenant].usage.accumulate(&delta);
        self.tenant_snapshot = self.usage;
        self.tenants[self.active_tenant].clock_at = self.clock.now();
        self.clock = Clock::resume_at(self.tenants[idx].clock_at);
        self.active_tenant = idx;
        self.tracer.set_tenant(t.0);
        Ok(())
    }

    /// The tenant whose timeline the kernel clock currently is.
    pub fn active_tenant(&self) -> TenantId {
        TenantId(self.active_tenant as u64)
    }

    /// Number of registered tenants (including the implicit main tenant).
    pub fn tenant_count(&self) -> usize {
        self.tenants.len()
    }

    /// A tenant's registered name.
    pub fn tenant_name(&self, t: TenantId) -> Option<&str> {
        self.tenants.get(t.0 as usize).map(|s| s.name.as_str())
    }

    /// `(id, name)` rows for every registered tenant, ascending by id —
    /// the shape the Chrome exporter's lane labeling takes.
    pub fn tenant_names(&self) -> Vec<(u64, String)> {
        self.tenants
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u64, s.name.clone()))
            .collect()
    }

    /// A tenant's accumulated resource usage, including the active
    /// tenant's not-yet-flushed share. Per-tenant rows sum exactly to
    /// [`Kernel::usage`].
    pub fn tenant_usage(&self, t: TenantId) -> Option<Rusage> {
        let idx = t.0 as usize;
        self.tenants.get(idx).map(|s| {
            let mut u = s.usage;
            if idx == self.active_tenant {
                u.accumulate(&self.usage.since(&self.tenant_snapshot));
            }
            u
        })
    }

    /// Where a tenant's timeline currently stands (the kernel clock for
    /// the active tenant, its parked clock otherwise).
    pub fn tenant_now(&self, t: TenantId) -> Option<SimTime> {
        let idx = t.0 as usize;
        self.tenants.get(idx).map(|s| {
            if idx == self.active_tenant {
                self.clock.now()
            } else {
                s.clock_at
            }
        })
    }

    /// Virtual time elapsed on a tenant's timeline since it registered.
    pub fn tenant_elapsed(&self, t: TenantId) -> Option<SimDuration> {
        let idx = t.0 as usize;
        let registered = self.tenants.get(idx)?.registered_at;
        self.tenant_now(t).map(|now| now.duration_since(registered))
    }

    // ------------------------------------------------------------------
    // Tracing: a zero-cost observer of the virtual clock
    // ------------------------------------------------------------------

    /// Enables event tracing with the default ring capacity.
    ///
    /// The tracer is a pure observer: it never advances the clock and never
    /// touches rusage, so a traced run produces virtual-time results
    /// byte-identical to an untraced one.
    pub fn enable_tracing(&mut self) {
        self.tracer = Tracer::enabled();
    }

    /// Enables tracing with an explicit ring capacity, in events.
    pub fn enable_tracing_with_capacity(&mut self, capacity: usize) {
        self.tracer = Tracer::with_capacity(capacity);
    }

    /// Disables tracing, discarding any buffered events and metrics.
    pub fn disable_tracing(&mut self) {
        self.tracer = Tracer::disabled();
    }

    /// Whether tracing is on.
    pub fn tracing_enabled(&self) -> bool {
        self.tracer.is_enabled()
    }

    /// Snapshot of the trace ring, oldest event first.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        self.tracer.events()
    }

    /// Events dropped to ring overflow since tracing was enabled.
    pub fn trace_dropped(&self) -> u64 {
        self.tracer.dropped()
    }

    /// Trace-ring retention high-water mark (most events held at once).
    pub fn trace_high_water(&self) -> u64 {
        self.tracer.high_water()
    }

    /// Per-layer metrics accumulated since tracing was enabled; `None`
    /// while tracing is off.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.tracer.metrics()
    }

    // ------------------------------------------------------------------
    // Workload capture: the flight recorder
    // ------------------------------------------------------------------

    /// Arms the flight recorder: every subsequent kernel entry is
    /// recorded losslessly (up to `budget` ops — overflowing the budget
    /// marks the capture incomplete, never drops silently) until
    /// [`Kernel::stop_capture`]. Replaces any capture in progress.
    pub fn start_capture(&mut self, budget: usize) {
        self.recorder = Some(WorkloadRecorder::new(budget, self.clock.now().as_nanos()));
    }

    /// Disarms the recorder and returns the capture; `None` when no
    /// capture was armed.
    pub fn stop_capture(&mut self) -> Option<Capture> {
        self.recorder.take().map(WorkloadRecorder::into_capture)
    }

    /// Whether a capture is in progress.
    pub fn capture_active(&self) -> bool {
        self.recorder.is_some()
    }

    /// Sum of every attached device's fault epoch at `now` — the "which
    /// fault windows are live" stamp each captured op carries.
    pub fn fault_epoch_total(&self) -> u64 {
        let now = self.clock.now();
        self.devices.iter().map(|d| d.fault_epoch(now)).sum()
    }

    /// Arms the recorder's in-flight accumulator for one kernel entry.
    /// Must be paired with [`Kernel::rec_finish`] on every path out.
    fn rec_begin(&mut self, call: CapturedCall) {
        if self.recorder.is_none() {
            return;
        }
        let tenant = self.active_tenant as u64;
        let submit_ns = self.clock.now().as_nanos();
        let epoch = self.fault_epoch_total();
        if let Some(rec) = self.recorder.as_mut() {
            rec.begin(call, tenant, submit_ns, epoch);
        }
    }

    /// Completes the in-flight captured op: `ret` is the call's scalar
    /// result, `data` its returned payload (folded, not stored).
    fn rec_finish(&mut self, res: Result<(u64, Option<&[u8]>), &SimError>) {
        if self.recorder.is_none() {
            return;
        }
        let now = self.clock.now().as_nanos();
        if let Some(rec) = self.recorder.as_mut() {
            match res {
                Ok((ret, data)) => rec.finish_ok(ret, data, now),
                Err(e) => rec.finish_err(e.errno.name(), now),
            }
        }
    }

    /// Poisons an in-progress capture: `name` charged the clock (or
    /// mutated state) in a way the replayer cannot reproduce.
    fn rec_unsupported(&mut self, name: &str) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.unsupported(name);
        }
    }

    /// The `FSLEDS_STAT` ioctl: a snapshot of the per-layer counters and
    /// latency histograms. Charges one syscall; all-zero when tracing is
    /// off (the counters simply never ran).
    pub fn fsleds_stat(&mut self, fd: Fd) -> SimResult<Metrics> {
        self.rec_unsupported("ioctl.fsleds_stat");
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "ioctl.fsleds_stat", t0, [fd.0, 0, 0]);
        self.charge_syscall();
        let r = self
            .openfile(fd)
            .map(|_| self.tracer.metrics_snapshot().unwrap_or_default());
        let t1 = self.clock.now();
        self.tracer.end(t1);
        r
    }

    /// The `FSLEDS_RECAL` ioctl: marks a sleds-table recalibration point.
    /// Bumps the kernel's sleds epoch — invalidating every memoized SLED
    /// vector and lease via [`Kernel::sled_generation`] — emits a
    /// `sleds.recal` marker so the accuracy audit can fence prediction
    /// pairs at the boundary, and returns the metrics snapshot the caller
    /// recalibrates from. Charges one syscall. The epoch bump happens
    /// whether or not tracing is on (untraced callers get empty metrics),
    /// so traced and untraced runs stay byte-identical.
    pub fn fsleds_recal(&mut self, fd: Fd) -> SimResult<Metrics> {
        self.rec_unsupported("ioctl.fsleds_recal");
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "ioctl.fsleds_recal", t0, [fd.0, 0, 0]);
        self.charge_syscall();
        let r = self.openfile(fd).map(|_| {
            self.sleds_epoch += 1;
            let snap = self.tracer.metrics_snapshot().unwrap_or_default();
            let now = self.clock.now();
            self.tracer.recal(now, self.sleds_epoch);
            snap
        });
        let t1 = self.clock.now();
        self.tracer.end(t1);
        r
    }

    /// Number of `FSLEDS_RECAL` calls so far — the generation new
    /// predictions should be tagged with after a recalibration.
    pub fn sleds_epoch(&self) -> u64 {
        self.sleds_epoch
    }

    /// The command queue (and its saturation telemetry) of a device.
    pub fn device_queue(&self, dev: DeviceId) -> Option<&CmdQueue> {
        self.queues.get(dev.0)
    }

    /// Builds the saturation/attribution report from the per-device queue
    /// telemetry: per-device utilization and per-tenant demand shares
    /// (bullies flagged), and per-tenant latency attribution whose
    /// own-service + queue-wait sums exactly to the observed device time.
    /// Pure query: charges nothing; `FSLEDS_SATSTAT` is the priced ioctl.
    pub fn saturation_report(&self) -> SaturationReport {
        let mut devices = Vec::new();
        for (i, q) in self.queues.iter().enumerate() {
            if q.commands() == 0 {
                continue;
            }
            let utilization_ppm = q.utilization_ppm();
            let saturated = utilization_ppm >= SATURATION_UTIL_PPM && q.queue_wait_ns() > 0;
            let busy = q.busy_ns();
            let shares: Vec<TenantShare> = q
                .tenant_loads()
                .map(|(tenant, load)| {
                    let demand_share_ppm = if busy == 0 {
                        0
                    } else {
                        ((load.busy_ns as u128 * 1_000_000) / busy as u128) as u64
                    };
                    TenantShare {
                        tenant,
                        load: *load,
                        demand_share_ppm,
                        bully: saturated && demand_share_ppm >= BULLY_SHARE_PPM,
                    }
                })
                .collect();
            devices.push(DeviceSaturation {
                device: i,
                name: self.devices[i].name().to_string(),
                class_code: class_code(self.devices[i].class()),
                window_ns: q.window_ns(),
                busy_ns: busy,
                queue_wait_ns: q.queue_wait_ns(),
                utilization_ppm,
                commands: q.commands(),
                bytes: q.bytes(),
                throughput_bytes_per_sec: q.throughput_bytes_per_sec(),
                depth_high_water: q.depth_high_water(),
                saturated,
                service_latency: LatencySummary::of(q.service_hist()),
                queue_wait_latency: LatencySummary::of(q.queue_wait_hist()),
                shares,
            });
        }
        let mut tenants = Vec::new();
        for (id, state) in self.tenants.iter().enumerate() {
            let id = id as u64;
            let mut own_service_ns = 0u64;
            let mut queue_wait_ns = 0u64;
            let mut observed_ns = 0u64;
            let mut waited: BTreeMap<u64, u64> = BTreeMap::new();
            for q in &self.queues {
                for (t, load) in q.tenant_loads() {
                    if t == id {
                        own_service_ns = own_service_ns.saturating_add(load.busy_ns);
                        queue_wait_ns = queue_wait_ns.saturating_add(load.queue_wait_ns);
                        observed_ns = observed_ns.saturating_add(load.observed_ns);
                    }
                }
                for ((waiter, owner), ns) in q.wait_rows() {
                    if waiter == id {
                        *waited.entry(owner).or_insert(0) += ns;
                    }
                }
            }
            // Who the waiting was behind, worst offender first.
            let mut waited_on: Vec<(u64, u64)> = waited.into_iter().collect();
            waited_on.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
            tenants.push(TenantAttribution {
                tenant: id,
                name: state.name.clone(),
                own_service_ns,
                queue_wait_ns,
                observed_ns,
                waited_on,
            });
        }
        SaturationReport { devices, tenants }
    }

    /// The `FSLEDS_SATSTAT` ioctl: the saturation observatory's snapshot —
    /// per-device utilization/queue telemetry with per-tenant demand
    /// shares and bully flags, plus per-tenant latency attribution.
    /// Charges one syscall; rows are empty until devices see commands.
    pub fn fsleds_satstat(&mut self, fd: Fd) -> SimResult<SaturationReport> {
        self.rec_unsupported("ioctl.fsleds_satstat");
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "ioctl.fsleds_satstat", t0, [fd.0, 0, 0]);
        self.charge_syscall();
        let r = self.openfile(fd).map(|_| self.saturation_report());
        let t1 = self.clock.now();
        self.tracer.end(t1);
        r
    }

    /// Opens an application-level span (e.g. one `grep` invocation); the
    /// span nests every syscall traced until [`Kernel::trace_app_end`].
    pub fn trace_app_begin(&mut self, name: &'static str) {
        let now = self.clock.now();
        self.tracer.begin(Layer::App, name, now, [0; 3]);
    }

    /// Closes the innermost open application-level span.
    pub fn trace_app_end(&mut self) {
        let now = self.clock.now();
        self.tracer.end(now);
    }

    /// Records a delivery-time prediction for an open file — the trace half
    /// of the accuracy audit. The prediction is tagged with the class of
    /// the device the file's data would come from (tape when any page of an
    /// HSM file is still offline, the home mount device otherwise), and
    /// paired by the audit with the durations of later reads on the fd.
    /// `table_generation` is the generation of the sleds table the
    /// estimate was priced from; the audit discards pairs whose reads
    /// happened under a different table.
    pub fn trace_predict(
        &mut self,
        fd: Fd,
        predicted: SimDuration,
        table_generation: u64,
    ) -> SimResult<()> {
        if !self.tracer.is_enabled() {
            return Ok(());
        }
        let of = self.openfile(fd)?;
        let class = self.serving_class_of(of.ino)?;
        let now = self.clock.now();
        self.tracer.predict(
            now,
            fd.0,
            predicted.as_nanos(),
            class_code(class),
            table_generation,
        );
        Ok(())
    }

    /// The numeric device-class code (as used in trace events and the
    /// per-class metrics arrays) that would serve a cold read of this open
    /// file. Pure query: charges nothing.
    pub fn serving_class_code(&self, fd: Fd) -> SimResult<u64> {
        let of = self.openfile(fd)?;
        Ok(class_code(self.serving_class_of(of.ino)?))
    }

    /// The device class that would serve a cold read of this file: the tape
    /// class while any page is HSM-offline, the home mount device otherwise
    /// (memory for mountless files).
    fn serving_class_of(&self, ino: Ino) -> SimResult<DeviceClass> {
        let node = self.inode(ino)?;
        let f = node
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, "predict on directory"))?;
        let mount = match node.mount {
            Some(m) => m,
            None => return Ok(DeviceClass::Memory),
        };
        let n = f.page_count();
        if let Some(h) = self.mounts[mount.0].hsm {
            if n > 0 && f.pages.runs_in(0, n - 1).iter().any(|r| r.dev == h.tape) {
                return Ok(self.devices[h.tape.0].class());
            }
        }
        Ok(self.devices[self.mounts[mount.0].dev.0].class())
    }

    /// Emits a device-command span: queue wait (when nonzero) followed by
    /// the device's own phase breakdown (seek/rotation/transfer,
    /// locate/stream, rpc/link, ...) as children. `ts` is the submission
    /// instant; the span covers `qwait + dur`.
    #[allow(clippy::too_many_arguments)]
    fn trace_device(
        &mut self,
        dev: DeviceId,
        write: bool,
        ts: SimTime,
        qwait: SimDuration,
        dur: SimDuration,
        sector: u64,
        sectors: u64,
    ) {
        if !self.tracer.is_enabled() {
            return;
        }
        let d = &self.devices[dev.0];
        let class = d.class();
        let phases: Vec<(&'static str, SimDuration)> = d
            .last_phases()
            .iter()
            .map(|p| (p.kind.label(), p.dur))
            .collect();
        // Time the device spent actually moving data, as opposed to
        // positioning for it — the first-byte/bandwidth split the
        // recalibrator rebuilds SLED rows from.
        let transfer_ns: u64 = d
            .last_phases()
            .iter()
            .filter(|p| {
                matches!(
                    p.kind,
                    PhaseKind::Transfer | PhaseKind::Stream | PhaseKind::Link
                )
            })
            .map(|p| p.dur.as_nanos())
            .sum();
        self.tracer.device(
            class_code(class),
            device_event_name(class, write),
            write,
            ts,
            qwait,
            dur,
            sector,
            sectors,
            sectors * SECTOR_SIZE,
            transfer_ns,
            &phases,
        );
    }

    /// Per-device counters.
    pub fn device_stats(&self, dev: DeviceId) -> Option<DevStats> {
        self.devices.get(dev.0).map(|d| d.stats())
    }

    /// The class of a device.
    pub fn device_class(&self, dev: DeviceId) -> Option<DeviceClass> {
        self.devices.get(dev.0).map(|d| d.class())
    }

    /// Number of attached devices; ids `0..count` are all valid.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The nominal profile of a device.
    pub fn device_profile(&self, dev: DeviceId) -> Option<sleds_devices::DeviceProfile> {
        self.devices.get(dev.0).map(|d| d.profile())
    }

    /// Capacity of a device in sectors.
    pub fn device_capacity(&self, dev: DeviceId) -> Option<u64> {
        self.devices.get(dev.0).map(|d| d.capacity_sectors())
    }

    /// The device's self-reported performance zones.
    pub fn device_zone_map(&self, dev: DeviceId) -> Option<Vec<sleds_devices::ZoneSpan>> {
        self.devices.get(dev.0).map(|d| d.zone_map())
    }

    /// Asks a device for its dynamic `(latency, bandwidth)` report for
    /// `sector` — the client/server SLEDs channel. `None` when the device
    /// has nothing to report.
    pub fn device_probe(&self, dev: DeviceId, sector: u64) -> Option<(f64, f64)> {
        self.devices
            .get(dev.0)
            .and_then(|d| d.dynamic_probe(sector))
    }

    /// Raw (uncached) device read, bypassing the file system — the kind of
    /// access lmbench's device probes perform. Charges the I/O time.
    pub fn raw_device_read(&mut self, dev: DeviceId, sector: u64, sectors: u64) -> SimResult<()> {
        if dev.0 >= self.devices.len() {
            return Err(SimError::new(Errno::Einval, format!("no device {dev:?}")));
        }
        self.device_command(dev, sector, sectors, false).map(|_| ())
    }

    // ------------------------------------------------------------------
    // Fault injection and retry
    // ------------------------------------------------------------------

    /// Installs `plan`'s injectors on every attached device whose name has
    /// an entry in the plan; devices without one are left untouched.
    pub fn apply_fault_plan(&mut self, plan: &FaultPlan) {
        self.rec_unsupported("apply_fault_plan");
        for d in &mut self.devices {
            if let Some(injector) = plan.injector_for(d.name()) {
                d.set_fault_injector(injector);
            }
        }
    }

    /// Coarse health of a device at the current virtual time. Pure query:
    /// charges nothing.
    pub fn device_fault_state(&self, dev: DeviceId) -> Option<FaultState> {
        let now = self.clock.now();
        self.devices.get(dev.0).map(|d| d.fault_state(now))
    }

    /// Sets the retry policy applied to failed commands on `class` devices.
    pub fn set_retry_policy(&mut self, class: DeviceClass, policy: RetryPolicy) {
        self.retry_policies[class_code(class) as usize] = policy;
    }

    /// The retry policy in force for `class` devices.
    pub fn retry_policy(&self, class: DeviceClass) -> RetryPolicy {
        self.retry_policies[class_code(class) as usize]
    }

    /// Issues one device command under the device class's [`RetryPolicy`].
    ///
    /// A command failed by an injected fault still occupied the bus: its
    /// recorded fault phase is charged as I/O wait either way. Errors the
    /// policy deems transient are reissued after an exponentially growing,
    /// deterministically jittered backoff on the virtual clock — mirrored
    /// into `io_retries`/`retry_backoff` in rusage and `io.retry` trace
    /// marks — until the attempt bound is hit (`EIO`) or the policy
    /// timeout elapses (`ETIMEDOUT`). Non-retryable errors propagate
    /// unchanged, so fault-free runs behave exactly as if this layer did
    /// not exist.
    fn device_command(
        &mut self,
        dev: DeviceId,
        sector: u64,
        sectors: u64,
        write: bool,
    ) -> SimResult<SimDuration> {
        let class = self.devices[dev.0].class();
        let policy = self.retry_policies[class_code(class) as usize];
        let tenant = self.active_tenant as u64;
        let first_try = self.clock.now();
        let mut attempt = 0u32;
        // Bounded: exits by `policy.max_attempts` or the policy timeout.
        loop {
            attempt += 1;
            let now = self.clock.now();
            // FIFO command queue: the device services commands in
            // submission order, so this command starts when the device
            // falls idle. In a single-tenant run the caller's clock has
            // always advanced past the previous completion and the wait
            // is zero; interleaved tenant timelines make it real. The
            // device sees the (monotone) service start, never the wait.
            let qwait = self.queues[dev.0].queue_wait(now);
            let start = now + qwait;
            let r = if write {
                self.devices[dev.0].write(sector, sectors, start)
            } else {
                self.devices[dev.0].read(sector, sectors, start)
            };
            let err = match r {
                Ok(t) => {
                    self.queues[dev.0].note_command(tenant, now, qwait, t, sectors * SECTOR_SIZE);
                    if let Some(rec) = self.recorder.as_mut() {
                        rec.note_device(
                            class_code(class),
                            qwait.as_nanos(),
                            t.as_nanos(),
                            sectors * SECTOR_SIZE,
                        );
                    }
                    self.charge_queue_wait(qwait);
                    self.charge_io(t);
                    self.trace_device(dev, write, now, qwait, t, sector, sectors);
                    if write {
                        self.usage.device_writes += 1;
                    } else {
                        self.usage.device_reads += 1;
                    }
                    return Ok(t);
                }
                Err(e) => e,
            };
            // Injected faults leave exactly one Fault phase behind; any
            // other error (bounds, read-only media) fails before the
            // device moves and costs no device time. Both conditions are
            // checked because a bounds error can follow an injected one
            // with the stale Fault phase still recorded.
            let cost = match self.devices[dev.0].last_phases() {
                [p] if p.kind == PhaseKind::Fault && err.context.ends_with("injected fault") => {
                    p.dur
                }
                _ => SimDuration::ZERO,
            };
            if cost.is_zero() {
                return Err(err);
            }
            // The faulted attempt occupied the device too: it queued like
            // any command and held the bus for its fault phase.
            self.queues[dev.0].note_command(tenant, now, qwait, cost, 0);
            if let Some(rec) = self.recorder.as_mut() {
                rec.note_device(class_code(class), qwait.as_nanos(), cost.as_nanos(), 0);
            }
            self.charge_queue_wait(qwait);
            self.charge_io(cost);
            let t_fail = self.clock.now();
            self.tracer.fault_inject(
                t_fail,
                class_code(class),
                u64::from(attempt),
                cost.as_nanos(),
            );
            if !RetryPolicy::retryable(err.errno) {
                return Err(err);
            }
            if attempt >= policy.max_attempts {
                return Err(SimError::new(
                    Errno::Eio,
                    format!(
                        "{}: gave up after {} attempts ({err})",
                        self.devices[dev.0].name(),
                        policy.max_attempts,
                    ),
                ));
            }
            if t_fail.duration_since(first_try) >= policy.timeout {
                return Err(SimError::new(
                    Errno::Etimedout,
                    format!("{}: retries timed out ({err})", self.devices[dev.0].name()),
                ));
            }
            let backoff = policy.backoff_for(attempt, &mut self.retry_rng);
            self.charge_io(backoff);
            self.usage.io_retries += 1;
            self.usage.retry_backoff = self.usage.retry_backoff.saturating_add(backoff);
            let t_retry = self.clock.now();
            self.tracer.io_retry(
                t_retry,
                class_code(class),
                u64::from(attempt),
                backoff.as_nanos(),
            );
        }
    }

    /// The device a mount allocates from.
    pub fn device_of_mount(&self, m: MountId) -> Option<DeviceId> {
        self.mounts.get(m.0).map(|mt| mt.dev)
    }

    /// The root directory inode of a mount.
    pub fn root_of_mount(&self, m: MountId) -> Option<Ino> {
        self.mounts.get(m.0).map(|mt| mt.root)
    }

    /// The tape device of an HSM mount.
    pub fn tape_of_mount(&self, m: MountId) -> Option<DeviceId> {
        self.mounts.get(m.0).and_then(|mt| mt.hsm).map(|h| h.tape)
    }

    /// Charges application CPU time (computation between I/O calls).
    pub fn charge_cpu(&mut self, d: SimDuration) {
        self.clock.advance(d);
        self.usage.cpu += d;
    }

    /// Charges I/O wait time from outside the kernel's own read/write
    /// paths (used by the AIO model's swap accounting).
    pub fn charge_io_public(&mut self, d: SimDuration) {
        self.rec_unsupported("charge_io_public");
        self.charge_io(d);
    }

    /// Non-perturbing cache residency probe by raw page key.
    pub fn cache_probe(&self, key: PageKey) -> bool {
        self.cache.contains(key)
    }

    /// Starts a measured job.
    pub fn start_job(&mut self) -> JobTimer {
        JobTimer {
            started: self.clock.now(),
            usage: self.usage,
        }
    }

    /// Finishes a measured job, returning elapsed time and usage deltas.
    pub fn finish_job(&mut self, t: &JobTimer) -> JobReport {
        JobReport {
            elapsed: self.clock.now() - t.started,
            usage: self.usage.since(&t.usage),
        }
    }

    /// One ordinary syscall: a logical syscall plus a boundary crossing.
    fn charge_syscall(&mut self) {
        self.usage.syscalls += 1;
        self.charge_crossing();
    }

    /// One kernel boundary crossing: the `syscall_cpu` trap cost. Ordinary
    /// syscalls pay it per call; a ring batch pays it once in `ring_enter`
    /// however many ops it carries.
    fn charge_crossing(&mut self) {
        self.usage.syscall_crossings += 1;
        let d = self.cfg.syscall_cpu;
        self.clock.advance(d);
        self.usage.cpu += d;
    }

    /// One serviced ring operation: a logical syscall charged at the
    /// in-kernel dispatch cost instead of the trap cost.
    fn charge_ring_op(&mut self) {
        self.usage.syscalls += 1;
        let d = self.cfg.ring_op_cpu;
        self.clock.advance(d);
        self.usage.cpu += d;
    }

    fn charge_memcpy(&mut self, bytes: u64) {
        let d = self.cfg.mem_latency + self.cfg.mem_bandwidth.transfer_time(bytes);
        self.clock.advance(d);
        self.usage.cpu += d;
    }

    fn charge_io(&mut self, d: SimDuration) {
        self.clock.advance(d);
        self.usage.io_wait += d;
    }

    /// Queue wait is I/O wait the caller pays before the device moves;
    /// also mirrored into its own rusage column so tenants can see how
    /// much of their I/O time was spent behind other tenants.
    fn charge_queue_wait(&mut self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        self.charge_io(d);
        self.usage.queue_wait = self.usage.queue_wait.saturating_add(d);
    }

    // ------------------------------------------------------------------
    // Devices and mounts
    // ------------------------------------------------------------------

    fn add_device(&mut self, dev: Box<dyn BlockDevice>) -> DeviceId {
        self.devices.push(dev);
        self.queues.push(CmdQueue::new(self.cfg.cmd_queue_capacity));
        DeviceId(self.devices.len() - 1)
    }

    /// Mounts `device` at `path` (the directory must already exist, or be
    /// `/`). Returns the mount id.
    pub fn mount_device(
        &mut self,
        path: &str,
        device: Box<dyn BlockDevice>,
        read_only: bool,
    ) -> SimResult<MountId> {
        let dir = self.resolve(path)?;
        let node = self.inode(dir)?;
        if node.kind() != FileKind::Dir {
            return Err(SimError::new(Errno::Enotdir, format!("mount({path})")));
        }
        if node.mount.is_some() {
            return Err(SimError::new(Errno::Eexist, format!("mount({path}): busy")));
        }
        let dev = self.add_device(device);
        let id = MountId(self.mounts.len());
        self.mounts.push(Mount {
            dev,
            root: dir,
            // Leave the first megabyte for "metadata", like a real fs.
            next_sector: 2048,
            read_only,
            frag: None,
            hsm: None,
            volume: None,
        });
        self.inode_mut(dir)?.mount = Some(id);
        Ok(id)
    }

    /// Mounts a disk file system (ext2-like) at `path`.
    pub fn mount_disk(
        &mut self,
        path: &str,
        disk: sleds_devices::DiskDevice,
    ) -> SimResult<MountId> {
        self.mount_device(path, Box::new(disk), false)
    }

    /// Mounts a CD-ROM (ISO9660-like, read-only) at `path`.
    pub fn mount_cdrom(
        &mut self,
        path: &str,
        cd: sleds_devices::CdRomDevice,
    ) -> SimResult<MountId> {
        self.mount_device(path, Box::new(cd), true)
    }

    /// Mounts an NFS export at `path`.
    pub fn mount_nfs(&mut self, path: &str, nfs: sleds_devices::NfsDevice) -> SimResult<MountId> {
        self.mount_device(path, Box::new(nfs), false)
    }

    /// Mounts a hierarchical storage manager at `path`: a staging disk in
    /// front of a tape device (drive or jukebox). Files live on disk until
    /// migrated; offline pages are staged back in `stage_chunk_pages` units.
    pub fn mount_hsm(
        &mut self,
        path: &str,
        disk: sleds_devices::DiskDevice,
        tape: Box<dyn BlockDevice>,
        stage_chunk_pages: u64,
    ) -> SimResult<MountId> {
        let id = self.mount_device(path, Box::new(disk), false)?;
        let tape_id = self.add_device(tape);
        self.mounts[id.0].hsm = Some(HsmConfig {
            tape: tape_id,
            stage_chunk_pages: stage_chunk_pages.max(1),
            tape_next_sector: 0,
        });
        Ok(id)
    }

    /// Mounts a redundant volume at `path`: one mount spanning several
    /// member devices under `layout`. The first device is the primary
    /// (the mount's allocator device); the rest hold mirrors, stripes or
    /// coded fragments. Files created or installed on the mount get the
    /// layout automatically; reads reroute and hedge across members per
    /// the machine's [`HedgePolicy`].
    pub fn mount_volume(
        &mut self,
        path: &str,
        layout: VolumeLayout,
        mut members: Vec<Box<dyn BlockDevice>>,
    ) -> SimResult<MountId> {
        if members.len() < layout.min_devices() {
            return Err(SimError::new(
                Errno::Einval,
                format!(
                    "mount_volume({path}): {} layout needs at least {} devices, got {}",
                    layout.name(),
                    layout.min_devices(),
                    members.len()
                ),
            ));
        }
        if let VolumeLayout::Coded { k } = layout {
            if k == 0 {
                return Err(SimError::new(
                    Errno::Einval,
                    format!("mount_volume({path}): coded layout needs k >= 1"),
                ));
            }
        }
        let rest = members.split_off(1);
        let primary = members.pop().ok_or_else(|| {
            SimError::new(Errno::Einval, format!("mount_volume({path}): no devices"))
        })?;
        let id = self.mount_device(path, primary, false)?;
        let mut devices = vec![self.mounts[id.0].dev];
        let mut replica_next = Vec::new();
        for d in rest {
            devices.push(self.add_device(d));
            // Same metadata reservation as the primary allocator.
            replica_next.push(2048);
        }
        self.mounts[id.0].volume = Some(VolumeState {
            layout,
            devices,
            replica_next,
            stripe_cursor: 0,
        });
        Ok(id)
    }

    /// The layout of a volume mount, or `None` for ordinary mounts.
    pub fn volume_layout(&self, m: MountId) -> Option<VolumeLayout> {
        self.mounts.get(m.0)?.volume.as_ref().map(|v| v.layout)
    }

    /// Member devices of a volume mount (primary first); empty for
    /// ordinary mounts.
    pub fn volume_members(&self, m: MountId) -> Vec<DeviceId> {
        self.mounts
            .get(m.0)
            .and_then(|mt| mt.volume.as_ref())
            .map(|v| v.devices.clone())
            .unwrap_or_default()
    }

    /// Replaces the machine's hedged-read policy. Setup mutation: not
    /// capturable mid-recording.
    pub fn set_hedge_policy(&mut self, policy: HedgePolicy) {
        self.rec_unsupported("set_hedge_policy");
        self.cfg.hedge = policy;
    }

    /// The hedged-read policy in force.
    pub fn hedge_policy(&self) -> HedgePolicy {
        self.cfg.hedge
    }

    /// Makes future allocations on `mount` fragmented: files are laid out
    /// in `chunk_pages`-page runs separated by gaps of up to `gap_pages`.
    pub fn set_fragmentation(
        &mut self,
        mount: MountId,
        chunk_pages: u64,
        gap_pages: u64,
        seed: u64,
    ) {
        if let Some(m) = self.mounts.get_mut(mount.0) {
            m.frag = Some(FragConfig {
                chunk_pages: chunk_pages.max(1),
                gap_pages,
                rng: DetRng::new(seed),
            });
        }
    }

    // ------------------------------------------------------------------
    // Path resolution
    // ------------------------------------------------------------------

    fn inode(&self, ino: Ino) -> SimResult<&Inode> {
        self.inodes
            .get(&ino)
            .ok_or_else(|| SimError::new(Errno::Estale, format!("stale inode {ino:?}")))
    }

    fn inode_mut(&mut self, ino: Ino) -> SimResult<&mut Inode> {
        self.inodes
            .get_mut(&ino)
            .ok_or_else(|| SimError::new(Errno::Estale, format!("stale inode {ino:?}")))
    }

    fn file_of(&self, ino: Ino) -> SimResult<&FileNode> {
        self.inode(ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, format!("inode {ino:?} is a directory")))
    }

    fn file_of_mut(&mut self, ino: Ino) -> SimResult<&mut FileNode> {
        self.inode_mut(ino)?
            .as_file_mut()
            .ok_or_else(|| SimError::new(Errno::Eisdir, format!("inode {ino:?} is a directory")))
    }

    fn dir_of_mut(&mut self, ino: Ino) -> SimResult<&mut BTreeMap<String, Ino>> {
        self.inode_mut(ino)?.as_dir_mut().ok_or_else(|| {
            SimError::new(Errno::Enotdir, format!("inode {ino:?} is not a directory"))
        })
    }

    fn openfile_mut(&mut self, fd: Fd) -> SimResult<&mut OpenFile> {
        self.fds
            .get_mut(&fd.0)
            .ok_or_else(|| SimError::new(Errno::Ebadf, format!("fd {}", fd.0)))
    }

    fn components(path: &str) -> SimResult<Vec<&str>> {
        if !path.starts_with('/') {
            return Err(SimError::new(
                Errno::Einval,
                format!("path {path:?} must be absolute"),
            ));
        }
        Ok(path
            .split('/')
            .filter(|c| !c.is_empty() && *c != ".")
            .collect())
    }

    /// Resolves an absolute path to an inode.
    pub fn resolve(&self, path: &str) -> SimResult<Ino> {
        let mut cur = self.root;
        for comp in Self::components(path)? {
            let node = self.inode(cur)?;
            let dir = node
                .as_dir()
                .ok_or_else(|| SimError::new(Errno::Enotdir, format!("resolve({path})")))?;
            cur = *dir
                .get(comp)
                .ok_or_else(|| SimError::new(Errno::Enoent, format!("resolve({path})")))?;
        }
        Ok(cur)
    }

    fn resolve_parent<'p>(&self, path: &'p str) -> SimResult<(Ino, &'p str)> {
        let comps = Self::components(path)?;
        let (name, dirs) = comps
            .split_last()
            .ok_or_else(|| SimError::new(Errno::Einval, format!("resolve_parent({path})")))?;
        let mut cur = self.root;
        for comp in dirs {
            let node = self.inode(cur)?;
            let dir = node
                .as_dir()
                .ok_or_else(|| SimError::new(Errno::Enotdir, format!("resolve_parent({path})")))?;
            cur = *dir
                .get(*comp)
                .ok_or_else(|| SimError::new(Errno::Enoent, format!("resolve_parent({path})")))?;
        }
        Ok((cur, name))
    }

    fn alloc_ino(&mut self) -> Ino {
        let i = Ino(self.next_ino);
        self.next_ino += 1;
        i
    }

    // ------------------------------------------------------------------
    // Directory syscalls
    // ------------------------------------------------------------------

    /// Creates a directory.
    pub fn mkdir(&mut self, path: &str) -> SimResult<()> {
        if self.capture_active() {
            self.rec_begin(CapturedCall::Mkdir {
                path: path.to_string(),
            });
        }
        let r = self.mkdir_impl(path);
        self.rec_finish(match &r {
            Ok(()) => Ok((0, None)),
            Err(e) => Err(e),
        });
        r
    }

    fn mkdir_impl(&mut self, path: &str) -> SimResult<()> {
        self.charge_syscall();
        let (parent, name) = self.resolve_parent(path)?;
        let mount = self.inode(parent)?.mount;
        let parent_dir = self
            .inode(parent)?
            .as_dir()
            .ok_or_else(|| SimError::new(Errno::Enotdir, format!("mkdir({path})")))?;
        if parent_dir.contains_key(name) {
            return Err(SimError::new(Errno::Eexist, format!("mkdir({path})")));
        }
        let ino = self.alloc_ino();
        let now = self.clock.now();
        self.inodes.insert(
            ino,
            Inode {
                ino,
                mount,
                body: InodeBody::Dir(Default::default()),
                mtime: now,
            },
        );
        let name = name.to_string();
        self.dir_of_mut(parent)?.insert(name, ino);
        Ok(())
    }

    /// Lists a directory's entries in name order.
    pub fn readdir(&mut self, path: &str) -> SimResult<Vec<String>> {
        if self.capture_active() {
            self.rec_begin(CapturedCall::Readdir {
                path: path.to_string(),
            });
        }
        let r = self.readdir_impl(path);
        self.rec_finish(match &r {
            Ok(names) => Ok((names.len() as u64, None)),
            Err(e) => Err(e),
        });
        r
    }

    fn readdir_impl(&mut self, path: &str) -> SimResult<Vec<String>> {
        self.charge_syscall();
        let ino = self.resolve(path)?;
        let node = self.inode(ino)?;
        let dir = node
            .as_dir()
            .ok_or_else(|| SimError::new(Errno::Enotdir, format!("readdir({path})")))?;
        Ok(dir.keys().cloned().collect())
    }

    /// Returns metadata for a path.
    pub fn stat(&mut self, path: &str) -> SimResult<Stat> {
        if self.capture_active() {
            self.rec_begin(CapturedCall::Stat {
                path: path.to_string(),
            });
        }
        let r = self.stat_impl(path);
        self.rec_finish(match &r {
            Ok(st) => Ok((st.size, None)),
            Err(e) => Err(e),
        });
        r
    }

    fn stat_impl(&mut self, path: &str) -> SimResult<Stat> {
        self.charge_syscall();
        let ino = self.resolve(path)?;
        self.stat_ino(ino)
    }

    fn stat_ino(&self, ino: Ino) -> SimResult<Stat> {
        let node = self.inode(ino)?;
        Ok(Stat {
            ino,
            kind: node.kind(),
            size: node.as_file().map(|f| f.size).unwrap_or(0),
            mount: node.mount,
            dev: node.mount.and_then(|m| self.mounts.get(m.0)).map(|m| m.dev),
            mtime: node.mtime,
        })
    }

    /// Returns metadata for an open file.
    pub fn fstat(&mut self, fd: Fd) -> SimResult<Stat> {
        self.rec_begin(CapturedCall::Fstat { fd: fd.0 });
        let r = self.fstat_impl(fd);
        self.rec_finish(match &r {
            Ok(st) => Ok((st.size, None)),
            Err(e) => Err(e),
        });
        r
    }

    fn fstat_impl(&mut self, fd: Fd) -> SimResult<Stat> {
        self.charge_syscall();
        let of = self.openfile(fd)?;
        self.stat_ino(of.ino)
    }

    /// Removes a file, dropping its cached pages.
    pub fn unlink(&mut self, path: &str) -> SimResult<()> {
        if self.capture_active() {
            self.rec_begin(CapturedCall::Unlink {
                path: path.to_string(),
            });
        }
        let r = self.unlink_impl(path);
        self.rec_finish(match &r {
            Ok(()) => Ok((0, None)),
            Err(e) => Err(e),
        });
        r
    }

    fn unlink_impl(&mut self, path: &str) -> SimResult<()> {
        self.charge_syscall();
        let (parent, name) = self.resolve_parent(path)?;
        let ino = {
            let dir = self
                .inode(parent)?
                .as_dir()
                .ok_or_else(|| SimError::new(Errno::Enotdir, format!("unlink({path})")))?;
            *dir.get(name)
                .ok_or_else(|| SimError::new(Errno::Enoent, format!("unlink({path})")))?
        };
        if self.inode(ino)?.kind() == FileKind::Dir {
            return Err(SimError::new(Errno::Eisdir, format!("unlink({path})")));
        }
        let name = name.to_string();
        self.dir_of_mut(parent)?.remove(&name);
        self.inodes.remove(&ino);
        self.cache.remove_file(ino.0);
        Ok(())
    }

    // ------------------------------------------------------------------
    // File descriptor syscalls
    // ------------------------------------------------------------------

    fn openfile(&self, fd: Fd) -> SimResult<OpenFile> {
        self.fds
            .get(&fd.0)
            .copied()
            .ok_or_else(|| SimError::new(Errno::Ebadf, format!("fd {}", fd.0)))
    }

    /// Opens (and possibly creates) a file.
    pub fn open(&mut self, path: &str, flags: OpenFlags) -> SimResult<Fd> {
        let t0 = self.clock.now();
        self.tracer.begin(Layer::Syscall, "open", t0, [0; 3]);
        if self.capture_active() {
            self.rec_begin(CapturedCall::Open {
                path: path.to_string(),
                flags,
            });
        }
        let r = self.open_impl(path, flags);
        let t1 = self.clock.now();
        self.tracer.end(t1);
        self.rec_finish(match &r {
            Ok(fd) => Ok((fd.0, None)),
            Err(e) => Err(e),
        });
        r
    }

    fn open_impl(&mut self, path: &str, flags: OpenFlags) -> SimResult<Fd> {
        self.charge_syscall();
        self.do_open(path, flags)
    }

    /// Open minus the syscall charge: shared by `open` and the ring path.
    fn do_open(&mut self, path: &str, flags: OpenFlags) -> SimResult<Fd> {
        let ino = match self.resolve(path) {
            Ok(i) => {
                if self.inode(i)?.kind() == FileKind::Dir && (flags.write || flags.truncate) {
                    return Err(SimError::new(Errno::Eisdir, format!("open({path})")));
                }
                if flags.truncate {
                    self.check_writable_mount(i, path)?;
                    let node = self.inode_mut(i)?;
                    if let Some(f) = node.as_file_mut() {
                        f.size = 0;
                        f.data.clear();
                        f.pages.clear();
                        f.tape_home = None;
                    }
                    self.cache.remove_file(i.0);
                }
                i
            }
            Err(e) if e.errno == Errno::Enoent && flags.create => {
                let (parent, name) = self.resolve_parent(path)?;
                let mount = self.inode(parent)?.mount.ok_or_else(|| {
                    SimError::new(Errno::Erofs, format!("open({path}): no mount here"))
                })?;
                if self.mounts[mount.0].read_only {
                    return Err(SimError::new(Errno::Erofs, format!("open({path})")));
                }
                let ino = self.alloc_ino();
                let now = self.clock.now();
                self.inodes.insert(
                    ino,
                    Inode {
                        ino,
                        mount: Some(mount),
                        body: InodeBody::File(FileNode::default()),
                        mtime: now,
                    },
                );
                let name = name.to_string();
                self.inode_mut(parent)?
                    .as_dir_mut()
                    .ok_or_else(|| SimError::new(Errno::Enotdir, format!("open({path})")))?
                    .insert(name, ino);
                ino
            }
            Err(e) => return Err(e),
        };
        if flags.write {
            self.check_writable_mount(ino, path)?;
        }
        let fd = Fd(self.next_fd);
        self.next_fd += 1;
        self.fds.insert(fd.0, OpenFile { ino, pos: 0, flags });
        Ok(fd)
    }

    fn check_writable_mount(&self, ino: Ino, path: &str) -> SimResult<()> {
        let node = self.inode(ino)?;
        if let Some(m) = node.mount {
            if self.mounts[m.0].read_only {
                return Err(SimError::new(Errno::Erofs, format!("open({path})")));
            }
        }
        Ok(())
    }

    /// Closes a file descriptor.
    pub fn close(&mut self, fd: Fd) -> SimResult<()> {
        let t0 = self.clock.now();
        self.tracer.begin(Layer::Syscall, "close", t0, [fd.0, 0, 0]);
        self.rec_begin(CapturedCall::Close { fd: fd.0 });
        self.charge_syscall();
        let r = self.do_close(fd);
        let t1 = self.clock.now();
        self.tracer.end(t1);
        self.rec_finish(match &r {
            Ok(()) => Ok((0, None)),
            Err(e) => Err(e),
        });
        r
    }

    /// Close minus the syscall charge: shared by `close` and the ring
    /// path. Drops any installed pick program with the descriptor.
    fn do_close(&mut self, fd: Fd) -> SimResult<()> {
        self.fd_progs.remove(&fd.0);
        self.fds
            .remove(&fd.0)
            .map(|_| ())
            .ok_or_else(|| SimError::new(Errno::Ebadf, format!("close({})", fd.0)))
    }

    /// Repositions a file offset.
    pub fn lseek(&mut self, fd: Fd, offset: i64, whence: Whence) -> SimResult<u64> {
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "lseek", t0, [fd.0, offset as u64, 0]);
        self.rec_begin(CapturedCall::Lseek {
            fd: fd.0,
            offset,
            whence: match whence {
                Whence::Set => crate::capture::WHENCE_SET,
                Whence::Cur => crate::capture::WHENCE_CUR,
                Whence::End => crate::capture::WHENCE_END,
            },
        });
        let r = self.lseek_impl(fd, offset, whence);
        let t1 = self.clock.now();
        self.tracer.end(t1);
        self.rec_finish(match &r {
            Ok(n) => Ok((*n, None)),
            Err(e) => Err(e),
        });
        r
    }

    fn lseek_impl(&mut self, fd: Fd, offset: i64, whence: Whence) -> SimResult<u64> {
        self.charge_syscall();
        let of = self.openfile(fd)?;
        let size = self.inode(of.ino)?.as_file().map(|f| f.size).unwrap_or(0);
        let base = match whence {
            Whence::Set => 0i64,
            Whence::Cur => of.pos as i64,
            Whence::End => size as i64,
        };
        let new = base
            .checked_add(offset)
            .filter(|&n| n >= 0)
            .ok_or_else(|| SimError::new(Errno::Einval, format!("lseek({}, {offset})", fd.0)))?
            as u64;
        self.openfile_mut(fd)?.pos = new;
        Ok(new)
    }

    /// Reads up to `len` bytes at the current offset.
    ///
    /// Returns the bytes actually read (shorter at end of file, empty at or
    /// past it), advancing the offset.
    pub fn read(&mut self, fd: Fd, len: usize) -> SimResult<Vec<u8>> {
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "read", t0, [fd.0, len as u64, 0]);
        self.rec_begin(CapturedCall::Read {
            fd: fd.0,
            len: len as u64,
        });
        let r = self.read_impl(fd, len);
        let t1 = self.clock.now();
        self.tracer.end(t1);
        self.rec_finish(match &r {
            Ok(data) => Ok((data.len() as u64, Some(&data[..]))),
            Err(e) => Err(e),
        });
        r
    }

    fn read_impl(&mut self, fd: Fd, len: usize) -> SimResult<Vec<u8>> {
        self.charge_syscall();
        self.do_read_fd(fd, None, len)
    }

    /// Positioned read: `pread(2)`. Does not move the file offset.
    pub fn pread(&mut self, fd: Fd, pos: u64, len: usize) -> SimResult<Vec<u8>> {
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "pread", t0, [fd.0, len as u64, pos]);
        self.rec_begin(CapturedCall::Pread {
            fd: fd.0,
            pos,
            len: len as u64,
        });
        let r = self.pread_impl(fd, pos, len);
        let t1 = self.clock.now();
        self.tracer.end(t1);
        self.rec_finish(match &r {
            Ok(data) => Ok((data.len() as u64, Some(&data[..]))),
            Err(e) => Err(e),
        });
        r
    }

    fn pread_impl(&mut self, fd: Fd, pos: u64, len: usize) -> SimResult<Vec<u8>> {
        self.charge_syscall();
        self.do_read_fd(fd, Some(pos), len)
    }

    /// The single fd-level read path `read`, `pread` and the ring's
    /// `Pread` all charge through: permission check, fault accounting via
    /// [`Kernel::do_read`], offset advance (sequential reads only) and
    /// `bytes_read`. `pos` is `None` for a sequential read at the file
    /// offset, `Some` for a positioned read that must not move it.
    fn do_read_fd(&mut self, fd: Fd, pos: Option<u64>, len: usize) -> SimResult<Vec<u8>> {
        let of = self.openfile(fd)?;
        if !of.flags.read {
            let name = if pos.is_some() { "pread" } else { "read" };
            return Err(SimError::new(
                Errno::Ebadf,
                format!("{name} on write-only fd"),
            ));
        }
        let data = self.do_read(of.ino, pos.unwrap_or(of.pos), len)?;
        if pos.is_none() {
            self.openfile_mut(fd)?.pos += data.len() as u64;
        }
        self.usage.bytes_read += data.len() as u64;
        Ok(data)
    }

    /// Writes `buf` at the current offset (or the end with `O_APPEND`),
    /// extending the file as needed. Returns bytes written.
    pub fn write(&mut self, fd: Fd, buf: &[u8]) -> SimResult<usize> {
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "write", t0, [fd.0, buf.len() as u64, 0]);
        if self.capture_active() {
            self.rec_begin(CapturedCall::Write {
                fd: fd.0,
                data: buf.to_vec(),
            });
        }
        let r = self.write_impl(fd, buf);
        let t1 = self.clock.now();
        self.tracer.end(t1);
        self.rec_finish(match &r {
            Ok(n) => Ok((*n as u64, None)),
            Err(e) => Err(e),
        });
        r
    }

    fn write_impl(&mut self, fd: Fd, buf: &[u8]) -> SimResult<usize> {
        self.charge_syscall();
        let of = self.openfile(fd)?;
        if !of.flags.write {
            return Err(SimError::new(Errno::Ebadf, "write on read-only fd"));
        }
        let pos = if of.flags.append {
            self.inode(of.ino)?.as_file().map(|f| f.size).unwrap_or(0)
        } else {
            of.pos
        };
        self.do_write(of.ino, pos, buf)?;
        self.openfile_mut(fd)?.pos = pos + buf.len() as u64;
        self.usage.bytes_written += buf.len() as u64;
        Ok(buf.len())
    }

    /// Flushes an open file's dirty pages to its device.
    pub fn fsync(&mut self, fd: Fd) -> SimResult<()> {
        let t0 = self.clock.now();
        self.tracer.begin(Layer::Syscall, "fsync", t0, [fd.0, 0, 0]);
        self.rec_begin(CapturedCall::Fsync { fd: fd.0 });
        let r = self.fsync_impl(fd);
        let t1 = self.clock.now();
        self.tracer.end(t1);
        self.rec_finish(match &r {
            Ok(()) => Ok((0, None)),
            Err(e) => Err(e),
        });
        r
    }

    fn fsync_impl(&mut self, fd: Fd) -> SimResult<()> {
        self.charge_syscall();
        let of = self.openfile(fd)?;
        let dirty = self.cache.dirty_pages_of(of.ino.0);
        for key in dirty {
            self.writeback(key)?;
            self.cache.mark_clean(key);
        }
        Ok(())
    }

    /// Drops the entire page cache, writing dirty pages back first. Used by
    /// experiments that need a cold cache.
    pub fn drop_caches(&mut self) -> SimResult<()> {
        self.rec_unsupported("drop_caches");
        let inos: Vec<u64> = self.inodes.keys().map(|i| i.0).collect();
        for ino in inos {
            for key in self.cache.dirty_pages_of(ino) {
                self.writeback(key)?;
                self.cache.mark_clean(key);
            }
        }
        self.cache.clear();
        Ok(())
    }

    // ------------------------------------------------------------------
    // The read path
    // ------------------------------------------------------------------

    fn do_read(&mut self, ino: Ino, pos: u64, len: usize) -> SimResult<Vec<u8>> {
        let (size, _) = {
            let node = self.inode(ino)?;
            let f = node
                .as_file()
                .ok_or_else(|| SimError::new(Errno::Eisdir, "read on directory"))?;
            (f.size, ())
        };
        if pos >= size || len == 0 {
            return Ok(Vec::new());
        }
        // Saturation intended: a request past u64::MAX still just reads to
        // end-of-file.
        let end = size.min(pos.saturating_add(len as u64));
        let first_page = pos / PAGE_SIZE;
        let last_page = (end - 1) / PAGE_SIZE;

        self.fault_in(ino, first_page, last_page)?;

        // Copy out to the caller. Sparse installs have no materialized
        // contents past `data.len()`; holes read as zeros.
        let bytes = end - pos;
        self.charge_memcpy(bytes);
        let f = self.file_of(ino)?;
        let len = f.data.len() as u64;
        let (lo, hi) = (pos.min(len), end.min(len));
        let mut out = f.data[lo as usize..hi as usize].to_vec();
        out.resize(bytes as usize, 0);
        Ok(out)
    }

    /// Ensures pages `[first, last]` of `ino` are resident, charging faults.
    fn fault_in(&mut self, ino: Ino, first_page: u64, last_page: u64) -> SimResult<()> {
        let mut p = first_page;
        while p <= last_page {
            let key = PageKey::new(ino.0, p);
            if self.cache.lookup(key) {
                self.usage.minor_faults += 1;
                let now = self.clock.now();
                self.tracer.cache_hit(now, p, ino.0);
                p += 1;
                continue;
            }
            // A missing run starts here. Stage the first page if it is
            // offline (this may remap part of the layout), then bound the
            // device command by three O(log runs) queries — demand window
            // end, next resident page, end of the maximal device-contiguous
            // layout run — instead of probing page by page.
            let run_start = p;
            let start_place = self.stage_if_offline(ino, p)?;
            let layout_end = self.layout_run_end(ino, p)?;
            let cache_end = self.cache.next_boundary(ino.0, p);
            let run_end = (last_page + 1).min(layout_end).min(cache_end);
            let run_len = run_end - run_start;
            // Readahead: extend the device command past the demand window
            // while pages stay missing and device-contiguous. Prefetched
            // pages are inserted but are not major faults — touching them
            // later is a cache hit, as in a real kernel.
            let mut ra_len = 0u64;
            if self.cfg.readahead_pages > 0 && run_end > last_page {
                let file_pages = self
                    .inode(ino)?
                    .as_file()
                    .map(|f| f.page_count())
                    .unwrap_or(0);
                let ra_cap = (run_end + self.cfg.readahead_pages)
                    .min(file_pages)
                    .min(layout_end)
                    .min(cache_end);
                ra_len = ra_cap.saturating_sub(run_end);
            }
            // One clustered device command for the run (plus readahead),
            // routed and hedged across volume members when the file is
            // redundant.
            let now = self.clock.now();
            self.tracer.cache_miss(now, run_start, run_len, ino.0);
            self.redundant_read(ino, start_place, run_start, run_len + ra_len)?;
            self.usage.major_faults += run_len;
            let fault_cpu = SimDuration::from_nanos(self.cfg.fault_cpu.as_nanos() * run_len);
            self.clock.advance(fault_cpu);
            self.usage.cpu += fault_cpu;
            for i in 0..run_len + ra_len {
                self.cache_insert(PageKey::new(ino.0, run_start + i), false)?;
            }
            p = run_end;
        }
        Ok(())
    }

    fn place_of(&self, ino: Ino, page: u64) -> SimResult<PagePlace> {
        let f = self
            .inode(ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, "place_of on directory"))?;
        f.pages
            .place_of(page)
            .ok_or_else(|| SimError::new(Errno::Eio, format!("page {page} beyond mapping")))
    }

    /// First page past `page` at which the file's layout stops being
    /// device-contiguous with `page` — the end of its maximal layout run.
    fn layout_run_end(&self, ino: Ino, page: u64) -> SimResult<u64> {
        let f = self
            .inode(ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, "layout walk on directory"))?;
        f.pages
            .contiguous_end(page)
            .ok_or_else(|| SimError::new(Errno::Eio, format!("page {page} beyond mapping")))
    }

    fn is_offline(&self, ino: Ino, page: u64) -> SimResult<bool> {
        let node = self.inode(ino)?;
        let mount = match node.mount {
            Some(m) => m,
            None => return Ok(false),
        };
        let hsm = match self.mounts[mount.0].hsm {
            Some(h) => h,
            None => return Ok(false),
        };
        Ok(self.place_of(ino, page)?.dev == hsm.tape)
    }

    /// If page `p` of `ino` lives on tape, stages a chunk around it onto the
    /// staging disk and remaps the staged pages. Returns the (possibly new)
    /// place of page `p`.
    fn stage_if_offline(&mut self, ino: Ino, p: u64) -> SimResult<PagePlace> {
        if !self.is_offline(ino, p)? {
            return self.place_of(ino, p);
        }
        let mount = self
            .inode(ino)?
            .mount
            .ok_or_else(|| SimError::new(Errno::Eio, "offline page on an unmounted inode"))?;
        let hsm = self.mounts[mount.0]
            .hsm
            .ok_or_else(|| SimError::new(Errno::Eio, "offline page on a non-HSM mount"))?;
        let page_count = self.file_of(ino)?.page_count();
        let chunk = hsm.stage_chunk_pages;
        let chunk_start = (p / chunk) * chunk;
        let chunk_end = (chunk_start + chunk).min(page_count);

        // Walk the layout runs inside the chunk: each tape-resident run
        // (clipped to the chunk) is staged with one tape read plus one disk
        // write, then remapped to the disk copy. Pages already staged are
        // skipped a whole run at a time.
        let mut q = chunk_start;
        while q < chunk_end {
            let run = self
                .file_of(ino)?
                .pages
                .run_of(q)
                .ok_or_else(|| SimError::new(Errno::Eio, format!("page {q} beyond mapping")))?;
            let run_end = run.end_page().min(chunk_end);
            if run.dev != hsm.tape {
                q = run_end;
                continue;
            }
            let first = run.place_of(q);
            let run_len = run_end - q;
            // Tape read.
            self.device_command(first.dev, first.sector, run_len * SECTORS_PER_PAGE, false)?;
            // Disk write of the staged copy.
            let sectors = self.allocate_sectors(mount, run_len)?;
            let disk = self.mounts[mount.0].dev;
            self.device_command(disk, sectors, run_len * SECTORS_PER_PAGE, true)?;
            // Remap, remembering the tape home.
            let f = self.file_of_mut(ino)?;
            if f.tape_home.is_none() {
                f.tape_home = Some(f.pages.clone());
            }
            f.pages.remap_run(q, run_len, disk, sectors);
            q = run_end;
        }
        self.place_of(ino, p)
    }

    // ------------------------------------------------------------------
    // Redundant reads: reroute, hedging, coded fan-out
    // ------------------------------------------------------------------

    /// The volume layout governing `ino`, if its mount is a volume.
    fn volume_of(&self, ino: Ino) -> Option<VolumeLayout> {
        let mount = self.inodes.get(&ino)?.mount?;
        self.mounts.get(mount.0)?.volume.as_ref().map(|v| v.layout)
    }

    /// Every place that can serve pages starting at `first_page` of `ino`:
    /// `(member index, device, first sector)`, primary first.
    fn replica_candidates(
        &self,
        ino: Ino,
        primary: PagePlace,
        first_page: u64,
    ) -> SimResult<Vec<(usize, DeviceId, u64)>> {
        let f = self.file_of(ino)?;
        let mut out = vec![(0usize, primary.dev, primary.sector)];
        for (i, map) in f.replicas.iter().enumerate() {
            if let Some(p) = map.place_of(first_page) {
                out.push((i + 1, p.dev, p.sector));
            }
        }
        Ok(out)
    }

    /// Healthy-profile service estimate for moving `bytes` off `dev` —
    /// the SLED-predicted deadline basis for hedging.
    fn nominal_estimate(&self, dev: DeviceId, bytes: u64) -> SimDuration {
        let p = self.devices[dev.0].profile();
        p.nominal_latency + p.nominal_bandwidth.transfer_time(bytes)
    }

    /// Live fault-priced completion prediction for a command of `bytes`
    /// submitted to `dev` at `now`: queue wait plus the profile estimate
    /// inflated by the device's current fault state.
    fn predicted_completion(&self, dev: DeviceId, bytes: u64, now: SimTime) -> SimDuration {
        let qwait = self.queues[dev.0].queue_wait(now);
        let est = self.nominal_estimate(dev, bytes);
        let est = match self.devices[dev.0].fault_state(now) {
            FaultState::Degraded(m) => SimDuration::from_secs_f64(est.as_secs_f64() * m),
            _ => est,
        };
        qwait + est
    }

    /// Issues the device read(s) for one missing run, routing across the
    /// file's volume members. Unreplicated and striped files issue the
    /// single primary command they always did; mirrored files pick the
    /// cheapest available copy (with hedging and failover); coded files
    /// fan out to the k cheapest fragments.
    fn redundant_read(
        &mut self,
        ino: Ino,
        primary: PagePlace,
        first_page: u64,
        pages: u64,
    ) -> SimResult<()> {
        match self.volume_of(ino) {
            Some(VolumeLayout::Mirrored) => self.mirrored_read(ino, primary, first_page, pages),
            Some(VolumeLayout::Coded { k }) => self.coded_read(ino, primary, first_page, pages, k),
            _ => self
                .device_command(primary.dev, primary.sector, pages * SECTORS_PER_PAGE, false)
                .map(|_| ()),
        }
    }

    /// A mirrored read: pick the cheapest *available* copy by healthy
    /// profile (offline members reroute instead of erroring), hedge a
    /// redundant request when the pick sits in a fault window or its
    /// queue wait alone exceeds the SLED-predicted deadline, and fail
    /// over to the remaining copies if the winner's device gives up.
    fn mirrored_read(
        &mut self,
        ino: Ino,
        primary: PagePlace,
        first_page: u64,
        pages: u64,
    ) -> SimResult<()> {
        let sectors = pages * SECTORS_PER_PAGE;
        let bytes = sectors * SECTOR_SIZE;
        let now = self.clock.now();
        let mut cands = self.replica_candidates(ino, primary, first_page)?;
        // Cheapest healthy-profile copy first; member order breaks ties,
        // keeping the primary preferred among equals.
        cands.sort_by(|a, b| {
            self.nominal_estimate(a.1, bytes)
                .cmp(&self.nominal_estimate(b.1, bytes))
                .then(a.0.cmp(&b.0))
        });
        let available: Vec<(usize, DeviceId, u64)> = cands
            .iter()
            .copied()
            .filter(|&(_, dev, _)| {
                !matches!(self.devices[dev.0].fault_state(now), FaultState::Offline)
            })
            .collect();
        if available.is_empty() {
            return Err(SimError::new(
                Errno::Eio,
                "mirrored volume: all replicas offline",
            ));
        }
        let chosen = available[0];
        let policy = self.cfg.hedge;
        let qwait = self.queues[chosen.1 .0].queue_wait(now);
        let deadline = SimDuration::from_secs_f64(
            self.nominal_estimate(chosen.1, bytes).as_secs_f64() * policy.deadline_mult,
        );
        let in_fault_window = matches!(
            self.devices[chosen.1 .0].fault_state(now),
            FaultState::Degraded(_)
        );
        // Hedge issuance is bounded by `policy.max_hedges`; every
        // redundant request is either the winner or cancelled below.
        let mut contenders = vec![chosen];
        if policy.max_hedges > 0 && (in_fault_window || qwait > deadline) {
            contenders.extend(
                available
                    .iter()
                    .skip(1)
                    .take(policy.max_hedges as usize)
                    .copied(),
            );
        }
        let mut winner_at = 0usize;
        for i in 1..contenders.len() {
            if self.predicted_completion(contenders[i].1, bytes, now)
                < self.predicted_completion(contenders[winner_at].1, bytes, now)
            {
                winner_at = i;
            }
        }
        let winner = contenders[winner_at];
        let tenant = self.active_tenant as u64;
        let winner_class = class_code(self.devices[winner.1 .0].class());
        for (i, &(_, dev, _)) in contenders.iter().enumerate() {
            if i == winner_at {
                continue;
            }
            // The loser is revoked: it holds its queue's tail for the
            // cancel cost, the caller pays that cost as explicit hedge
            // overhead, and attribution stays exact (the cancel is an
            // ordinary zero-byte occupancy row).
            let t_hedge = self.clock.now();
            let loser_class = class_code(self.devices[dev.0].class());
            self.queues[dev.0].note_cancel(tenant, t_hedge, policy.cancel_cost);
            if let Some(rec) = self.recorder.as_mut() {
                rec.note_hedge();
                rec.note_device(loser_class, 0, policy.cancel_cost.as_nanos(), 0);
            }
            self.charge_io(policy.cancel_cost);
            self.usage.hedges += 1;
            self.usage.hedge_wait = self.usage.hedge_wait.saturating_add(policy.cancel_cost);
            let t_mark = self.clock.now();
            self.tracer.io_hedge(
                t_mark,
                winner_class,
                loser_class,
                policy.cancel_cost.as_nanos(),
            );
        }
        if winner.0 != chosen.0 {
            self.usage.hedge_wins += 1;
        }
        // Winner first, then the remaining available copies as failover
        // targets; bounded by the member count.
        let mut last_err: Option<SimError> = None;
        let order =
            std::iter::once(winner).chain(available.iter().copied().filter(|c| c.0 != winner.0));
        for (_, dev, sector) in order {
            match self.device_command(dev, sector, sectors, false) {
                Ok(_) => return Ok(()),
                Err(e) if matches!(e.errno, Errno::Eio | Errno::Etimedout) => {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or_else(|| {
            SimError::new(Errno::Eio, "mirrored volume: no replica could serve")
        }))
    }

    /// A (k, n)-coded read: fan out to the k cheapest available fragment
    /// homes (fault-priced), let them run concurrently, and charge the
    /// caller to the straggler's completion — the k-th cheapest fragment,
    /// exactly the SLED the pricing layer quotes. A fragment failed by an
    /// injected fault is excluded and replaced by the next-cheapest
    /// member (bounded by the member count); fewer than k available
    /// members is the only hard failure.
    fn coded_read(
        &mut self,
        ino: Ino,
        primary: PagePlace,
        first_page: u64,
        pages: u64,
        k: u32,
    ) -> SimResult<()> {
        let k = (k.max(1)) as usize;
        let frag_sectors = (pages * SECTORS_PER_PAGE).div_ceil(k as u64);
        let frag_bytes = frag_sectors * SECTOR_SIZE;
        let cands = self.replica_candidates(ino, primary, first_page)?;
        let tenant = self.active_tenant as u64;
        let mut excluded: Vec<usize> = Vec::new();
        // Completed fragments survive re-picks: (member, completion, qwait).
        let mut done: Vec<(usize, SimTime, SimDuration)> = Vec::new();
        // Bounded: every pass either finishes the k fragments or excludes
        // one more member, and members are finite.
        while done.len() < k {
            let now = self.clock.now();
            let mut avail: Vec<(usize, DeviceId, u64)> = cands
                .iter()
                .copied()
                .filter(|&(m, dev, _)| {
                    !excluded.contains(&m)
                        && !done.iter().any(|&(dm, _, _)| dm == m)
                        && !matches!(self.devices[dev.0].fault_state(now), FaultState::Offline)
                })
                .collect();
            if avail.len() + done.len() < k {
                return Err(SimError::new(
                    Errno::Eio,
                    format!(
                        "coded volume: only {} of {k} fragments available",
                        avail.len() + done.len()
                    ),
                ));
            }
            avail.sort_by(|a, b| {
                self.predicted_completion(a.1, frag_bytes, now)
                    .cmp(&self.predicted_completion(b.1, frag_bytes, now))
                    .then(a.0.cmp(&b.0))
            });
            let need = k - done.len();
            for &(m, dev, sector) in avail.iter().take(need) {
                let class = class_code(self.devices[dev.0].class());
                let qwait = self.queues[dev.0].queue_wait(now);
                let start = now + qwait;
                match self.devices[dev.0].read(sector, frag_sectors, start) {
                    Ok(t) => {
                        self.queues[dev.0].note_command(
                            tenant,
                            now,
                            qwait,
                            t,
                            frag_sectors * SECTOR_SIZE,
                        );
                        if let Some(rec) = self.recorder.as_mut() {
                            rec.note_device(
                                class,
                                qwait.as_nanos(),
                                t.as_nanos(),
                                frag_sectors * SECTOR_SIZE,
                            );
                        }
                        self.trace_device(dev, false, now, qwait, t, sector, frag_sectors);
                        self.usage.device_reads += 1;
                        done.push((m, start + t, qwait));
                    }
                    Err(err) => {
                        let cost = match self.devices[dev.0].last_phases() {
                            [p] if p.kind == PhaseKind::Fault
                                && err.context.ends_with("injected fault") =>
                            {
                                p.dur
                            }
                            _ => SimDuration::ZERO,
                        };
                        if cost.is_zero() {
                            return Err(err);
                        }
                        // The faulted fragment still occupied its queue;
                        // the caller pays serially, then the member is
                        // excluded and the pick repeated.
                        self.queues[dev.0].note_command(tenant, now, qwait, cost, 0);
                        if let Some(rec) = self.recorder.as_mut() {
                            rec.note_device(class, qwait.as_nanos(), cost.as_nanos(), 0);
                        }
                        self.charge_queue_wait(qwait);
                        self.charge_io(cost);
                        let t_fail = self.clock.now();
                        self.tracer.fault_inject(t_fail, class, 1, cost.as_nanos());
                        excluded.push(m);
                        break;
                    }
                }
            }
        }
        // Charge to the straggler: the fan-out completes when its slowest
        // chosen fragment does. Split the straggler's own queue wait out
        // of the I/O charge so queue-wait accounting stays meaningful.
        let mut target = SimTime::ZERO;
        let mut straggler_qwait = SimDuration::ZERO;
        for &(_, complete, q) in &done {
            if complete > target {
                target = complete;
                straggler_qwait = q;
            }
        }
        let now = self.clock.now();
        if target > now {
            let gap = target - now;
            let qpart = if straggler_qwait < gap {
                straggler_qwait
            } else {
                gap
            };
            self.charge_queue_wait(qpart);
            self.charge_io(gap - qpart);
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // The write path
    // ------------------------------------------------------------------

    fn do_write(&mut self, ino: Ino, pos: u64, buf: &[u8]) -> SimResult<()> {
        if buf.is_empty() {
            return Ok(());
        }
        let mount = self
            .inode(ino)?
            .mount
            .ok_or_else(|| SimError::new(Errno::Erofs, "write outside any mount"))?;
        if self.mounts[mount.0].read_only {
            return Err(SimError::new(Errno::Erofs, "write on read-only mount"));
        }
        let end = pos
            .checked_add(buf.len() as u64)
            .ok_or_else(|| SimError::new(Errno::Efbig, "write end offset overflows u64"))?;
        // Grow the mapping first, run by run (fragmentation decides the
        // allocation chunking; `append_run` merges contiguous chunks).
        let old_pages = {
            let f = self
                .inode(ino)?
                .as_file()
                .ok_or_else(|| SimError::new(Errno::Eisdir, "write on directory"))?;
            f.pages.page_count()
        };
        let new_pages = end.div_ceil(PAGE_SIZE);
        if new_pages > old_pages {
            let added = new_pages - old_pages;
            // `layout_pages` respects fragmentation chunks and volume
            // striping alike; fold its runs onto the tail of the map
            // (`append_run` merges contiguous chunks).
            let added_map = self.layout_pages(mount, added)?;
            let runs = added_map.runs_in(0, added - 1);
            let f = self.file_of_mut(ino)?;
            for run in &runs {
                f.pages.append_run(run.dev, run.sector, run.pages);
            }
            // Grow every replica in lockstep so mirrored and coded files
            // stay fully covered on all members.
            let members = match self.mounts[mount.0].volume.as_ref() {
                Some(v)
                    if matches!(
                        v.layout,
                        VolumeLayout::Mirrored | VolumeLayout::Coded { .. }
                    ) =>
                {
                    v.devices.len()
                }
                _ => 0,
            };
            for member in 1..members {
                let (dev, first) = self.allocate_member(mount, member, added)?;
                let f = self.file_of_mut(ino)?;
                while f.replicas.len() < member {
                    f.replicas.push(PageMap::new());
                }
                f.replicas[member - 1].append_run(dev, first, added);
            }
        }

        // Partial first/last pages that exist on stable storage need
        // read-modify-write if not cached.
        let first_page = pos / PAGE_SIZE;
        let last_page = (end - 1) / PAGE_SIZE;
        let old_size = self.file_of(ino)?.size;
        for page in [first_page, last_page] {
            let page_start = page * PAGE_SIZE;
            // Saturation intended: a ragged final page at the top of the
            // offset space still counts as not fully covered.
            let page_end = page_start.saturating_add(PAGE_SIZE);
            let covered = pos <= page_start && end >= page_end;
            let has_old_data = page_start < old_size;
            if !covered && has_old_data && !self.cache.contains(PageKey::new(ino.0, page)) {
                // Fault the page in for the partial overwrite.
                self.fault_in(ino, page, page)?;
            }
        }

        // Memory copy of the written bytes.
        self.charge_memcpy(buf.len() as u64);

        // Store contents and dirty the pages.
        {
            let now = self.clock.now();
            let node = self.inode_mut(ino)?;
            node.mtime = now;
            let f = node
                .as_file_mut()
                .ok_or_else(|| SimError::new(Errno::Eisdir, "write on directory"))?;
            if f.data.len() < end as usize {
                f.data.resize(end as usize, 0);
            }
            f.data[pos as usize..end as usize].copy_from_slice(buf);
            if end > f.size {
                // Size changes alter SLED lengths even when no new page is
                // mapped (a ragged tail growing), so they version too.
                f.size = end;
                f.pages.bump_generation();
            }
        }
        for page in first_page..=last_page {
            self.cache_insert(PageKey::new(ino.0, page), true)?;
        }
        Ok(())
    }

    fn allocate_sectors(&mut self, mount: MountId, pages: u64) -> SimResult<u64> {
        let m = &mut self.mounts[mount.0];
        // Fragmentation: skip a random gap before each chunk.
        if let Some(frag) = &mut m.frag {
            let gap = frag.rng.range_u64(0, frag.gap_pages + 1);
            // Saturation intended: a saturated cursor fails the capacity
            // check below as "device full" instead of wrapping.
            m.next_sector = m.next_sector.saturating_add(gap * SECTORS_PER_PAGE);
        }
        let first = m.next_sector;
        let cap = self.devices[m.dev.0].capacity_sectors();
        let end = pages
            .checked_mul(SECTORS_PER_PAGE)
            .and_then(|needed| first.checked_add(needed))
            .filter(|&end| end <= cap)
            .ok_or_else(|| {
                SimError::new(
                    Errno::Enospc,
                    format!("device {} full", self.devices[m.dev.0].name()),
                )
            })?;
        let m = &mut self.mounts[mount.0];
        m.next_sector = end;
        Ok(first)
    }

    fn cache_insert(&mut self, key: PageKey, dirty: bool) -> SimResult<()> {
        if let Some(ev) = self.cache.insert(key, dirty) {
            let now = self.clock.now();
            self.tracer
                .cache_evict(now, ev.key.index, u64::from(ev.dirty), ev.key.inode);
            if ev.dirty {
                self.writeback(ev.key)?;
            }
        }
        Ok(())
    }

    fn writeback(&mut self, key: PageKey) -> SimResult<()> {
        // The inode may already be gone (unlink with dirty pages).
        let (place, extras, frag_sectors, needed) = {
            let node = match self.inodes.get(&Ino(key.inode)) {
                Some(n) => n,
                None => return Ok(()),
            };
            let f = match node.as_file() {
                Some(f) => f,
                None => return Ok(()),
            };
            let place = match f.pages.place_of(key.index) {
                Some(p) => p,
                None => return Ok(()),
            };
            let layout = node
                .mount
                .and_then(|m| self.mounts.get(m.0))
                .and_then(|m| m.volume.as_ref())
                .map(|v| v.layout);
            match layout {
                Some(VolumeLayout::Mirrored) | Some(VolumeLayout::Coded { .. }) => {
                    let extras: Vec<PagePlace> = f
                        .replicas
                        .iter()
                        .filter_map(|map| map.place_of(key.index))
                        .collect();
                    let (frag, needed) = match layout {
                        Some(VolumeLayout::Coded { k }) => {
                            let k = u64::from(k.max(1));
                            (SECTORS_PER_PAGE.div_ceil(k), k as usize)
                        }
                        _ => (SECTORS_PER_PAGE, 1),
                    };
                    (place, extras, frag, needed)
                }
                _ => (place, Vec::new(), SECTORS_PER_PAGE, 1),
            }
        };
        let now = self.clock.now();
        self.tracer.cache_writeback(now, key.index, key.inode);
        if extras.is_empty() {
            self.device_command(place.dev, place.sector, frag_sectors, true)?;
            return Ok(());
        }
        // Redundant volume: write every member's copy/fragment, but
        // tolerate member failures while enough copies land (one for a
        // mirror, k fragments for a (k, n) code) — degraded redundancy,
        // not an application-visible error.
        let mut ok = 0usize;
        let mut last_err: Option<SimError> = None;
        for p in std::iter::once(place).chain(extras) {
            match self.device_command(p.dev, p.sector, frag_sectors, true) {
                Ok(_) => ok += 1,
                Err(e) if matches!(e.errno, Errno::Eio | Errno::Etimedout) => {
                    last_err = Some(e);
                }
                Err(e) => return Err(e),
            }
        }
        if ok >= needed {
            return Ok(());
        }
        Err(last_err.unwrap_or_else(|| {
            SimError::new(
                Errno::Eio,
                "redundant writeback: no member accepted the page",
            )
        }))
    }

    // ------------------------------------------------------------------
    // SLEDs kernel hook and HSM administration
    // ------------------------------------------------------------------

    fn charge_page_walk(&mut self, extents: u64, pages: u64) {
        let walk = self.cfg.page_walk_cost(extents, pages);
        self.clock.advance(walk);
        self.usage.cpu += walk;
    }

    /// The residency walk itself: merges the cache's resident extents with
    /// the file's layout runs. Cost is proportional to the number of
    /// extents emitted, not the number of pages; no per-page map is ever
    /// materialized.
    fn page_extents_of(&self, ino: Ino) -> SimResult<Vec<PageExtent>> {
        let f = self
            .inode(ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, "FSLEDS_GET on directory"))?;
        let n = f.page_count();
        if n == 0 {
            return Ok(Vec::new());
        }
        let mut out = Vec::new();
        let mut p = 0u64;
        while p < n {
            let boundary = self.cache.next_boundary(ino.0, p).min(n);
            if self.cache.contains(PageKey::new(ino.0, p)) {
                out.push(PageExtent {
                    first_page: p,
                    pages: boundary - p,
                    location: PageLocation::Memory,
                });
            } else {
                // A non-resident span: split it by layout runs so each
                // extent is device-contiguous.
                for r in f.pages.runs_in(p, boundary - 1) {
                    out.push(PageExtent {
                        first_page: r.start_page,
                        pages: r.pages,
                        location: PageLocation::Device {
                            dev: r.dev,
                            sector: r.sector,
                        },
                    });
                }
            }
            p = boundary;
        }
        Ok(out)
    }

    /// The kernel half of `FSLEDS_GET`, run-length form: where does each
    /// extent of this open file live right now? Cost is one probe per
    /// extent plus a per-page floor — O(runs), not O(pages).
    pub fn page_extents(&mut self, fd: Fd) -> SimResult<Vec<PageExtent>> {
        self.rec_unsupported("ioctl.page_extents");
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "ioctl.fsleds_get", t0, [fd.0, 0, 0]);
        let r = self.page_extents_impl(fd);
        let t1 = self.clock.now();
        self.tracer.end(t1);
        r
    }

    fn page_extents_impl(&mut self, fd: Fd) -> SimResult<Vec<PageExtent>> {
        self.charge_syscall();
        let of = self.openfile(fd)?;
        let out = self.page_extents_of(of.ino)?;
        let pages = out.last().map(|e| e.end_page()).unwrap_or(0);
        self.charge_page_walk(out.len() as u64, pages);
        Ok(out)
    }

    /// The redundancy-aware half of `FSLEDS_GET`: every extent of the open
    /// file, each carrying the replica places that could serve it too.
    /// Extents of unreplicated files come back with no alternatives and
    /// cost exactly what [`Kernel::page_extents`] costs; redundant extents
    /// pay one extra probe per alternative. The pricing layer turns each
    /// alternative into a fault-priced candidate and quotes the min-cost
    /// *available* one (the k-th cheapest for a coded layout).
    pub fn redundant_extents(&mut self, fd: Fd) -> SimResult<Vec<RedundantExtent>> {
        // Same capture kind as the plain extents walk: both are the
        // FSLEDS_GET ioctl, so the unrecordable set does not grow.
        self.rec_unsupported("ioctl.page_extents");
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "ioctl.fsleds_get", t0, [fd.0, 1, 0]);
        let r = self.redundant_extents_impl(fd);
        let t1 = self.clock.now();
        self.tracer.end(t1);
        r
    }

    fn redundant_extents_impl(&mut self, fd: Fd) -> SimResult<Vec<RedundantExtent>> {
        self.charge_syscall();
        let of = self.openfile(fd)?;
        let ino = of.ino;
        let base = self.page_extents_of(ino)?;
        let coded_k = self.volume_of(ino).and_then(|l| l.coded_k());
        let (out, probes, pages) = {
            let f = self.file_of(ino)?;
            let mut probes = 0u64;
            let pages = base.last().map(|e| e.end_page()).unwrap_or(0);
            let out: Vec<RedundantExtent> = base
                .into_iter()
                .map(|extent| {
                    // Memory extents need no alternative: they are already
                    // the cheapest possible source.
                    let alternatives: Vec<ReplicaPlace> =
                        if matches!(extent.location, PageLocation::Device { .. }) {
                            f.replicas
                                .iter()
                                .filter_map(|map| map.place_of(extent.first_page))
                                .map(|p| ReplicaPlace {
                                    dev: p.dev,
                                    sector: p.sector,
                                })
                                .collect()
                        } else {
                            Vec::new()
                        };
                    probes += alternatives.len() as u64;
                    let coded_k = if alternatives.is_empty() {
                        None
                    } else {
                        coded_k
                    };
                    RedundantExtent {
                        extent,
                        alternatives,
                        coded_k,
                    }
                })
                .collect();
            (out, probes, pages)
        };
        self.charge_page_walk(out.len() as u64 + probes, pages);
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Submission ring and in-kernel pick programs
    // ------------------------------------------------------------------

    /// Ring batches serviced so far (one boundary crossing each).
    pub fn ring_enters(&self) -> u64 {
        self.ring_enters
    }

    /// Ring operations serviced so far, across all batches.
    pub fn ring_ops_serviced(&self) -> u64 {
        self.ring_ops
    }

    /// `ring_enter`: services the ring's queued submissions in **one**
    /// boundary crossing. Charges `syscall_cpu` once for the crossing and
    /// `ring_op_cpu` per serviced op; each op then performs exactly the
    /// same work (and faulting/memcpy/device accounting) as its sequential
    /// twin. Stops early when the completion queue fills — the leftovers
    /// stay queued for the next enter. Returns the number serviced.
    pub fn ring_enter(&mut self, ring: &mut SubmissionRing) -> SimResult<usize> {
        // The ring's ops run on (and are charged to) the ring owner's
        // timeline, whoever drives the enter — asynchronous submission:
        // the driver's own clock does not advance for the batch.
        let prev = self.active_tenant();
        let owner = ring.tenant();
        self.tenant_switch(owner)?;
        let t0 = self.clock.now();
        let submitted = ring.sq_len() as u64;
        self.tracer
            .begin(Layer::Syscall, "ring.enter", t0, [submitted, 0, 0]);
        self.rec_begin(CapturedCall::RingEnter {
            capacity: ring.capacity() as u64,
            ops: Vec::new(),
        });
        self.charge_crossing();
        self.ring_enters += 1;
        let mut serviced = 0usize;
        while ring.cq_has_room() {
            let Some((user_data, op)) = ring.pop_op() else {
                break;
            };
            self.charge_ring_op();
            self.ring_ops += 1;
            if self.capture_active() {
                match ring_capture_call(&op) {
                    Ok(call) => {
                        if let Some(rec) = self.recorder.as_mut() {
                            rec.ring_op(user_data, call);
                        }
                    }
                    Err(name) => self.rec_unsupported(name),
                }
            }
            let result = self.service_ring_op(op);
            ring.complete(RingCompletion { user_data, result });
            serviced += 1;
        }
        let now = self.clock.now();
        self.tracer.ring_submit(now, submitted, serviced as u64);
        self.tracer.end(now);
        self.rec_finish(Ok((serviced as u64, None)));
        self.tenant_switch(prev)?;
        Ok(serviced)
    }

    /// Reaps every pending completion. The queues live in user-mapped
    /// memory, so reaping crosses nothing and charges nothing.
    pub fn ring_reap(&mut self, ring: &mut SubmissionRing) -> Vec<RingCompletion> {
        let out = ring.drain_completions();
        let now = self.clock.now();
        self.tracer.ring_reap(now, out.len() as u64);
        out
    }

    /// Dispatches one already-submitted ring operation to the shared
    /// implementation its sequential twin uses (minus the per-call trap,
    /// which the batch already paid).
    fn service_ring_op(&mut self, op: RingOp) -> SimResult<RingPayload> {
        match op {
            RingOp::Open { path, flags } => self.do_open(&path, flags).map(RingPayload::Fd),
            RingOp::Close { fd } => self.do_close(fd).map(|()| RingPayload::Unit),
            RingOp::Pread { fd, pos, len } => {
                self.do_read_fd(fd, Some(pos), len).map(RingPayload::Bytes)
            }
            RingOp::Stat { path } => {
                let ino = self.resolve(&path)?;
                self.stat_ino(ino).map(RingPayload::Stat)
            }
            RingOp::FsledsGet { fd, pricing } => {
                let of = self.openfile(fd)?;
                self.kernel_sleds_of(of.ino, &pricing)
                    .map(RingPayload::Sleds)
            }
            RingOp::PickAdvice {
                fd,
                pricing,
                preferred,
                skip_unavailable,
            } => {
                let of = self.openfile(fd)?;
                let sleds = self.kernel_sleds_of(of.ino, &pricing)?;
                Ok(RingPayload::Plan(self.advise_chunks(
                    &sleds,
                    preferred.max(1),
                    skip_unavailable,
                )))
            }
        }
    }

    /// The in-kernel half of pushdown `FSLEDS_GET`: builds a file's SLED
    /// vector from the caller's flattened pricing rows, mirroring the
    /// user-space library's flat-table path operation for operation —
    /// same extent walk, same degradation folding, same run coalescing by
    /// bit-identity, same clipping to file size, same error text. Zone
    /// tables and `trust_device_reports` are not expressible in
    /// [`ProgPricing`]; callers needing either stay on the sequential
    /// path. Charges the page walk (the work), not the two syscall traps
    /// the sequential `fstat` + `FSLEDS_GET` pair pays.
    fn kernel_sleds_of(&mut self, ino: Ino, pricing: &ProgPricing) -> SimResult<Vec<ProgSled>> {
        let mem = pricing.memory.ok_or_else(|| {
            SimError::new(
                Errno::Einval,
                "FSLEDS_GET: sleds table not filled (no memory row)",
            )
        })?;
        let size = self.stat_ino(ino)?.size;
        let extents = self.page_extents_of(ino)?;
        let pages = extents.last().map(|e| e.end_page()).unwrap_or(0);
        self.charge_page_walk(extents.len() as u64, pages);
        fn push_sled(out: &mut Vec<ProgSled>, offset: u64, length: u64, entry: ProgEntry) {
            if length == 0 {
                return;
            }
            match out.last_mut() {
                Some(last)
                    if last.latency.to_bits() == entry.latency.to_bits()
                        && last.bandwidth.to_bits() == entry.bandwidth.to_bits() =>
                {
                    last.length += length;
                }
                _ => out.push(ProgSled {
                    offset,
                    length,
                    latency: entry.latency,
                    bandwidth: entry.bandwidth,
                }),
            }
        }
        let mut out: Vec<ProgSled> = Vec::new();
        for e in &extents {
            let ext_off = e.first_page * PAGE_SIZE;
            match e.location {
                PageLocation::Memory => {
                    let length = (e.pages * PAGE_SIZE).min(size - ext_off);
                    push_sled(&mut out, ext_off, length, mem);
                }
                PageLocation::Device { dev, .. } => {
                    let entry = pricing.device(dev).ok_or_else(|| {
                        SimError::new(
                            Errno::Einval,
                            format!("FSLEDS_GET: no sleds table row for device {dev:?}"),
                        )
                    })?;
                    let state = self.device_fault_state(dev).unwrap_or(FaultState::Healthy);
                    let entry = match state {
                        FaultState::Healthy => entry,
                        FaultState::Degraded(m) => ProgEntry {
                            latency: entry.latency * m,
                            bandwidth: entry.bandwidth / m,
                        },
                        FaultState::Offline => ProgEntry {
                            latency: f64::INFINITY,
                            bandwidth: 0.0,
                        },
                    };
                    let length = (e.pages * PAGE_SIZE).min(size - ext_off);
                    push_sled(&mut out, ext_off, length, entry);
                }
            }
        }
        Ok(out)
    }

    /// The in-kernel half of pushdown pick advice: chunks each SLED at the
    /// preferred size and sorts cheapest-first, exactly as the library's
    /// planner does (stable on latency, then offset), charging the same
    /// per-chunk planning cost.
    fn advise_chunks(
        &mut self,
        sleds: &[ProgSled],
        preferred: usize,
        skip_unavailable: bool,
    ) -> Vec<(u64, usize)> {
        // Mirrors the pick library's PLAN_NS_PER_CHUNK; the equivalence
        // suite pins the two.
        const PLAN_NS_PER_CHUNK: u64 = 120;
        let mut chunks: Vec<(u64, usize, f64)> = Vec::new();
        for s in sleds {
            let unavailable = s.length > 0 && (s.bandwidth <= 0.0 || !s.latency.is_finite());
            if skip_unavailable && unavailable {
                continue;
            }
            let end = s.offset.saturating_add(s.length);
            let mut off = s.offset;
            while off < end {
                let len = (end - off).min(preferred as u64) as usize;
                chunks.push((off, len, s.latency));
                off += len as u64;
            }
        }
        chunks.sort_by(|a, b| a.2.total_cmp(&b.2).then(a.0.cmp(&b.0)));
        self.charge_cpu(SimDuration::from_nanos(
            PLAN_NS_PER_CHUNK * chunks.len() as u64,
        ));
        chunks.into_iter().map(|(o, l, _)| (o, l)).collect()
    }

    /// The `FSLEDS_PROG` ioctl: installs a verified pick program on an
    /// open descriptor. The program was verified at construction; this
    /// re-runs nothing and simply associates it with the fd until close.
    pub fn fsleds_prog(&mut self, fd: Fd, prog: PickProgram) -> SimResult<()> {
        self.rec_unsupported("ioctl.fsleds_prog");
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "ioctl.fsleds_prog", t0, [fd.0, 0, 0]);
        self.charge_syscall();
        let r = self.openfile(fd).map(|_| {
            self.fd_progs.insert(fd.0, prog);
        });
        let t1 = self.clock.now();
        self.tracer.end(t1);
        r
    }

    /// The program installed on `fd`, if any.
    pub fn fd_prog(&self, fd: Fd) -> Option<&PickProgram> {
        self.fd_progs.get(&fd.0)
    }

    /// Evaluates the program installed on `fd` against the file's current
    /// SLED vector, in-kernel, in one crossing: builds the SLEDs from the
    /// pushed pricing rows, derives the program inputs, and returns the
    /// verdict plus the delivery-time estimate it saw.
    pub fn fsleds_prog_eval(&mut self, fd: Fd, pricing: &ProgPricing) -> SimResult<(bool, f64)> {
        self.rec_unsupported("ioctl.fsleds_prog_eval");
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "ioctl.fsleds_prog_eval", t0, [fd.0, 0, 0]);
        self.charge_syscall();
        let r = (|| {
            let of = self.openfile(fd)?;
            let prog = self.fd_progs.get(&fd.0).cloned().ok_or_else(|| {
                SimError::new(
                    Errno::Einval,
                    format!("FSLEDS_PROG: no program on fd {}", fd.0),
                )
            })?;
            let sleds = self.kernel_sleds_of(of.ino, pricing)?;
            let mem = pricing.memory.unwrap_or(ProgEntry {
                latency: 0.0,
                bandwidth: 0.0,
            });
            // Interpretation is charged at the certified worst-case bound,
            // not the path actually taken: the price of running a program
            // is fixed at admission, so accounting cannot depend on file
            // contents.
            self.charge_cpu(SimDuration::from_nanos(prog.cert().worst_ns));
            let inputs = prog_inputs(&sleds, mem);
            let matched = prog.matches(&inputs);
            let now = self.clock.now();
            self.tracer.prog_eval(
                now,
                prog.len() as u64,
                u64::from(matched),
                estimate_ns(inputs.delivery_time),
            );
            Ok((matched, inputs.delivery_time))
        })();
        let t1 = self.clock.now();
        self.tracer.end(t1);
        r
    }

    /// A program-driven directory walk (`fsleds_walk`): visits the tree
    /// under `root` depth-first in name order — the order `find` visits —
    /// pricing every regular file against the pushed rows and evaluating
    /// `prog` over it, all inside **one** boundary crossing. Per-file
    /// pricing failures (say, a device with no pushed row) are captured in
    /// the entry's `error` and the walk continues, like `find`'s
    /// diagnostics. Honors [`ProgOrder::CachedFirst`] (matched files
    /// first, most-cached first, stable; everything else after in file
    /// order) and `first_match_exit` (stop at the first matching file).
    pub fn fsleds_walk(
        &mut self,
        root: &str,
        prog: &PickProgram,
        pricing: &ProgPricing,
    ) -> SimResult<Vec<WalkEntry>> {
        self.rec_unsupported("set_fragmentation");
        self.rec_unsupported("ioctl.fsleds_walk");
        let t0 = self.clock.now();
        self.tracer
            .begin(Layer::Syscall, "ioctl.fsleds_walk", t0, [0; 3]);
        self.charge_syscall();
        let r = (|| {
            let ino = self.resolve(root)?;
            let mut out: Vec<(WalkEntry, f64)> = Vec::new();
            let mut done = false;
            self.walk_node(root, ino, prog, pricing, &mut out, &mut done)?;
            if prog.order == ProgOrder::CachedFirst {
                // Matched files first, most-cached first; stable, so ties
                // and the unmatched tail keep file order.
                let (mut hits, rest): (Vec<_>, Vec<_>) =
                    out.into_iter().partition(|(e, _)| e.matched);
                hits.sort_by(|a, b| b.1.total_cmp(&a.1));
                out = hits.into_iter().chain(rest).collect();
            }
            Ok(out.into_iter().map(|(e, _)| e).collect())
        })();
        let t1 = self.clock.now();
        self.tracer.end(t1);
        r
    }

    fn walk_node(
        &mut self,
        path: &str,
        ino: Ino,
        prog: &PickProgram,
        pricing: &ProgPricing,
        out: &mut Vec<(WalkEntry, f64)>,
        done: &mut bool,
    ) -> SimResult<()> {
        if *done {
            return Ok(());
        }
        let stat = self.stat_ino(ino)?;
        // Per-entry in-kernel dispatch work, priced like a ring op. The
        // program interpretation itself is charged separately below, from
        // the cost certificate stamped at admission.
        let d = self.cfg.ring_op_cpu;
        self.charge_cpu(d);
        if stat.kind == FileKind::File {
            let (entry, cached) = match self.kernel_sleds_of(ino, pricing) {
                Ok(sleds) => {
                    let mem = pricing.memory.unwrap_or(ProgEntry {
                        latency: 0.0,
                        bandwidth: 0.0,
                    });
                    // Certified worst-case interpretation cost per priced
                    // entry — the admission-time bound, never the actual
                    // path, so walk accounting is independent of verdicts.
                    self.charge_cpu(SimDuration::from_nanos(prog.cert().worst_ns));
                    let inputs = prog_inputs(&sleds, mem);
                    let matched = prog.matches(&inputs);
                    let now = self.clock.now();
                    self.tracer.prog_eval(
                        now,
                        prog.len() as u64,
                        u64::from(matched),
                        estimate_ns(inputs.delivery_time),
                    );
                    if matched && prog.first_match_exit {
                        *done = true;
                    }
                    (
                        WalkEntry {
                            path: path.to_string(),
                            kind: stat.kind,
                            size: stat.size,
                            estimate_secs: Some(inputs.delivery_time),
                            matched,
                            error: None,
                        },
                        inputs.cached_fraction,
                    )
                }
                Err(e) => (
                    WalkEntry {
                        path: path.to_string(),
                        kind: stat.kind,
                        size: stat.size,
                        estimate_secs: None,
                        matched: false,
                        error: Some(e),
                    },
                    0.0,
                ),
            };
            out.push((entry, cached));
            return Ok(());
        }
        out.push((
            WalkEntry {
                path: path.to_string(),
                kind: stat.kind,
                size: stat.size,
                estimate_secs: None,
                matched: false,
                error: None,
            },
            0.0,
        ));
        let names: Vec<(String, Ino)> = {
            let node = self.inode(ino)?;
            let dir = node
                .as_dir()
                .ok_or_else(|| SimError::new(Errno::Enotdir, format!("fsleds_walk({path})")))?;
            dir.iter().map(|(n, i)| (n.clone(), *i)).collect()
        };
        for (name, child) in names {
            if *done {
                break;
            }
            let child_path = if path == "/" {
                format!("/{name}")
            } else {
                format!("{path}/{name}")
            };
            self.walk_node(&child_path, child, prog, pricing, out, done)?;
        }
        Ok(())
    }

    /// The per-page form of [`Kernel::page_extents`]: one [`PageLocation`]
    /// per file page, produced by expanding the extent walk. Same O(runs)
    /// probe cost (the expansion is covered by the per-page floor).
    pub fn page_locations(&mut self, fd: Fd) -> SimResult<Vec<PageLocation>> {
        self.charge_syscall();
        let of = self.openfile(fd)?;
        let extents = self.page_extents_of(of.ino)?;
        let pages = extents.last().map(|e| e.end_page()).unwrap_or(0);
        self.charge_page_walk(extents.len() as u64, pages);
        let mut out = Vec::with_capacity(pages as usize);
        for e in extents {
            match e.location {
                PageLocation::Memory => out.extend((0..e.pages).map(|_| PageLocation::Memory)),
                PageLocation::Device { dev, sector } => {
                    for i in 0..e.pages {
                        out.push(PageLocation::Device {
                            dev,
                            sector: sector + i * SECTORS_PER_PAGE,
                        });
                    }
                }
            }
        }
        Ok(out)
    }

    /// The original per-page residency walk, retained verbatim as a
    /// reference: materializes the whole per-page map and probes the cache
    /// once per page, charging the legacy per-page walk cost. Equivalence
    /// tests and the before/after microbenchmark compare against this.
    pub fn page_locations_per_page_reference(&mut self, fd: Fd) -> SimResult<Vec<PageLocation>> {
        self.charge_syscall();
        let of = self.openfile(fd)?;
        let f = self
            .inode(of.ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, "FSLEDS_GET on directory"))?;
        let n = f.page_count();
        // The old implementation cloned the per-page map; reproduce that
        // allocation by expanding the runs.
        let places: Vec<PagePlace> = (0..n).filter_map(|p| f.pages.place_of(p)).collect();
        let walk = self.cfg.page_walk_cost_per_page(n);
        self.clock.advance(walk);
        self.usage.cpu += walk;
        let mut out = Vec::with_capacity(n as usize);
        for (i, place) in places.iter().enumerate().take(n as usize) {
            if self.cache.contains(PageKey::new(of.ino.0, i as u64)) {
                out.push(PageLocation::Memory);
            } else {
                out.push(PageLocation::Device {
                    dev: place.dev,
                    sector: place.sector,
                });
            }
        }
        Ok(out)
    }

    /// A version stamp for an open file's SLED vector: changes whenever the
    /// file's cache residency, layout, or size changes — or any device
    /// enters or leaves a fault window — and never repeats.
    /// `FSLEDS_GET` callers memoize their last vector against this stamp
    /// and skip the walk while it holds. Charges only the syscall cost —
    /// that is the point.
    pub fn sled_generation(&mut self, fd: Fd) -> SimResult<u64> {
        self.charge_syscall();
        let of = self.openfile(fd)?;
        let layout = self
            .inode(of.ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, "sled_generation on directory"))?
            .pages
            .generation();
        // All four counters are monotone, so their sum is a valid version:
        // any change to any one strictly increases it. The device fault
        // epochs auto-invalidate cached vectors (and any lease built on
        // this stamp) the moment the clock crosses a fault-window
        // boundary anywhere in the stack.
        let now = self.clock.now();
        let fault_epoch: u64 = self.devices.iter().map(|d| d.fault_epoch(now)).sum();
        Ok(self.cache.generation(of.ino.0) + layout + self.sleds_epoch + fault_epoch)
    }

    /// Number of resident extents the cache tracks for an open file — the
    /// `runs` term of the walk cost; exposed for benchmarks and tests.
    pub fn resident_extents(&self, fd: Fd) -> SimResult<usize> {
        let of = self.openfile(fd)?;
        Ok(self.cache.resident_run_count(of.ino.0))
    }

    /// For each page of an open file: how many cache insertions could
    /// happen before that page is evicted under the current replacement
    /// policy (`None` for non-resident pages or unpredictable policies).
    /// The kernel half of the paper's "predict which pages of a file would
    /// be flushed from cache" extension; charges the page-walk cost.
    pub fn page_eviction_ranks(&mut self, fd: Fd) -> SimResult<Vec<Option<usize>>> {
        self.charge_syscall();
        let of = self.openfile(fd)?;
        let n = self
            .inode(of.ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, "eviction ranks on directory"))?
            .page_count();
        // Ranks are genuinely per-page (each is an independent policy
        // query), so this walk keeps the per-page cost.
        let walk = self.cfg.page_walk_cost_per_page(n);
        self.clock.advance(walk);
        self.usage.cpu += walk;
        Ok((0..n)
            .map(|i| self.cache.eviction_rank(PageKey::new(of.ino.0, i)))
            .collect())
    }

    /// Pins the currently-resident pages of `[offset, offset+len)` of an
    /// open file, exempting them from eviction — the kernel half of the
    /// reservation mechanism the paper's section 3.4 sketches for extending
    /// SLED lifetimes. Returns the page indices actually pinned (only
    /// resident pages can be held).
    pub fn pin_range(&mut self, fd: Fd, offset: u64, len: u64) -> SimResult<Vec<u64>> {
        self.rec_unsupported("ioctl.pin_range");
        self.charge_syscall();
        let of = self.openfile(fd)?;
        let size = self
            .inode(of.ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, "pin_range on directory"))?
            .size;
        if len == 0 || offset >= size {
            return Ok(Vec::new());
        }
        let end = size.min(offset.saturating_add(len));
        let mut pinned = Vec::new();
        for page in offset / PAGE_SIZE..=(end - 1) / PAGE_SIZE {
            if self.cache.pin(PageKey::new(of.ino.0, page)) {
                pinned.push(page);
            }
        }
        Ok(pinned)
    }

    /// Releases pins on a page range of an open file. Like [`Kernel::pin_range`],
    /// the range is clipped to the file size (pins can only exist on file
    /// pages), so a `(0, u64::MAX)` release is safe and releases everything.
    pub fn unpin_range(&mut self, fd: Fd, offset: u64, len: u64) -> SimResult<()> {
        self.rec_unsupported("ioctl.unpin_range");
        self.charge_syscall();
        let of = self.openfile(fd)?;
        let size = self
            .inode(of.ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, "unpin_range on directory"))?
            .size;
        if len == 0 || offset >= size {
            return Ok(());
        }
        let end = size.min(offset.saturating_add(len));
        for page in offset / PAGE_SIZE..=(end - 1) / PAGE_SIZE {
            self.cache.unpin(PageKey::new(of.ino.0, page));
        }
        Ok(())
    }

    /// Number of pages currently pinned across the whole cache.
    pub fn pinned_pages(&self) -> usize {
        self.cache.pinned_count()
    }

    /// Migrates a file on an HSM mount to tape, freeing its disk residence
    /// and cached pages. Charges the tape write unless `free` is set (used
    /// by experiment setup).
    pub fn hsm_migrate(&mut self, path: &str, free: bool) -> SimResult<()> {
        self.rec_unsupported("hsm_migrate");
        let ino = self.resolve(path)?;
        let mount = self
            .inode(ino)?
            .mount
            .ok_or_else(|| SimError::new(Errno::Einval, format!("hsm_migrate({path})")))?;
        let hsm = self.mounts[mount.0].hsm.ok_or_else(|| {
            SimError::new(
                Errno::Einval,
                format!("hsm_migrate({path}): not an HSM mount"),
            )
        })?;
        let pages = {
            let f = self
                .inode(ino)?
                .as_file()
                .ok_or_else(|| SimError::new(Errno::Eisdir, format!("hsm_migrate({path})")))?;
            f.page_count()
        };
        if pages == 0 {
            return Ok(());
        }
        // Allocate a contiguous tape region.
        let sectors = pages
            .checked_mul(SECTORS_PER_PAGE)
            .ok_or_else(|| SimError::new(Errno::Enospc, format!("hsm_migrate({path})")))?;
        let first = {
            let h = self.mounts[mount.0].hsm.as_mut().ok_or_else(|| {
                SimError::new(
                    Errno::Einval,
                    format!("hsm_migrate({path}): not an HSM mount"),
                )
            })?;
            let first = h.tape_next_sector;
            h.tape_next_sector = first
                .checked_add(sectors)
                .ok_or_else(|| SimError::new(Errno::Enospc, format!("hsm_migrate({path})")))?;
            first
        };
        if !free {
            self.device_command(hsm.tape, first, sectors, true)?;
        }
        let f = self.file_of_mut(ino)?;
        let mapped = f.pages.page_count();
        f.pages.remap_run(0, mapped, hsm.tape, first);
        f.tape_home = None;
        self.cache.remove_file(ino.0);
        Ok(())
    }

    /// True when any page of the file is tape-resident (the classic HSM
    /// "offline" bit that Windows 2000 / TOPS-20 / RASH exposed).
    pub fn hsm_is_offline(&self, path: &str) -> SimResult<bool> {
        let ino = self.resolve(path)?;
        let f = self
            .inode(ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, format!("hsm_is_offline({path})")))?;
        let n = f.page_count();
        for p in 0..n {
            if self.is_offline(ino, p)? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    // ------------------------------------------------------------------
    // Experiment setup helpers (zero-cost, not part of the syscall API)
    // ------------------------------------------------------------------

    /// Allocates `pages` contiguous pages on volume member `member` of
    /// `mount` and returns `(device, first sector)`. Member 0 is the
    /// primary and goes through the mount's ordinary allocator (honoring
    /// fragmentation); replica members use their own bump cursor —
    /// replicas are laid out contiguously, the simulation's stand-in for
    /// a freshly synced copy.
    fn allocate_member(
        &mut self,
        mount: MountId,
        member: usize,
        pages: u64,
    ) -> SimResult<(DeviceId, u64)> {
        if member == 0 {
            let first = self.allocate_sectors(mount, pages)?;
            return Ok((self.mounts[mount.0].dev, first));
        }
        let (dev, first) = {
            let v = self.mounts[mount.0].volume.as_ref().ok_or_else(|| {
                SimError::new(Errno::Einval, "replica allocation on non-volume mount")
            })?;
            let dev = *v.devices.get(member).ok_or_else(|| {
                SimError::new(Errno::Einval, format!("volume has no member {member}"))
            })?;
            (dev, v.replica_next[member - 1])
        };
        let cap = self.devices[dev.0].capacity_sectors();
        let end = pages
            .checked_mul(SECTORS_PER_PAGE)
            .and_then(|needed| first.checked_add(needed))
            .filter(|&end| end <= cap)
            .ok_or_else(|| {
                SimError::new(
                    Errno::Enospc,
                    format!("device {} full", self.devices[dev.0].name()),
                )
            })?;
        if let Some(v) = self.mounts[mount.0].volume.as_mut() {
            v.replica_next[member - 1] = end;
        }
        Ok((dev, first))
    }

    /// Lays out `pages` pages on `mount` by its allocator, honoring
    /// fragmentation, without charging any time. On a striped volume the
    /// chunks round-robin across the members instead.
    fn layout_pages(&mut self, mount: MountId, pages: u64) -> SimResult<PageMap> {
        let striped = match self.mounts[mount.0].volume.as_ref() {
            Some(v) => match v.layout {
                VolumeLayout::Striped { stripe_pages } => {
                    Some((stripe_pages.max(1), v.devices.len()))
                }
                _ => None,
            },
            None => None,
        };
        let mut map = PageMap::new();
        let mut left = pages;
        while left > 0 {
            if let Some((stripe, n)) = striped {
                let take = stripe.min(left);
                let member = {
                    let v = self.mounts[mount.0]
                        .volume
                        .as_mut()
                        .ok_or_else(|| SimError::new(Errno::Einval, "volume vanished"))?;
                    let m = v.stripe_cursor % n;
                    v.stripe_cursor = (v.stripe_cursor + 1) % n;
                    m
                };
                let (dev, first) = self.allocate_member(mount, member, take)?;
                map.append_run(dev, first, take);
                left -= take;
            } else {
                let take = match &self.mounts[mount.0].frag {
                    Some(f) => f.chunk_pages.min(left),
                    None => left,
                };
                let first = self.allocate_sectors(mount, take)?;
                let dev = self.mounts[mount.0].dev;
                map.append_run(dev, first, take);
                left -= take;
            }
        }
        Ok(map)
    }

    /// Lays out the replica page maps for a `pages`-page file on `mount`:
    /// one full-size map per non-primary member for mirrored and coded
    /// volumes, empty otherwise. Coded replicas reserve the full page
    /// range too — a simulation simplification standing in for fragment
    /// placement, so every member can serve any page of the file.
    fn layout_replicas(&mut self, mount: MountId, pages: u64) -> SimResult<Vec<PageMap>> {
        let members = match self.mounts[mount.0].volume.as_ref() {
            Some(v)
                if matches!(
                    v.layout,
                    VolumeLayout::Mirrored | VolumeLayout::Coded { .. }
                ) =>
            {
                v.devices.len()
            }
            _ => return Ok(Vec::new()),
        };
        let mut out = Vec::new();
        for member in 1..members {
            let mut map = PageMap::new();
            if pages > 0 {
                let (dev, first) = self.allocate_member(mount, member, pages)?;
                map.append_run(dev, first, pages);
            }
            out.push(map);
        }
        Ok(out)
    }

    fn install_node(&mut self, path: &str, size: u64, data: Vec<u8>) -> SimResult<Ino> {
        let (parent, name) = self.resolve_parent(path)?;
        let mount = self.inode(parent)?.mount.ok_or_else(|| {
            SimError::new(Errno::Einval, format!("install_file({path}): no mount"))
        })?;
        let page_count = size.div_ceil(PAGE_SIZE);
        let pages = self.layout_pages(mount, page_count)?;
        let replicas = self.layout_replicas(mount, page_count)?;
        let ino = self.alloc_ino();
        let now = self.clock.now();
        self.inodes.insert(
            ino,
            Inode {
                ino,
                mount: Some(mount),
                body: InodeBody::File(FileNode {
                    size,
                    data,
                    pages,
                    tape_home: None,
                    replicas,
                }),
                mtime: now,
            },
        );
        let name = name.to_string();
        self.inode_mut(parent)?
            .as_dir_mut()
            .ok_or_else(|| SimError::new(Errno::Enotdir, format!("install_file({path})")))?
            .insert(name, ino);
        Ok(ino)
    }

    /// Installs a file with the given contents at `path` without charging
    /// any time and without touching the page cache. The file is laid out
    /// by the mount's allocator exactly as a normal write would lay it out.
    pub fn install_file(&mut self, path: &str, data: &[u8]) -> SimResult<()> {
        self.rec_unsupported("install_file");
        self.install_node(path, data.len() as u64, data.to_vec())
            .map(|_| ())
    }

    /// Installs a file of `size` bytes whose *contents* are never
    /// materialized — only the layout exists. Reads through the normal
    /// path return zero bytes for the holes; the point of a sparse install
    /// is layout- and residency-level experiments (`page_extents`,
    /// `fsleds_get`, `warm_file_pages`) on files far larger than host
    /// memory could hold.
    pub fn install_sparse_file(&mut self, path: &str, size: u64) -> SimResult<()> {
        self.rec_unsupported("install_sparse_file");
        self.install_node(path, size, Vec::new()).map(|_| ())
    }

    /// Marks pages `[first_page, first_page + pages)` of `path` resident,
    /// with zero cost and no device traffic — experiment setup for
    /// preparing an arbitrary cache state. Evictions this forces drop
    /// their dirty state silently (setup, not a syscall). Fails if the
    /// range lies beyond the file.
    pub fn warm_file_pages(&mut self, path: &str, first_page: u64, pages: u64) -> SimResult<()> {
        self.rec_unsupported("warm_file_pages");
        let ino = self.resolve(path)?;
        let n = self
            .inode(ino)?
            .as_file()
            .ok_or_else(|| SimError::new(Errno::Eisdir, format!("warm_file_pages({path})")))?
            .page_count();
        let end = first_page.saturating_add(pages);
        if end > n {
            return Err(SimError::new(
                Errno::Einval,
                format!("warm_file_pages({path}): {end} beyond {n} pages"),
            ));
        }
        for p in first_page..end {
            self.cache.insert(PageKey::new(ino.0, p), false);
        }
        Ok(())
    }

    /// Overwrites bytes of an installed file in place, without charging any
    /// time or touching cache state. Experiment setup only: this is how the
    /// harness moves the random match around between grep runs (the paper
    /// regenerated test files; content placement does not affect timing, so
    /// an in-place poke is equivalent and keeps the cache state intact).
    ///
    /// The range must lie within the current file size.
    pub fn poke_file(&mut self, path: &str, offset: u64, data: &[u8]) -> SimResult<()> {
        self.rec_unsupported("poke_file");
        let ino = self.resolve(path)?;
        let f = self
            .inode_mut(ino)?
            .as_file_mut()
            .ok_or_else(|| SimError::new(Errno::Eisdir, format!("poke_file({path})")))?;
        let end = offset
            .checked_add(data.len() as u64)
            .filter(|&end| end <= f.size)
            .ok_or_else(|| {
                SimError::new(
                    Errno::Einval,
                    format!("poke_file({path}): range beyond size {}", f.size),
                )
            })?;
        f.data[offset as usize..end as usize].copy_from_slice(data);
        Ok(())
    }

    /// Advances a mount's allocator by `pages` pages without creating any
    /// file — experiment setup for placing subsequent files deep into a
    /// device (e.g. in an inner disk zone) without materializing filler.
    pub fn advance_allocator(&mut self, mount: MountId, pages: u64) -> SimResult<()> {
        self.rec_unsupported("advance_allocator");
        self.allocate_sectors(mount, pages).map(|_| ())
    }

    /// Resets cache, usage, tenant, and queue-telemetry counters (not
    /// residency, positions, or device schedules); used between a warm-up
    /// run and measured runs.
    pub fn reset_counters(&mut self) {
        self.cache.reset_stats();
        self.usage = Rusage::default();
        self.tenant_snapshot = Rusage::default();
        for t in &mut self.tenants {
            t.usage = Rusage::default();
        }
        for q in &mut self.queues {
            q.reset_telemetry();
        }
        for d in &mut self.devices {
            d.reset_stats();
        }
    }
}

/// The device-class code carried in trace-event args; decoded for display
/// by `sleds_trace::class_label`.
fn class_code(class: DeviceClass) -> u64 {
    match class {
        DeviceClass::Memory => 0,
        DeviceClass::Disk => 1,
        DeviceClass::CdRom => 2,
        DeviceClass::Network => 3,
        DeviceClass::Tape => 4,
    }
}

fn device_event_name(class: DeviceClass, write: bool) -> &'static str {
    match (class, write) {
        (DeviceClass::Memory, false) => "memory.read",
        (DeviceClass::Memory, true) => "memory.write",
        (DeviceClass::Disk, false) => "disk.read",
        (DeviceClass::Disk, true) => "disk.write",
        (DeviceClass::CdRom, false) => "cdrom.read",
        (DeviceClass::CdRom, true) => "cdrom.write",
        (DeviceClass::Network, false) => "nfs.read",
        (DeviceClass::Network, true) => "nfs.write",
        (DeviceClass::Tape, false) => "tape.read",
        (DeviceClass::Tape, true) => "tape.write",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::DiskDevice;

    fn kernel_with_disk() -> Kernel {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        k.mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        k
    }

    #[test]
    fn mkdir_open_write_read_roundtrip() {
        let mut k = kernel_with_disk();
        let fd = k.open("/data/f", OpenFlags::CREATE).unwrap();
        assert_eq!(k.write(fd, b"hello world").unwrap(), 11);
        k.close(fd).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.read(fd, 5).unwrap(), b"hello");
        assert_eq!(k.read(fd, 100).unwrap(), b" world");
        assert_eq!(k.read(fd, 100).unwrap(), b"");
        k.close(fd).unwrap();
    }

    #[test]
    fn lseek_whence_semantics() {
        let mut k = kernel_with_disk();
        k.install_file("/data/f", b"0123456789").unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.lseek(fd, 4, Whence::Set).unwrap(), 4);
        assert_eq!(k.read(fd, 2).unwrap(), b"45");
        assert_eq!(k.lseek(fd, -1, Whence::Cur).unwrap(), 5);
        assert_eq!(k.lseek(fd, -2, Whence::End).unwrap(), 8);
        assert_eq!(k.read(fd, 10).unwrap(), b"89");
        assert!(k.lseek(fd, -100, Whence::Cur).is_err());
    }

    #[test]
    fn read_counts_major_then_minor_faults() {
        let mut k = kernel_with_disk();
        let data = vec![7u8; 8 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, data.len()).unwrap();
        let u1 = k.usage();
        assert_eq!(u1.major_faults, 8);
        assert_eq!(u1.minor_faults, 0);
        k.lseek(fd, 0, Whence::Set).unwrap();
        k.read(fd, data.len()).unwrap();
        let u2 = k.usage();
        assert_eq!(u2.major_faults, 8, "warm re-read must not fault");
        assert_eq!(u2.minor_faults, 8);
    }

    #[test]
    fn contiguous_misses_cluster_into_one_device_command() {
        let mut k = kernel_with_disk();
        let data = vec![1u8; 16 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, data.len()).unwrap();
        let u = k.usage();
        assert_eq!(u.device_reads, 1, "one clustered command expected");
        assert_eq!(u.major_faults, 16);
    }

    #[test]
    fn cold_sequential_faster_than_cold_random() {
        let mut k = kernel_with_disk();
        let pages = 64usize;
        let data = vec![2u8; pages * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let t = k.start_job();
        k.read(fd, data.len()).unwrap();
        let seq = k.finish_job(&t).elapsed;
        k.drop_caches().unwrap();
        let t = k.start_job();
        // Same pages in a scattered order (i * 37 mod 64 visits every page
        // once, hopping around the track so each read pays rotation).
        for i in 0..pages {
            let p = (i * 37) % pages;
            k.lseek(fd, (p as i64) * PAGE_SIZE as i64, Whence::Set)
                .unwrap();
            k.read(fd, PAGE_SIZE as usize).unwrap();
        }
        let rand = k.finish_job(&t).elapsed;
        assert!(
            rand.as_secs_f64() > 3.0 * seq.as_secs_f64(),
            "scattered ({rand}) should be much slower than sequential ({seq})"
        );
    }

    #[test]
    fn writes_dirty_pages_and_fsync_flushes() {
        let mut k = kernel_with_disk();
        let fd = k.open("/data/f", OpenFlags::CREATE).unwrap();
        let buf = vec![3u8; 4 * PAGE_SIZE as usize];
        k.write(fd, &buf).unwrap();
        assert_eq!(k.usage().device_writes, 0, "writes buffer in cache");
        k.fsync(fd).unwrap();
        assert!(k.usage().device_writes > 0, "fsync must hit the device");
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let mut cfg = MachineConfig::table2();
        cfg.ram = sleds_sim_core::ByteSize::mib(1); // 168-page cache
        cfg.cache_fraction = 0.66;
        let mut k = Kernel::new(cfg);
        k.mkdir("/data").unwrap();
        k.mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let fd = k.open("/data/f", OpenFlags::CREATE).unwrap();
        // Write 2 MiB: far beyond the cache, forcing dirty eviction.
        let chunk = vec![4u8; 64 * 1024];
        for _ in 0..32 {
            k.write(fd, &chunk).unwrap();
        }
        assert!(
            k.usage().device_writes > 0,
            "dirty evictions must write back"
        );
    }

    #[test]
    fn page_locations_reflect_cache_state() {
        let mut k = kernel_with_disk();
        let data = vec![5u8; 4 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let locs = k.page_locations(fd).unwrap();
        assert_eq!(locs.len(), 4);
        assert!(locs
            .iter()
            .all(|l| matches!(l, PageLocation::Device { .. })));
        // Read the middle two pages.
        k.lseek(fd, PAGE_SIZE as i64, Whence::Set).unwrap();
        k.read(fd, 2 * PAGE_SIZE as usize).unwrap();
        let locs = k.page_locations(fd).unwrap();
        assert!(matches!(locs[0], PageLocation::Device { .. }));
        assert_eq!(locs[1], PageLocation::Memory);
        assert_eq!(locs[2], PageLocation::Memory);
        assert!(matches!(locs[3], PageLocation::Device { .. }));
    }

    #[test]
    fn install_file_lays_out_contiguously() {
        let mut k = kernel_with_disk();
        let data = vec![6u8; 4 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let locs = k.page_locations(fd).unwrap();
        let sectors: Vec<u64> = locs
            .iter()
            .map(|l| match l {
                PageLocation::Device { sector, .. } => *sector,
                PageLocation::Memory => panic!("expected device"),
            })
            .collect();
        for w in sectors.windows(2) {
            assert_eq!(w[1], w[0] + SECTORS_PER_PAGE);
        }
    }

    #[test]
    fn fragmentation_breaks_contiguity() {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        k.set_fragmentation(m, 4, 64, 99);
        let data = vec![6u8; 16 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let locs = k.page_locations(fd).unwrap();
        let sectors: Vec<u64> = locs
            .iter()
            .map(|l| match l {
                PageLocation::Device { sector, .. } => *sector,
                PageLocation::Memory => panic!("expected device"),
            })
            .collect();
        let gaps = sectors
            .windows(2)
            .filter(|w| w[1] != w[0] + SECTORS_PER_PAGE)
            .count();
        assert!(gaps >= 2, "expected fragmentation gaps, got {gaps}");
    }

    #[test]
    fn unlink_removes_file_and_cache() {
        let mut k = kernel_with_disk();
        k.install_file("/data/f", &vec![0u8; PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, PAGE_SIZE as usize).unwrap();
        k.close(fd).unwrap();
        k.unlink("/data/f").unwrap();
        assert_eq!(k.cache_resident_pages(), 0);
        assert!(k.open("/data/f", OpenFlags::RDONLY).is_err());
    }

    #[test]
    fn readdir_and_stat() {
        let mut k = kernel_with_disk();
        k.install_file("/data/a", b"xy").unwrap();
        k.install_file("/data/b", b"z").unwrap();
        k.mkdir("/data/sub").unwrap();
        let mut names = k.readdir("/data").unwrap();
        names.sort();
        assert_eq!(names, vec!["a", "b", "sub"]);
        let st = k.stat("/data/a").unwrap();
        assert_eq!(st.size, 2);
        assert_eq!(st.kind, FileKind::File);
        assert_eq!(k.stat("/data/sub").unwrap().kind, FileKind::Dir);
        assert_eq!(k.stat("/nope").unwrap_err().errno, Errno::Enoent);
    }

    #[test]
    fn errors_bad_fd_and_modes() {
        let mut k = kernel_with_disk();
        k.install_file("/data/f", b"abc").unwrap();
        assert_eq!(k.read(Fd(77), 1).unwrap_err().errno, Errno::Ebadf);
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.write(fd, b"x").unwrap_err().errno, Errno::Ebadf);
        let wfd = k.open("/data/g", OpenFlags::CREATE).unwrap();
        assert_eq!(k.read(wfd, 1).unwrap_err().errno, Errno::Ebadf);
    }

    #[test]
    fn read_only_mount_rejects_writes() {
        let mut k = Kernel::table2();
        k.mkdir("/cdrom").unwrap();
        k.mount_cdrom("/cdrom", sleds_devices::CdRomDevice::table2_drive("cd0"))
            .unwrap();
        assert_eq!(
            k.open("/cdrom/x", OpenFlags::CREATE).unwrap_err().errno,
            Errno::Erofs
        );
    }

    #[test]
    fn append_mode_writes_at_end() {
        let mut k = kernel_with_disk();
        let fd = k.open("/data/log", OpenFlags::CREATE).unwrap();
        k.write(fd, b"one").unwrap();
        k.close(fd).unwrap();
        let mut fl = OpenFlags::RDWR;
        fl.append = true;
        let fd = k.open("/data/log", fl).unwrap();
        k.write(fd, b"two").unwrap();
        k.lseek(fd, 0, Whence::Set).unwrap();
        assert_eq!(k.read(fd, 10).unwrap(), b"onetwo");
    }

    #[test]
    fn partial_page_overwrite_faults_in_old_page() {
        let mut k = kernel_with_disk();
        let data = vec![9u8; 2 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDWR).unwrap();
        // Overwrite 10 bytes in the middle of page 0: needs RMW fault.
        k.lseek(fd, 100, Whence::Set).unwrap();
        k.write(fd, b"0123456789").unwrap();
        assert_eq!(k.usage().major_faults, 1);
        // Contents merged correctly.
        k.lseek(fd, 98, Whence::Set).unwrap();
        let got = k.read(fd, 14).unwrap();
        assert_eq!(&got, b"\x09\x090123456789\x09\x09");
    }

    #[test]
    fn hsm_offline_stage_and_reread() {
        let mut k = Kernel::table2();
        k.mkdir("/hsm").unwrap();
        k.mount_hsm(
            "/hsm",
            DiskDevice::table2_disk("hda"),
            Box::new(sleds_devices::TapeDevice::dlt("st0")),
            256,
        )
        .unwrap();
        let data = vec![8u8; 16 * PAGE_SIZE as usize];
        k.install_file("/hsm/f", &data).unwrap();
        assert!(!k.hsm_is_offline("/hsm/f").unwrap());
        k.hsm_migrate("/hsm/f", true).unwrap();
        assert!(k.hsm_is_offline("/hsm/f").unwrap());

        let fd = k.open("/hsm/f", OpenFlags::RDONLY).unwrap();
        let t = k.start_job();
        let got = k.read(fd, data.len()).unwrap();
        let rep = k.finish_job(&t);
        assert_eq!(got, data, "staged data must be intact");
        // Mount (40s) dominates.
        assert!(
            rep.elapsed >= SimDuration::from_secs(40),
            "{:?}",
            rep.elapsed
        );
        assert!(!k.hsm_is_offline("/hsm/f").unwrap(), "file now staged");

        // Second read: cached, fast.
        k.lseek(fd, 0, Whence::Set).unwrap();
        let t = k.start_job();
        k.read(fd, data.len()).unwrap();
        let rep = k.finish_job(&t);
        assert!(
            rep.elapsed < SimDuration::from_millis(50),
            "{:?}",
            rep.elapsed
        );
    }

    #[test]
    fn truncate_resets_file() {
        let mut k = kernel_with_disk();
        k.install_file("/data/f", &vec![1u8; 3 * PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/data/f", OpenFlags::CREATE).unwrap();
        assert_eq!(k.fstat(fd).unwrap().size, 0);
        k.write(fd, b"new").unwrap();
        assert_eq!(k.fstat(fd).unwrap().size, 3);
    }

    #[test]
    fn job_reports_are_deltas() {
        let mut k = kernel_with_disk();
        k.install_file("/data/f", &vec![0u8; PAGE_SIZE as usize])
            .unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, 10).unwrap();
        let t = k.start_job();
        k.lseek(fd, 0, Whence::Set).unwrap();
        k.read(fd, 10).unwrap();
        let rep = k.finish_job(&t);
        assert_eq!(rep.usage.major_faults, 0, "page already cached");
        assert_eq!(rep.usage.minor_faults, 1);
        assert!(rep.elapsed > SimDuration::ZERO);
    }

    #[test]
    fn readahead_converts_majors_to_hits() {
        let mut cfg = MachineConfig::table2();
        cfg.readahead_pages = 8;
        let mut k = Kernel::new(cfg);
        k.mkdir("/data").unwrap();
        k.mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let data = vec![1u8; 32 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        // Page-at-a-time sequential reads.
        for _ in 0..32 {
            k.read(fd, PAGE_SIZE as usize).unwrap();
        }
        let u = k.usage();
        assert!(
            u.major_faults < 8,
            "readahead should absorb most faults, got {}",
            u.major_faults
        );
        assert!(u.minor_faults > 24);

        // Without readahead every page is a major fault.
        let mut k2 = kernel_with_disk();
        k2.install_file("/data/f", &data).unwrap();
        let fd = k2.open("/data/f", OpenFlags::RDONLY).unwrap();
        for _ in 0..32 {
            k2.read(fd, PAGE_SIZE as usize).unwrap();
        }
        assert_eq!(k2.usage().major_faults, 32);
    }

    #[test]
    fn zero_length_read_is_empty() {
        let mut k = kernel_with_disk();
        k.install_file("/data/f", b"abc").unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.read(fd, 0).unwrap(), b"");
        assert_eq!(k.pread(fd, 0, 0).unwrap(), b"");
    }

    #[test]
    fn pread_does_not_move_offset() {
        let mut k = kernel_with_disk();
        k.install_file("/data/f", b"0123456789").unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        assert_eq!(k.pread(fd, 4, 3).unwrap(), b"456");
        assert_eq!(k.read(fd, 3).unwrap(), b"012");
    }

    #[test]
    fn tracing_is_a_zero_cost_observer() {
        let run = |traced: bool| {
            let mut k = kernel_with_disk();
            if traced {
                k.enable_tracing();
            }
            let data = vec![7u8; 8 * PAGE_SIZE as usize];
            k.install_file("/data/f", &data).unwrap();
            let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
            let t = k.start_job();
            k.read(fd, data.len()).unwrap();
            k.lseek(fd, 0, Whence::Set).unwrap();
            k.read(fd, data.len()).unwrap();
            k.close(fd).unwrap();
            let rep = k.finish_job(&t);
            (rep.elapsed, rep.usage, k.trace_events())
        };
        let (e1, u1, ev1) = run(false);
        let (e2, u2, ev2) = run(true);
        assert_eq!(e1, e2, "tracing must not move the virtual clock");
        assert_eq!(u1, u2, "tracing must not perturb rusage");
        assert!(ev1.is_empty());
        assert!(!ev2.is_empty());
    }

    #[test]
    fn traced_syscall_spans_balance_and_nest_device_work() {
        use sleds_trace::EventPhase;
        let mut k = kernel_with_disk();
        k.enable_tracing();
        let data = vec![1u8; 4 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, data.len()).unwrap();
        k.close(fd).unwrap();
        let evs = k.trace_events();
        let begins = evs.iter().filter(|e| e.phase == EventPhase::Begin).count();
        let ends = evs.iter().filter(|e| e.phase == EventPhase::End).count();
        assert_eq!(begins, ends, "all spans closed");
        // The cold read's one clustered device command, with dur matching
        // the io_wait it charged.
        let io: SimDuration = evs
            .iter()
            .filter(|e| {
                e.layer == Layer::Device && e.phase == EventPhase::Complete && e.args[1] > 0
            })
            .map(|e| e.dur)
            .sum();
        assert_eq!(io, k.usage().io_wait, "device spans account for io_wait");
        // The read End span carries the fd for the audit.
        let read_end = evs
            .iter()
            .find(|e| e.phase == EventPhase::End && e.name == "read")
            .expect("read span");
        assert_eq!(read_end.args[0], fd.0);
    }

    #[test]
    fn fsleds_stat_snapshots_metrics() {
        let mut k = kernel_with_disk();
        k.enable_tracing();
        let data = vec![2u8; 4 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, data.len()).unwrap();
        k.lseek(fd, 0, Whence::Set).unwrap();
        k.read(fd, data.len()).unwrap();
        let m = k.fsleds_stat(fd).unwrap();
        assert!(
            m.syscalls >= 4,
            "open+read+lseek+read traced: {}",
            m.syscalls
        );
        assert_eq!(m.cache_misses, 1, "one clustered miss run");
        assert_eq!(m.cache_hits, 4, "warm re-read hits every page");
        assert_eq!(m.device[1].reads, 1, "one disk command");
        assert!(m.device[1].service.sum() > 0);
        // Disabled tracing yields all-zero counters, not an error.
        let mut k2 = kernel_with_disk();
        k2.install_file("/data/f", b"x").unwrap();
        let fd2 = k2.open("/data/f", OpenFlags::RDONLY).unwrap();
        let m2 = k2.fsleds_stat(fd2).unwrap();
        assert_eq!(m2, Metrics::default());
    }

    #[test]
    fn fsleds_recal_bumps_epoch_and_generation() {
        let mut k = kernel_with_disk();
        k.enable_tracing();
        let data = vec![3u8; 2 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.read(fd, data.len()).unwrap();
        assert_eq!(k.sleds_epoch(), 0);
        let g0 = k.sled_generation(fd).unwrap();
        let snap = k.fsleds_recal(fd).unwrap();
        assert_eq!(k.sleds_epoch(), 1);
        assert!(snap.device[1].reads >= 1, "snapshot sees the disk read");
        // The epoch bump invalidates every memoized SLED vector: the
        // generation stamp strictly advances even though the file's cache
        // residency and layout are untouched.
        let g1 = k.sled_generation(fd).unwrap();
        assert_eq!(g1, g0 + 1);
        // The recal fence is in the event stream for the audit.
        assert!(k
            .trace_events()
            .iter()
            .any(|e| e.name == "sleds.recal" && e.args[0] == 1));
        // Untraced: empty metrics, but the epoch still bumps so traced
        // and untraced runs stay in lockstep.
        let mut k2 = kernel_with_disk();
        k2.install_file("/data/f", b"x").unwrap();
        let fd2 = k2.open("/data/f", OpenFlags::RDONLY).unwrap();
        let m2 = k2.fsleds_recal(fd2).unwrap();
        assert_eq!(m2, Metrics::default());
        assert_eq!(k2.sleds_epoch(), 1);
    }

    #[test]
    fn predict_reads_pairs_feed_accuracy_window() {
        let mut k = kernel_with_disk();
        k.enable_tracing();
        let data = vec![4u8; 2 * PAGE_SIZE as usize];
        k.install_file("/data/f", &data).unwrap();
        let fd = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        k.trace_predict(fd, SimDuration::from_nanos(1_000_000), 0)
            .unwrap();
        k.read(fd, data.len()).unwrap();
        k.close(fd).unwrap();
        let fd2 = k.open("/data/f", OpenFlags::RDONLY).unwrap();
        let m = k.fsleds_stat(fd2).unwrap();
        assert_eq!(m.device[1].accuracy.len(), 1, "one audited pair");
        assert_eq!(m.accuracy_cross_generation, 0);
    }
}
