//! Lossless workload capture: the flight recorder.
//!
//! Unlike the trace ring — which is a bounded, drop-oldest *observation*
//! channel — the [`WorkloadRecorder`] hooks the syscall boundary and
//! records **every** kernel entry while armed: the call (op, fd→path,
//! offset/len), the tenant it ran as, the submit [`SimTime`] on that
//! tenant's timeline, the device-fault epoch at submit, ring batches op
//! by op, and the outcome (result, completion time, and the exact
//! queue-wait/service attribution the per-device command queues priced
//! into the op). The recording is either *complete* — every charging
//! kernel entry between arm and disarm was captured — or it is marked
//! incomplete with a reason, so a capture that overflowed its budget or
//! saw an uncapturable call can never be silently replayed.
//!
//! The recorder is deliberately dumb storage: the kernel feeds it via
//! narrow hooks ([`WorkloadRecorder::begin`], [`WorkloadRecorder::note_device`],
//! [`WorkloadRecorder::finish_ok`]/[`WorkloadRecorder::finish_err`]), and
//! the `sleds-replay` crate serializes the result to the schema-versioned
//! `CAPTURE_*.jsonl` format and replays it. Data payloads are captured as
//! length + FNV-1a fold, not bytes: the recorder is lossless about the
//! *workload* (every op, every cost), not a content backup.

use std::collections::BTreeMap;

use crate::kernel::OpenFlags;

/// Schema tag the on-disk capture format carries; bump on any shape change.
/// v2: volume mounts in setup, the hedge policy in the header, and the
/// per-op hedged-read count in outcomes.
pub const CAPTURE_SCHEMA: &str = "sleds-capture-v2";

/// `lseek` origin codes in captures: `Whence::Set`.
pub const WHENCE_SET: u8 = 0;
/// `lseek` origin codes in captures: `Whence::Cur`.
pub const WHENCE_CUR: u8 = 1;
/// `lseek` origin codes in captures: `Whence::End`.
pub const WHENCE_END: u8 = 2;

/// FNV-1a 64 over a byte slice: the deterministic fold captures use to
/// pin data payloads without storing them.
pub fn fold_bytes(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// One kernel entry, as the recorder saw it submitted.
#[derive(Clone, Debug, PartialEq)]
pub enum CapturedCall {
    /// `tenant_register(name)` — captured so replay recreates tenant ids
    /// in the same order.
    TenantRegister {
        /// Tenant name.
        name: String,
    },
    /// `open(path, flags)`.
    Open {
        /// Absolute path.
        path: String,
        /// Open flags.
        flags: OpenFlags,
    },
    /// `close(fd)`.
    Close {
        /// Raw descriptor number.
        fd: u64,
    },
    /// `lseek(fd, offset, whence)`.
    Lseek {
        /// Raw descriptor number.
        fd: u64,
        /// Signed offset.
        offset: i64,
        /// Origin code ([`WHENCE_SET`]/[`WHENCE_CUR`]/[`WHENCE_END`]).
        whence: u8,
    },
    /// `read(fd, len)`.
    Read {
        /// Raw descriptor number.
        fd: u64,
        /// Bytes wanted.
        len: u64,
    },
    /// `pread(fd, pos, len)`.
    Pread {
        /// Raw descriptor number.
        fd: u64,
        /// Absolute file position.
        pos: u64,
        /// Bytes wanted.
        len: u64,
    },
    /// `write(fd, data)` — the written bytes are carried in full so
    /// replay reproduces file contents exactly.
    Write {
        /// Raw descriptor number.
        fd: u64,
        /// The bytes written.
        data: Vec<u8>,
    },
    /// `fsync(fd)`.
    Fsync {
        /// Raw descriptor number.
        fd: u64,
    },
    /// `stat(path)`.
    Stat {
        /// Absolute path.
        path: String,
    },
    /// `fstat(fd)`.
    Fstat {
        /// Raw descriptor number.
        fd: u64,
    },
    /// `mkdir(path)`.
    Mkdir {
        /// Absolute path.
        path: String,
    },
    /// `readdir(path)`.
    Readdir {
        /// Absolute path.
        path: String,
    },
    /// `unlink(path)`.
    Unlink {
        /// Absolute path.
        path: String,
    },
    /// One `ring_enter` batch: the ops actually serviced by this enter,
    /// in service order.
    RingEnter {
        /// The ring's per-queue bound, so replay rebuilds an identical ring.
        capacity: u64,
        /// Serviced submissions in order.
        ops: Vec<CapturedRingOp>,
    },
}

impl CapturedCall {
    /// Short human name, used in reports and error messages.
    pub fn name(&self) -> &'static str {
        match self {
            CapturedCall::TenantRegister { .. } => "tenant_register",
            CapturedCall::Open { .. } => "open",
            CapturedCall::Close { .. } => "close",
            CapturedCall::Lseek { .. } => "lseek",
            CapturedCall::Read { .. } => "read",
            CapturedCall::Pread { .. } => "pread",
            CapturedCall::Write { .. } => "write",
            CapturedCall::Fsync { .. } => "fsync",
            CapturedCall::Stat { .. } => "stat",
            CapturedCall::Fstat { .. } => "fstat",
            CapturedCall::Mkdir { .. } => "mkdir",
            CapturedCall::Readdir { .. } => "readdir",
            CapturedCall::Unlink { .. } => "unlink",
            CapturedCall::RingEnter { .. } => "ring_enter",
        }
    }
}

/// One serviced ring submission inside a [`CapturedCall::RingEnter`].
#[derive(Clone, Debug, PartialEq)]
pub struct CapturedRingOp {
    /// The submitter's completion tag.
    pub user_data: u64,
    /// The operation, reusing the syscall vocabulary (only `Open`,
    /// `Close`, `Pread` and `Stat` can appear here).
    pub call: CapturedCall,
}

/// Device time charged to one captured op on one device class.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCost {
    /// Device class code (same coding as the trace layer).
    pub class: u64,
    /// Device commands issued.
    pub commands: u64,
    /// Queue-wait nanoseconds priced into the op.
    pub queue_wait_ns: u64,
    /// Device service nanoseconds priced into the op.
    pub service_ns: u64,
    /// Payload bytes moved.
    pub bytes: u64,
}

/// How a captured op ended: result, completion time, and the exact
/// per-phase device attribution accumulated while it was in flight.
#[derive(Clone, Debug, PartialEq)]
pub struct OpOutcome {
    /// Whether the call returned `Ok`.
    pub ok: bool,
    /// Errno name when it did not.
    pub errno: Option<String>,
    /// Primary scalar result (fd for `open`, new offset for `lseek`,
    /// bytes for `read`/`write`, serviced count for `ring_enter`, ...).
    pub ret: u64,
    /// Returned payload length (reads).
    pub data_len: u64,
    /// FNV-1a fold of the returned payload (reads) — pins data equality
    /// across replays without storing the bytes.
    pub data_fold: u64,
    /// Completion time on the issuing tenant's timeline, nanoseconds.
    pub complete_ns: u64,
    /// Total queue-wait nanoseconds priced into this op.
    pub queue_wait_ns: u64,
    /// Total device-service nanoseconds priced into this op.
    pub service_ns: u64,
    /// Device commands issued while this op was in flight.
    pub device_commands: u64,
    /// Payload bytes moved by those commands.
    pub device_bytes: u64,
    /// Per-device-class breakdown of the above, class-sorted.
    pub classes: Vec<ClassCost>,
    /// Hedged (redundant) reads issued while this op was in flight. Each
    /// one's cancelled loser is already a `classes` row, so the totals
    /// above stay exact; this count pins that replay hedged identically.
    pub hedges: u64,
}

/// One fully captured kernel entry.
#[derive(Clone, Debug, PartialEq)]
pub struct CapturedOp {
    /// Position in the global capture order (0-based).
    pub seq: u64,
    /// Tenant the op ran as.
    pub tenant: u64,
    /// Submit time on that tenant's timeline, nanoseconds.
    pub submit_ns: u64,
    /// Sum of every device's fault epoch at submit — which fault windows
    /// the op ran under.
    pub fault_epoch: u64,
    /// The path the op's fd resolved to at submit, when it had one —
    /// the fd→path half of the record, for readability and audits.
    pub path: Option<String>,
    /// The call itself.
    pub call: CapturedCall,
    /// How it ended.
    pub outcome: OpOutcome,
}

/// A finished recording: every op between arm and disarm, plus the
/// explicit completeness verdict a replayer must honor.
#[derive(Clone, Debug, PartialEq)]
pub struct Capture {
    /// True iff every charging kernel entry was captured and the budget
    /// was never exceeded. Incomplete captures must never be replayed.
    pub complete: bool,
    /// Why the capture is incomplete, when it is.
    pub incomplete_reason: Option<String>,
    /// The op budget the recorder was armed with.
    pub budget: usize,
    /// Virtual time when the recorder was armed (the active tenant's
    /// clock). The replayer measures the first pre-registration think
    /// gap from here — setup work before the capture is not think time.
    pub base_ns: u64,
    /// The ops, in global capture order.
    pub ops: Vec<CapturedOp>,
}

/// In-flight accumulator for the op currently inside the kernel.
#[derive(Debug)]
struct InFlight {
    tenant: u64,
    submit_ns: u64,
    fault_epoch: u64,
    path: Option<String>,
    call: CapturedCall,
    classes: BTreeMap<u64, ClassCost>,
    hedges: u64,
}

/// The flight recorder the kernel arms via `Kernel::start_capture`.
///
/// Bounded (D009): holds at most `budget` ops; hitting the budget marks
/// the capture incomplete and stops retaining further ops, it never
/// drops silently.
#[derive(Debug)]
pub struct WorkloadRecorder {
    budget: usize,
    base_ns: u64,
    complete: bool,
    incomplete_reason: Option<String>,
    ops: Vec<CapturedOp>,
    /// Live fd→path table so each op can record what its fd meant.
    fd_paths: BTreeMap<u64, String>,
    inflight: Option<InFlight>,
}

impl WorkloadRecorder {
    /// A recorder that retains at most `budget` ops (at least 1), armed
    /// at virtual time `base_ns`.
    pub fn new(budget: usize, base_ns: u64) -> WorkloadRecorder {
        WorkloadRecorder {
            budget: budget.max(1),
            base_ns,
            complete: true,
            incomplete_reason: None,
            ops: Vec::new(),
            fd_paths: BTreeMap::new(),
            inflight: None,
        }
    }

    /// Ops retained so far.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True when nothing has been captured yet.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Whether the capture is still complete (replayable).
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// Marks the capture incomplete; the first reason wins.
    pub fn poison(&mut self, reason: String) {
        if self.complete {
            self.complete = false;
            self.incomplete_reason = Some(reason);
        }
    }

    /// Records a charging kernel entry the recorder cannot replay
    /// (ioctls, pin/unpin, cache drops, setup mutations mid-capture).
    pub fn unsupported(&mut self, name: &str) {
        self.poison(format!("uncapturable call during capture: {name}"));
    }

    /// Arms the in-flight accumulator for one kernel entry. Called at
    /// the syscall boundary, before any charge.
    pub fn begin(&mut self, call: CapturedCall, tenant: u64, submit_ns: u64, fault_epoch: u64) {
        if self.inflight.is_some() {
            // Kernel entries never nest; seeing one means a hook bug.
            self.poison(format!("nested capture begin: {}", call.name()));
        }
        if self.ops.len() >= self.budget {
            self.poison(format!("capture budget overflowed ({} ops)", self.budget));
            self.inflight = None;
            return;
        }
        let path = match &call {
            CapturedCall::Close { fd }
            | CapturedCall::Lseek { fd, .. }
            | CapturedCall::Read { fd, .. }
            | CapturedCall::Pread { fd, .. }
            | CapturedCall::Write { fd, .. }
            | CapturedCall::Fsync { fd }
            | CapturedCall::Fstat { fd } => self.fd_paths.get(fd).cloned(),
            _ => None,
        };
        self.inflight = Some(InFlight {
            tenant,
            submit_ns,
            fault_epoch,
            path,
            call,
            classes: BTreeMap::new(),
            hedges: 0,
        });
    }

    /// Accumulates one device command's exact pricing into the in-flight
    /// op. No-op when no op is in flight (setup traffic).
    pub fn note_device(&mut self, class: u64, queue_wait_ns: u64, service_ns: u64, bytes: u64) {
        if let Some(f) = self.inflight.as_mut() {
            let c = f.classes.entry(class).or_insert(ClassCost {
                class,
                ..ClassCost::default()
            });
            c.commands += 1;
            c.queue_wait_ns = c.queue_wait_ns.saturating_add(queue_wait_ns);
            c.service_ns = c.service_ns.saturating_add(service_ns);
            c.bytes = c.bytes.saturating_add(bytes);
        }
    }

    /// Counts one hedged (redundant) read issued by the in-flight op. The
    /// loser's cancel cost arrives separately via
    /// [`WorkloadRecorder::note_device`]. No-op outside an op (setup).
    pub fn note_hedge(&mut self) {
        if let Some(f) = self.inflight.as_mut() {
            f.hedges += 1;
        }
    }

    /// Appends one serviced submission to the in-flight `RingEnter`.
    pub fn ring_op(&mut self, user_data: u64, call: CapturedCall) {
        match self.inflight.as_mut() {
            Some(InFlight {
                call: CapturedCall::RingEnter { ops, .. },
                ..
            }) => ops.push(CapturedRingOp { user_data, call }),
            _ => self.poison("ring op captured outside a ring_enter".to_string()),
        }
    }

    /// Completes the in-flight op successfully. `data` is the returned
    /// payload, folded rather than stored.
    pub fn finish_ok(&mut self, ret: u64, data: Option<&[u8]>, complete_ns: u64) {
        let (data_len, data_fold) = match data {
            Some(d) => (d.len() as u64, fold_bytes(d)),
            None => (0, 0),
        };
        self.finish(
            OpOutcome {
                ok: true,
                errno: None,
                ret,
                data_len,
                data_fold,
                complete_ns,
                queue_wait_ns: 0,
                service_ns: 0,
                device_commands: 0,
                device_bytes: 0,
                classes: Vec::new(),
                hedges: 0,
            },
            true,
        );
    }

    /// Completes the in-flight op with an error.
    pub fn finish_err(&mut self, errno: &str, complete_ns: u64) {
        self.finish(
            OpOutcome {
                ok: false,
                errno: Some(errno.to_string()),
                ret: 0,
                data_len: 0,
                data_fold: 0,
                complete_ns,
                queue_wait_ns: 0,
                service_ns: 0,
                device_commands: 0,
                device_bytes: 0,
                classes: Vec::new(),
                hedges: 0,
            },
            false,
        );
    }

    fn finish(&mut self, mut outcome: OpOutcome, ok: bool) {
        let Some(f) = self.inflight.take() else {
            // begin() refused (budget) or was never called; nothing to do.
            return;
        };
        let mut classes: Vec<ClassCost> = f.classes.into_values().collect();
        classes.sort_by_key(|c| c.class);
        for c in &classes {
            outcome.queue_wait_ns = outcome.queue_wait_ns.saturating_add(c.queue_wait_ns);
            outcome.service_ns = outcome.service_ns.saturating_add(c.service_ns);
            outcome.device_commands += c.commands;
            outcome.device_bytes = outcome.device_bytes.saturating_add(c.bytes);
        }
        outcome.classes = classes;
        outcome.hedges = f.hedges;
        if ok {
            // Keep the fd→path table live so later ops resolve.
            match &f.call {
                CapturedCall::Open { path, .. } => {
                    self.fd_paths.insert(outcome.ret, path.clone());
                }
                CapturedCall::Close { fd } => {
                    self.fd_paths.remove(fd);
                }
                CapturedCall::RingEnter { ops, .. } => {
                    // Ring opens allocate fds sequentially in service
                    // order; closes retire theirs. Outcomes per ring op
                    // are not recorded individually, so track paths
                    // conservatively: opens are resolved by the replayer
                    // from its own fd sequence.
                    for op in ops {
                        if let CapturedCall::Close { fd } = &op.call {
                            self.fd_paths.remove(fd);
                        }
                    }
                }
                _ => {}
            }
        }
        self.ops.push(CapturedOp {
            seq: self.ops.len() as u64,
            tenant: f.tenant,
            submit_ns: f.submit_ns,
            fault_epoch: f.fault_epoch,
            path: f.path,
            call: f.call,
            outcome,
        });
    }

    /// Disarms the recorder and returns the finished capture. An op
    /// still in flight (kernel re-entered during teardown) poisons it.
    pub fn into_capture(mut self) -> Capture {
        if self.inflight.is_some() {
            self.poison("capture stopped with an op in flight".to_string());
        }
        Capture {
            complete: self.complete,
            incomplete_reason: self.incomplete_reason,
            budget: self.budget,
            base_ns: self.base_ns,
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn begin_simple(r: &mut WorkloadRecorder, seq: u64) {
        r.begin(CapturedCall::Fsync { fd: 3 }, 0, seq * 10, 0);
    }

    #[test]
    fn fold_is_fnv1a() {
        assert_eq!(fold_bytes(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fold_bytes(b"a"), fold_bytes(b"b"));
    }

    #[test]
    fn open_then_read_resolves_fd_to_path() {
        let mut r = WorkloadRecorder::new(16, 0);
        r.begin(
            CapturedCall::Open {
                path: "/disk/a".to_string(),
                flags: OpenFlags::default(),
            },
            0,
            100,
            0,
        );
        r.finish_ok(3, None, 200);
        r.begin(CapturedCall::Read { fd: 3, len: 8 }, 0, 300, 0);
        r.note_device(1, 10, 20, 4096);
        r.note_device(1, 5, 7, 4096);
        r.finish_ok(8, Some(b"abcdefgh"), 400);
        let cap = r.into_capture();
        assert!(cap.complete);
        assert_eq!(cap.ops.len(), 2);
        let read = &cap.ops[1];
        assert_eq!(read.path.as_deref(), Some("/disk/a"));
        assert_eq!(read.outcome.queue_wait_ns, 15);
        assert_eq!(read.outcome.service_ns, 27);
        assert_eq!(read.outcome.device_commands, 2);
        assert_eq!(read.outcome.device_bytes, 8192);
        assert_eq!(read.outcome.data_fold, fold_bytes(b"abcdefgh"));
        assert_eq!(read.outcome.classes.len(), 1);
    }

    #[test]
    fn budget_overflow_is_loud_and_final() {
        let mut r = WorkloadRecorder::new(2, 0);
        for i in 0..3 {
            begin_simple(&mut r, i);
            r.finish_ok(0, None, i * 10 + 5);
        }
        let cap = r.into_capture();
        assert!(!cap.complete);
        assert_eq!(cap.ops.len(), 2, "ops beyond the budget are not retained");
        let reason = cap.incomplete_reason.unwrap_or_default();
        assert!(reason.contains("budget"), "{reason}");
    }

    #[test]
    fn unsupported_call_poisons() {
        let mut r = WorkloadRecorder::new(8, 0);
        begin_simple(&mut r, 0);
        r.finish_ok(0, None, 5);
        r.unsupported("ioctl.fsleds_stat");
        let cap = r.into_capture();
        assert!(!cap.complete);
        assert!(cap
            .incomplete_reason
            .unwrap_or_default()
            .contains("fsleds_stat"));
    }

    #[test]
    fn ring_ops_accumulate_into_the_batch() {
        let mut r = WorkloadRecorder::new(8, 0);
        r.begin(
            CapturedCall::RingEnter {
                capacity: 4,
                ops: Vec::new(),
            },
            2,
            1000,
            0,
        );
        r.ring_op(
            7,
            CapturedCall::Pread {
                fd: 3,
                pos: 0,
                len: 16,
            },
        );
        r.note_device(1, 100, 200, 4096);
        r.finish_ok(1, None, 2000);
        let cap = r.into_capture();
        assert!(cap.complete);
        match &cap.ops[0].call {
            CapturedCall::RingEnter { ops, .. } => {
                assert_eq!(ops.len(), 1);
                assert_eq!(ops[0].user_data, 7);
            }
            other => panic!("unexpected call {other:?}"),
        }
        assert_eq!(cap.ops[0].outcome.queue_wait_ns, 100);
    }

    #[test]
    fn ring_op_outside_batch_poisons() {
        let mut r = WorkloadRecorder::new(8, 0);
        r.ring_op(0, CapturedCall::Close { fd: 3 });
        assert!(!r.is_complete());
    }

    #[test]
    fn stop_mid_flight_poisons() {
        let mut r = WorkloadRecorder::new(8, 0);
        begin_simple(&mut r, 0);
        let cap = r.into_capture();
        assert!(!cap.complete);
    }
}
