//! Redundant volume layouts and the hedged-read policy.
//!
//! A *volume* is a mount backed by more than one block device. The layout
//! decides what the extra devices hold:
//!
//! * [`VolumeLayout::Mirrored`] — every extent exists in full on every
//!   member device (n-way replication). A read is served by the cheapest
//!   *available* copy; an offline primary reroutes to a mirror instead of
//!   surfacing `Eio`, and a degraded or queue-saturated primary triggers a
//!   *hedged* read against the next-cheapest copy.
//! * [`VolumeLayout::Striped`] — extents are round-robined across member
//!   devices in `stripe_pages` chunks. No redundancy: striping is a pure
//!   placement policy that spreads queue pressure.
//! * [`VolumeLayout::Coded`] — a (k, n) erasure code: each extent is cut
//!   into `k` fragments plus `n - k` parity fragments, one per device, and
//!   a read completes when the `k` cheapest available fragments arrive.
//!   The extent's delivery cost is therefore the **k-th cheapest** fragment
//!   (the straggler of the chosen k), and the extent is unavailable only
//!   when fewer than `k` members are online.
//!
//! [`HedgePolicy`] bounds redundant work: at most `max_hedges` extra
//! requests per primary command, each loser cancelled and charged an
//! explicit `cancel_cost` so per-tenant attribution still sums exactly
//! (the conservation law `own_service + queue_wait == observed` holds by
//! construction — a cancel is just a tiny service-time row).

use sleds_sim_core::SimDuration;

/// How a volume lays data across its member devices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VolumeLayout {
    /// Full n-way replication: every member holds every byte.
    Mirrored,
    /// Round-robin striping in `stripe_pages` chunks; no redundancy.
    Striped {
        /// Pages per stripe chunk (clamped to at least 1).
        stripe_pages: u64,
    },
    /// (k, n) erasure code: any `k` of the `n` members reconstruct.
    Coded {
        /// Data fragments needed to reconstruct (1 ≤ k < n).
        k: u32,
    },
}

impl VolumeLayout {
    /// Short layout name used in traces, captures and reports.
    pub fn name(&self) -> &'static str {
        match self {
            VolumeLayout::Mirrored => "mirrored",
            VolumeLayout::Striped { .. } => "striped",
            VolumeLayout::Coded { .. } => "coded",
        }
    }

    /// Minimum member count this layout is meaningful with.
    pub fn min_devices(&self) -> usize {
        match self {
            VolumeLayout::Mirrored => 2,
            VolumeLayout::Striped { .. } => 2,
            VolumeLayout::Coded { k } => *k as usize + 1,
        }
    }

    /// For coded layouts, the `k` of (k, n); otherwise `None`.
    pub fn coded_k(&self) -> Option<u32> {
        match self {
            VolumeLayout::Coded { k } => Some(*k),
            _ => None,
        }
    }
}

/// When and how the kernel issues a redundant (hedged) read, and what a
/// cancelled loser costs.
///
/// Hedging triggers when the chosen replica's device sits inside a fault
/// window (degraded) or its queue wait alone exceeds
/// `deadline_mult ×` the SLED-predicted healthy service time. The kernel
/// then prices every candidate with live fault-epoch costs, issues the
/// real command on the predicted winner, and charges each loser exactly
/// [`HedgePolicy::cancel_cost`] of service time on its own queue.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgePolicy {
    /// Upper bound on redundant requests per primary command. `0`
    /// disables hedging entirely (retry-only behavior).
    pub max_hedges: u32,
    /// Deadline multiplier over the healthy-profile service estimate;
    /// exceeding it (on queue wait) triggers a hedge.
    pub deadline_mult: f64,
    /// Service time charged to a cancelled loser's queue — the cost of
    /// issuing and revoking the redundant command.
    pub cancel_cost: SimDuration,
}

impl HedgePolicy {
    /// Hedging disabled: reads retry on their chosen replica only.
    pub fn disabled() -> HedgePolicy {
        HedgePolicy {
            max_hedges: 0,
            ..HedgePolicy::default()
        }
    }
}

impl Default for HedgePolicy {
    /// One hedge per command, a 4× deadline, and a 50 µs cancel charge.
    fn default() -> HedgePolicy {
        HedgePolicy {
            max_hedges: 1,
            deadline_mult: 4.0,
            cancel_cost: SimDuration::from_micros(50),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_names_and_minimums() {
        assert_eq!(VolumeLayout::Mirrored.name(), "mirrored");
        assert_eq!(VolumeLayout::Striped { stripe_pages: 8 }.name(), "striped");
        assert_eq!(VolumeLayout::Coded { k: 2 }.name(), "coded");
        assert_eq!(VolumeLayout::Mirrored.min_devices(), 2);
        assert_eq!(VolumeLayout::Coded { k: 2 }.min_devices(), 3);
        assert_eq!(VolumeLayout::Coded { k: 2 }.coded_k(), Some(2));
        assert_eq!(VolumeLayout::Mirrored.coded_k(), None);
    }

    #[test]
    fn default_policy_hedges_once_and_disabled_never() {
        let d = HedgePolicy::default();
        assert_eq!(d.max_hedges, 1);
        assert!(d.deadline_mult > 1.0);
        assert!(d.cancel_cost > SimDuration::ZERO);
        assert_eq!(HedgePolicy::disabled().max_hedges, 0);
    }
}
