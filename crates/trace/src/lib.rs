//! Virtual-clock tracing for the SLEDs simulator.
//!
//! The paper's claim is that SLEDs *predict* delivery latency well enough
//! for applications to reorder and prune their I/O. This crate is the
//! instrument that checks the claim: a bounded ring buffer of structured
//! [`TraceEvent`]s stamped with [`SimTime`](sleds_sim_core::SimTime), per-layer
//! [`Metrics`] (counters plus log-bucket latency histograms), a Chrome
//! `trace_event` JSON exporter, a folded-stack flamegraph summary, and a
//! prediction-accuracy audit that pairs each `sleds_total_delivery_time`
//! estimate with the traced actual virtual duration of the reads it covered.
//!
//! Two properties are load-bearing:
//!
//! * **Virtual time only.** Every timestamp is the kernel's [`SimTime`];
//!   no wall clock is ever consulted, so traces replay bit-identically and
//!   sledlint rule D001 holds in this crate like any other.
//! * **Zero-cost observer.** Tracing never advances the virtual clock and
//!   never touches `Rusage`, whether enabled or not. A traced run and an
//!   untraced run of the same workload produce byte-identical virtual
//!   results; the trace is a pure projection of what happened.
//!
//! The buffer is bounded (drop-oldest on overflow, with a dropped-event
//! counter) so long workloads cannot grow memory without bound.

mod audit;
mod chrome;
mod event;
mod flame;
mod metrics;
mod ring;
mod tracer;

pub use audit::{
    audit_accuracy, summarize_class, AccuracySample, AccuracyTracker, AuditReport, ClassAccuracy,
};
pub use chrome::{chrome_trace_json, chrome_trace_json_named, json_escape};
pub use event::{
    class_label, pack_class_generation, unpack_class_generation, EventPhase, Layer, TraceEvent,
};
pub use flame::folded_stacks;
pub use metrics::{
    AccuracyWindow, ClassMetrics, Metrics, TenantClassMetrics, ACCURACY_WINDOW, NUM_DEVICE_CLASSES,
};
pub use ring::RingBuffer;
pub use tracer::{Tracer, DEFAULT_CAPACITY};
