//! The event vocabulary: layers, phases, and the event record itself.

use sleds_sim_core::{SimDuration, SimTime};

/// Which layer of the stack emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Layer {
    /// Kernel entry points: `open`, `read`, `write`, the `FSLEDS_*` ioctls.
    Syscall,
    /// Page-cache decisions: hits, misses, evictions, writebacks.
    Cache,
    /// Device service: whole commands and their mechanical phases.
    Device,
    /// Application-level spans and markers (pick sessions, predictions).
    App,
}

impl Layer {
    /// Short lowercase label, used as the Chrome trace category.
    pub fn label(self) -> &'static str {
        match self {
            Layer::Syscall => "syscall",
            Layer::Cache => "cache",
            Layer::Device => "device",
            Layer::App => "app",
        }
    }
}

/// Event phase, mirroring the Chrome `trace_event` phases we export.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventPhase {
    /// Span start (`ph:"B"`). Paired with the next matching [`EventPhase::End`].
    Begin,
    /// Span end (`ph:"E"`). Carries the span duration in `dur` for
    /// consumers that read the buffer directly.
    End,
    /// A complete span with a known duration (`ph:"X"`), used for device
    /// commands and their phases.
    Complete,
    /// A zero-width marker (Chrome's instant event, `ph:"i"`). Named
    /// `Mark` because the bare identifier `Instant` is reserved for the
    /// wall clock by sledlint D001, which covers this crate.
    Mark,
}

/// One trace record.
///
/// `Copy` and fixed-size on purpose: pushing an event is a few stores into
/// the ring buffer, names are `&'static str` so no allocation or hashing
/// happens on the hot path, and the whole record compares bitwise for the
/// determinism tests.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotonic sequence number (counts emitted events, including any
    /// later overwritten by ring overflow).
    pub seq: u64,
    /// Virtual timestamp of the event (span start for `Complete`).
    pub ts: SimTime,
    /// Span duration for `Complete` and `End` events; zero otherwise.
    pub dur: SimDuration,
    /// Phase of the event.
    pub phase: EventPhase,
    /// Emitting layer.
    pub layer: Layer,
    /// Tenant on whose behalf the event happened (0 is the main tenant
    /// single-tenant workloads run as). The Chrome exporter maps this to
    /// the `pid` lane.
    pub tenant: u64,
    /// Event name (e.g. `"read"`, `"cache.miss"`, `"disk.seek"`).
    pub name: &'static str,
    /// Event-specific payload; meaning documented per emission site
    /// (typically fd/page/sector in `args[0]`, a count in `args[1]`,
    /// a device-class code in `args[2]`).
    pub args: [u64; 3],
}

/// Human label for a device-class code as carried in event payloads.
///
/// Codes follow the order of `sleds_devices::DeviceClass` (memory, disk,
/// CD-ROM, network, tape); this crate deliberately does not depend on the
/// device crate, so the mapping is by value.
pub fn class_label(code: u64) -> &'static str {
    match code {
        0 => "memory",
        1 => "disk",
        2 => "cdrom",
        3 => "network",
        4 => "tape",
        _ => "unknown",
    }
}

/// Packs a device-class code and a sleds-table generation into the third
/// `sleds.predict` argument: class in the low 8 bits, generation above.
/// Generation 0 leaves the argument equal to the bare class code, so
/// pre-generation traces decode unchanged.
pub fn pack_class_generation(class: u64, generation: u64) -> u64 {
    (class & 0xff) | (generation << 8)
}

/// Inverse of [`pack_class_generation`]: `(class, generation)`.
pub fn unpack_class_generation(arg: u64) -> (u64, u64) {
    (arg & 0xff, arg >> 8)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_generation_packing_roundtrips() {
        for (class, generation) in [(0u64, 0u64), (4, 0), (1, 1), (3, 7_000_000)] {
            let packed = pack_class_generation(class, generation);
            assert_eq!(unpack_class_generation(packed), (class, generation));
        }
        // Generation 0 is the identity: old traces decode as before.
        assert_eq!(pack_class_generation(2, 0), 2);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Layer::Syscall.label(), "syscall");
        assert_eq!(Layer::Device.label(), "device");
        assert_eq!(class_label(0), "memory");
        assert_eq!(class_label(4), "tape");
        assert_eq!(class_label(99), "unknown");
    }
}
