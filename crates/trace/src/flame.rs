//! Folded-stack ("flamegraph") summary of a trace.
//!
//! Spans are recovered from begin/end pairs and complete events, nested by
//! interval containment (the simulator is single-threaded, so containment
//! is unambiguous), and each stack path's *self* time — its duration minus
//! its direct children — is accumulated. The output is the classic folded
//! format, one `path self_ns` line per stack, sorted by path, which both
//! humans and `flamegraph.pl`-style tools can read.

use std::collections::BTreeMap;

use crate::event::{EventPhase, TraceEvent};

struct Span {
    start: u64,
    end: u64,
    seq: u64,
    label: String,
}

fn collect_spans(events: &[TraceEvent]) -> Vec<Span> {
    let mut spans = Vec::new();
    let mut open: Vec<(&TraceEvent, usize)> = Vec::new();
    for ev in events {
        match ev.phase {
            EventPhase::Begin => open.push((ev, 0)),
            EventPhase::End => {
                // A truncated buffer can orphan an End; ignore it.
                if let Some((b, _)) = open.pop() {
                    spans.push(Span {
                        start: b.ts.as_nanos(),
                        end: ev.ts.as_nanos(),
                        seq: b.seq,
                        label: format!("{}:{}", b.layer.label(), b.name),
                    });
                }
            }
            EventPhase::Complete => spans.push(Span {
                start: ev.ts.as_nanos(),
                end: ev.ts.as_nanos().saturating_add(ev.dur.as_nanos()),
                seq: ev.seq,
                label: format!("{}:{}", ev.layer.label(), ev.name),
            }),
            EventPhase::Mark => {}
        }
    }
    // Zero-width spans carry no time and only clutter the fold.
    spans.retain(|s| s.end > s.start);
    // Outermost-first at equal starts; seq breaks exact ties.
    spans.sort_by(|a, b| {
        a.start
            .cmp(&b.start)
            .then(b.end.cmp(&a.end))
            .then(a.seq.cmp(&b.seq))
    });
    spans
}

/// Renders the folded-stack summary of a trace buffer.
pub fn folded_stacks(events: &[TraceEvent]) -> String {
    let spans = collect_spans(events);
    let mut totals: BTreeMap<String, u64> = BTreeMap::new();
    // Active ancestry: (end, path, own duration, direct-child time).
    let mut stack: Vec<(u64, String, u64, u64)> = Vec::new();
    fn flush(totals: &mut BTreeMap<String, u64>, entry: (u64, String, u64, u64)) {
        let (_, path, dur, child) = entry;
        let self_ns = dur.saturating_sub(child);
        if self_ns > 0 {
            *totals.entry(path).or_insert(0) += self_ns;
        }
    }
    for s in &spans {
        while stack.last().is_some_and(|top| top.0 <= s.start) {
            if let Some(entry) = stack.pop() {
                flush(&mut totals, entry);
            }
        }
        let path = match stack.last() {
            Some((_, parent, _, _)) => format!("{};{}", parent, s.label),
            None => s.label.clone(),
        };
        let dur = s.end - s.start;
        if let Some(top) = stack.last_mut() {
            top.3 += dur;
        }
        stack.push((s.end, path, dur, 0));
    }
    while let Some(entry) = stack.pop() {
        flush(&mut totals, entry);
    }
    let mut out = String::new();
    for (path, ns) in &totals {
        out.push_str(path);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Layer;
    use crate::tracer::Tracer;
    use sleds_sim_core::{SimDuration, SimTime};

    #[test]
    fn nests_device_time_under_syscall() {
        let mut t = Tracer::enabled();
        t.begin(Layer::Syscall, "read", SimTime::from_nanos(0), [0; 3]);
        t.device(
            1,
            "disk.read",
            false,
            SimTime::from_nanos(100),
            SimDuration::ZERO,
            SimDuration::from_nanos(500),
            0,
            8,
            8 * 512,
            300,
            &[
                ("disk.seek", SimDuration::from_nanos(200)),
                ("disk.transfer", SimDuration::from_nanos(300)),
            ],
        );
        t.end(SimTime::from_nanos(1_000));
        let folded = folded_stacks(&t.events());
        let lines: Vec<&str> = folded.lines().collect();
        assert!(lines.contains(&"syscall:read 500"));
        assert!(lines.contains(&"syscall:read;device:disk.read;device:disk.seek 200"));
        assert!(lines.contains(&"syscall:read;device:disk.read;device:disk.transfer 300"));
        // The command span's time is fully attributed to its phases.
        assert!(!folded.contains("syscall:read;device:disk.read 0"));
    }

    #[test]
    fn sibling_spans_accumulate() {
        let mut t = Tracer::enabled();
        for i in 0..2u64 {
            t.begin(
                Layer::Syscall,
                "read",
                SimTime::from_nanos(i * 1_000),
                [0; 3],
            );
            t.end(SimTime::from_nanos(i * 1_000 + 400));
        }
        let folded = folded_stacks(&t.events());
        assert_eq!(folded, "syscall:read 800\n");
    }

    #[test]
    fn empty_trace_folds_to_nothing() {
        assert_eq!(folded_stacks(&[]), "");
    }
}
