//! The tracer the kernel owns.
//!
//! Disabled is the default and costs one pointer-null check per hook; no
//! allocation, no event, no metric. Enabled, every hook stamps the caller's
//! [`SimTime`] into the ring buffer — the tracer itself never advances the
//! clock or touches `Rusage`, so traced and untraced runs produce
//! byte-identical virtual results.

use sleds_sim_core::{SimDuration, SimTime};

use crate::audit::AccuracyTracker;
use crate::event::{pack_class_generation, EventPhase, Layer, TraceEvent};
use crate::metrics::Metrics;
use crate::ring::RingBuffer;

/// Default ring-buffer capacity (events retained).
pub const DEFAULT_CAPACITY: usize = 1 << 16;

struct Inner {
    ring: RingBuffer,
    metrics: Metrics,
    tracker: AccuracyTracker,
    seq: u64,
    /// Open spans, innermost last. The simulator is single-threaded and
    /// synchronous, so begin/end nest like a call stack.
    stack: Vec<(Layer, &'static str, SimTime, [u64; 3])>,
}

/// Event sink owned by the kernel; a no-op unless enabled.
#[derive(Default)]
pub struct Tracer {
    inner: Option<Box<Inner>>,
    /// Tenant stamped into every emitted event. Lives outside `inner` so
    /// switching tenants stays one store whether or not tracing is on —
    /// the zero-cost-observer property covers tenant bookkeeping too.
    tenant: u64,
}

impl Tracer {
    /// A disabled tracer: every hook is a null check.
    pub fn disabled() -> Tracer {
        Tracer {
            inner: None,
            tenant: 0,
        }
    }

    /// An enabled tracer with the default buffer capacity.
    pub fn enabled() -> Tracer {
        Tracer::with_capacity(DEFAULT_CAPACITY)
    }

    /// An enabled tracer retaining at most `capacity` events.
    pub fn with_capacity(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Box::new(Inner {
                ring: RingBuffer::new(capacity),
                metrics: Metrics::default(),
                tracker: AccuracyTracker::default(),
                seq: 0,
                stack: Vec::new(),
            })),
            tenant: 0,
        }
    }

    /// True when events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Sets the tenant stamped into subsequently emitted events. One
    /// store; safe to call whether or not tracing is enabled.
    pub fn set_tenant(&mut self, tenant: u64) {
        self.tenant = tenant;
    }

    /// The tenant currently being stamped.
    pub fn tenant(&self) -> u64 {
        self.tenant
    }

    #[allow(clippy::too_many_arguments)]
    fn emit(
        inner: &mut Inner,
        tenant: u64,
        ts: SimTime,
        dur: SimDuration,
        phase: EventPhase,
        layer: Layer,
        name: &'static str,
        args: [u64; 3],
    ) {
        let seq = inner.seq;
        inner.seq += 1;
        inner.ring.push(TraceEvent {
            seq,
            ts,
            dur,
            phase,
            layer,
            tenant,
            name,
            args,
        });
        // Mirror the ring's truncation state into the metrics so an
        // `FSLEDS_STAT` snapshot can flag audits over a clipped buffer.
        inner.metrics.trace_dropped = inner.ring.dropped();
        inner.metrics.trace_high_water = inner.ring.high_water();
    }

    /// Opens a span. Must be balanced by [`Tracer::end`].
    pub fn begin(&mut self, layer: Layer, name: &'static str, ts: SimTime, args: [u64; 3]) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.stack.push((layer, name, ts, args));
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Begin,
            layer,
            name,
            args,
        );
    }

    /// Closes the innermost open span, stamping its duration and feeding
    /// the layer's latency histogram. Unbalanced calls are ignored.
    pub fn end(&mut self, ts: SimTime) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        let Some((layer, name, began, args)) = inner.stack.pop() else {
            return;
        };
        let dur = ts.duration_since(began);
        match layer {
            Layer::Syscall => {
                inner.metrics.note_syscall(dur.as_nanos());
                // Feed the continuous accuracy tracker: read spans extend
                // the open prediction on their fd, close finalizes it.
                match name {
                    "read" | "pread" => {
                        inner
                            .tracker
                            .note_read(&mut inner.metrics, args[0], dur.as_nanos());
                    }
                    "close" => inner.tracker.note_close(&mut inner.metrics, args[0]),
                    _ => {}
                }
            }
            Layer::App => inner.metrics.app_spans += 1,
            Layer::Cache | Layer::Device => {}
        }
        Self::emit(inner, tenant, ts, dur, EventPhase::End, layer, name, args);
    }

    /// Emits a zero-width marker.
    pub fn instant(&mut self, layer: Layer, name: &'static str, ts: SimTime, args: [u64; 3]) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            layer,
            name,
            args,
        );
    }

    /// Records a page-cache hit (`args`: page index within file, ino).
    pub fn cache_hit(&mut self, ts: SimTime, page: u64, ino: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.cache_hits += 1;
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::Cache,
            "cache.hit",
            [page, 1, ino],
        );
    }

    /// Records a page-cache miss run (`pages` missing pages starting at `page`).
    pub fn cache_miss(&mut self, ts: SimTime, page: u64, pages: u64, ino: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.cache_misses += 1;
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::Cache,
            "cache.miss",
            [page, pages, ino],
        );
    }

    /// Records an eviction (`dirty` is 1 when the page needed writeback).
    pub fn cache_evict(&mut self, ts: SimTime, page: u64, dirty: u64, ino: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.cache_evictions += 1;
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::Cache,
            "cache.evict",
            [page, dirty, ino],
        );
    }

    /// Records one injected device fault (`args`: device class code,
    /// attempt number that failed, cost of the failed command in ns).
    pub fn fault_inject(&mut self, ts: SimTime, class: u64, attempt: u64, cost_ns: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.faults_injected += 1;
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::Device,
            "fault.inject",
            [class, attempt, cost_ns],
        );
    }

    /// Records one hedged read: a redundant request was issued and the
    /// loser cancelled (`args`: winning device class code, losing device
    /// class code, cancel cost in ns).
    pub fn io_hedge(&mut self, ts: SimTime, winner_class: u64, loser_class: u64, cancel_ns: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.hedges += 1;
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::Device,
            "io.hedge",
            [winner_class, loser_class, cancel_ns],
        );
    }

    /// Records one retry backoff (`args`: device class code, attempt that
    /// just failed, backoff wait in ns).
    pub fn io_retry(&mut self, ts: SimTime, class: u64, attempt: u64, backoff_ns: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.io_retries += 1;
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::Device,
            "io.retry",
            [class, attempt, backoff_ns],
        );
    }

    /// Records one dirty-page writeback.
    pub fn cache_writeback(&mut self, ts: SimTime, page: u64, ino: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.cache_writebacks += 1;
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::Cache,
            "cache.writeback",
            [page, 1, ino],
        );
    }

    /// Records one device command as a complete span with its queue wait
    /// and mechanical phases nested inside it.
    ///
    /// `ts` is the *submission* instant and `queue` the time the command
    /// sat queued behind earlier commands before its service (of length
    /// `dur`) began; the emitted command span covers `queue + dur`, with
    /// a leading `queue_wait` phase when the wait is nonzero, so the
    /// nested phases still sum exactly to the span. `phases` is the
    /// device's own breakdown of the service time, as `(name, duration)`
    /// pairs in service order; each is laid out back-to-back so viewers
    /// show them as children of the command span. `bytes` is the payload
    /// moved and `transfer_ns` the portion of `dur` the device spent
    /// moving it (its transfer/stream/link phases); the split feeds the
    /// per-class first-byte and effective-bandwidth observables.
    #[allow(clippy::too_many_arguments)]
    pub fn device(
        &mut self,
        class: u64,
        name: &'static str,
        write: bool,
        ts: SimTime,
        queue: SimDuration,
        dur: SimDuration,
        sector: u64,
        sectors: u64,
        bytes: u64,
        transfer_ns: u64,
        phases: &[(&'static str, SimDuration)],
    ) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.note_device(
            tenant,
            class,
            write,
            dur.as_nanos(),
            bytes,
            transfer_ns,
            queue.as_nanos(),
        );
        Self::emit(
            inner,
            tenant,
            ts,
            queue + dur,
            EventPhase::Complete,
            Layer::Device,
            name,
            [sector, sectors, class],
        );
        let mut at = ts;
        if !queue.is_zero() {
            Self::emit(
                inner,
                tenant,
                at,
                queue,
                EventPhase::Complete,
                Layer::Device,
                "queue_wait",
                [sector, 0, class],
            );
            at += queue;
        }
        for &(pname, pdur) in phases {
            if pdur.is_zero() {
                continue;
            }
            Self::emit(
                inner,
                tenant,
                at,
                pdur,
                EventPhase::Complete,
                Layer::Device,
                pname,
                [sector, 0, class],
            );
            at += pdur;
        }
    }

    /// Records a delivery-time prediction for `fd` (nanoseconds, device
    /// class of the file's home device, sleds-table generation the
    /// estimate was priced from). The accuracy audit pairs this marker
    /// with the subsequent traced read spans on the same fd, and the
    /// generation lets it discard pairs that straddle a recalibration.
    pub fn predict(
        &mut self,
        ts: SimTime,
        fd: u64,
        predicted_ns: u64,
        class: u64,
        generation: u64,
    ) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner
            .tracker
            .note_predict(&mut inner.metrics, fd, predicted_ns, class, generation);
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::App,
            "sleds.predict",
            [fd, predicted_ns, pack_class_generation(class, generation)],
        );
    }

    /// Records one serviced ring batch (`args`: ops submitted when the
    /// batch entered, ops actually serviced this crossing).
    pub fn ring_submit(&mut self, ts: SimTime, submitted: u64, serviced: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.ring_enters += 1;
        inner.metrics.ring_ops += serviced;
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::Syscall,
            "ring.submit",
            [submitted, serviced, 0],
        );
    }

    /// Records one completion-queue reap (`reaped` completions returned).
    /// Reaping crosses nothing, so this is the only trace of it.
    pub fn ring_reap(&mut self, ts: SimTime, reaped: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.ring_reaps += 1;
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::Syscall,
            "ring.reap",
            [reaped, 0, 0],
        );
    }

    /// Records one in-kernel pick-program evaluation (`args`: program
    /// length in instructions, verdict 1/0, estimate in ns when finite).
    pub fn prog_eval(&mut self, ts: SimTime, prog_len: u64, matched: u64, estimate_ns: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.metrics.prog_evals += 1;
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::Syscall,
            "prog.eval",
            [prog_len, matched, estimate_ns],
        );
    }

    /// Records a sleds-table recalibration: predictions emitted after this
    /// marker were priced from table generation `generation`.
    pub fn recal(&mut self, ts: SimTime, generation: u64) {
        let tenant = self.tenant;
        let Some(inner) = self.inner.as_mut() else {
            return;
        };
        inner.tracker.note_recal(generation);
        Self::emit(
            inner,
            tenant,
            ts,
            SimDuration::ZERO,
            EventPhase::Mark,
            Layer::App,
            "sleds.recal",
            [generation, 0, 0],
        );
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        match &self.inner {
            Some(inner) => inner.ring.to_vec(),
            None => Vec::new(),
        }
    }

    /// Metrics snapshot; `None` when disabled.
    pub fn metrics(&self) -> Option<&Metrics> {
        self.inner.as_ref().map(|i| &i.metrics)
    }

    /// Owned metrics snapshot with the accuracy tracker's still-open
    /// prediction pairs folded in; `None` when disabled. This is what
    /// `FSLEDS_STAT` and `FSLEDS_RECAL` hand out: mid-run, a prediction
    /// whose file is still being read has partial actual time, and the
    /// snapshot should reflect it without disturbing the live tracker.
    pub fn metrics_snapshot(&self) -> Option<Metrics> {
        self.inner.as_ref().map(|i| {
            let mut m = i.metrics.clone();
            i.tracker.flush_into(&mut m);
            m
        })
    }

    /// Events overwritten by ring overflow.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.dropped())
    }

    /// Ring retention high-water mark: most events held at once.
    pub fn high_water(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.ring.high_water())
    }

    /// Total events emitted (including overwritten ones).
    pub fn emitted(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_is_inert() {
        let mut t = Tracer::disabled();
        t.begin(Layer::Syscall, "read", SimTime::ZERO, [0; 3]);
        t.end(SimTime::from_nanos(10));
        t.cache_hit(SimTime::ZERO, 0, 0);
        assert!(!t.is_enabled());
        assert!(t.events().is_empty());
        assert!(t.metrics().is_none());
        assert_eq!(t.emitted(), 0);
    }

    #[test]
    fn spans_pair_and_feed_metrics() {
        let mut t = Tracer::enabled();
        t.begin(Layer::Syscall, "read", SimTime::from_nanos(100), [3, 0, 0]);
        t.end(SimTime::from_nanos(700));
        let evs = t.events();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].phase, EventPhase::Begin);
        assert_eq!(evs[1].phase, EventPhase::End);
        assert_eq!(evs[1].dur.as_nanos(), 600);
        assert_eq!(evs[1].args, [3, 0, 0]);
        let m = t.metrics().unwrap();
        assert_eq!(m.syscalls, 1);
        assert_eq!(m.syscall_latency.count(), 1);
    }

    #[test]
    fn device_phases_nest_back_to_back() {
        let mut t = Tracer::enabled();
        t.device(
            1,
            "disk.read",
            false,
            SimTime::from_nanos(1_000),
            SimDuration::ZERO,
            SimDuration::from_nanos(30),
            8,
            16,
            16 * 512,
            20,
            &[
                ("disk.seek", SimDuration::from_nanos(10)),
                ("disk.rotation", SimDuration::ZERO),
                ("disk.transfer", SimDuration::from_nanos(20)),
            ],
        );
        let evs = t.events();
        assert_eq!(evs.len(), 3); // zero-length phase (and zero queue wait) elided
        assert_eq!(evs[0].name, "disk.read");
        assert_eq!(evs[1].name, "disk.seek");
        assert_eq!(evs[1].ts.as_nanos(), 1_000);
        assert_eq!(evs[2].name, "disk.transfer");
        assert_eq!(evs[2].ts.as_nanos(), 1_010);
        assert_eq!(t.metrics().unwrap().device[1].reads, 1);
    }

    #[test]
    fn queue_wait_leads_the_phase_train() {
        let mut t = Tracer::enabled();
        t.set_tenant(2);
        t.device(
            1,
            "disk.read",
            false,
            SimTime::from_nanos(1_000),
            SimDuration::from_nanos(40),
            SimDuration::from_nanos(30),
            8,
            16,
            16 * 512,
            20,
            &[
                ("disk.seek", SimDuration::from_nanos(10)),
                ("disk.transfer", SimDuration::from_nanos(20)),
            ],
        );
        let evs = t.events();
        assert_eq!(evs.len(), 4);
        // The command span covers wait + service from the submission instant.
        assert_eq!(evs[0].name, "disk.read");
        assert_eq!(evs[0].ts.as_nanos(), 1_000);
        assert_eq!(evs[0].dur.as_nanos(), 70);
        assert_eq!(evs[0].tenant, 2);
        // queue_wait is the first nested phase; service phases follow it.
        assert_eq!(evs[1].name, "queue_wait");
        assert_eq!(evs[1].ts.as_nanos(), 1_000);
        assert_eq!(evs[1].dur.as_nanos(), 40);
        assert_eq!(evs[2].name, "disk.seek");
        assert_eq!(evs[2].ts.as_nanos(), 1_040);
        assert_eq!(evs[3].name, "disk.transfer");
        assert_eq!(evs[3].ts.as_nanos(), 1_050);
        // Nested phases sum exactly to the span.
        let nested: u64 = evs[1..].iter().map(|e| e.dur.as_nanos()).sum();
        assert_eq!(nested, evs[0].dur.as_nanos());
        // Metrics: service histogram sees service time only; the wait
        // lands in the tenant attribution row.
        let m = t.metrics().unwrap();
        assert_eq!(m.device[1].service.max(), 30);
        assert_eq!(m.tenants[&(2, 1)].queue_wait_ns, 40);
        assert_eq!(m.tenants[&(2, 1)].busy_ns, 30);
    }

    #[test]
    fn unbalanced_end_is_ignored() {
        let mut t = Tracer::enabled();
        t.end(SimTime::from_nanos(5));
        assert!(t.events().is_empty());
    }
}
