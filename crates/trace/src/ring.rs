//! Bounded ring buffer of trace events.
//!
//! Overflow policy: drop-oldest. A long workload keeps the most recent
//! window of events (the part a viewer usually wants) and the tracer
//! reports how many were overwritten, so truncation is visible rather
//! than silent.

use crate::event::TraceEvent;

/// Fixed-capacity event buffer with drop-oldest overflow.
#[derive(Clone, Debug)]
pub struct RingBuffer {
    buf: Vec<TraceEvent>,
    cap: usize,
    /// Index of the oldest retained event once the buffer has wrapped.
    start: usize,
    dropped: u64,
}

impl RingBuffer {
    /// Creates a buffer retaining at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> RingBuffer {
        let cap = capacity.max(1);
        RingBuffer {
            buf: Vec::new(),
            cap,
            start: 0,
            dropped: 0,
        }
    }

    /// Appends an event, overwriting the oldest when full.
    pub fn push(&mut self, ev: TraceEvent) {
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.start] = ev;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events overwritten by overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// High-water mark: the most events the buffer has ever retained at
    /// once. Occupancy only grows until it hits capacity, so this equals
    /// `len()` — exposed separately so `FSLEDS_STAT` can report occupancy
    /// against capacity even after a future `clear` is added.
    pub fn high_water(&self) -> u64 {
        self.buf.len() as u64
    }

    /// Capacity the buffer was created with.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Iterates retained events oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> + '_ {
        let n = self.buf.len();
        (0..n).map(move |i| &self.buf[(self.start + i) % n.max(1)])
    }

    /// Copies retained events oldest-first into a fresh vector.
    pub fn to_vec(&self) -> Vec<TraceEvent> {
        self.iter().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventPhase, Layer};
    use sleds_sim_core::{SimDuration, SimTime};

    fn ev(seq: u64) -> TraceEvent {
        TraceEvent {
            seq,
            ts: SimTime::from_nanos(seq * 10),
            dur: SimDuration::ZERO,
            phase: EventPhase::Mark,
            layer: Layer::App,
            tenant: 0,
            name: "t",
            args: [seq, 0, 0],
        }
    }

    #[test]
    fn fills_then_drops_oldest() {
        let mut r = RingBuffer::new(3);
        for s in 0..5 {
            r.push(ev(s));
        }
        assert_eq!(r.len(), 3);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = r.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        assert_eq!(r.to_vec().len(), 3);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut r = RingBuffer::new(0);
        r.push(ev(1));
        r.push(ev(2));
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().next().map(|e| e.seq), Some(2));
    }

    #[test]
    fn empty_iterates_nothing() {
        let r = RingBuffer::new(4);
        assert!(r.is_empty());
        assert_eq!(r.iter().count(), 0);
    }
}
