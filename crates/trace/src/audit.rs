//! Prediction-accuracy audit: post-hoc over a trace buffer, and
//! continuous via [`AccuracyTracker`].
//!
//! For every fd that published a `sleds.predict` marker (the
//! `sleds_total_delivery_time` estimate captured when a pick session
//! started), the audit sums the traced durations of the subsequent
//! `read`/`pread` syscall spans on that fd — the actual virtual time spent
//! delivering the data, device waits and cache copies included — and
//! reports the error distribution per device class. File descriptors are
//! never reused by the simulated kernel, so the pairing is exact.
//!
//! Predictions are tagged with the sleds-table generation they were
//! computed under (packed into the marker's class argument), and a
//! `sleds.recal` marker announces each `FSLEDS_RECAL` generation bump.
//! Reads are paired only with predictions made under the generation
//! current at read time: a prediction from a stale table says nothing
//! about the refreshed one, so cross-generation pairs are dropped and
//! counted instead of polluting the error distributions.

use std::collections::BTreeMap;

use sleds_sim_core::stats::Ecdf;

use crate::event::{class_label, unpack_class_generation, EventPhase, Layer, TraceEvent};
use crate::metrics::Metrics;

/// One audited (prediction, actual) pair.
#[derive(Clone, Copy, Debug)]
pub struct AccuracySample {
    /// File descriptor the prediction was made for.
    pub fd: u64,
    /// Device class code of the file's home device.
    pub class: u64,
    /// Sleds-table generation the prediction was computed under.
    pub generation: u64,
    /// Predicted delivery time, nanoseconds.
    pub predicted_ns: u64,
    /// Traced actual delivery time (sum of read-span durations), nanoseconds.
    pub actual_ns: u64,
    /// True when an injected fault or a retry landed inside one of the
    /// paired read spans — the prediction was scored against a degraded
    /// device, not a clean one.
    pub faulted: bool,
}

impl AccuracySample {
    /// Signed relative error `(predicted - actual) / actual`.
    pub fn rel_err(&self) -> f64 {
        (self.predicted_ns as f64 - self.actual_ns as f64) / self.actual_ns as f64
    }
}

/// Error distribution for one device class.
#[derive(Clone, Debug)]
pub struct ClassAccuracy {
    /// Device class code.
    pub class: u64,
    /// Human label for the class.
    pub label: &'static str,
    /// Number of audited requests.
    pub n: usize,
    /// Mean predicted delivery time, seconds.
    pub mean_predicted_s: f64,
    /// Mean actual delivery time, seconds.
    pub mean_actual_s: f64,
    /// Mean signed relative error (positive = overprediction).
    pub mean_rel_err: f64,
    /// Mean absolute relative error.
    pub mean_abs_rel_err: f64,
    /// Median absolute relative error.
    pub p50_abs_rel_err: f64,
    /// 90th-percentile absolute relative error.
    pub p90_abs_rel_err: f64,
    /// Worst absolute relative error.
    pub max_abs_rel_err: f64,
}

/// Summarizes a set of samples as one [`ClassAccuracy`] row; `None` for an
/// empty set. `class` must be uniform across `samples`.
pub fn summarize_class(class: u64, samples: &[AccuracySample]) -> Option<ClassAccuracy> {
    if samples.is_empty() {
        return None;
    }
    let n = samples.len();
    let inv = 1.0 / n as f64;
    let mean_predicted_s = samples.iter().map(|s| s.predicted_ns as f64).sum::<f64>() * inv / 1e9;
    let mean_actual_s = samples.iter().map(|s| s.actual_ns as f64).sum::<f64>() * inv / 1e9;
    let abs_errs: Vec<f64> = samples.iter().map(|s| s.rel_err().abs()).collect();
    let mean_rel_err = samples.iter().map(|s| s.rel_err()).sum::<f64>() * inv;
    let mean_abs_rel_err = abs_errs.iter().sum::<f64>() * inv;
    let (p50, p90, max) = match Ecdf::of(&abs_errs) {
        Some(e) => (e.quantile(0.50), e.quantile(0.90), e.quantile(1.0)),
        None => (0.0, 0.0, 0.0),
    };
    Some(ClassAccuracy {
        class,
        label: class_label(class),
        n,
        mean_predicted_s,
        mean_actual_s,
        mean_rel_err,
        mean_abs_rel_err,
        p50_abs_rel_err: p50,
        p90_abs_rel_err: p90,
        max_abs_rel_err: max,
    })
}

/// The audit result: all samples plus per-class distributions.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Every audited pair, in fd order.
    pub samples: Vec<AccuracySample>,
    /// Predictions whose fd saw no traced reads (e.g. `find -latency`
    /// estimates that pruned the file) — excluded from the distributions.
    pub unread_predictions: usize,
    /// Predictions dropped because their fd was read under a different
    /// sleds-table generation than the prediction was made under.
    pub cross_generation: usize,
    /// Audited pairs whose reads were hit by injected faults or retries.
    pub faulted_requests: usize,
    /// Per-class error distributions, in class-code order.
    pub classes: Vec<ClassAccuracy>,
}

/// Runs the audit over a trace buffer.
pub fn audit_accuracy(events: &[TraceEvent]) -> AuditReport {
    // fd -> (predicted_ns, class, generation, actual_ns so far, faulted).
    let mut by_fd: BTreeMap<u64, (u64, u64, u64, u64, bool)> = BTreeMap::new();
    let mut report = AuditReport::default();
    let mut current_generation = 0u64;
    // The fd of the read/pread span currently open, if any. The simulator
    // is single-threaded and synchronous, so a fault or retry mark emitted
    // between a read's begin and end belongs to that read.
    let mut open_read_fd: Option<u64> = None;
    for ev in events {
        match ev.phase {
            EventPhase::Begin
                if ev.layer == Layer::Syscall && (ev.name == "read" || ev.name == "pread") =>
            {
                open_read_fd = Some(ev.args[0]);
            }
            EventPhase::Mark if ev.name == "sleds.predict" => {
                let (class, generation) = unpack_class_generation(ev.args[2]);
                by_fd.insert(ev.args[0], (ev.args[1], class, generation, 0, false));
            }
            EventPhase::Mark if ev.name == "sleds.recal" => {
                current_generation = ev.args[0];
            }
            EventPhase::Mark if ev.name == "fault.inject" || ev.name == "io.retry" => {
                if let Some(entry) = open_read_fd.and_then(|fd| by_fd.get_mut(&fd)) {
                    entry.4 = true;
                }
            }
            EventPhase::End
                if ev.layer == Layer::Syscall && (ev.name == "read" || ev.name == "pread") =>
            {
                let fd = ev.args[0];
                open_read_fd = None;
                let Some(entry) = by_fd.get_mut(&fd) else {
                    continue;
                };
                if entry.2 != current_generation {
                    // Prediction from a stale table; discard the pair.
                    by_fd.remove(&fd);
                    report.cross_generation += 1;
                    continue;
                }
                entry.3 = entry.3.saturating_add(ev.dur.as_nanos());
            }
            _ => {}
        }
    }

    let mut by_class: BTreeMap<u64, Vec<AccuracySample>> = BTreeMap::new();
    for (fd, (predicted_ns, class, generation, actual_ns, faulted)) in by_fd {
        if actual_ns == 0 {
            report.unread_predictions += 1;
            continue;
        }
        let s = AccuracySample {
            fd,
            class,
            generation,
            predicted_ns,
            actual_ns,
            faulted,
        };
        if faulted {
            report.faulted_requests += 1;
        }
        report.samples.push(s);
        by_class.entry(class).or_default().push(s);
    }

    for (class, samples) in by_class {
        if let Some(c) = summarize_class(class, &samples) {
            report.classes.push(c);
        }
    }
    report
}

/// The continuous half of the audit: pairs predictions with read spans as
/// they happen, feeding completed pairs into the per-class
/// [`AccuracyWindow`](crate::metrics::AccuracyWindow)s of a [`Metrics`]
/// snapshot — so `FSLEDS_STAT` reports rolling prediction error mid-run
/// instead of only after the fact.
///
/// The tracer owns one and drives it from its hooks; it holds only
/// integer state keyed by fd (fds are never reused), so it replays
/// bit-identically.
#[derive(Debug, Default)]
pub struct AccuracyTracker {
    /// The sleds-table generation currently in force (last `FSLEDS_RECAL`).
    generation: u64,
    /// Open predictions: fd -> (class, generation, predicted_ns, actual_ns).
    open: BTreeMap<u64, (u64, u64, u64, u64)>,
}

impl AccuracyTracker {
    /// Records a new prediction for `fd`, finalizing any previous one on
    /// the same fd into `metrics`.
    pub fn note_predict(
        &mut self,
        metrics: &mut Metrics,
        fd: u64,
        predicted_ns: u64,
        class: u64,
        generation: u64,
    ) {
        if let Some(prev) = self.open.insert(fd, (class, generation, predicted_ns, 0)) {
            Self::finalize(metrics, prev);
        }
    }

    /// Accumulates one traced read span into the open prediction for `fd`.
    /// A read under a different generation than the prediction drops the
    /// pair (counted in `metrics.accuracy_cross_generation`).
    pub fn note_read(&mut self, metrics: &mut Metrics, fd: u64, dur_ns: u64) {
        let Some(entry) = self.open.get_mut(&fd) else {
            return;
        };
        if entry.1 != self.generation {
            self.open.remove(&fd);
            metrics.accuracy_cross_generation += 1;
            return;
        }
        entry.3 = entry.3.saturating_add(dur_ns);
    }

    /// Finalizes the open prediction for `fd` (the file was closed).
    pub fn note_close(&mut self, metrics: &mut Metrics, fd: u64) {
        if let Some(entry) = self.open.remove(&fd) {
            Self::finalize(metrics, entry);
        }
    }

    /// Notes a sleds-table generation bump (`FSLEDS_RECAL`).
    pub fn note_recal(&mut self, generation: u64) {
        self.generation = generation;
    }

    /// Copies still-open pairs into `metrics` without consuming them, so a
    /// snapshot taken mid-file still reflects the reads so far.
    pub fn flush_into(&self, metrics: &mut Metrics) {
        for entry in self.open.values() {
            Self::finalize(metrics, *entry);
        }
    }

    fn finalize(
        metrics: &mut Metrics,
        (class, _generation, predicted_ns, actual_ns): (u64, u64, u64, u64),
    ) {
        if actual_ns > 0 {
            metrics.note_accuracy(class, predicted_ns, actual_ns);
        }
    }
}

impl AuditReport {
    /// Serializes the report in the house results-JSON style
    /// (cf. `results/BENCH_fsleds_get.json`). Hand-rolled and
    /// fixed-precision so identical runs serialize identically.
    pub fn to_json(&self, regenerate: &str) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str("  \"audit\": \"prediction accuracy: sleds_total_delivery_time vs traced actual delivery time\",\n");
        out.push_str(&format!("  \"regenerate\": \"{regenerate}\",\n"));
        out.push_str("  \"units\": {\"predicted\": \"seconds\", \"actual\": \"seconds\", \"errors\": \"relative (predicted-actual)/actual\"},\n");
        out.push_str(&format!(
            "  \"audited_requests\": {},\n  \"unread_predictions\": {},\n  \"cross_generation\": {},\n  \"faulted_requests\": {},\n",
            self.samples.len(),
            self.unread_predictions,
            self.cross_generation,
            self.faulted_requests
        ));
        out.push_str("  \"classes\": [\n");
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(&format!(
                "    {{\"class\": \"{}\", \"n\": {}, \"mean_predicted_s\": {:.6}, \"mean_actual_s\": {:.6}, \"mean_rel_err\": {:.4}, \"mean_abs_rel_err\": {:.4}, \"p50_abs_rel_err\": {:.4}, \"p90_abs_rel_err\": {:.4}, \"max_abs_rel_err\": {:.4}}}",
                c.label,
                c.n,
                c.mean_predicted_s,
                c.mean_actual_s,
                c.mean_rel_err,
                c.mean_abs_rel_err,
                c.p50_abs_rel_err,
                c.p90_abs_rel_err,
                c.max_abs_rel_err
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// One-line-per-class text table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "audited {} requests ({} predictions unread, {} cross-generation, {} faulted)\n",
            self.samples.len(),
            self.unread_predictions,
            self.cross_generation,
            self.faulted_requests
        ));
        for c in &self.classes {
            out.push_str(&format!(
                "{:>8}: n={:<4} predicted {:>10.6}s actual {:>10.6}s rel_err mean {:+.3} |mean| {:.3} p50 {:.3} p90 {:.3} max {:.3}\n",
                c.label,
                c.n,
                c.mean_predicted_s,
                c.mean_actual_s,
                c.mean_rel_err,
                c.mean_abs_rel_err,
                c.p50_abs_rel_err,
                c.p90_abs_rel_err,
                c.max_abs_rel_err
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::Tracer;
    use sleds_sim_core::SimTime;

    fn traced_read(t: &mut Tracer, fd: u64, at: u64, dur: u64) {
        t.begin(Layer::Syscall, "read", SimTime::from_nanos(at), [fd, 0, 0]);
        t.end(SimTime::from_nanos(at + dur));
    }

    #[test]
    fn pairs_predictions_with_read_spans_per_class() {
        let mut t = Tracer::enabled();
        // fd 3 on disk: predicted 1ms, actual 2 reads x 600us = 1.2ms.
        t.predict(SimTime::ZERO, 3, 1_000_000, 1, 0);
        traced_read(&mut t, 3, 100, 600_000);
        traced_read(&mut t, 3, 700_200, 600_000);
        // fd 4 on tape: predicted 2s, actual 1s.
        t.predict(SimTime::from_nanos(2_000_000), 4, 2_000_000_000, 4, 0);
        traced_read(&mut t, 4, 3_000_000, 1_000_000_000);
        // fd 5: predicted but never read.
        t.predict(SimTime::from_nanos(5_000_000), 5, 42, 1, 0);
        let rep = audit_accuracy(&t.events());
        assert_eq!(rep.samples.len(), 2);
        assert_eq!(rep.unread_predictions, 1);
        assert_eq!(rep.cross_generation, 0);
        assert_eq!(rep.classes.len(), 2);
        let disk = &rep.classes[0];
        assert_eq!(disk.label, "disk");
        assert_eq!(disk.n, 1);
        assert!((disk.mean_rel_err - (-1.0 / 6.0)).abs() < 1e-9);
        let tape = &rep.classes[1];
        assert_eq!(tape.label, "tape");
        assert!((tape.mean_rel_err - 1.0).abs() < 1e-9);
    }

    #[test]
    fn cross_generation_reads_are_dropped_not_polluting() {
        let mut t = Tracer::enabled();
        // Prediction under generation 0, but the table is recalibrated
        // (generation 1) before any read lands: the pair must be dropped.
        t.predict(SimTime::ZERO, 3, 1_000_000, 1, 0);
        t.recal(SimTime::from_nanos(50), 1);
        traced_read(&mut t, 3, 100, 999); // stale; must not pair
                                          // A fresh prediction under generation 1 pairs normally.
        t.predict(SimTime::from_nanos(2_000), 4, 5_000, 1, 1);
        traced_read(&mut t, 4, 3_000, 4_000);
        let rep = audit_accuracy(&t.events());
        assert_eq!(rep.cross_generation, 1);
        assert_eq!(rep.samples.len(), 1);
        assert_eq!(rep.samples[0].fd, 4);
        assert_eq!(rep.samples[0].generation, 1);
        assert_eq!(rep.samples[0].actual_ns, 4_000);
    }

    #[test]
    fn tracker_maintains_rolling_windows() {
        let mut m = Metrics::default();
        let mut tr = AccuracyTracker::default();
        tr.note_predict(&mut m, 3, 1_000, 1, 0);
        tr.note_read(&mut m, 3, 800);
        tr.note_read(&mut m, 3, 400);
        // Snapshot mid-file sees the open pair.
        let mut snap = m.clone();
        tr.flush_into(&mut snap);
        assert_eq!(snap.device[1].accuracy.len(), 1);
        assert_eq!(
            snap.device[1].accuracy.samples().next(),
            Some((1_000, 1_200))
        );
        // The live metrics see it only on close.
        assert!(m.device[1].accuracy.is_empty());
        tr.note_close(&mut m, 3);
        assert_eq!(m.device[1].accuracy.len(), 1);
        // Reads with no open prediction are ignored.
        tr.note_read(&mut m, 99, 5);
        assert_eq!(m.device[1].accuracy.len(), 1);
    }

    #[test]
    fn tracker_drops_cross_generation_pairs() {
        let mut m = Metrics::default();
        let mut tr = AccuracyTracker::default();
        tr.note_predict(&mut m, 3, 1_000, 1, 0);
        tr.note_recal(1);
        tr.note_read(&mut m, 3, 800);
        assert_eq!(m.accuracy_cross_generation, 1);
        tr.note_close(&mut m, 3);
        assert!(m.device[1].accuracy.is_empty());
    }

    #[test]
    fn json_is_deterministic_and_balanced() {
        let mut t = Tracer::enabled();
        t.predict(SimTime::ZERO, 3, 500, 1, 0);
        traced_read(&mut t, 3, 10, 400);
        let rep = audit_accuracy(&t.events());
        let a = rep.to_json("cargo run --release --example trace_viewer");
        let b = rep.to_json("cargo run --release --example trace_viewer");
        assert_eq!(a, b);
        assert_eq!(a.matches('{').count(), a.matches('}').count());
        assert!(a.contains("\"audited_requests\": 1"));
        let text = rep.render_text();
        assert!(text.contains("disk"));
    }

    #[test]
    fn empty_trace_audits_empty() {
        let rep = audit_accuracy(&[]);
        assert!(rep.samples.is_empty());
        assert!(rep.classes.is_empty());
    }
}
