//! Per-layer monotonic counters and latency histograms.
//!
//! Built on [`LogHistogram`] from `sim-core::stats`: power-of-two
//! nanosecond buckets, integer-only, so the metrics replay bit-identically
//! and are safe to snapshot from kernel paths (`FSLEDS_STAT`).
//!
//! Device-class rows are indexed by the same class codes the prediction
//! audit uses (`sleds_trace::class_label` decodes them), so a recalibration
//! pass can join "what we predicted per class" against "what we measured
//! per class" without any remapping.

use std::collections::{BTreeMap, VecDeque};

use sleds_sim_core::stats::LogHistogram;

use crate::event::class_label;

/// Number of device classes tracked (memory, disk, CD-ROM, network, tape).
pub const NUM_DEVICE_CLASSES: usize = 5;

/// Rolling (prediction, actual) pairs retained per class.
pub const ACCURACY_WINDOW: usize = 128;

/// A rolling window of audited (predicted, actual) delivery-time pairs.
///
/// Integer nanoseconds only, bounded at [`ACCURACY_WINDOW`] samples
/// (drop-oldest), so it is safe to embed in kernel-path metrics and
/// replays bit-identically. Error ratios are derived on demand and never
/// stored.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AccuracyWindow {
    /// Retained `(predicted_ns, actual_ns)` pairs, oldest first.
    samples: VecDeque<(u64, u64)>,
    /// Pairs observed since tracing was enabled, including evicted ones.
    total: u64,
}

impl AccuracyWindow {
    /// Records one completed pair, evicting the oldest beyond the window.
    pub fn push(&mut self, predicted_ns: u64, actual_ns: u64) {
        if self.samples.len() == ACCURACY_WINDOW {
            self.samples.pop_front();
        }
        self.samples.push_back((predicted_ns, actual_ns));
        self.total += 1;
    }

    /// Pairs currently retained.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when no pairs have been retained.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Pairs observed in total, including ones the window has evicted.
    pub fn total_observed(&self) -> u64 {
        self.total
    }

    /// Iterates retained `(predicted_ns, actual_ns)` pairs, oldest first.
    pub fn samples(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.samples.iter().copied()
    }

    /// Mean signed relative error `(predicted - actual) / actual` over the
    /// window; `None` when empty. Positive means overprediction.
    pub fn mean_rel_err(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: f64 = self
            .samples
            .iter()
            .map(|&(p, a)| (p as f64 - a as f64) / (a as f64).max(1.0))
            .sum();
        Some(sum / self.samples.len() as f64)
    }

    /// Mean absolute relative error over the window; `None` when empty.
    pub fn mean_abs_rel_err(&self) -> Option<f64> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: f64 = self
            .samples
            .iter()
            .map(|&(p, a)| ((p as f64 - a as f64) / (a as f64).max(1.0)).abs())
            .sum();
        Some(sum / self.samples.len() as f64)
    }
}

/// Counters and service-time histograms for one device class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassMetrics {
    /// Read commands serviced.
    pub reads: u64,
    /// Write commands serviced.
    pub writes: u64,
    /// Per-command service time, nanoseconds.
    pub service: LogHistogram,
    /// Per-read-command time to the first byte: service time minus the
    /// data-moving phases (transfer/stream/link). This is the observable
    /// the sleds-table latency column models, so its p50 drives
    /// recalibration.
    pub first_byte: LogHistogram,
    /// Bytes moved by read commands.
    pub read_bytes: u64,
    /// Nanoseconds read commands spent in data-moving phases.
    pub read_transfer_ns: u64,
    /// Rolling audited (predicted, actual) delivery-time pairs for files
    /// served by this class — the continuous accuracy observatory.
    pub accuracy: AccuracyWindow,
}

impl ClassMetrics {
    /// Observed streaming bandwidth in bytes per second: bytes moved by
    /// read commands over the time spent moving them. `None` until a read
    /// command has spent time transferring. This is the observable the
    /// sleds-table bandwidth column models.
    pub fn effective_bandwidth(&self) -> Option<f64> {
        if self.read_transfer_ns == 0 {
            return None;
        }
        Some(self.read_bytes as f64 * 1e9 / self.read_transfer_ns as f64)
    }
}

/// Per-tenant counters and latency histograms for one device class.
///
/// Rows live in [`Metrics::tenants`], keyed `(tenant, class)`, and are the
/// attribution side of the saturation observatory: who drove how much
/// demand into each class, and how long their commands queued versus were
/// serviced. Integer-only, so rows replay bit-identically.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantClassMetrics {
    /// Device commands this tenant issued against this class.
    pub requests: u64,
    /// Payload bytes those commands moved.
    pub bytes: u64,
    /// Per-command time queued behind earlier commands, nanoseconds.
    pub queue_wait: LogHistogram,
    /// Per-command service time (queue wait excluded), nanoseconds.
    pub service: LogHistogram,
    /// Total device busy time consumed, nanoseconds (the tenant's demand
    /// on the class; the numerator of its demand share).
    pub busy_ns: u64,
    /// Total time spent queued, nanoseconds.
    pub queue_wait_ns: u64,
}

/// Per-layer metrics snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Syscall spans completed.
    pub syscalls: u64,
    /// Per-syscall latency (entry to exit), nanoseconds.
    pub syscall_latency: LogHistogram,
    /// Page-cache hits observed.
    pub cache_hits: u64,
    /// Page-cache misses (major-fault runs) observed.
    pub cache_misses: u64,
    /// Pages evicted.
    pub cache_evictions: u64,
    /// Dirty pages written back.
    pub cache_writebacks: u64,
    /// Device command counters and service histograms, indexed by class code.
    pub device: [ClassMetrics; NUM_DEVICE_CLASSES],
    /// Per-tenant × per-class attribution rows, keyed `(tenant, class)`.
    /// Sparse: a row exists once the tenant has issued a command against
    /// the class. Sums across tenants match the [`Metrics::device`] rows.
    pub tenants: BTreeMap<(u64, u64), TenantClassMetrics>,
    /// Device commands failed by an injected fault.
    pub faults_injected: u64,
    /// Device commands reissued after a transient fault.
    pub io_retries: u64,
    /// Redundant (hedged) read commands issued against replica devices;
    /// each carries exactly one cancelled loser per issuance.
    pub hedges: u64,
    /// Application-level spans completed.
    pub app_spans: u64,
    /// Ring batches serviced (`ring_enter` calls that crossed).
    pub ring_enters: u64,
    /// Ring operations serviced across all batches.
    pub ring_ops: u64,
    /// Completion-queue reaps (crossing-free).
    pub ring_reaps: u64,
    /// In-kernel pick-program evaluations.
    pub prog_evals: u64,
    /// Events the trace ring overwrote (drop-oldest overflow). Non-zero
    /// means audits over the event buffer saw a truncated input.
    pub trace_dropped: u64,
    /// Ring high-water mark: most events retained at once.
    pub trace_high_water: u64,
    /// Read spans whose prediction was made under an older sleds-table
    /// generation and therefore excluded from the accuracy windows.
    pub accuracy_cross_generation: u64,
}

impl Metrics {
    /// Records one completed syscall span.
    pub fn note_syscall(&mut self, dur_ns: u64) {
        self.syscalls += 1;
        self.syscall_latency.record(dur_ns);
    }

    /// Records one device command on behalf of `tenant`. `dur_ns` is the
    /// service time alone; `queue_ns` is the time the command sat queued
    /// before service began (zero in single-tenant runs, so the class-row
    /// observables are unchanged by queueing). `bytes` is the payload
    /// moved and `transfer_ns` the portion of `dur_ns` spent in
    /// data-moving phases; the remainder is first-byte time
    /// (positioning, rpc, mount...).
    #[allow(clippy::too_many_arguments)]
    pub fn note_device(
        &mut self,
        tenant: u64,
        class: u64,
        write: bool,
        dur_ns: u64,
        bytes: u64,
        transfer_ns: u64,
        queue_ns: u64,
    ) {
        let idx = (class as usize).min(NUM_DEVICE_CLASSES - 1);
        let m = &mut self.device[idx];
        if write {
            m.writes += 1;
        } else {
            m.reads += 1;
            m.first_byte.record(dur_ns.saturating_sub(transfer_ns));
            m.read_bytes += bytes;
            m.read_transfer_ns += transfer_ns;
        }
        m.service.record(dur_ns);
        let row = self.tenants.entry((tenant, idx as u64)).or_default();
        row.requests += 1;
        row.bytes += bytes;
        row.queue_wait.record(queue_ns);
        row.service.record(dur_ns);
        row.busy_ns += dur_ns;
        row.queue_wait_ns += queue_ns;
    }

    /// A tenant's share of the device busy time consumed on one class, in
    /// parts per million of all tenants' demand on that class. `None` when
    /// the class has seen no busy time. Integer-only so snapshots replay
    /// bit-identically.
    pub fn demand_share_ppm(&self, tenant: u64, class: u64) -> Option<u64> {
        let total: u64 = self
            .tenants
            .iter()
            .filter(|((_, c), _)| *c == class)
            .map(|(_, row)| row.busy_ns)
            .sum();
        if total == 0 {
            return None;
        }
        let own = self
            .tenants
            .get(&(tenant, class))
            .map_or(0, |row| row.busy_ns);
        Some((own as u128 * 1_000_000 / total as u128) as u64)
    }

    /// Records one completed (prediction, actual) accuracy pair.
    pub fn note_accuracy(&mut self, class: u64, predicted_ns: u64, actual_ns: u64) {
        let idx = (class as usize).min(NUM_DEVICE_CLASSES - 1);
        self.device[idx].accuracy.push(predicted_ns, actual_ns);
    }

    /// Total device commands across every class.
    pub fn device_commands(&self) -> u64 {
        self.device.iter().map(|m| m.reads + m.writes).sum()
    }

    /// Observability health warnings: conditions under which the other
    /// numbers in this snapshot are clipped or partial. Empty means the
    /// snapshot saw everything. Surfaced verbatim in `FSLEDS_STAT`
    /// text output and Chrome trace metadata.
    pub fn warnings(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.trace_dropped > 0 {
            out.push(format!(
                "TRUNCATED trace ring: dropped {} events (high water {}); audits and \
                 exports over the event buffer saw a clipped window",
                self.trace_dropped, self.trace_high_water
            ));
        }
        if self.accuracy_cross_generation > 0 {
            out.push(format!(
                "{} reads excluded from prediction-accuracy windows \
                 (sleds-table generation changed mid-read)",
                self.accuracy_cross_generation
            ));
        }
        out
    }

    /// Compact human-readable dump, one line per populated row.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "syscalls {} (mean {} ns, p90 {} ns, p999 {} ns, max {} ns)\n",
            self.syscalls,
            self.syscall_latency.mean(),
            self.syscall_latency.p90(),
            self.syscall_latency.p999(),
            self.syscall_latency.max(),
        ));
        out.push_str(&format!(
            "cache hits {} misses {} evictions {} writebacks {}\n",
            self.cache_hits, self.cache_misses, self.cache_evictions, self.cache_writebacks,
        ));
        for (code, m) in self.device.iter().enumerate() {
            if m.reads + m.writes == 0 {
                continue;
            }
            out.push_str(&format!(
                "device[{}] reads {} writes {} service p50 {} ns p90 {} ns p99 {} ns \
                 p999 {} ns max {} ns\n",
                class_label(code as u64),
                m.reads,
                m.writes,
                m.service.p50(),
                m.service.p90(),
                m.service.p99(),
                m.service.p999(),
                m.service.max(),
            ));
            if m.reads > 0 {
                let bw = m
                    .effective_bandwidth()
                    .map(|b| format!("{:.2} MB/s", b / 1e6))
                    .unwrap_or_else(|| "n/a".to_string());
                out.push_str(&format!(
                    "device[{}] first_byte p50 {} ns effective bandwidth {}\n",
                    class_label(code as u64),
                    m.first_byte.p50(),
                    bw,
                ));
            }
            if !m.accuracy.is_empty() {
                out.push_str(&format!(
                    "device[{}] prediction error |mean| {:.3} over {} requests\n",
                    class_label(code as u64),
                    m.accuracy.mean_abs_rel_err().unwrap_or(0.0),
                    m.accuracy.len(),
                ));
            }
        }
        // Single-tenant runs: the class rows above already tell the whole
        // story, so the attribution rows would be redundant.
        let multi_tenant = self.tenants.keys().any(|&(t, _)| t != 0);
        for (&(tenant, class), row) in self.tenants.iter().filter(|_| multi_tenant) {
            out.push_str(&format!(
                "tenant[{}] device[{}] requests {} bytes {} busy {} ns qwait {} ns (p90 {} ns) share {} ppm\n",
                tenant,
                class_label(class),
                row.requests,
                row.bytes,
                row.busy_ns,
                row.queue_wait_ns,
                row.queue_wait.p90(),
                self.demand_share_ppm(tenant, class).unwrap_or(0),
            ));
        }
        if self.faults_injected + self.io_retries > 0 {
            out.push_str(&format!(
                "faults injected {} retries {}\n",
                self.faults_injected, self.io_retries
            ));
        }
        if self.hedges > 0 {
            out.push_str(&format!("hedged reads {}\n", self.hedges));
        }
        if self.app_spans > 0 {
            out.push_str(&format!("app spans {}\n", self.app_spans));
        }
        if self.ring_enters + self.prog_evals > 0 {
            out.push_str(&format!(
                "ring enters {} ops {} reaps {} prog evals {}\n",
                self.ring_enters, self.ring_ops, self.ring_reaps, self.prog_evals
            ));
        }
        for w in self.warnings() {
            out.push_str(&format!("warning: {w}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_paths_update_the_right_rows() {
        let mut m = Metrics::default();
        m.note_syscall(5_000);
        m.note_syscall(7_000);
        m.note_device(0, 1, false, 18_000_000, 65_536, 7_000_000, 0);
        m.note_device(0, 1, true, 20_000_000, 65_536, 8_000_000, 0);
        m.note_device(0, 4, false, 40_000_000_000, 1 << 20, 1_000_000_000, 0);
        assert_eq!(m.syscalls, 2);
        assert_eq!(m.syscall_latency.count(), 2);
        assert_eq!(m.device[1].reads, 1);
        assert_eq!(m.device[1].writes, 1);
        assert_eq!(m.device[4].reads, 1);
        assert_eq!(m.device_commands(), 3);
        let text = m.render_text();
        assert!(text.contains("device[disk]"));
        assert!(text.contains("device[tape]"));
        assert!(!text.contains("device[memory]"));
    }

    #[test]
    fn out_of_range_class_clamps() {
        let mut m = Metrics::default();
        m.note_device(0, 77, false, 10, 0, 0, 0);
        assert_eq!(m.device[NUM_DEVICE_CLASSES - 1].reads, 1);
    }

    #[test]
    fn tenant_rows_attribute_demand_and_queueing() {
        let mut m = Metrics::default();
        // Tenant 1 is the heavy disk user; tenant 2 queues behind it.
        m.note_device(1, 1, false, 30_000_000, 1 << 20, 10_000_000, 0);
        m.note_device(1, 1, false, 30_000_000, 1 << 20, 10_000_000, 0);
        m.note_device(1, 1, false, 30_000_000, 1 << 20, 10_000_000, 0);
        m.note_device(2, 1, false, 10_000_000, 1 << 14, 2_000_000, 45_000_000);
        let heavy = &m.tenants[&(1, 1)];
        assert_eq!(heavy.requests, 3);
        assert_eq!(heavy.busy_ns, 90_000_000);
        assert_eq!(heavy.queue_wait_ns, 0);
        let light = &m.tenants[&(2, 1)];
        assert_eq!(light.requests, 1);
        assert_eq!(light.queue_wait_ns, 45_000_000);
        assert_eq!(light.queue_wait.count(), 1);
        // Tenant rows sum to the class row.
        assert_eq!(heavy.requests + light.requests, m.device[1].reads);
        assert_eq!(m.demand_share_ppm(1, 1), Some(900_000));
        assert_eq!(m.demand_share_ppm(2, 1), Some(100_000));
        assert_eq!(m.demand_share_ppm(1, 4), None, "idle class has no share");
        let text = m.render_text();
        assert!(text.contains("tenant[1] device[disk]"));
        assert!(text.contains("share 900000 ppm"));
    }

    #[test]
    fn single_tenant_render_skips_attribution_rows() {
        let mut m = Metrics::default();
        m.note_device(0, 1, false, 18_000_000, 65_536, 7_000_000, 0);
        assert!(!m.render_text().contains("tenant["));
    }

    #[test]
    fn first_byte_and_bandwidth_split_reads_only() {
        let mut m = Metrics::default();
        // Read: 18ms service, 7ms of it transferring 64KiB.
        m.note_device(0, 1, false, 18_000_000, 65_536, 7_000_000, 0);
        // Write: must not feed the read-side observables.
        m.note_device(0, 1, true, 30_000_000, 65_536, 9_000_000, 0);
        let d = &m.device[1];
        assert_eq!(d.first_byte.count(), 1);
        assert_eq!(d.first_byte.p50(), 11_000_000);
        assert_eq!(d.read_bytes, 65_536);
        assert_eq!(d.read_transfer_ns, 7_000_000);
        let bw = d.effective_bandwidth().unwrap();
        assert!((bw - 65_536.0 * 1e9 / 7_000_000.0).abs() < 1e-6);
        assert_eq!(d.service.count(), 2);
    }

    #[test]
    fn effective_bandwidth_needs_transfer_time() {
        let m = ClassMetrics::default();
        assert!(m.effective_bandwidth().is_none());
    }

    #[test]
    fn accuracy_window_rolls_and_summarizes() {
        let mut w = AccuracyWindow::default();
        assert!(w.mean_abs_rel_err().is_none());
        w.push(150, 100); // +50%
        w.push(50, 100); // -50%
        assert_eq!(w.len(), 2);
        assert!((w.mean_rel_err().unwrap() - 0.0).abs() < 1e-12);
        assert!((w.mean_abs_rel_err().unwrap() - 0.5).abs() < 1e-12);
        for i in 0..2 * ACCURACY_WINDOW as u64 {
            w.push(i, i + 1);
        }
        assert_eq!(w.len(), ACCURACY_WINDOW);
        assert_eq!(w.total_observed(), 2 + 2 * ACCURACY_WINDOW as u64);
    }

    #[test]
    fn truncation_is_loud_in_render() {
        let mut m = Metrics::default();
        assert!(!m.render_text().contains("TRUNCATED"));
        m.trace_dropped = 9;
        m.trace_high_water = 16;
        assert!(m.render_text().contains("TRUNCATED"));
    }
}
