//! Per-layer monotonic counters and latency histograms.
//!
//! Built on [`LogHistogram`] from `sim-core::stats`: power-of-two
//! nanosecond buckets, integer-only, so the metrics replay bit-identically
//! and are safe to snapshot from kernel paths (`FSLEDS_STAT`).

use sleds_sim_core::stats::LogHistogram;

use crate::event::class_label;

/// Number of device classes tracked (memory, disk, CD-ROM, network, tape).
pub const NUM_DEVICE_CLASSES: usize = 5;

/// Counters and a service-time histogram for one device class.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ClassMetrics {
    /// Read commands serviced.
    pub reads: u64,
    /// Write commands serviced.
    pub writes: u64,
    /// Per-command service time, nanoseconds.
    pub service: LogHistogram,
}

/// Per-layer metrics snapshot.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Syscall spans completed.
    pub syscalls: u64,
    /// Per-syscall latency (entry to exit), nanoseconds.
    pub syscall_latency: LogHistogram,
    /// Page-cache hits observed.
    pub cache_hits: u64,
    /// Page-cache misses (major-fault runs) observed.
    pub cache_misses: u64,
    /// Pages evicted.
    pub cache_evictions: u64,
    /// Dirty pages written back.
    pub cache_writebacks: u64,
    /// Device command counters and service histograms, indexed by class code.
    pub device: [ClassMetrics; NUM_DEVICE_CLASSES],
    /// Application-level spans completed.
    pub app_spans: u64,
}

impl Metrics {
    /// Records one completed syscall span.
    pub fn note_syscall(&mut self, dur_ns: u64) {
        self.syscalls += 1;
        self.syscall_latency.record(dur_ns);
    }

    /// Records one device command.
    pub fn note_device(&mut self, class: u64, write: bool, dur_ns: u64) {
        let idx = (class as usize).min(NUM_DEVICE_CLASSES - 1);
        let m = &mut self.device[idx];
        if write {
            m.writes += 1;
        } else {
            m.reads += 1;
        }
        m.service.record(dur_ns);
    }

    /// Total device commands across every class.
    pub fn device_commands(&self) -> u64 {
        self.device.iter().map(|m| m.reads + m.writes).sum()
    }

    /// Compact human-readable dump, one line per populated row.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "syscalls {} (mean {} ns, p90 {} ns, max {} ns)\n",
            self.syscalls,
            self.syscall_latency.mean(),
            self.syscall_latency.quantile(0.90),
            self.syscall_latency.max(),
        ));
        out.push_str(&format!(
            "cache hits {} misses {} evictions {} writebacks {}\n",
            self.cache_hits, self.cache_misses, self.cache_evictions, self.cache_writebacks,
        ));
        for (code, m) in self.device.iter().enumerate() {
            if m.reads + m.writes == 0 {
                continue;
            }
            out.push_str(&format!(
                "device[{}] reads {} writes {} service mean {} ns p90 {} ns max {} ns\n",
                class_label(code as u64),
                m.reads,
                m.writes,
                m.service.mean(),
                m.service.quantile(0.90),
                m.service.max(),
            ));
        }
        if self.app_spans > 0 {
            out.push_str(&format!("app spans {}\n", self.app_spans));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn note_paths_update_the_right_rows() {
        let mut m = Metrics::default();
        m.note_syscall(5_000);
        m.note_syscall(7_000);
        m.note_device(1, false, 18_000_000);
        m.note_device(1, true, 20_000_000);
        m.note_device(4, false, 40_000_000_000);
        assert_eq!(m.syscalls, 2);
        assert_eq!(m.syscall_latency.count(), 2);
        assert_eq!(m.device[1].reads, 1);
        assert_eq!(m.device[1].writes, 1);
        assert_eq!(m.device[4].reads, 1);
        assert_eq!(m.device_commands(), 3);
        let text = m.render_text();
        assert!(text.contains("device[disk]"));
        assert!(text.contains("device[tape]"));
        assert!(!text.contains("device[memory]"));
    }

    #[test]
    fn out_of_range_class_clamps() {
        let mut m = Metrics::default();
        m.note_device(77, false, 10);
        assert_eq!(m.device[NUM_DEVICE_CLASSES - 1].reads, 1);
    }
}
