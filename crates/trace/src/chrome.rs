//! Chrome `trace_event` JSON export.
//!
//! Produces the "JSON Array Format" that `chrome://tracing` and Perfetto
//! load directly. Timestamps are microseconds; we format them as exact
//! integer-nanosecond fractions (`"{}.{:03}"`) rather than printing floats,
//! so two identical runs export byte-identical JSON.
//!
//! Lane layout: each tenant gets its own process lane (`pid` = tenant + 1,
//! so the main tenant lands on Chrome's conventional pid 1), and within a
//! tenant's lane device commands fan out onto per-class threads (`tid` =
//! 10 + class code) while syscall/cache/app events share `tid` 1. Metadata
//! events name the lanes so the viewer shows tenant and device labels
//! instead of bare numbers.

use std::collections::BTreeSet;

use crate::event::{class_label, EventPhase, Layer, TraceEvent};

/// `tid` for non-device events within a tenant's process lane.
const TID_MAIN: u64 = 1;

/// Base `tid` for device lanes: `TID_DEVICE_BASE + class_code`.
const TID_DEVICE_BASE: u64 = 10;

fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

/// Escapes a string for embedding inside a JSON string literal. Tenant
/// names are caller-supplied, so quotes, backslashes, and control bytes
/// must not be able to break the document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out
}

fn lane(ev: &TraceEvent) -> (u64, u64) {
    let pid = ev.tenant + 1;
    let tid = if matches!(ev.layer, Layer::Device) {
        TID_DEVICE_BASE + ev.args[2]
    } else {
        TID_MAIN
    };
    (pid, tid)
}

fn push_metadata(out: &mut String, name: &str, pid: u64, tid: Option<u64>, label: &str) {
    out.push_str("{\"name\":\"");
    out.push_str(name);
    out.push_str(&format!("\",\"ph\":\"M\",\"pid\":{pid}"));
    if let Some(tid) = tid {
        out.push_str(&format!(",\"tid\":{tid}"));
    }
    out.push_str(",\"args\":{\"name\":\"");
    out.push_str(&json_escape(label));
    out.push_str("\"}}");
}

/// Serializes events into a Chrome trace JSON document.
///
/// `dropped` (from [`crate::Tracer::dropped`]) is recorded in the trace
/// metadata so a truncated buffer is visible in the viewer. Tenant lanes
/// fall back to `tenant-N` labels; use [`chrome_trace_json_named`] to
/// label them with registered tenant names.
pub fn chrome_trace_json(events: &[TraceEvent], dropped: u64) -> String {
    chrome_trace_json_named(events, dropped, 0, &[])
}

/// Serializes events into a Chrome trace JSON document with tenant lanes
/// labeled by name.
///
/// `high_water` is the ring's retention high-water mark; together with
/// `dropped` it lands in the trace metadata, and a non-zero drop count
/// adds an explicit entry to the metadata `warnings` array so a clipped
/// trace announces itself in the viewer.
///
/// `tenant_names` maps tenant ids to display names; tenants that appear in
/// the events without a row here are labeled `tenant-N`. Names are escaped,
/// so arbitrary registered names cannot break the JSON.
pub fn chrome_trace_json_named(
    events: &[TraceEvent],
    dropped: u64,
    high_water: u64,
    tenant_names: &[(u64, String)],
) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual\",");
    out.push_str(&format!(
        "\"droppedEvents\":{dropped},\"ringHighWater\":{high_water},\"warnings\":["
    ));
    if dropped > 0 {
        out.push_str(&format!(
            "\"trace ring dropped {dropped} events (high water {high_water}): \
             oldest spans are missing from this trace\""
        ));
    }
    out.push_str("]},\"traceEvents\":[\n");
    // Metadata events first: name every (pid, tid) lane the events touch.
    let lanes: BTreeSet<(u64, u64)> = events.iter().map(lane).collect();
    let tenants: BTreeSet<u64> = lanes.iter().map(|&(pid, _)| pid - 1).collect();
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
    };
    for &tenant in &tenants {
        let label = tenant_names
            .iter()
            .find(|&&(id, _)| id == tenant)
            .map(|(_, name)| name.clone())
            .unwrap_or_else(|| format!("tenant-{tenant}"));
        sep(&mut out);
        push_metadata(&mut out, "process_name", tenant + 1, None, &label);
    }
    for &(pid, tid) in &lanes {
        let label = if tid == TID_MAIN {
            "vfs".to_string()
        } else {
            format!("device.{}", class_label(tid - TID_DEVICE_BASE))
        };
        sep(&mut out);
        push_metadata(&mut out, "thread_name", pid, Some(tid), &label);
    }
    for ev in events {
        sep(&mut out);
        let ph = match ev.phase {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
            EventPhase::Complete => "X",
            EventPhase::Mark => "i",
        };
        out.push_str("{\"name\":\"");
        out.push_str(ev.name);
        out.push_str("\",\"cat\":\"");
        out.push_str(ev.layer.label());
        out.push_str("\",\"ph\":\"");
        out.push_str(ph);
        out.push_str("\",\"ts\":");
        push_us(&mut out, ev.ts.as_nanos());
        if matches!(ev.phase, EventPhase::Complete) {
            out.push_str(",\"dur\":");
            push_us(&mut out, ev.dur.as_nanos());
        }
        if matches!(ev.phase, EventPhase::Mark) {
            out.push_str(",\"s\":\"t\"");
        }
        let (pid, tid) = lane(ev);
        out.push_str(&format!(",\"pid\":{pid},\"tid\":{tid},\"args\":{{\"a0\":"));
        out.push_str(&ev.args[0].to_string());
        out.push_str(",\"a1\":");
        out.push_str(&ev.args[1].to_string());
        out.push_str(",\"class\":\"");
        out.push_str(class_label(ev.args[2]));
        out.push_str("\"}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Layer;
    use sleds_sim_core::{SimDuration, SimTime};

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                seq: 0,
                ts: SimTime::from_nanos(5_250),
                dur: SimDuration::ZERO,
                phase: EventPhase::Begin,
                layer: Layer::Syscall,
                tenant: 0,
                name: "read",
                args: [3, 4096, 0],
            },
            TraceEvent {
                seq: 1,
                ts: SimTime::from_nanos(6_000),
                dur: SimDuration::from_nanos(750),
                phase: EventPhase::Complete,
                layer: Layer::Device,
                tenant: 0,
                name: "disk.read",
                args: [8, 16, 1],
            },
            TraceEvent {
                seq: 2,
                ts: SimTime::from_nanos(7_000),
                dur: SimDuration::from_nanos(1_750),
                phase: EventPhase::End,
                layer: Layer::Syscall,
                tenant: 0,
                name: "read",
                args: [3, 4096, 0],
            },
        ]
    }

    #[test]
    fn exports_wellformed_phases_and_timestamps() {
        let json = chrome_trace_json(&sample(), 7);
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"droppedEvents\":7"));
        assert!(json.contains("\"ph\":\"B\",\"ts\":5.250"));
        assert!(json.contains("\"ph\":\"X\",\"ts\":6.000,\"dur\":0.750"));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"class\":\"disk\""));
        // Main tenant keeps Chrome's conventional pid 1; device commands
        // land on the per-class thread lane.
        assert!(json.contains("\"pid\":1,\"tid\":1"));
        assert!(json.contains("\"pid\":1,\"tid\":11"));
        // Balanced braces/brackets — a cheap structural validity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn identical_inputs_export_identical_bytes() {
        let a = chrome_trace_json(&sample(), 0);
        let b = chrome_trace_json(&sample(), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace_json(&[], 0);
        assert!(json.contains("\"traceEvents\":[\n\n]"));
    }

    #[test]
    fn tenants_map_to_pid_lanes_with_metadata() {
        let mut events = sample();
        events[1].tenant = 3;
        let names = vec![(3u64, "acct-\"batch\"\\scan".to_string())];
        let json = chrome_trace_json_named(&events, 0, 0, &names);
        // Tenant 3 → pid 4, device class 1 → tid 11.
        assert!(json.contains("\"pid\":4,\"tid\":11"));
        // Metadata labels both lanes; the tenant name is escaped.
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":4,\"args\":{\"name\":\"acct-\\\"batch\\\"\\\\scan\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{\"name\":\"tenant-0\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":4,\"tid\":11,\"args\":{\"name\":\"device.disk\"}}"
        ));
        assert!(json.contains(
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":1,\"args\":{\"name\":\"vfs\"}}"
        ));
        let opens = json.matches('{').count();
        assert_eq!(opens, json.matches('}').count());
    }

    #[test]
    fn json_escape_handles_control_and_quote_bytes() {
        assert_eq!(json_escape("plain"), "plain");
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
