//! Chrome `trace_event` JSON export.
//!
//! Produces the "JSON Array Format" that `chrome://tracing` and Perfetto
//! load directly. Timestamps are microseconds; we format them as exact
//! integer-nanosecond fractions (`"{}.{:03}"`) rather than printing floats,
//! so two identical runs export byte-identical JSON.

use crate::event::{class_label, EventPhase, TraceEvent};

fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

/// Serializes events into a Chrome trace JSON document.
///
/// `dropped` (from [`crate::Tracer::dropped`]) is recorded in the trace
/// metadata so a truncated buffer is visible in the viewer.
pub fn chrome_trace_json(events: &[TraceEvent], dropped: u64) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"clock\":\"virtual\",");
    out.push_str(&format!(
        "\"droppedEvents\":{dropped}}},\"traceEvents\":[\n"
    ));
    for (i, ev) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        let ph = match ev.phase {
            EventPhase::Begin => "B",
            EventPhase::End => "E",
            EventPhase::Complete => "X",
            EventPhase::Mark => "i",
        };
        out.push_str("{\"name\":\"");
        out.push_str(ev.name);
        out.push_str("\",\"cat\":\"");
        out.push_str(ev.layer.label());
        out.push_str("\",\"ph\":\"");
        out.push_str(ph);
        out.push_str("\",\"ts\":");
        push_us(&mut out, ev.ts.as_nanos());
        if matches!(ev.phase, EventPhase::Complete) {
            out.push_str(",\"dur\":");
            push_us(&mut out, ev.dur.as_nanos());
        }
        if matches!(ev.phase, EventPhase::Mark) {
            out.push_str(",\"s\":\"t\"");
        }
        out.push_str(",\"pid\":1,\"tid\":1,\"args\":{\"a0\":");
        out.push_str(&ev.args[0].to_string());
        out.push_str(",\"a1\":");
        out.push_str(&ev.args[1].to_string());
        out.push_str(",\"class\":\"");
        out.push_str(class_label(ev.args[2]));
        out.push_str("\"}}");
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Layer;
    use sleds_sim_core::{SimDuration, SimTime};

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent {
                seq: 0,
                ts: SimTime::from_nanos(5_250),
                dur: SimDuration::ZERO,
                phase: EventPhase::Begin,
                layer: Layer::Syscall,
                name: "read",
                args: [3, 4096, 0],
            },
            TraceEvent {
                seq: 1,
                ts: SimTime::from_nanos(6_000),
                dur: SimDuration::from_nanos(750),
                phase: EventPhase::Complete,
                layer: Layer::Device,
                name: "disk.read",
                args: [8, 16, 1],
            },
            TraceEvent {
                seq: 2,
                ts: SimTime::from_nanos(7_000),
                dur: SimDuration::from_nanos(1_750),
                phase: EventPhase::End,
                layer: Layer::Syscall,
                name: "read",
                args: [3, 4096, 0],
            },
        ]
    }

    #[test]
    fn exports_wellformed_phases_and_timestamps() {
        let json = chrome_trace_json(&sample(), 7);
        assert!(json.starts_with('{'));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"droppedEvents\":7"));
        assert!(json.contains("\"ph\":\"B\",\"ts\":5.250"));
        assert!(json.contains("\"ph\":\"X\",\"ts\":6.000,\"dur\":0.750"));
        assert!(json.contains("\"ph\":\"E\""));
        assert!(json.contains("\"class\":\"disk\""));
        // Balanced braces/brackets — a cheap structural validity check.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn identical_inputs_export_identical_bytes() {
        let a = chrome_trace_json(&sample(), 0);
        let b = chrome_trace_json(&sample(), 0);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = chrome_trace_json(&[], 0);
        assert!(json.contains("\"traceEvents\":[\n\n]"));
    }
}
