//! Run-length extent sets over page indices.
//!
//! The residency index the paper's `FSLEDS_GET` path needs: membership of a
//! set of pages stored as sorted, coalesced `(start, length)` runs in a
//! `BTreeMap`, so range queries cost O(log runs + runs-in-range) instead of
//! one probe per page. This is the same shape real kernels use for the page
//! cache (radix tree / xarray ranges) and what log-structured systems keep
//! for allocation maps.

use std::collections::BTreeMap;
use std::ops::RangeInclusive;

/// A set of page indices stored as disjoint, non-adjacent runs.
///
/// Invariant: for consecutive runs `(s1, l1)` and `(s2, l2)`,
/// `s1 + l1 < s2` — adjacent runs are always coalesced on insert.
#[derive(Clone, Debug, Default)]
pub struct ExtentSet {
    /// `start -> length` (pages), keys sorted, runs disjoint and separated.
    runs: BTreeMap<u64, u64>,
    /// Total pages across runs.
    pages: u64,
}

impl ExtentSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        ExtentSet::default()
    }

    /// True when no page is in the set.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of runs (level transitions / 2, roughly).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Number of pages in the set.
    pub fn page_count(&self) -> u64 {
        self.pages
    }

    /// The run containing `page`, if any.
    fn run_of(&self, page: u64) -> Option<(u64, u64)> {
        self.runs
            .range(..=page)
            .next_back()
            .map(|(&s, &l)| (s, l))
            .filter(|&(s, l)| page - s < l)
    }

    /// Membership probe: O(log runs).
    pub fn contains(&self, page: u64) -> bool {
        self.run_of(page).is_some()
    }

    /// Inserts `page`, coalescing with adjacent runs. Returns true when the
    /// page was not already present.
    pub fn insert(&mut self, page: u64) -> bool {
        assert!(
            page < u64::MAX,
            "u64::MAX is reserved as the no-boundary sentinel"
        );
        if self.contains(page) {
            return false;
        }
        // Merge with a run ending exactly at `page`...
        let left = self
            .runs
            .range(..page)
            .next_back()
            .map(|(&s, &l)| (s, l))
            .filter(|&(s, l)| s + l == page);
        // ...and/or a run starting exactly at `page + 1`.
        let right = page
            .checked_add(1)
            .and_then(|n| self.runs.get(&n).map(|&l| (n, l)));
        match (left, right) {
            (Some((ls, ll)), Some((rs, rl))) => {
                self.runs.remove(&rs);
                self.runs.insert(ls, ll + 1 + rl);
            }
            (Some((ls, ll)), None) => {
                self.runs.insert(ls, ll + 1);
            }
            (None, Some((rs, rl))) => {
                self.runs.remove(&rs);
                self.runs.insert(page, rl + 1);
            }
            (None, None) => {
                self.runs.insert(page, 1);
            }
        }
        self.pages += 1;
        true
    }

    /// Removes `page`, splitting its run if needed. Returns true when the
    /// page was present.
    pub fn remove(&mut self, page: u64) -> bool {
        let Some((s, l)) = self.run_of(page) else {
            return false;
        };
        self.runs.remove(&s);
        if page > s {
            self.runs.insert(s, page - s);
        }
        let tail = s + l - (page + 1);
        if tail > 0 {
            self.runs.insert(page + 1, tail);
        }
        self.pages -= 1;
        true
    }

    /// The first page index `> page` whose membership differs from `page`'s,
    /// or `u64::MAX` when membership never changes again.
    ///
    /// This is the primitive a run-length scan is built on: from any page,
    /// one O(log runs) query says how far the current state extends.
    pub fn next_boundary(&self, page: u64) -> u64 {
        if let Some((s, l)) = self.run_of(page) {
            return s + l; // inside a run: state flips where the run ends
        }
        // In a gap: state flips at the next run's start.
        match page.checked_add(1) {
            Some(n) => self
                .runs
                .range(n..)
                .next()
                .map(|(&s, _)| s)
                .unwrap_or(u64::MAX),
            None => u64::MAX,
        }
    }

    /// The runs overlapping `range`, clipped to it, in ascending order.
    pub fn runs_in(&self, range: RangeInclusive<u64>) -> Vec<RangeInclusive<u64>> {
        let (lo, hi) = (*range.start(), *range.end());
        if lo > hi {
            return Vec::new();
        }
        let mut out = Vec::new();
        // The run containing `lo`, if any, starts at or before `lo`.
        if let Some((s, l)) = self.run_of(lo) {
            out.push(lo..=(s + l - 1).min(hi));
        }
        if let Some(next) = lo.checked_add(1).filter(|&n| n <= hi) {
            for (&s, &l) in self.runs.range(next..=hi) {
                out.push(s..=(s + l - 1).min(hi));
            }
        }
        out
    }

    /// All runs as `(start, length)` pairs, ascending.
    pub fn iter_runs(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.runs.iter().map(|(&s, &l)| (s, l))
    }

    /// All member pages, ascending.
    pub fn iter_pages(&self) -> impl Iterator<Item = u64> + '_ {
        self.runs.iter().flat_map(|(&s, &l)| s..s + l)
    }

    /// Removes every page.
    pub fn clear(&mut self) {
        self.runs.clear();
        self.pages = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn runs(s: &ExtentSet) -> Vec<(u64, u64)> {
        s.iter_runs().collect()
    }

    #[test]
    fn insert_coalesces_neighbors() {
        let mut s = ExtentSet::new();
        assert!(s.insert(5));
        assert!(s.insert(7));
        assert_eq!(runs(&s), vec![(5, 1), (7, 1)]);
        // Filling the hole merges all three into one run.
        assert!(s.insert(6));
        assert_eq!(runs(&s), vec![(5, 3)]);
        assert!(!s.insert(6), "double insert reports already-present");
        assert_eq!(s.page_count(), 3);
    }

    #[test]
    fn remove_splits_runs() {
        let mut s = ExtentSet::new();
        for p in 10..20 {
            s.insert(p);
        }
        assert_eq!(s.run_count(), 1);
        assert!(s.remove(14));
        assert_eq!(runs(&s), vec![(10, 4), (15, 5)]);
        // Removing run edges shrinks without splitting.
        assert!(s.remove(10));
        assert!(s.remove(19));
        assert_eq!(runs(&s), vec![(11, 3), (15, 4)]);
        assert!(!s.remove(10), "absent page reports absent");
        assert_eq!(s.page_count(), 7);
    }

    #[test]
    fn contains_matches_runs() {
        let mut s = ExtentSet::new();
        for p in [1u64, 2, 3, 9, 10, 40] {
            s.insert(p);
        }
        for p in 0..50 {
            assert_eq!(
                s.contains(p),
                [1u64, 2, 3, 9, 10, 40].contains(&p),
                "page {p}"
            );
        }
    }

    #[test]
    fn next_boundary_flags_state_changes() {
        let mut s = ExtentSet::new();
        for p in [4u64, 5, 6, 10, 11] {
            s.insert(p);
        }
        assert_eq!(s.next_boundary(0), 4, "gap ends at first run");
        assert_eq!(s.next_boundary(4), 7, "run ends past its last page");
        assert_eq!(s.next_boundary(6), 7);
        assert_eq!(s.next_boundary(7), 10);
        assert_eq!(s.next_boundary(11), 12);
        assert_eq!(s.next_boundary(12), u64::MAX, "no further changes");
        assert_eq!(s.next_boundary(u64::MAX), u64::MAX);
    }

    #[test]
    fn runs_in_clips_to_range() {
        let mut s = ExtentSet::new();
        for p in [0u64, 1, 2, 3, 8, 9, 20, 21, 22] {
            s.insert(p);
        }
        assert_eq!(s.runs_in(2..=20), vec![2..=3, 8..=9, 20..=20]);
        assert_eq!(s.runs_in(4..=7), Vec::<RangeInclusive<u64>>::new());
        assert_eq!(s.runs_in(0..=100), vec![0..=3, 8..=9, 20..=22]);
        // An inverted (empty) range must yield nothing, not panic.
        #[allow(clippy::reversed_empty_ranges)]
        let inverted = 9..=8;
        assert_eq!(s.runs_in(inverted), Vec::<RangeInclusive<u64>>::new());
    }

    #[test]
    fn iter_pages_ascending() {
        let mut s = ExtentSet::new();
        for p in [7u64, 3, 4, 12] {
            s.insert(p);
        }
        assert_eq!(s.iter_pages().collect::<Vec<_>>(), vec![3, 4, 7, 12]);
    }

    #[test]
    fn clear_empties() {
        let mut s = ExtentSet::new();
        s.insert(1);
        s.insert(2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.page_count(), 0);
        assert_eq!(s.next_boundary(0), u64::MAX);
    }

    #[test]
    fn extreme_indices_do_not_overflow() {
        let mut s = ExtentSet::new();
        s.insert(u64::MAX - 1);
        assert!(s.contains(u64::MAX - 1));
        assert_eq!(s.next_boundary(u64::MAX - 1), u64::MAX);
        s.remove(u64::MAX - 1);
        assert!(s.is_empty());
    }
}
