//! Replacement policies for the buffer cache.
//!
//! LRU is the default (and what the paper's Figure 3 assumes). The others
//! exist for the ablation benchmarks: Clock approximates LRU the way real
//! kernels do, FIFO ignores recency, MRU is the pathological-for-scans
//! opposite, and 2Q resists exactly the sequential-flood behaviour SLEDs
//! exploits — making it an interesting counterfactual.

use std::collections::{BTreeMap, VecDeque};

use crate::PageKey;

/// A page replacement policy: told about insertions/hits, asked for victims.
///
/// The cache guarantees `evict` is only called when at least one page is
/// tracked, and `on_insert` is never called for an already-tracked page.
pub trait ReplacementPolicy {
    /// A new page became resident.
    fn on_insert(&mut self, key: PageKey);
    /// A resident page was referenced.
    fn on_hit(&mut self, key: PageKey);
    /// Chooses a page to discard.
    fn evict(&mut self) -> Option<PageKey>;
    /// A page was removed outside the eviction path (truncate, unmount).
    fn on_remove(&mut self, key: PageKey);
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// How many evictions until this page would be chosen, if the policy
    /// can predict it (0 = next out). Recency/queue policies can; Clock and
    /// 2Q depend on future references and return `None`. This feeds the
    /// SLED *forecast* extension (the paper's "predict which pages of a
    /// file would be flushed from cache based on current page replacement
    /// algorithms").
    fn eviction_rank(&self, _key: PageKey) -> Option<usize> {
        None
    }
}

/// Selects a policy implementation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PolicyKind {
    /// Least recently used (simulator default).
    Lru,
    /// Clock / second chance.
    Clock,
    /// First in, first out.
    Fifo,
    /// Most recently used.
    Mru,
    /// Two-queue (Johnson & Shasha's simplified 2Q).
    TwoQ,
}

impl PolicyKind {
    /// Instantiates the policy for a cache of `capacity` pages.
    pub fn build(self, capacity: usize) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(LruPolicy::new()),
            PolicyKind::Clock => Box::new(ClockPolicy::new()),
            PolicyKind::Fifo => Box::new(FifoPolicy::new()),
            PolicyKind::Mru => Box::new(MruPolicy::new()),
            PolicyKind::TwoQ => Box::new(TwoQPolicy::new(capacity)),
        }
    }

    /// All kinds, for ablation sweeps.
    pub fn all() -> [PolicyKind; 5] {
        [
            PolicyKind::Lru,
            PolicyKind::Clock,
            PolicyKind::Fifo,
            PolicyKind::Mru,
            PolicyKind::TwoQ,
        ]
    }

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Lru => "lru",
            PolicyKind::Clock => "clock",
            PolicyKind::Fifo => "fifo",
            PolicyKind::Mru => "mru",
            PolicyKind::TwoQ => "2q",
        }
    }
}

/// Recency-ordered bookkeeping shared by LRU and MRU.
#[derive(Debug, Default)]
struct RecencyList {
    seq: u64,
    by_key: BTreeMap<PageKey, u64>,
    by_seq: BTreeMap<u64, PageKey>,
}

impl RecencyList {
    fn touch(&mut self, key: PageKey) {
        if let Some(old) = self.by_key.insert(key, self.seq) {
            self.by_seq.remove(&old);
        }
        self.by_seq.insert(self.seq, key);
        self.seq += 1;
    }

    fn remove(&mut self, key: PageKey) {
        if let Some(s) = self.by_key.remove(&key) {
            self.by_seq.remove(&s);
        }
    }

    fn oldest(&mut self) -> Option<PageKey> {
        let (&s, &k) = self.by_seq.iter().next()?;
        self.by_seq.remove(&s);
        self.by_key.remove(&k);
        Some(k)
    }

    fn newest(&mut self) -> Option<PageKey> {
        let (&s, &k) = self.by_seq.iter().next_back()?;
        self.by_seq.remove(&s);
        self.by_key.remove(&k);
        Some(k)
    }

    /// Position from the oldest entry (0 = oldest). O(log n + rank).
    fn rank_from_oldest(&self, key: PageKey) -> Option<usize> {
        let seq = *self.by_key.get(&key)?;
        Some(self.by_seq.range(..seq).count())
    }

    /// Position from the newest entry (0 = newest).
    fn rank_from_newest(&self, key: PageKey) -> Option<usize> {
        let seq = *self.by_key.get(&key)?;
        Some(self.by_seq.range(seq + 1..).count())
    }
}

/// Least recently used.
#[derive(Debug, Default)]
pub struct LruPolicy {
    list: RecencyList,
}

impl LruPolicy {
    /// Creates an empty LRU policy.
    pub fn new() -> Self {
        LruPolicy::default()
    }
}

impl ReplacementPolicy for LruPolicy {
    fn on_insert(&mut self, key: PageKey) {
        self.list.touch(key);
    }
    fn on_hit(&mut self, key: PageKey) {
        self.list.touch(key);
    }
    fn evict(&mut self) -> Option<PageKey> {
        self.list.oldest()
    }
    fn on_remove(&mut self, key: PageKey) {
        self.list.remove(key);
    }
    fn name(&self) -> &'static str {
        "lru"
    }
    fn eviction_rank(&self, key: PageKey) -> Option<usize> {
        self.list.rank_from_oldest(key)
    }
}

/// Most recently used — evicts the page touched last. Pathological for most
/// workloads but optimal for cyclic scans slightly larger than the cache,
/// which is exactly the regime of the paper's experiments.
#[derive(Debug, Default)]
pub struct MruPolicy {
    list: RecencyList,
}

impl MruPolicy {
    /// Creates an empty MRU policy.
    pub fn new() -> Self {
        MruPolicy::default()
    }
}

impl ReplacementPolicy for MruPolicy {
    fn on_insert(&mut self, key: PageKey) {
        self.list.touch(key);
    }
    fn on_hit(&mut self, key: PageKey) {
        self.list.touch(key);
    }
    fn evict(&mut self) -> Option<PageKey> {
        self.list.newest()
    }
    fn on_remove(&mut self, key: PageKey) {
        self.list.remove(key);
    }
    fn name(&self) -> &'static str {
        "mru"
    }
    fn eviction_rank(&self, key: PageKey) -> Option<usize> {
        self.list.rank_from_newest(key)
    }
}

/// First in, first out: eviction order is insertion order, hits are ignored.
#[derive(Debug, Default)]
// sledlint::allow(D009, mirrors cache contents; the cache's page budget is the bound)
pub struct FifoPolicy {
    queue: VecDeque<PageKey>,
    present: BTreeMap<PageKey, ()>,
}

impl FifoPolicy {
    /// Creates an empty FIFO policy.
    pub fn new() -> Self {
        FifoPolicy::default()
    }
}

impl ReplacementPolicy for FifoPolicy {
    fn on_insert(&mut self, key: PageKey) {
        self.queue.push_back(key);
        self.present.insert(key, ());
    }
    fn on_hit(&mut self, _key: PageKey) {}
    fn evict(&mut self) -> Option<PageKey> {
        while let Some(k) = self.queue.pop_front() {
            if self.present.remove(&k).is_some() {
                return Some(k);
            }
        }
        None
    }
    fn on_remove(&mut self, key: PageKey) {
        // Lazy removal: leave the stale queue entry; evict() skips it.
        self.present.remove(&key);
    }
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn eviction_rank(&self, key: PageKey) -> Option<usize> {
        if !self.present.contains_key(&key) {
            return None;
        }
        let mut rank = 0;
        for k in &self.queue {
            if *k == key {
                return Some(rank);
            }
            if self.present.contains_key(k) {
                rank += 1;
            }
        }
        None
    }
}

/// Clock (second chance): a FIFO ring whose entries get a reference bit;
/// the hand skips (and clears) referenced pages once before evicting.
#[derive(Debug, Default)]
pub struct ClockPolicy {
    ring: VecDeque<PageKey>,
    referenced: BTreeMap<PageKey, bool>,
}

impl ClockPolicy {
    /// Creates an empty Clock policy.
    pub fn new() -> Self {
        ClockPolicy::default()
    }
}

impl ReplacementPolicy for ClockPolicy {
    fn on_insert(&mut self, key: PageKey) {
        self.ring.push_back(key);
        self.referenced.insert(key, false);
    }
    fn on_hit(&mut self, key: PageKey) {
        if let Some(r) = self.referenced.get_mut(&key) {
            *r = true;
        }
    }
    fn evict(&mut self) -> Option<PageKey> {
        // Each lap either finds a victim or clears a referenced bit, so this
        // terminates: bits only get cleared here.
        while let Some(k) = self.ring.pop_front() {
            match self.referenced.get_mut(&k) {
                None => continue, // removed out-of-band
                Some(r) if *r => {
                    *r = false;
                    self.ring.push_back(k);
                }
                Some(_) => {
                    self.referenced.remove(&k);
                    return Some(k);
                }
            }
        }
        None
    }
    fn on_remove(&mut self, key: PageKey) {
        self.referenced.remove(&key);
    }
    fn name(&self) -> &'static str {
        "clock"
    }
}

/// Simplified 2Q: newcomers enter a FIFO probation queue (`a1`, a quarter of
/// the cache); pages re-referenced while on probation are promoted to the
/// LRU main queue (`am`). Victims come from a too-long probation queue
/// first, otherwise from the main queue's cold end.
#[derive(Debug)]
pub struct TwoQPolicy {
    a1_target: usize,
    a1: VecDeque<PageKey>,
    a1_set: BTreeMap<PageKey, ()>,
    am: RecencyList,
    am_len: usize,
}

impl TwoQPolicy {
    /// Creates a 2Q policy for a cache of `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        TwoQPolicy {
            a1_target: (capacity / 4).max(1),
            a1: VecDeque::new(),
            a1_set: BTreeMap::new(),
            am: RecencyList::default(),
            am_len: 0,
        }
    }

    fn pop_a1(&mut self) -> Option<PageKey> {
        while let Some(k) = self.a1.pop_front() {
            if self.a1_set.remove(&k).is_some() {
                return Some(k);
            }
        }
        None
    }
}

impl ReplacementPolicy for TwoQPolicy {
    fn on_insert(&mut self, key: PageKey) {
        self.a1.push_back(key);
        self.a1_set.insert(key, ());
    }
    fn on_hit(&mut self, key: PageKey) {
        if self.a1_set.remove(&key).is_some() {
            // Promote out of probation; stale a1 queue entry skipped later.
            self.am.touch(key);
            self.am_len += 1;
        } else if self.am.by_key.contains_key(&key) {
            self.am.touch(key);
        }
    }
    fn evict(&mut self) -> Option<PageKey> {
        if self.a1_set.len() >= self.a1_target {
            if let Some(k) = self.pop_a1() {
                return Some(k);
            }
        }
        if let Some(k) = self.am.oldest() {
            self.am_len -= 1;
            return Some(k);
        }
        self.pop_a1()
    }
    fn on_remove(&mut self, key: PageKey) {
        if self.a1_set.remove(&key).is_none() && self.am.by_key.contains_key(&key) {
            self.am.remove(key);
            self.am_len -= 1;
        }
    }
    fn name(&self) -> &'static str {
        "2q"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey::new(9, i)
    }

    #[test]
    fn lru_order() {
        let mut p = LruPolicy::new();
        p.on_insert(key(0));
        p.on_insert(key(1));
        p.on_insert(key(2));
        p.on_hit(key(0));
        assert_eq!(p.evict(), Some(key(1)));
        assert_eq!(p.evict(), Some(key(2)));
        assert_eq!(p.evict(), Some(key(0)));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn mru_order() {
        let mut p = MruPolicy::new();
        p.on_insert(key(0));
        p.on_insert(key(1));
        p.on_insert(key(2));
        assert_eq!(p.evict(), Some(key(2)));
        p.on_hit(key(0));
        assert_eq!(p.evict(), Some(key(0)));
        assert_eq!(p.evict(), Some(key(1)));
    }

    #[test]
    fn fifo_ignores_hits() {
        let mut p = FifoPolicy::new();
        p.on_insert(key(0));
        p.on_insert(key(1));
        p.on_hit(key(0));
        p.on_hit(key(0));
        assert_eq!(p.evict(), Some(key(0)));
    }

    #[test]
    fn fifo_skips_removed() {
        let mut p = FifoPolicy::new();
        p.on_insert(key(0));
        p.on_insert(key(1));
        p.on_remove(key(0));
        assert_eq!(p.evict(), Some(key(1)));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn clock_gives_second_chance() {
        let mut p = ClockPolicy::new();
        p.on_insert(key(0));
        p.on_insert(key(1));
        p.on_hit(key(0));
        // 0 is referenced: hand clears it and takes 1.
        assert_eq!(p.evict(), Some(key(1)));
        // Next eviction takes 0 (bit now cleared).
        assert_eq!(p.evict(), Some(key(0)));
    }

    #[test]
    fn clock_handles_out_of_band_removal() {
        let mut p = ClockPolicy::new();
        p.on_insert(key(0));
        p.on_insert(key(1));
        p.on_remove(key(0));
        assert_eq!(p.evict(), Some(key(1)));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn twoq_promotes_on_probation_hit() {
        let mut p = TwoQPolicy::new(8); // a1 target = 2
        p.on_insert(key(0));
        p.on_insert(key(1));
        p.on_hit(key(0)); // promoted to Am
        p.on_insert(key(2));
        // a1 = {1, 2} at target; evict from probation FIFO.
        assert_eq!(p.evict(), Some(key(1)));
        // Probation is now below target, so the main queue yields next.
        assert_eq!(p.evict(), Some(key(0)));
        // Fallback drains the remaining probation page.
        assert_eq!(p.evict(), Some(key(2)));
        assert_eq!(p.evict(), None);
    }

    #[test]
    fn twoq_scan_resistance() {
        // A hot page that is re-referenced survives a long sequential scan.
        let mut p = TwoQPolicy::new(4); // a1 target 1
        p.on_insert(key(100));
        p.on_hit(key(100)); // hot, promoted
        for i in 0..64 {
            p.on_insert(key(i));
            let v = p.evict().unwrap();
            assert_ne!(v, key(100), "scan must not evict the hot page");
        }
    }

    #[test]
    fn eviction_ranks_predict_order() {
        let mut p = LruPolicy::new();
        for i in 0..5 {
            p.on_insert(key(i));
        }
        p.on_hit(key(0)); // 0 becomes newest
        assert_eq!(p.eviction_rank(key(1)), Some(0));
        assert_eq!(p.eviction_rank(key(0)), Some(4));
        assert_eq!(p.eviction_rank(key(9)), None);
        // The rank-0 page is indeed the next victim.
        assert_eq!(p.evict(), Some(key(1)));

        let mut f = FifoPolicy::new();
        f.on_insert(key(0));
        f.on_insert(key(1));
        f.on_insert(key(2));
        f.on_remove(key(0));
        assert_eq!(f.eviction_rank(key(1)), Some(0));
        assert_eq!(f.eviction_rank(key(2)), Some(1));
        assert_eq!(f.eviction_rank(key(0)), None);

        let mut m = MruPolicy::new();
        m.on_insert(key(0));
        m.on_insert(key(1));
        assert_eq!(m.eviction_rank(key(1)), Some(0));
        assert_eq!(m.eviction_rank(key(0)), Some(1));

        // Clock cannot predict without knowing future references.
        let mut c = ClockPolicy::new();
        c.on_insert(key(0));
        assert_eq!(c.eviction_rank(key(0)), None);
    }

    #[test]
    fn kind_builds_matching_names() {
        for kind in PolicyKind::all() {
            let p = kind.build(16);
            assert_eq!(p.name(), kind.name());
        }
    }
}
