//! The file system buffer cache.
//!
//! The paper's central observation (its Figure 3) is about this component:
//! with LRU replacement and a file larger than the cache, a second linear
//! pass over the file gets *zero* hits, because the tail of the file keeps
//! evicting the head just before the reader arrives. An application that
//! knows which pages are resident — via SLEDs — can read the cached tail
//! first and turn most of the second pass into hits.
//!
//! [`PageCache`] tracks page residency and dirty state with a pluggable
//! [`ReplacementPolicy`]; the default is LRU, matching Linux 2.2's
//! approximation. Clock, FIFO, MRU and 2Q are provided for the ablation
//! benchmarks. The cache stores no data bytes — the simulator models *cost*,
//! and file contents live with the file system — only residency metadata.
//!
//! Residency, dirty and pinned state are stored per inode as sorted
//! run-length extents ([`ExtentSet`]), so the SLED construction path can ask
//! for the resident runs of a byte range ([`PageCache::resident_runs`]) or
//! the next residency transition ([`PageCache::next_boundary`]) in O(log
//! runs) instead of probing every page. Each inode also carries a
//! **generation counter**, bumped whenever its residency changes, which lets
//! callers memoize derived results (like a SLED vector) and revalidate them
//! in O(1).

pub mod extent;
pub mod policy;

use std::collections::BTreeMap;
use std::ops::RangeInclusive;

pub use extent::ExtentSet;
pub use policy::{
    ClockPolicy, FifoPolicy, LruPolicy, MruPolicy, PolicyKind, ReplacementPolicy, TwoQPolicy,
};

/// Identifies one page: an inode number and a page index within the file.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord)]
pub struct PageKey {
    /// Inode number (unique per mounted file system tree in the simulator).
    pub inode: u64,
    /// Page index: byte offset divided by the page size.
    pub index: u64,
}

impl PageKey {
    /// Creates a page key.
    pub fn new(inode: u64, index: u64) -> Self {
        PageKey { inode, index }
    }
}

/// Counters describing cache behaviour.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found the page resident.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Pages inserted.
    pub insertions: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
    /// Evicted pages that were dirty (required writeback).
    pub dirty_evictions: u64,
}

/// A page evicted to make room, with whether it needs writeback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The page that was dropped.
    pub key: PageKey,
    /// True when the page was dirty and must be written to its device.
    pub dirty: bool,
}

/// Per-inode extent bookkeeping: residency, dirty and pinned page sets plus
/// the residency generation.
#[derive(Clone, Debug, Default)]
struct InodeIndex {
    resident: ExtentSet,
    dirty: ExtentSet,
    pinned: ExtentSet,
    /// Bumped on every residency change (insert of a new page, eviction,
    /// removal). Dirty/pin transitions do not move it: they don't change
    /// which storage level a byte would be served from.
    generation: u64,
}

/// The buffer cache: residency + dirty metadata under a replacement policy.
pub struct PageCache {
    capacity: usize,
    len: usize,
    pinned_len: usize,
    /// Inode number -> extent index. Entries are kept once created (even
    /// when emptied) so generation counters never restart.
    index: BTreeMap<u64, InodeIndex>,
    policy: Box<dyn ReplacementPolicy>,
    stats: CacheStats,
}

impl std::fmt::Debug for PageCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PageCache")
            .field("capacity", &self.capacity)
            .field("resident", &self.len)
            .field("policy", &self.policy.name())
            .field("stats", &self.stats)
            .finish()
    }
}

impl PageCache {
    /// Creates a cache holding at most `capacity` pages under `policy`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`: a zero-page buffer cache cannot satisfy
    /// any read and indicates a misconfigured simulation.
    pub fn new(capacity: usize, policy: PolicyKind) -> Self {
        assert!(capacity > 0, "page cache needs at least one page");
        PageCache {
            capacity,
            len: 0,
            pinned_len: 0,
            index: BTreeMap::new(),
            policy: policy.build(capacity),
            stats: CacheStats::default(),
        }
    }

    /// Creates an LRU cache, the simulator default.
    pub fn lru(capacity: usize) -> Self {
        PageCache::new(capacity, PolicyKind::Lru)
    }

    /// Maximum number of resident pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of resident pages.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no pages are resident.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current number of dirty resident pages across all inodes — the
    /// writeback debt a cache-state report shows next to residency.
    pub fn dirty_count(&self) -> u64 {
        self.index.values().map(|ix| ix.dirty.page_count()).sum()
    }

    /// The replacement policy's name, for reports.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets counters (residency is preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Non-perturbing residency probe — the cache-side half of `mincore(2)`.
    ///
    /// Does not touch the replacement policy or the hit/miss counters: this
    /// is what the kernel's SLED walk uses, and observing state must not
    /// change it.
    pub fn contains(&self, key: PageKey) -> bool {
        self.index
            .get(&key.inode)
            .is_some_and(|ix| ix.resident.contains(key.index))
    }

    /// Looks a page up on behalf of a read. Returns true on a hit (and
    /// informs the policy); counts a miss otherwise.
    pub fn lookup(&mut self, key: PageKey) -> bool {
        if self.contains(key) {
            self.policy.on_hit(key);
            self.stats.hits += 1;
            true
        } else {
            self.stats.misses += 1;
            false
        }
    }

    /// Detaches a resident page from the extent index without informing the
    /// policy (the caller has already settled with it). Returns whether the
    /// page was dirty, or None when it was not resident.
    fn detach(&mut self, key: PageKey) -> Option<bool> {
        let ix = self.index.get_mut(&key.inode)?;
        // Probe before mutating: once the priced extent set changes, every
        // path out of here must bump the generation (sledlint D010).
        if !ix.resident.contains(key.index) {
            return None;
        }
        ix.resident.remove(key.index);
        let dirty = ix.dirty.remove(key.index);
        if ix.pinned.remove(key.index) {
            self.pinned_len -= 1;
        }
        ix.generation += 1;
        self.len -= 1;
        Some(dirty)
    }

    /// Inserts a page (clean unless `dirty`), evicting if necessary.
    ///
    /// Returns the evicted page, if any, so the caller can charge a
    /// writeback for dirty victims. Inserting an already-resident page just
    /// refreshes it (and ORs the dirty bit).
    pub fn insert(&mut self, key: PageKey, dirty: bool) -> Option<Evicted> {
        if let Some(ix) = self
            .index
            .get_mut(&key.inode)
            .filter(|ix| ix.resident.contains(key.index))
        {
            if dirty {
                ix.dirty.insert(key.index);
            }
            self.policy.on_hit(key);
            return None;
        }
        let mut evicted = None;
        if self.len >= self.capacity {
            // Pinned pages are not evictable: skip them (re-inserting into
            // the policy) up to one full pass. If everything is pinned the
            // cache overflows, as mlock'd memory does — pinning reduces the
            // reclaimable set, it does not make allocation fail.
            for _ in 0..=self.len {
                match self.policy.evict() {
                    Some(victim) if self.is_pinned(victim) => {
                        self.policy.on_insert(victim);
                    }
                    Some(victim) => {
                        let was_dirty = self.detach(victim).unwrap_or(false);
                        self.stats.evictions += 1;
                        if was_dirty {
                            self.stats.dirty_evictions += 1;
                        }
                        evicted = Some(Evicted {
                            key: victim,
                            dirty: was_dirty,
                        });
                        break;
                    }
                    None => break,
                }
            }
        }
        let ix = self.index.entry(key.inode).or_default();
        ix.resident.insert(key.index);
        if dirty {
            ix.dirty.insert(key.index);
        }
        ix.generation += 1;
        self.len += 1;
        self.policy.on_insert(key);
        self.stats.insertions += 1;
        evicted
    }

    /// How many evictions until `key` would be chosen (0 = next out), when
    /// the policy can predict it. Pins are not accounted for — a pinned
    /// page's rank says where it *would* fall if unpinned.
    pub fn eviction_rank(&self, key: PageKey) -> Option<usize> {
        self.policy.eviction_rank(key)
    }

    /// Pins a resident page, exempting it from eviction until unpinned.
    /// Returns false (and pins nothing) when the page is not resident —
    /// a reservation can only hold what exists.
    pub fn pin(&mut self, key: PageKey) -> bool {
        let Some(ix) = self.index.get_mut(&key.inode) else {
            return false;
        };
        if !ix.resident.contains(key.index) {
            return false;
        }
        if ix.pinned.insert(key.index) {
            self.pinned_len += 1;
        }
        true
    }

    /// Releases a pin. No-op if not pinned.
    pub fn unpin(&mut self, key: PageKey) {
        if let Some(ix) = self.index.get_mut(&key.inode) {
            if ix.pinned.remove(key.index) {
                self.pinned_len -= 1;
            }
        }
    }

    /// True when the page is pinned.
    pub fn is_pinned(&self, key: PageKey) -> bool {
        self.index
            .get(&key.inode)
            .is_some_and(|ix| ix.pinned.contains(key.index))
    }

    /// Number of pinned pages.
    pub fn pinned_count(&self) -> usize {
        self.pinned_len
    }

    /// Marks a resident page dirty. No-op if the page is not resident.
    pub fn mark_dirty(&mut self, key: PageKey) {
        if let Some(ix) = self.index.get_mut(&key.inode) {
            if ix.resident.contains(key.index) {
                ix.dirty.insert(key.index);
            }
        }
    }

    /// True if the page is resident and dirty.
    pub fn is_dirty(&self, key: PageKey) -> bool {
        self.index
            .get(&key.inode)
            .is_some_and(|ix| ix.dirty.contains(key.index))
    }

    /// Drops a page without writeback accounting (e.g. truncate). Returns
    /// whether it was dirty.
    pub fn remove(&mut self, key: PageKey) -> Option<bool> {
        let dirty = self.detach(key)?;
        self.policy.on_remove(key);
        Some(dirty)
    }

    /// Drops every page of `inode`, returning the dirty ones (the caller
    /// decides whether they must be flushed first, as `fsync` would).
    ///
    /// Costs O(pages of this inode), not O(cache): the extent index knows
    /// exactly which pages belong to the file.
    pub fn remove_file(&mut self, inode: u64) -> Vec<PageKey> {
        let Some(ix) = self.index.get(&inode) else {
            return Vec::new();
        };
        let pages: Vec<u64> = ix.resident.iter_pages().collect();
        let mut dirty = Vec::new();
        for p in pages {
            let k = PageKey::new(inode, p);
            if self.remove(k) == Some(true) {
                dirty.push(k);
            }
        }
        dirty
    }

    /// Returns the dirty pages of `inode` without removing them (`fsync`).
    pub fn dirty_pages_of(&self, inode: u64) -> Vec<PageKey> {
        self.index
            .get(&inode)
            .map(|ix| {
                ix.dirty
                    .iter_pages()
                    .map(|p| PageKey::new(inode, p))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Marks a page clean after writeback.
    pub fn mark_clean(&mut self, key: PageKey) {
        if let Some(ix) = self.index.get_mut(&key.inode) {
            ix.dirty.remove(key.index);
        }
    }

    /// Residency bitmap for the first `npages` pages of `inode` — the whole
    /// of `mincore(2)`, and the input to the per-page reference SLED walk.
    pub fn residency(&self, inode: u64, npages: u64) -> Vec<bool> {
        let mut v = vec![false; npages as usize];
        if npages == 0 {
            return v;
        }
        for run in self.resident_runs(inode, 0..=npages - 1) {
            for p in run {
                v[p as usize] = true;
            }
        }
        v
    }

    /// The resident runs of `inode` overlapping `range` (page indices,
    /// inclusive), clipped to it, ascending. O(log runs + runs-in-range).
    pub fn resident_runs(
        &self,
        inode: u64,
        range: RangeInclusive<u64>,
    ) -> Vec<RangeInclusive<u64>> {
        self.index
            .get(&inode)
            .map(|ix| ix.resident.runs_in(range))
            .unwrap_or_default()
    }

    /// The first page index `> page` where `inode`'s residency state flips,
    /// or `u64::MAX` when it never does. O(log runs).
    pub fn next_boundary(&self, inode: u64, page: u64) -> u64 {
        self.index
            .get(&inode)
            .map(|ix| ix.resident.next_boundary(page))
            .unwrap_or(u64::MAX)
    }

    /// Number of resident runs for `inode` (0 when nothing is cached).
    pub fn resident_run_count(&self, inode: u64) -> usize {
        self.index
            .get(&inode)
            .map(|ix| ix.resident.run_count())
            .unwrap_or(0)
    }

    /// The residency generation of `inode`: bumped whenever a page of the
    /// file enters or leaves the cache. Starts at 0 for never-cached files
    /// and never restarts, so `(inode, generation)` uniquely identifies a
    /// residency state for memoization.
    pub fn generation(&self, inode: u64) -> u64 {
        self.index.get(&inode).map(|ix| ix.generation).unwrap_or(0)
    }

    /// Drops everything (unmount without writeback; test helper).
    pub fn clear(&mut self) {
        let keys: Vec<PageKey> = self
            .index
            .iter()
            .flat_map(|(&ino, ix)| ix.resident.iter_pages().map(move |p| PageKey::new(ino, p)))
            .collect();
        for k in keys {
            self.remove(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(i: u64) -> PageKey {
        PageKey::new(1, i)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let mut c = PageCache::lru(2);
        assert!(!c.lookup(key(0)));
        c.insert(key(0), false);
        assert!(c.lookup(key(0)));
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.insertions), (1, 1, 1));
    }

    #[test]
    fn dirty_count_tracks_writeback_debt() {
        let mut c = PageCache::lru(8);
        assert_eq!(c.dirty_count(), 0);
        c.insert(key(0), true);
        c.insert(key(1), false);
        c.insert(PageKey::new(2, 0), true);
        assert_eq!(c.dirty_count(), 2);
        c.mark_clean(key(0));
        assert_eq!(c.dirty_count(), 1);
        c.remove(PageKey::new(2, 0));
        assert_eq!(c.dirty_count(), 0);
    }

    #[test]
    fn generation_bumps_only_when_residency_actually_changes() {
        // Regression for the detach() restructure: removing a page that is
        // not resident must be a pure probe — no generation bump — while a
        // real removal bumps exactly once. The old code mutated the extent
        // set before discovering the page was absent on some paths, which
        // sledlint D010 flagged.
        let mut c = PageCache::lru(8);
        c.insert(key(3), true);
        let after_insert = c.generation(1);
        assert!(after_insert > 0, "insert must bump the generation");

        assert_eq!(c.remove(key(7)), None, "absent page: nothing to drop");
        assert_eq!(
            c.generation(1),
            after_insert,
            "failed probe must not bump the generation"
        );
        assert_eq!(c.remove(PageKey::new(9, 0)), None);
        assert_eq!(c.generation(9), 0, "unknown inode stays at generation 0");

        assert_eq!(c.remove(key(3)), Some(true), "resident dirty page drops");
        assert_eq!(
            c.generation(1),
            after_insert + 1,
            "real removal bumps exactly once"
        );
    }

    #[test]
    fn eviction_respects_capacity() {
        let mut c = PageCache::lru(3);
        for i in 0..10 {
            c.insert(key(i), false);
        }
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().evictions, 7);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = PageCache::lru(3);
        c.insert(key(0), false);
        c.insert(key(1), false);
        c.insert(key(2), false);
        c.lookup(key(0)); // 0 is now most recent
        let ev = c.insert(key(3), false).expect("must evict");
        assert_eq!(ev.key, key(1));
    }

    #[test]
    fn dirty_pages_reported_on_eviction() {
        let mut c = PageCache::lru(1);
        c.insert(key(0), true);
        let ev = c.insert(key(1), false).unwrap();
        assert!(ev.dirty);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn reinsert_ors_dirty_bit() {
        let mut c = PageCache::lru(2);
        c.insert(key(0), false);
        c.insert(key(0), true);
        assert!(c.is_dirty(key(0)));
        c.insert(key(0), false);
        assert!(
            c.is_dirty(key(0)),
            "dirty bit must not be cleared by clean reinsert"
        );
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn contains_does_not_perturb() {
        let mut c = PageCache::lru(2);
        c.insert(key(0), false);
        c.insert(key(1), false);
        // Probing page 0 must NOT make it recently used.
        for _ in 0..10 {
            assert!(c.contains(key(0)));
        }
        let ev = c.insert(key(2), false).unwrap();
        assert_eq!(ev.key, key(0), "contains() must not refresh LRU position");
        let s = c.stats();
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 0);
    }

    #[test]
    fn figure3_two_linear_passes_zero_hits() {
        // The paper's Figure 3: five-block file, three-block LRU cache.
        // A second linear pass gets no benefit from the first.
        let mut c = PageCache::lru(3);
        for pass in 0..2 {
            for i in 0..5 {
                if !c.lookup(key(i)) {
                    c.insert(key(i), false);
                }
            }
            if pass == 0 {
                assert_eq!(c.stats().hits, 0);
            }
        }
        assert_eq!(c.stats().hits, 0, "LRU gives a second linear pass nothing");
        assert_eq!(c.stats().misses, 10);
    }

    #[test]
    fn figure3_sleds_order_hits_cached_tail() {
        // Same setup, but the second pass reads the cached tail {2,3,4}
        // first, as the SLEDs pick library would order it.
        let mut c = PageCache::lru(3);
        for i in 0..5 {
            if !c.lookup(key(i)) {
                c.insert(key(i), false);
            }
        }
        c.reset_stats();
        for i in [2u64, 3, 4, 0, 1] {
            if !c.lookup(key(i)) {
                c.insert(key(i), false);
            }
        }
        let s = c.stats();
        assert_eq!(s.hits, 3, "the cached tail should all hit");
        assert_eq!(s.misses, 2, "only the evicted head re-reads");
    }

    #[test]
    fn remove_file_returns_dirty_pages() {
        let mut c = PageCache::lru(8);
        c.insert(PageKey::new(1, 0), true);
        c.insert(PageKey::new(1, 1), false);
        c.insert(PageKey::new(2, 0), true);
        let dirty = c.remove_file(1);
        assert_eq!(dirty, vec![PageKey::new(1, 0)]);
        assert_eq!(c.len(), 1);
        assert!(c.contains(PageKey::new(2, 0)));
    }

    #[test]
    fn residency_bitmap() {
        let mut c = PageCache::lru(8);
        c.insert(PageKey::new(1, 0), false);
        c.insert(PageKey::new(1, 2), false);
        assert_eq!(c.residency(1, 4), vec![true, false, true, false]);
    }

    #[test]
    fn dirty_tracking_and_fsync_flow() {
        let mut c = PageCache::lru(8);
        c.insert(PageKey::new(1, 0), false);
        c.mark_dirty(PageKey::new(1, 0));
        c.insert(PageKey::new(1, 1), true);
        assert_eq!(c.dirty_pages_of(1).len(), 2);
        c.mark_clean(PageKey::new(1, 0));
        assert_eq!(c.dirty_pages_of(1), vec![PageKey::new(1, 1)]);
    }

    #[test]
    #[should_panic(expected = "at least one page")]
    fn zero_capacity_panics() {
        let _ = PageCache::lru(0);
    }

    #[test]
    fn pinned_pages_survive_eviction_pressure() {
        let mut c = PageCache::lru(3);
        c.insert(key(0), false);
        assert!(c.pin(key(0)));
        for i in 1..20 {
            c.insert(key(i), false);
        }
        assert!(c.contains(key(0)), "pinned page must not be evicted");
        assert_eq!(c.len(), 3);
        c.unpin(key(0));
        for i in 20..24 {
            c.insert(key(i), false);
        }
        assert!(!c.contains(key(0)), "unpinned page becomes evictable");
    }

    #[test]
    fn pinning_nonresident_fails() {
        let mut c = PageCache::lru(2);
        assert!(!c.pin(key(9)));
        assert_eq!(c.pinned_count(), 0);
    }

    #[test]
    fn fully_pinned_cache_overflows_rather_than_fails() {
        let mut c = PageCache::lru(2);
        c.insert(key(0), false);
        c.insert(key(1), false);
        c.pin(key(0));
        c.pin(key(1));
        c.insert(key(2), false);
        assert_eq!(c.len(), 3, "mlock semantics: overflow, not failure");
        assert!(c.contains(key(0)) && c.contains(key(1)) && c.contains(key(2)));
        // Once something is unpinned, pressure drains the overflow victim.
        c.unpin(key(1));
        c.insert(key(3), false);
        assert!(!c.contains(key(1)));
    }

    #[test]
    fn remove_clears_pin() {
        let mut c = PageCache::lru(2);
        c.insert(key(0), false);
        c.pin(key(0));
        c.remove(key(0));
        assert_eq!(c.pinned_count(), 0);
    }

    #[test]
    fn resident_runs_coalesce_and_clip() {
        let mut c = PageCache::lru(32);
        for i in [0u64, 1, 2, 3, 10, 11, 30] {
            c.insert(key(i), false);
        }
        assert_eq!(c.resident_runs(1, 0..=63), vec![0..=3, 10..=11, 30..=30]);
        assert_eq!(c.resident_runs(1, 2..=10), vec![2..=3, 10..=10]);
        assert_eq!(c.resident_runs(2, 0..=63), Vec::<_>::new());
        assert_eq!(c.resident_run_count(1), 3);
    }

    #[test]
    fn next_boundary_tracks_residency_flips() {
        let mut c = PageCache::lru(32);
        for i in [4u64, 5, 6] {
            c.insert(key(i), false);
        }
        assert_eq!(c.next_boundary(1, 0), 4);
        assert_eq!(c.next_boundary(1, 4), 7);
        assert_eq!(c.next_boundary(1, 7), u64::MAX);
        assert_eq!(c.next_boundary(99, 0), u64::MAX, "unknown inode: no flips");
    }

    #[test]
    fn generation_bumps_on_residency_changes_only() {
        let mut c = PageCache::lru(4);
        assert_eq!(c.generation(1), 0);
        c.insert(key(0), false);
        let g1 = c.generation(1);
        assert!(g1 > 0);
        // Re-insert, pin, dirty: no residency change, no bump.
        c.insert(key(0), true);
        c.pin(key(0));
        c.mark_dirty(key(0));
        c.mark_clean(key(0));
        c.unpin(key(0));
        assert_eq!(c.generation(1), g1);
        // Removal bumps.
        c.remove(key(0));
        assert!(c.generation(1) > g1);
    }

    #[test]
    fn generation_survives_full_eviction() {
        let mut c = PageCache::lru(2);
        c.insert(key(0), false);
        c.insert(key(1), false);
        let g = c.generation(1);
        c.remove_file(1);
        assert!(c.is_empty());
        assert!(
            c.generation(1) > g,
            "generation must keep counting after the file leaves the cache"
        );
    }

    #[test]
    fn eviction_bumps_victims_generation() {
        let mut c = PageCache::lru(1);
        c.insert(PageKey::new(1, 0), false);
        let g = c.generation(1);
        c.insert(PageKey::new(2, 0), false); // evicts inode 1's page
        assert!(c.generation(1) > g);
    }
}
