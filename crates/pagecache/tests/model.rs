//! Model-based property tests: the LRU policy against a straightforward
//! reference implementation, and structural invariants for every policy.
//!
//! Runs under the in-repo `check` harness; enable with
//! `cargo test -p sleds-pagecache --features proptests`.

use sleds_pagecache::{PageCache, PageKey, PolicyKind};
use sleds_sim_core::{check, DetRng};

/// Operations the model exercises.
#[derive(Clone, Debug)]
enum Op {
    Lookup(u64),
    Insert(u64),
    Remove(u64),
    Pin(u64),
    Unpin(u64),
}

fn random_op(rng: &mut DetRng) -> Op {
    let k = rng.range_u64(0, 32);
    match rng.range_u64(0, 5) {
        0 => Op::Lookup(k),
        1 => Op::Insert(k),
        2 => Op::Remove(k),
        3 => Op::Pin(k),
        _ => Op::Unpin(k),
    }
}

/// A trivially-correct LRU cache: Vec ordered oldest-first.
#[derive(Default)]
struct ModelLru {
    order: Vec<u64>, // resident, oldest first
    pinned: std::collections::BTreeSet<u64>,
    capacity: usize,
}

impl ModelLru {
    fn touch(&mut self, k: u64) {
        self.order.retain(|&x| x != k);
        self.order.push(k);
    }

    fn lookup(&mut self, k: u64) -> bool {
        if self.order.contains(&k) {
            self.touch(k);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, k: u64) -> Option<u64> {
        if self.order.contains(&k) {
            self.touch(k);
            return None;
        }
        let mut evicted = None;
        if self.order.len() >= self.capacity {
            // Oldest unpinned page goes; pinned pages are skipped but keep
            // their refreshed position (mirroring the real cache, which
            // reinserts skipped pins at MRU).
            if let Some(idx) = self.order.iter().position(|x| !self.pinned.contains(x)) {
                let victim = self.order.remove(idx);
                let skipped: Vec<u64> = self.order.drain(..idx.min(self.order.len())).collect();
                for s in skipped {
                    self.order.push(s);
                }
                evicted = Some(victim);
            }
        }
        self.order.push(k);
        evicted
    }

    fn remove(&mut self, k: u64) {
        self.order.retain(|&x| x != k);
        self.pinned.remove(&k);
    }
}

/// The real LRU cache and the reference model agree on residency after
/// any op sequence (evictions compared implicitly through residency).
#[test]
fn lru_matches_reference_model() {
    check::run("lru_matches_reference_model", |rng| {
        let capacity = 8;
        let mut real = PageCache::lru(capacity);
        let mut model = ModelLru {
            capacity,
            ..Default::default()
        };
        let nops = rng.range_usize(0, 200);
        for _ in 0..nops {
            match random_op(rng) {
                Op::Lookup(k) => {
                    let r = real.lookup(PageKey::new(1, k));
                    let m = model.lookup(k);
                    assert_eq!(r, m, "lookup({k})");
                }
                Op::Insert(k) => {
                    real.insert(PageKey::new(1, k), false);
                    model.insert(k);
                }
                Op::Remove(k) => {
                    real.remove(PageKey::new(1, k));
                    model.remove(k);
                }
                Op::Pin(k) => {
                    let r = real.pin(PageKey::new(1, k));
                    if r {
                        model.pinned.insert(k);
                    }
                    assert_eq!(r, model.order.contains(&k));
                }
                Op::Unpin(k) => {
                    real.unpin(PageKey::new(1, k));
                    model.pinned.remove(&k);
                }
            }
            // Residency must agree exactly.
            for k in 0u64..32 {
                assert_eq!(
                    real.contains(PageKey::new(1, k)),
                    model.order.contains(&k),
                    "residency of {k} diverged"
                );
            }
        }
    });
}

/// Structural invariants hold for every policy: capacity is respected
/// (absent pins), stats add up, and reads after insert always hit.
#[test]
fn all_policies_respect_capacity_and_stats() {
    check::run("all_policies_respect_capacity_and_stats", |rng| {
        let kind = PolicyKind::all()[rng.range_usize(0, 5)];
        let capacity = 10;
        let mut cache = PageCache::new(capacity, kind);
        let nkeys = rng.range_usize(1, 300);
        let keys: Vec<u64> = (0..nkeys).map(|_| rng.range_u64(0, 64)).collect();
        for &k in &keys {
            let key = PageKey::new(1, k);
            if !cache.lookup(key) {
                cache.insert(key, false);
            }
            assert!(
                cache.contains(key),
                "{}: just-inserted page missing",
                kind.name()
            );
            assert!(cache.len() <= capacity, "{} overflowed", kind.name());
        }
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, keys.len() as u64);
        assert_eq!(s.insertions, s.misses);
        assert!(s.evictions <= s.insertions);
    });
}

/// Dirty accounting: every dirty page is either still resident and
/// dirty, was evicted as dirty, or was explicitly cleaned/removed.
#[test]
fn dirty_pages_are_never_silently_lost() {
    check::run("dirty_pages_are_never_silently_lost", |rng| {
        let mut cache = PageCache::lru(4);
        let mut dirty_evicted = 0u64;
        let mut dirtied = std::collections::BTreeSet::new();
        let nops = rng.range_usize(1, 200);
        for _ in 0..nops {
            let k = rng.range_u64(0, 16);
            let dirty = rng.chance(0.5);
            let key = PageKey::new(1, k);
            if let Some(ev) = cache.insert(key, dirty) {
                if ev.dirty {
                    dirty_evicted += 1;
                    dirtied.remove(&ev.key.index);
                }
            }
            if dirty {
                dirtied.insert(k);
            }
        }
        let still_dirty = (0u64..16)
            .filter(|&k| cache.is_dirty(PageKey::new(1, k)))
            .count() as u64;
        assert_eq!(cache.stats().dirty_evictions, dirty_evicted);
        assert_eq!(still_dirty, dirtied.len() as u64);
    });
}

/// The extent index agrees with per-page `contains` on every inode after
/// arbitrary op sequences, and `next_boundary` marks true state changes.
#[test]
fn extent_index_matches_per_page_probes() {
    check::run("extent_index_matches_per_page_probes", |rng| {
        let mut cache = PageCache::lru(12);
        let nops = rng.range_usize(0, 250);
        for _ in 0..nops {
            match random_op(rng) {
                Op::Lookup(k) => {
                    cache.lookup(PageKey::new(1, k));
                }
                Op::Insert(k) => {
                    cache.insert(PageKey::new(1, k), rng.chance(0.3));
                }
                Op::Remove(k) => {
                    cache.remove(PageKey::new(1, k));
                }
                Op::Pin(k) => {
                    cache.pin(PageKey::new(1, k));
                }
                Op::Unpin(k) => {
                    cache.unpin(PageKey::new(1, k));
                }
            }
        }
        // Runs reported by the extent index must exactly tile the set of
        // pages that per-page probes report resident.
        let mut from_runs = vec![false; 40];
        for run in cache.resident_runs(1, 0..=39) {
            for p in run.clone() {
                assert!(!from_runs[p as usize], "overlapping runs at page {p}");
                from_runs[p as usize] = true;
            }
        }
        for k in 0u64..40 {
            assert_eq!(
                from_runs[k as usize],
                cache.contains(PageKey::new(1, k)),
                "extent/per-page disagreement at page {k}"
            );
        }
        // next_boundary always lands on a residency flip (or past the probe).
        for k in 0u64..40 {
            let b = cache.next_boundary(1, k);
            assert!(b > k, "boundary {b} not past probe {k}");
            let here = cache.contains(PageKey::new(1, k));
            for p in k..b.min(40) {
                assert_eq!(
                    cache.contains(PageKey::new(1, p)),
                    here,
                    "state flipped before boundary at {p}"
                );
            }
        }
    });
}
