//! Model-based property tests: the LRU policy against a straightforward
//! reference implementation, and structural invariants for every policy.

use proptest::prelude::*;

use sleds_pagecache::{PageCache, PageKey, PolicyKind};

/// Operations the model exercises.
#[derive(Clone, Debug)]
enum Op {
    Lookup(u64),
    Insert(u64),
    Remove(u64),
    Pin(u64),
    Unpin(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..32).prop_map(Op::Lookup),
        (0u64..32).prop_map(Op::Insert),
        (0u64..32).prop_map(Op::Remove),
        (0u64..32).prop_map(Op::Pin),
        (0u64..32).prop_map(Op::Unpin),
    ]
}

/// A trivially-correct LRU cache: Vec ordered oldest-first.
#[derive(Default)]
struct ModelLru {
    order: Vec<u64>, // resident, oldest first
    pinned: std::collections::BTreeSet<u64>,
    capacity: usize,
}

impl ModelLru {
    fn touch(&mut self, k: u64) {
        self.order.retain(|&x| x != k);
        self.order.push(k);
    }

    fn lookup(&mut self, k: u64) -> bool {
        if self.order.contains(&k) {
            self.touch(k);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, k: u64) -> Option<u64> {
        if self.order.contains(&k) {
            self.touch(k);
            return None;
        }
        let mut evicted = None;
        if self.order.len() >= self.capacity {
            // Oldest unpinned page goes; pinned pages are skipped but keep
            // their refreshed position (mirroring the real cache, which
            // reinserts skipped pins at MRU).
            if let Some(idx) = self.order.iter().position(|x| !self.pinned.contains(x)) {
                let victim = self.order.remove(idx);
                let skipped: Vec<u64> = self.order.drain(..idx.min(self.order.len())).collect();
                for s in skipped {
                    self.order.push(s);
                }
                evicted = Some(victim);
            }
        }
        self.order.push(k);
        evicted
    }

    fn remove(&mut self, k: u64) {
        self.order.retain(|&x| x != k);
        self.pinned.remove(&k);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The real LRU cache and the reference model agree on residency after
    /// any op sequence (evictions compared implicitly through residency).
    #[test]
    fn lru_matches_reference_model(ops in prop::collection::vec(op_strategy(), 0..200)) {
        let capacity = 8;
        let mut real = PageCache::lru(capacity);
        let mut model = ModelLru { capacity, ..Default::default() };
        for op in ops {
            match op {
                Op::Lookup(k) => {
                    let r = real.lookup(PageKey::new(1, k));
                    let m = model.lookup(k);
                    prop_assert_eq!(r, m, "lookup({})", k);
                }
                Op::Insert(k) => {
                    real.insert(PageKey::new(1, k), false);
                    model.insert(k);
                }
                Op::Remove(k) => {
                    real.remove(PageKey::new(1, k));
                    model.remove(k);
                }
                Op::Pin(k) => {
                    let r = real.pin(PageKey::new(1, k));
                    if r {
                        model.pinned.insert(k);
                    }
                    prop_assert_eq!(r, model.order.contains(&k));
                }
                Op::Unpin(k) => {
                    real.unpin(PageKey::new(1, k));
                    model.pinned.remove(&k);
                }
            }
            // Residency must agree exactly.
            for k in 0u64..32 {
                prop_assert_eq!(
                    real.contains(PageKey::new(1, k)),
                    model.order.contains(&k),
                    "residency of {} diverged", k
                );
            }
        }
    }

    /// Structural invariants hold for every policy: capacity is respected
    /// (absent pins), stats add up, and reads after insert always hit.
    #[test]
    fn all_policies_respect_capacity_and_stats(
        kind_idx in 0usize..5,
        keys in prop::collection::vec(0u64..64, 1..300),
    ) {
        let kind = PolicyKind::all()[kind_idx];
        let capacity = 10;
        let mut cache = PageCache::new(capacity, kind);
        for &k in &keys {
            let key = PageKey::new(1, k);
            if !cache.lookup(key) {
                cache.insert(key, false);
            }
            prop_assert!(cache.contains(key), "{}: just-inserted page missing", kind.name());
            prop_assert!(cache.len() <= capacity, "{} overflowed", kind.name());
        }
        let s = cache.stats();
        prop_assert_eq!(s.hits + s.misses, keys.len() as u64);
        prop_assert_eq!(s.insertions, s.misses);
        prop_assert!(s.evictions <= s.insertions);
    }

    /// Dirty accounting: every dirty page is either still resident and
    /// dirty, was evicted as dirty, or was explicitly cleaned/removed.
    #[test]
    fn dirty_pages_are_never_silently_lost(
        ops in prop::collection::vec((0u64..16, prop::bool::ANY), 1..200),
    ) {
        let mut cache = PageCache::lru(4);
        let mut dirty_evicted = 0u64;
        let mut dirtied = std::collections::BTreeSet::new();
        for (k, dirty) in ops {
            let key = PageKey::new(1, k);
            if let Some(ev) = cache.insert(key, dirty) {
                if ev.dirty {
                    dirty_evicted += 1;
                    dirtied.remove(&ev.key.index);
                }
            }
            if dirty {
                dirtied.insert(k);
            }
        }
        let still_dirty = (0u64..16)
            .filter(|&k| cache.is_dirty(PageKey::new(1, k)))
            .count() as u64;
        prop_assert_eq!(cache.stats().dirty_evictions, dirty_evicted);
        prop_assert_eq!(still_dirty, dirtied.len() as u64);
    }
}
