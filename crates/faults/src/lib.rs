//! Deterministic fault injection for the storage stack.
//!
//! Real devices fail: commands bounce (`EAGAIN`-class transients), service
//! times balloon (a scrubbing disk, a congested NFS link), and whole devices
//! drop off the bus (a jammed tape robot, an unreachable server). The SLEDs
//! stack has to keep its latency estimates honest through all of that, so
//! this crate provides the *cause*: a [`FaultPlan`] that schedules faults on
//! the **virtual clock** — never the wall clock, never ambient randomness —
//! and per-device [`FaultInjector`]s the device models consult on every
//! command submission.
//!
//! Three fault shapes, mirroring what the retry/degradation machinery above
//! must handle:
//!
//! * **transient** — the next `budget` submissions inside the window fail
//!   with `EAGAIN` after burning a fixed fail cost; the kernel's
//!   `RetryPolicy` is expected to mask these. The first submission that
//!   succeeds after a failure pays a resubmission overhead, recorded by the
//!   device as a `Retry` phase.
//! * **degraded** — commands succeed but take `multiplier`× as long; the
//!   surplus is recorded as a `Fault` phase so spans still sum to service
//!   time.
//! * **offline** — every submission inside the window fails fast with `EIO`
//!   after a short probe cost. Not retryable: the device is gone until the
//!   window closes.
//!
//! Everything is a pure function of `(plan, command sequence, virtual
//! time)`: the same seed replays byte-identically, which is what lets the
//! fault-storm experiment diff its report in CI.

use sleds_sim_core::{DetRng, Errno, SimDuration, SimTime};

/// One scheduled fault interval on one device. Half-open: `[start, end)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultWindow {
    /// The first `budget` submissions in the window fail with `EAGAIN`.
    Transient {
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        end: SimTime,
        /// How many submissions fail before the fault clears.
        budget: u32,
        /// Virtual time burned by each failed submission.
        fail_cost: SimDuration,
    },
    /// Commands succeed but run `multiplier`× slower.
    Degraded {
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        end: SimTime,
        /// Service-time multiplier, clamped to at least 1.0.
        multiplier: f64,
    },
    /// Every submission fails fast with `EIO`.
    Offline {
        /// Window start (inclusive).
        start: SimTime,
        /// Window end (exclusive).
        end: SimTime,
        /// Virtual time burned discovering the device is gone.
        probe_cost: SimDuration,
    },
}

impl FaultWindow {
    fn start(&self) -> SimTime {
        match *self {
            FaultWindow::Transient { start, .. }
            | FaultWindow::Degraded { start, .. }
            | FaultWindow::Offline { start, .. } => start,
        }
    }

    fn end(&self) -> SimTime {
        match *self {
            FaultWindow::Transient { end, .. }
            | FaultWindow::Degraded { end, .. }
            | FaultWindow::Offline { end, .. } => end,
        }
    }

    fn active_at(&self, now: SimTime) -> bool {
        self.start() <= now && now < self.end()
    }
}

/// What the device should do with the submission it is about to serve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Decision {
    /// Serve the command. `multiplier` inflates the mechanical service time
    /// (1.0 = clean; the surplus is logged as a `Fault` phase) and `resume`
    /// is the resubmission overhead owed for recovering from an immediately
    /// preceding transient failure (logged as a `Retry` phase).
    Proceed {
        /// Service-time multiplier, always >= 1.0.
        multiplier: f64,
        /// Recovery overhead for the first post-failure success.
        resume: SimDuration,
    },
    /// Fail the submission after burning `cost` (logged as a `Fault` phase).
    Fail {
        /// Error the device surfaces (`EAGAIN` transient, `EIO` offline).
        errno: Errno,
        /// Virtual time the failed submission still consumed.
        cost: SimDuration,
    },
}

impl Decision {
    /// The clean-path decision: serve at full speed, nothing owed.
    pub const CLEAN: Decision = Decision::Proceed {
        multiplier: 1.0,
        resume: SimDuration::ZERO,
    };
}

/// Coarse device health at an instant, for SLED pricing.
///
/// Unlike [`FaultInjector::decide`], this is a pure query: it never consumes
/// transient budget, so `FSLEDS_GET` can price extents without perturbing
/// the fault sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultState {
    /// No window active: estimates need no correction.
    Healthy,
    /// Degraded window active: inflate latency, deflate bandwidth by the
    /// multiplier.
    Degraded(f64),
    /// Offline window active: extents are unavailable (infinite latency).
    Offline,
}

/// The per-device fault schedule plus its replay state.
///
/// Installed into a device model, consulted once per command submission.
/// All mutation is driven by `decide`, which the device calls in its service
/// path — identical command sequences therefore replay identical fault
/// sequences, traced or not.
#[derive(Clone, Debug, Default)]
pub struct FaultInjector {
    windows: Vec<FaultWindow>,
    /// Transient budget already consumed, indexed like `windows`.
    spent: Vec<u32>,
    /// Resubmission overhead owed to the next successful submission.
    pending_resume: SimDuration,
}

impl FaultInjector {
    fn new(mut windows: Vec<FaultWindow>) -> Self {
        windows.sort_by_key(|w| (w.start().as_nanos(), w.end().as_nanos()));
        let spent = vec![0; windows.len()];
        FaultInjector {
            windows,
            spent,
            pending_resume: SimDuration::ZERO,
        }
    }

    /// Decides the fate of a command submitted at `now`.
    ///
    /// Priority: offline beats transient beats degraded — a device that is
    /// off the bus cannot also limp. Transient failures consume window
    /// budget and arm the `Retry`-phase resume overhead.
    pub fn decide(&mut self, now: SimTime) -> Decision {
        // Offline dominates: fail fast, keep transient budget untouched.
        for w in &self.windows {
            if let FaultWindow::Offline { probe_cost, .. } = *w {
                if w.active_at(now) {
                    return Decision::Fail {
                        errno: Errno::Eio,
                        cost: probe_cost,
                    };
                }
            }
        }
        for (i, w) in self.windows.iter().enumerate() {
            if let FaultWindow::Transient {
                budget, fail_cost, ..
            } = *w
            {
                if w.active_at(now) && self.spent[i] < budget {
                    self.spent[i] += 1;
                    // Recovery costs half of what failing did: the retried
                    // command re-arbitrates the bus but skips the timeout.
                    self.pending_resume = fail_cost / 2;
                    return Decision::Fail {
                        errno: Errno::Eagain,
                        cost: fail_cost,
                    };
                }
            }
        }
        let resume = self.pending_resume;
        self.pending_resume = SimDuration::ZERO;
        let mut multiplier = 1.0f64;
        for w in &self.windows {
            if let FaultWindow::Degraded { multiplier: m, .. } = *w {
                if w.active_at(now) {
                    multiplier = multiplier.max(m.max(1.0));
                }
            }
        }
        Decision::Proceed { multiplier, resume }
    }

    /// Coarse health at `now`, without consuming any budget.
    pub fn state(&self, now: SimTime) -> FaultState {
        let mut degraded = 1.0f64;
        for w in &self.windows {
            if !w.active_at(now) {
                continue;
            }
            match *w {
                FaultWindow::Offline { .. } => return FaultState::Offline,
                FaultWindow::Degraded { multiplier, .. } => {
                    degraded = degraded.max(multiplier.max(1.0));
                }
                FaultWindow::Transient { .. } => {}
            }
        }
        if degraded > 1.0 {
            FaultState::Degraded(degraded)
        } else {
            FaultState::Healthy
        }
    }

    /// Fault epoch at `now`: the number of window boundaries (starts and
    /// ends) at or before `now`.
    ///
    /// Monotone in `now` and pure, so the kernel can fold it into
    /// `sled_generation` — cached SLED vectors and leases auto-invalidate
    /// whenever a device's health regime changes.
    pub fn epoch(&self, now: SimTime) -> u64 {
        let mut n = 0u64;
        for w in &self.windows {
            if w.start() <= now {
                n += 1;
            }
            if w.end() <= now {
                n += 1;
            }
        }
        n
    }

    /// The scheduled windows, sorted by start time.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }
}

/// A complete fault schedule: per-device-name window lists.
///
/// Built either explicitly (window by window, for curated scenarios) or from
/// a seed via [`FaultPlan::seeded_storm`]. Device names match the names the
/// device models report (`BlockDevice::name`).
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    // BTreeMap keeps iteration deterministic (sledlint D006).
    devices: std::collections::BTreeMap<String, Vec<FaultWindow>>,
}

impl FaultPlan {
    /// An empty plan: every device stays healthy.
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a transient window: the first `budget` submissions of `dev` in
    /// `[start, end)` fail with `EAGAIN` after burning `fail_cost` each.
    pub fn transient(
        mut self,
        dev: &str,
        start: SimTime,
        end: SimTime,
        budget: u32,
        fail_cost: SimDuration,
    ) -> Self {
        self.push(
            dev,
            FaultWindow::Transient {
                start,
                end,
                budget,
                fail_cost,
            },
        );
        self
    }

    /// Adds a degraded window: commands on `dev` in `[start, end)` take
    /// `multiplier`× as long (clamped to at least 1.0 at decision time).
    pub fn degraded(mut self, dev: &str, start: SimTime, end: SimTime, multiplier: f64) -> Self {
        self.push(
            dev,
            FaultWindow::Degraded {
                start,
                end,
                multiplier,
            },
        );
        self
    }

    /// Adds an offline window: every submission on `dev` in `[start, end)`
    /// fails fast with `EIO` after burning `probe_cost`.
    pub fn offline(
        mut self,
        dev: &str,
        start: SimTime,
        end: SimTime,
        probe_cost: SimDuration,
    ) -> Self {
        self.push(
            dev,
            FaultWindow::Offline {
                start,
                end,
                probe_cost,
            },
        );
        self
    }

    /// Generates a storm over `horizon`: each named device gets a derived,
    /// stream-split [`DetRng`] and draws 1–3 windows of mixed shape. Same
    /// seed, same device list, same horizon → bit-identical plan.
    pub fn seeded_storm(seed: u64, devices: &[&str], horizon: SimDuration) -> Self {
        let root = DetRng::new(seed);
        let mut plan = FaultPlan::new();
        let span = horizon.as_nanos().max(1);
        for (i, dev) in devices.iter().enumerate() {
            let mut rng = root.derive(i as u64);
            let n = rng.range_u64(1, 4);
            for _ in 0..n {
                let a = rng.range_u64(0, span);
                let len = rng.range_u64(span / 64 + 1, span / 8 + 2);
                let start = SimTime::from_nanos(a);
                let end = SimTime::from_nanos(a.saturating_add(len));
                let cost = SimDuration::from_micros(rng.range_u64(50, 2_000));
                plan = match rng.range_u64(0, 3) {
                    0 => {
                        let budget = u32::try_from(rng.range_u64(1, 4)).unwrap_or(1);
                        plan.transient(dev, start, end, budget, cost)
                    }
                    1 => {
                        let mult = 2.0 + rng.unit_f64() * 6.0;
                        plan.degraded(dev, start, end, mult)
                    }
                    _ => plan.offline(dev, start, end, cost),
                };
            }
        }
        plan
    }

    fn push(&mut self, dev: &str, w: FaultWindow) {
        self.devices.entry(dev.to_string()).or_default().push(w);
    }

    /// Builds the injector for `dev`, or `None` if the plan never touches
    /// it (the device then runs the zero-cost clean path).
    pub fn injector_for(&self, dev: &str) -> Option<FaultInjector> {
        self.devices
            .get(dev)
            .map(|ws| FaultInjector::new(ws.clone()))
    }

    /// Device names the plan schedules faults for, sorted.
    pub fn device_names(&self) -> impl Iterator<Item = &str> {
        self.devices.keys().map(|s| s.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: u64) -> SimTime {
        SimTime::from_nanos(secs * 1_000_000_000)
    }

    #[test]
    fn clean_injector_always_proceeds() {
        let mut inj = FaultInjector::default();
        assert_eq!(inj.decide(t(0)), Decision::CLEAN);
        assert_eq!(inj.state(t(5)), FaultState::Healthy);
        assert_eq!(inj.epoch(t(100)), 0);
    }

    #[test]
    fn transient_burns_budget_then_resumes_with_overhead() {
        let cost = SimDuration::from_millis(2);
        let plan = FaultPlan::new().transient("hda", t(1), t(10), 2, cost);
        let mut inj = plan.injector_for("hda").unwrap();
        assert_eq!(inj.decide(t(0)), Decision::CLEAN, "before the window");
        assert_eq!(
            inj.decide(t(2)),
            Decision::Fail {
                errno: Errno::Eagain,
                cost
            }
        );
        assert_eq!(
            inj.decide(t(2)),
            Decision::Fail {
                errno: Errno::Eagain,
                cost
            }
        );
        // Budget exhausted: the next submission succeeds but owes the
        // resubmission overhead exactly once.
        assert_eq!(
            inj.decide(t(3)),
            Decision::Proceed {
                multiplier: 1.0,
                resume: cost / 2
            }
        );
        assert_eq!(inj.decide(t(3)), Decision::CLEAN);
        // Transient windows never change the coarse health state.
        assert_eq!(inj.state(t(2)), FaultState::Healthy);
    }

    #[test]
    fn offline_dominates_and_preserves_transient_budget() {
        let probe = SimDuration::from_micros(300);
        let plan = FaultPlan::new()
            .transient("st0", t(0), t(20), 1, SimDuration::from_millis(1))
            .offline("st0", t(5), t(10), probe);
        let mut inj = plan.injector_for("st0").unwrap();
        assert_eq!(
            inj.decide(t(6)),
            Decision::Fail {
                errno: Errno::Eio,
                cost: probe
            }
        );
        assert_eq!(inj.state(t(6)), FaultState::Offline);
        // After the outage the transient budget is still intact.
        assert_eq!(
            inj.decide(t(12)),
            Decision::Fail {
                errno: Errno::Eagain,
                cost: SimDuration::from_millis(1)
            }
        );
    }

    #[test]
    fn degraded_multiplier_applies_and_is_clamped() {
        let plan =
            FaultPlan::new()
                .degraded("nfs", t(1), t(10), 4.0)
                .degraded("nfs", t(1), t(10), 0.5);
        let mut inj = plan.injector_for("nfs").unwrap();
        assert_eq!(
            inj.decide(t(5)),
            Decision::Proceed {
                multiplier: 4.0,
                resume: SimDuration::ZERO
            }
        );
        assert_eq!(inj.state(t(5)), FaultState::Degraded(4.0));
        assert_eq!(inj.state(t(11)), FaultState::Healthy);
    }

    #[test]
    fn epoch_counts_boundaries_monotonically() {
        let plan = FaultPlan::new().degraded("hda", t(2), t(4), 2.0).offline(
            "hda",
            t(6),
            t(8),
            SimDuration::ZERO,
        );
        let inj = plan.injector_for("hda").unwrap();
        let epochs: Vec<u64> = (0..10).map(|s| inj.epoch(t(s))).collect();
        assert_eq!(epochs, vec![0, 0, 1, 1, 2, 2, 3, 3, 4, 4]);
        for w in epochs.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn seeded_storm_is_reproducible_and_seed_sensitive() {
        let horizon = SimDuration::from_secs(100);
        let a = FaultPlan::seeded_storm(42, &["hda", "nfs", "st0"], horizon);
        let b = FaultPlan::seeded_storm(42, &["hda", "nfs", "st0"], horizon);
        for dev in ["hda", "nfs", "st0"] {
            let wa = a.injector_for(dev).unwrap();
            let wb = b.injector_for(dev).unwrap();
            assert_eq!(wa.windows(), wb.windows(), "{dev}: same seed, same plan");
            assert!(!wa.windows().is_empty());
        }
        let c = FaultPlan::seeded_storm(43, &["hda", "nfs", "st0"], horizon);
        let differs = ["hda", "nfs", "st0"]
            .iter()
            .any(|d| a.injector_for(d).unwrap().windows() != c.injector_for(d).unwrap().windows());
        assert!(differs, "different seeds should draw different storms");
    }

    #[test]
    fn plan_without_device_yields_no_injector() {
        let plan = FaultPlan::new().degraded("hda", t(0), t(1), 2.0);
        assert!(plan.injector_for("hdb").is_none());
        assert_eq!(plan.device_names().collect::<Vec<_>>(), vec!["hda"]);
    }
}
