//! Integration tests for the flight recorder: capture serialization,
//! lossless-capture guarantees, deterministic replay, and diff exactness.

use sleds_faults::FaultPlan;
use sleds_fs::{Kernel, OpenFlags, RingOp, SubmissionRing, TenantId};
use sleds_replay::{
    build_kernel, diff_captures, replay, CandidateConfig, CaptureFile, SetupStep, WorkloadSpec,
};
use sleds_sim_core::{SimDuration, SimTime, PAGE_SIZE};

/// A small but representative environment: one disk mount, one NFS
/// mount, a few files, cold caches.
fn small_spec() -> WorkloadSpec {
    let mut spec = WorkloadSpec::new("table2");
    spec.setup = vec![
        SetupStep::Mkdir { path: "/d".into() },
        SetupStep::Mkdir { path: "/n".into() },
        SetupStep::MountDisk {
            path: "/d".into(),
            model: "table2_disk".into(),
            name: "hda".into(),
        },
        SetupStep::MountNfs {
            path: "/n".into(),
            model: "table2_mount".into(),
            name: "nfs0".into(),
        },
        SetupStep::InstallSparseFile {
            path: "/d/f".into(),
            size: 16 * PAGE_SIZE,
        },
        SetupStep::InstallSparseFile {
            path: "/n/g".into(),
            size: 4 * PAGE_SIZE,
        },
        SetupStep::DropCaches,
    ];
    spec
}

/// Drives a mixed workload: two tenants with think gaps, reads on both
/// mounts, a write + fsync, metadata ops, and a submission ring.
fn drive(k: &mut Kernel) {
    let t = k.tenant_register("worker");

    let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
    k.pread(fd, 0, PAGE_SIZE as usize).unwrap();
    k.charge_cpu(SimDuration::from_nanos(2_000_000));
    k.pread(fd, 4 * PAGE_SIZE, PAGE_SIZE as usize).unwrap();
    k.stat("/d/f").unwrap();

    k.tenant_switch(t).unwrap();
    let nfd = k.open("/n/g", OpenFlags::RDONLY).unwrap();
    k.pread(nfd, 0, PAGE_SIZE as usize).unwrap();
    k.close(nfd).unwrap();

    k.tenant_switch(TenantId(0)).unwrap();
    let wfd = k.open("/d/w", OpenFlags::CREATE_RDWR).unwrap();
    k.write(wfd, &[7u8; 300]).unwrap();
    k.fsync(wfd).unwrap();
    k.close(wfd).unwrap();

    // An op that fails — the outcome (errno) must round-trip too.
    assert!(k.open("/d/missing", OpenFlags::RDONLY).is_err());

    let mut ring = SubmissionRing::new(8);
    ring.push(
        1,
        RingOp::Stat {
            path: "/d/f".into(),
        },
    )
    .unwrap();
    ring.push(
        2,
        RingOp::Pread {
            fd,
            pos: 8 * PAGE_SIZE,
            len: PAGE_SIZE as usize,
        },
    )
    .unwrap();
    k.ring_enter(&mut ring).unwrap();
    assert_eq!(k.ring_reap(&mut ring).len(), 2);

    k.close(fd).unwrap();
}

fn capture_small() -> CaptureFile {
    let spec = small_spec();
    let mut k = build_kernel(&spec).unwrap();
    k.start_capture(256);
    drive(&mut k);
    let capture = k.stop_capture().unwrap();
    assert!(capture.complete, "small workload must fit the budget");
    CaptureFile { spec, capture }
}

#[test]
fn capture_roundtrips_through_jsonl_byte_identically() {
    let file = capture_small();
    let text = file.to_jsonl();
    let parsed = CaptureFile::parse(&text).expect("parse own serialization");
    assert_eq!(parsed.to_jsonl(), text, "serialize∘parse must be identity");
}

#[test]
fn capture_is_deterministic_across_fresh_kernels() {
    let a = capture_small().to_jsonl();
    let b = capture_small().to_jsonl();
    assert_eq!(a, b, "same workload on fresh kernels ⇒ identical capture");
}

#[test]
fn identity_replay_reproduces_the_capture_byte_for_byte() {
    let file = capture_small();
    let replayed = replay(&file, &CandidateConfig::identity()).expect("identity replay");
    assert_eq!(
        replayed.into_file().to_jsonl(),
        file.to_jsonl(),
        "identity replay must be byte-identical"
    );
}

#[test]
fn overflowed_capture_is_marked_incomplete_and_refused() {
    let spec = small_spec();
    let mut k = build_kernel(&spec).unwrap();
    k.start_capture(3);
    drive(&mut k);
    let capture = k.stop_capture().unwrap();
    assert!(!capture.complete, "budget 3 must overflow");
    let reason = capture.incomplete_reason.clone().unwrap();
    assert!(
        reason.contains("budget"),
        "reason names the overflow: {reason}"
    );

    let file = CaptureFile { spec, capture };
    // Incompleteness survives serialization...
    let parsed = CaptureFile::parse(&file.to_jsonl()).unwrap();
    assert!(!parsed.capture.complete);
    // ...and the replayer refuses it loudly.
    let err = match replay(&parsed, &CandidateConfig::identity()) {
        Err(e) => e,
        Ok(_) => panic!("incomplete capture must be refused"),
    };
    assert!(err.contains("incomplete"), "refusal names the cause: {err}");
}

#[test]
fn unsupported_call_poisons_the_capture() {
    let spec = small_spec();
    let mut k = build_kernel(&spec).unwrap();
    k.start_capture(256);
    let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
    k.pread(fd, 0, PAGE_SIZE as usize).unwrap();
    // drop_caches is a setup helper, not a replayable syscall: recording
    // must poison rather than silently skip it.
    k.drop_caches().unwrap();
    k.close(fd).unwrap();
    let capture = k.stop_capture().unwrap();
    assert!(!capture.complete, "unsupported call must poison");
    let reason = capture.incomplete_reason.unwrap();
    assert!(
        reason.contains("drop_caches"),
        "reason names the call: {reason}"
    );
}

#[test]
fn parse_rejects_unknown_schema_and_truncation() {
    let file = capture_small();
    let text = file.to_jsonl();

    let bad = text.replacen("sleds-capture-v2", "sleds-capture-v9", 1);
    assert!(CaptureFile::parse(&bad).is_err(), "unknown schema rejected");

    let mut lines: Vec<&str> = text.lines().collect();
    lines.pop();
    let truncated = lines.join("\n");
    assert!(
        CaptureFile::parse(&truncated).is_err(),
        "op-count mismatch (truncated tail) rejected"
    );
}

#[test]
fn whatif_diff_attributes_every_delta_exactly() {
    let file = capture_small();
    let horizon = file
        .capture
        .ops
        .iter()
        .map(|o| o.outcome.complete_ns)
        .max()
        .unwrap();
    let candidate = CandidateConfig {
        machine: None,
        cmd_queue_capacity: None,
        fault_plan: Some(FaultPlan::new().degraded(
            "hda",
            SimTime::from_nanos(0),
            SimTime::from_nanos(horizon * 2 + 1),
            3.0,
        )),
        hedge: None,
    };
    let replayed = replay(&file, &candidate).expect("what-if replay");
    let cand_file = replayed.into_file();
    let diff = diff_captures(&file.capture, &cand_file.capture).expect("diff");

    assert_eq!(diff.ops.len(), file.capture.ops.len());
    assert_eq!(
        diff.exact_ops,
        diff.ops.len() as u64,
        "degraded-only candidate: queue-wait + service must explain every op"
    );
    assert!(
        diff.total.d_latency_ns > 0,
        "slower disk must move total latency"
    );
    for op in &diff.ops {
        assert_eq!(
            op.residual_ns, 0,
            "op {} ({}) has unattributed latency",
            op.seq, op.call
        );
    }
    // The NFS mount is untouched by the disk fault; its class row (and
    // the ops that only touch it) must not move.
    if let Some(nfs) = diff.classes.get(&3) {
        assert_eq!(nfs.d_latency_ns, 0, "nfs class must be unmoved");
    }

    // Diffing is itself deterministic.
    let again = diff_captures(&file.capture, &cand_file.capture).expect("re-diff");
    assert_eq!(
        diff.to_json("base", "cand"),
        again.to_json("base", "cand"),
        "same inputs ⇒ byte-identical diff report"
    );
}

#[test]
fn diff_refuses_structurally_different_captures() {
    let full = capture_small();

    let spec = small_spec();
    let mut k = build_kernel(&spec).unwrap();
    k.start_capture(256);
    let fd = k.open("/d/f", OpenFlags::RDONLY).unwrap();
    k.close(fd).unwrap();
    let capture = k.stop_capture().unwrap();
    let short = CaptureFile { spec, capture };

    assert!(
        diff_captures(&full.capture, &short.capture).is_err(),
        "op-count mismatch must refuse, not zip-truncate"
    );
}

#[test]
fn candidate_machine_table_changes_cpu_pricing() {
    let file = capture_small();
    let candidate = CandidateConfig {
        machine: Some("table3".into()),
        cmd_queue_capacity: None,
        fault_plan: None,
        hedge: None,
    };
    let replayed = replay(&file, &candidate).expect("table3 replay");
    assert_eq!(replayed.spec.machine, "table3");
    let cand_file = replayed.into_file();
    assert_ne!(
        cand_file.to_jsonl(),
        file.to_jsonl(),
        "a different SLED table must reprice the workload"
    );
    // Structure still pairs: the diff engine accepts it.
    diff_captures(&file.capture, &cand_file.capture).expect("cross-table diff");
}
