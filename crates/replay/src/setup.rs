//! The reproducible environment half of a capture: machine, mounts,
//! files, tenants-to-be, faults.
//!
//! A capture records what the workload *did*; this module records what
//! the workload *ran on*, as data. Device models are named (a registry
//! of the factory constructors the examples use), so the same setup can
//! be rebuilt for the identity replay and rebuilt *differently* — other
//! queue capacity, other fault plan, other machine table — for a
//! what-if replay.

use sleds_devices::{BlockDevice, CdRomDevice, DiskDevice, NfsDevice, TapeDevice};
use sleds_faults::FaultPlan;
use sleds_fs::{HedgePolicy, Kernel, MachineConfig, VolumeLayout};

/// Disk model names [`build_disk`] accepts.
pub const DISK_MODELS: &[&str] = &["table2_disk", "table3_disk"];

/// Builds a named disk model.
pub fn build_disk(model: &str, name: &str) -> Result<DiskDevice, String> {
    match model {
        "table2_disk" => Ok(DiskDevice::table2_disk(name)),
        "table3_disk" => Ok(DiskDevice::table3_disk(name)),
        other => Err(format!("unknown disk model {other:?}")),
    }
}

/// Volume-member model names [`build_member`] accepts: every disk model
/// plus the NFS exports (the geo links are how a volume spans sites).
pub const MEMBER_MODELS: &[&str] = &[
    "table2_disk",
    "table3_disk",
    "table2_mount",
    "nfs_metro",
    "nfs_regional",
    "nfs_continental",
];

/// Builds a named volume-member model.
pub fn build_member(model: &str, name: &str) -> Result<Box<dyn BlockDevice>, String> {
    Ok(match model {
        "table2_disk" => Box::new(DiskDevice::table2_disk(name)),
        "table3_disk" => Box::new(DiskDevice::table3_disk(name)),
        "table2_mount" => Box::new(NfsDevice::table2_mount(name)),
        "nfs_metro" => Box::new(NfsDevice::metro_link(name)),
        "nfs_regional" => Box::new(NfsDevice::regional_link(name)),
        "nfs_continental" => Box::new(NfsDevice::continental_link(name)),
        other => return Err(format!("unknown member model {other:?}")),
    })
}

/// One declarative environment-construction step. Applied in order by
/// [`build_kernel`]; every step is zero-virtual-cost, exactly like the
/// setup helpers it mirrors.
#[derive(Clone, Debug, PartialEq)]
pub enum SetupStep {
    /// `mkdir(path)` before capture (zero-cost: issued outside capture).
    Mkdir {
        /// Absolute path.
        path: String,
    },
    /// Mount a disk model at `path`.
    MountDisk {
        /// Mount point.
        path: String,
        /// Model name (see [`DISK_MODELS`]).
        model: String,
        /// Device name (matches fault-plan entries).
        name: String,
    },
    /// Mount an NFS model at `path`.
    MountNfs {
        /// Mount point.
        path: String,
        /// Model name (`"table2_mount"`).
        model: String,
        /// Device name.
        name: String,
    },
    /// Mount a CD-ROM model at `path`.
    MountCdrom {
        /// Mount point.
        path: String,
        /// Model name (`"table2_drive"`).
        model: String,
        /// Device name.
        name: String,
    },
    /// Mount an HSM (staging disk + tape) at `path`.
    MountHsm {
        /// Mount point.
        path: String,
        /// Staging-disk model name.
        disk_model: String,
        /// Staging-disk device name.
        disk_name: String,
        /// Tape model name (`"dlt"`).
        tape_model: String,
        /// Tape device name.
        tape_name: String,
        /// Stage-back chunk, in pages.
        chunk_pages: u64,
    },
    /// Mount a redundant volume: a layout over named member models. The
    /// first member is the primary.
    MountVolume {
        /// Mount point.
        path: String,
        /// Redundancy layout.
        layout: VolumeLayout,
        /// `(model, name)` per member (see [`MEMBER_MODELS`]).
        members: Vec<(String, String)>,
    },
    /// Install a file with explicit contents.
    InstallFile {
        /// Absolute path.
        path: String,
        /// File bytes.
        data: Vec<u8>,
    },
    /// Install a sized file with empty (zero) contents.
    InstallSparseFile {
        /// Absolute path.
        path: String,
        /// Size in bytes.
        size: u64,
    },
    /// Pre-load a page run into the cache.
    WarmFilePages {
        /// Absolute path.
        path: String,
        /// First page index.
        first_page: u64,
        /// Page count.
        pages: u64,
    },
    /// Migrate a file to tape (optionally freeing the disk copy).
    HsmMigrate {
        /// Absolute path.
        path: String,
        /// Drop the staged disk copy.
        free: bool,
    },
    /// Drop the page cache.
    DropCaches,
}

/// The environment a capture ran in, as rebuildable data.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Machine table name: `"table2"` or `"table3"`.
    pub machine: String,
    /// Per-device command-queue telemetry retention
    /// (`MachineConfig::cmd_queue_capacity`).
    pub cmd_queue_capacity: usize,
    /// Environment steps, applied in order before the first captured op.
    pub setup: Vec<SetupStep>,
    /// Fault schedule installed after the mounts.
    pub fault_plan: FaultPlan,
    /// Hedged-read policy in force during the capture. Part of the spec
    /// because hedging changes which devices serve which reads — replay
    /// must rebuild it exactly to stay byte-identical.
    pub hedge: HedgePolicy,
}

impl WorkloadSpec {
    /// A spec on the named machine with default queue retention and an
    /// empty fault plan.
    pub fn new(machine: &str) -> WorkloadSpec {
        WorkloadSpec {
            machine: machine.to_string(),
            cmd_queue_capacity: sleds_fs::CMD_QUEUE_CAPACITY,
            setup: Vec::new(),
            fault_plan: FaultPlan::new(),
            hedge: HedgePolicy::default(),
        }
    }

    /// The machine config this spec names.
    pub fn machine_config(&self) -> Result<MachineConfig, String> {
        let mut cfg = match self.machine.as_str() {
            "table2" => MachineConfig::table2(),
            "table3" => MachineConfig::table3(),
            other => return Err(format!("unknown machine table {other:?}")),
        };
        cfg.cmd_queue_capacity = self.cmd_queue_capacity;
        cfg.hedge = self.hedge;
        Ok(cfg)
    }
}

/// What a what-if replay changes relative to the captured spec. `None`
/// fields keep the captured value; the identity replay is the all-`None`
/// candidate.
#[derive(Clone, Debug, Default)]
pub struct CandidateConfig {
    /// Replace the machine table (`"table2"`/`"table3"` — a different
    /// SLED pricing table).
    pub machine: Option<String>,
    /// Replace the per-device command-queue telemetry retention.
    pub cmd_queue_capacity: Option<usize>,
    /// Replace the fault schedule.
    pub fault_plan: Option<FaultPlan>,
    /// Replace the hedged-read policy (e.g. `HedgePolicy::disabled()`
    /// asks "what if we had not hedged?").
    pub hedge: Option<HedgePolicy>,
}

impl CandidateConfig {
    /// The identity candidate: replay against exactly the captured spec.
    pub fn identity() -> CandidateConfig {
        CandidateConfig::default()
    }

    /// The captured spec with this candidate's overrides applied.
    pub fn apply(&self, spec: &WorkloadSpec) -> WorkloadSpec {
        let mut out = spec.clone();
        if let Some(m) = &self.machine {
            out.machine = m.clone();
        }
        if let Some(c) = self.cmd_queue_capacity {
            out.cmd_queue_capacity = c;
        }
        if let Some(p) = &self.fault_plan {
            out.fault_plan = p.clone();
        }
        if let Some(h) = self.hedge {
            out.hedge = h;
        }
        out
    }
}

/// Boots a kernel and applies every setup step plus the fault plan, in
/// spec order. Deterministic: the same spec always yields a kernel in
/// the same state at the same virtual time (zero — setup charges
/// nothing).
pub fn build_kernel(spec: &WorkloadSpec) -> Result<Kernel, String> {
    let cfg = spec.machine_config()?;
    let mut k = Kernel::new(cfg);
    for step in &spec.setup {
        apply_step(&mut k, step).map_err(|e| format!("setup {step:?}: {e}"))?;
    }
    k.apply_fault_plan(&spec.fault_plan);
    Ok(k)
}

fn apply_step(k: &mut Kernel, step: &SetupStep) -> Result<(), String> {
    let fail = |e: sleds_sim_core::SimError| e.to_string();
    match step {
        SetupStep::Mkdir { path } => k.mkdir(path).map_err(fail),
        SetupStep::MountDisk { path, model, name } => k
            .mount_disk(path, build_disk(model, name)?)
            .map(|_| ())
            .map_err(fail),
        SetupStep::MountNfs { path, model, name } => match model.as_str() {
            "table2_mount" => k
                .mount_nfs(path, NfsDevice::table2_mount(name.as_str()))
                .map(|_| ())
                .map_err(fail),
            other => Err(format!("unknown nfs model {other:?}")),
        },
        SetupStep::MountCdrom { path, model, name } => match model.as_str() {
            "table2_drive" => k
                .mount_cdrom(path, CdRomDevice::table2_drive(name.as_str()))
                .map(|_| ())
                .map_err(fail),
            other => Err(format!("unknown cdrom model {other:?}")),
        },
        SetupStep::MountHsm {
            path,
            disk_model,
            disk_name,
            tape_model,
            tape_name,
            chunk_pages,
        } => {
            let disk = build_disk(disk_model, disk_name)?;
            let tape: Box<dyn sleds_devices::BlockDevice> = match tape_model.as_str() {
                "dlt" => Box::new(TapeDevice::dlt(tape_name.as_str())),
                other => return Err(format!("unknown tape model {other:?}")),
            };
            k.mount_hsm(path, disk, tape, *chunk_pages)
                .map(|_| ())
                .map_err(fail)
        }
        SetupStep::MountVolume {
            path,
            layout,
            members,
        } => {
            let mut devs: Vec<Box<dyn BlockDevice>> = Vec::new();
            for (model, name) in members {
                devs.push(build_member(model, name)?);
            }
            k.mount_volume(path, *layout, devs)
                .map(|_| ())
                .map_err(fail)
        }
        SetupStep::InstallFile { path, data } => k.install_file(path, data).map_err(fail),
        SetupStep::InstallSparseFile { path, size } => {
            k.install_sparse_file(path, *size).map_err(fail)
        }
        SetupStep::WarmFilePages {
            path,
            first_page,
            pages,
        } => k.warm_file_pages(path, *first_page, *pages).map_err(fail),
        SetupStep::HsmMigrate { path, free } => k.hsm_migrate(path, *free).map_err(fail),
        SetupStep::DropCaches => k.drop_caches().map_err(fail),
    }
}
