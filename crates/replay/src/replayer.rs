//! The deterministic replayer: re-issues a captured workload on the
//! virtual clock against a candidate kernel configuration.
//!
//! Replay preserves what the application controlled — per-tenant submit
//! order and think-time gaps — and lets the kernel re-derive everything
//! it controls: queue waits, service times, cache hits, fault retries.
//! Before each op the replayer switches to the op's tenant and charges
//! the *original* gap between the tenant's previous completion and this
//! submit as CPU think time; the candidate kernel then prices the op
//! itself. Under the identity candidate every charge lands on the same
//! nanosecond, so the re-capture is byte-identical to the original —
//! the pinned determinism property.
//!
//! Incomplete captures (`complete: false`) are refused loudly: an
//! overflowed or poisoned capture can never be silently replayed.

use std::collections::BTreeMap;

use sleds_fs::{
    Capture, CapturedCall, CapturedOp, Fd, Kernel, OpenFlags, RingOp, SubmissionRing, TenantId,
    Whence, WHENCE_CUR, WHENCE_END, WHENCE_SET,
};
use sleds_sim_core::SimDuration;

use crate::file::CaptureFile;
use crate::setup::{build_kernel, CandidateConfig, WorkloadSpec};

/// A finished replay: the candidate spec it ran under, the re-captured
/// workload (same shape as the original — diff them), and the kernel it
/// ran on (for saturation reports or further inspection).
pub struct Replayed {
    /// The spec the replay actually ran under (captured spec with the
    /// candidate's overrides applied).
    pub spec: WorkloadSpec,
    /// The re-captured workload.
    pub capture: Capture,
    /// The post-replay kernel.
    pub kernel: Kernel,
}

impl Replayed {
    /// Repackages as a capture file — serialize it to byte-compare with
    /// the original for the identity property.
    pub fn into_file(self) -> CaptureFile {
        CaptureFile {
            spec: self.spec,
            capture: self.capture,
        }
    }
}

/// Replays `file` against `candidate`'s overrides of its spec.
///
/// Errors on incomplete captures, on specs that cannot be rebuilt, and
/// on structural divergence (an op whose success/failure or returned fd
/// differs from the capture — later fd-based ops would dereference the
/// wrong file, so replay stops loudly instead).
pub fn replay(file: &CaptureFile, candidate: &CandidateConfig) -> Result<Replayed, String> {
    if !file.capture.complete {
        let why = file
            .capture
            .incomplete_reason
            .as_deref()
            .unwrap_or("no reason recorded");
        return Err(format!(
            "refusing to replay an incomplete capture ({why}); \
             re-capture with a larger budget or without unsupported calls"
        ));
    }
    let spec = candidate.apply(&file.spec);
    let mut k = build_kernel(&spec)?;
    // Same budget as the original so the re-captured header (and thus
    // the identity byte-comparison) lines up.
    k.start_capture(file.capture.budget);

    // Per-tenant original completion times: the basis for think gaps.
    // Tenant 0 ("main") starts at the original capture-arm instant —
    // setup work before the capture is not think time.
    let mut prev_complete: BTreeMap<u64, u64> = BTreeMap::new();
    prev_complete.insert(0, file.capture.base_ns);

    for op in &file.capture.ops {
        k.tenant_switch(TenantId(op.tenant))
            .map_err(|e| format!("op {}: {e}", op.seq))?;
        let prev = prev_complete.get(&op.tenant).copied().unwrap_or(0);
        let gap = op.submit_ns.saturating_sub(prev);
        if gap > 0 {
            k.charge_cpu(SimDuration::from_nanos(gap));
        }
        replay_op(&mut k, op, &mut prev_complete)?;
        prev_complete.insert(op.tenant, op.outcome.complete_ns);
    }

    let capture = k
        .stop_capture()
        .ok_or_else(|| "replay recorder vanished mid-run".to_string())?;
    if !capture.complete {
        let why = capture
            .incomplete_reason
            .as_deref()
            .unwrap_or("no reason recorded");
        return Err(format!("replay re-capture went incomplete ({why})"));
    }
    Ok(Replayed {
        spec,
        capture,
        kernel: k,
    })
}

/// Checks that an op's replayed success/failure matches the capture.
fn expect_ok<T>(
    op: &CapturedOp,
    r: Result<T, sleds_sim_core::SimError>,
) -> Result<Option<T>, String> {
    match (r, op.outcome.ok) {
        (Ok(v), true) => Ok(Some(v)),
        (Err(_), false) => Ok(None),
        (Ok(_), false) => Err(format!(
            "op {} ({}): succeeded in replay but failed in capture",
            op.seq,
            op.call.name()
        )),
        (Err(e), true) => Err(format!(
            "op {} ({}): failed in replay ({e}) but succeeded in capture",
            op.seq,
            op.call.name()
        )),
    }
}

fn parse_whence(w: u8) -> Result<Whence, String> {
    match w {
        WHENCE_SET => Ok(Whence::Set),
        WHENCE_CUR => Ok(Whence::Cur),
        WHENCE_END => Ok(Whence::End),
        other => Err(format!("unknown whence code {other}")),
    }
}

fn ring_op_of(call: &CapturedCall) -> Result<RingOp, String> {
    match call {
        CapturedCall::Open { path, flags } => Ok(RingOp::Open {
            path: path.clone(),
            flags: *flags,
        }),
        CapturedCall::Close { fd } => Ok(RingOp::Close { fd: Fd(*fd) }),
        CapturedCall::Pread { fd, pos, len } => Ok(RingOp::Pread {
            fd: Fd(*fd),
            pos: *pos,
            len: *len as usize,
        }),
        CapturedCall::Stat { path } => Ok(RingOp::Stat { path: path.clone() }),
        other => Err(format!("unreplayable ring op {:?}", other.name())),
    }
}

fn replay_op(
    k: &mut Kernel,
    op: &CapturedOp,
    prev_complete: &mut BTreeMap<u64, u64>,
) -> Result<(), String> {
    match &op.call {
        CapturedCall::TenantRegister { name } => {
            let t = k.tenant_register(name);
            if t.0 != op.outcome.ret {
                return Err(format!(
                    "op {}: tenant_register produced id {} (capture had {})",
                    op.seq, t.0, op.outcome.ret
                ));
            }
            // The new tenant's clock parks at the registration instant;
            // its first op's think gap is measured from there.
            prev_complete.insert(t.0, op.outcome.complete_ns);
            Ok(())
        }
        CapturedCall::Open { path, flags } => {
            let flags: OpenFlags = *flags;
            if let Some(fd) = expect_ok(op, k.open(path, flags))? {
                if fd.0 != op.outcome.ret {
                    return Err(format!(
                        "op {}: open({path:?}) returned fd {} (capture had {})",
                        op.seq, fd.0, op.outcome.ret
                    ));
                }
            }
            Ok(())
        }
        CapturedCall::Close { fd } => expect_ok(op, k.close(Fd(*fd))).map(|_| ()),
        CapturedCall::Lseek { fd, offset, whence } => {
            let w = parse_whence(*whence)?;
            expect_ok(op, k.lseek(Fd(*fd), *offset, w)).map(|_| ())
        }
        CapturedCall::Read { fd, len } => expect_ok(op, k.read(Fd(*fd), *len as usize)).map(|_| ()),
        CapturedCall::Pread { fd, pos, len } => {
            expect_ok(op, k.pread(Fd(*fd), *pos, *len as usize)).map(|_| ())
        }
        CapturedCall::Write { fd, data } => expect_ok(op, k.write(Fd(*fd), data)).map(|_| ()),
        CapturedCall::Fsync { fd } => expect_ok(op, k.fsync(Fd(*fd))).map(|_| ()),
        CapturedCall::Stat { path } => expect_ok(op, k.stat(path)).map(|_| ()),
        CapturedCall::Fstat { fd } => expect_ok(op, k.fstat(Fd(*fd))).map(|_| ()),
        CapturedCall::Mkdir { path } => expect_ok(op, k.mkdir(path)).map(|_| ()),
        CapturedCall::Readdir { path } => expect_ok(op, k.readdir(path)).map(|_| ()),
        CapturedCall::Unlink { path } => expect_ok(op, k.unlink(path)).map(|_| ()),
        CapturedCall::RingEnter { capacity, ops } => {
            let mut ring = SubmissionRing::with_tenant(*capacity as usize, TenantId(op.tenant));
            for r in ops {
                let rop = ring_op_of(&r.call).map_err(|e| format!("op {}: {e}", op.seq))?;
                ring.push(r.user_data, rop)
                    .map_err(|e| format!("op {}: ring push: {e}", op.seq))?;
            }
            expect_ok(op, k.ring_enter(&mut ring))?;
            k.ring_reap(&mut ring);
            Ok(())
        }
    }
}
