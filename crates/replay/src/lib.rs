//! Workload flight recorder: lossless capture, deterministic replay,
//! and what-if latency diffing.
//!
//! The trace ring answers "what just happened" and drops oldest under
//! pressure; this crate answers "what would have happened" and refuses
//! to lose anything. A [`sleds_fs::WorkloadRecorder`] armed via
//! `Kernel::start_capture` records every kernel entry losslessly (or
//! marks the capture incomplete — never silently partial). This crate
//! then:
//!
//! - serializes captures to the schema-versioned `CAPTURE_*.jsonl`
//!   format ([`file::CaptureFile`]), environment included;
//! - replays them on the virtual clock against a candidate kernel
//!   config ([`replayer::replay`] + [`setup::CandidateConfig`]) —
//!   different SLED table, queue retention, or fault plan — preserving
//!   per-tenant submit order and think-time gaps;
//! - diffs original against replayed completion times with exact
//!   per-phase attribution ([`diff::diff_captures`]), emitting
//!   `results/REPLAY_diff.json`.
//!
//! The identity property — replaying under the captured config
//! reproduces the capture byte for byte — is pinned by the fs crate's
//! determinism suite.
#![warn(missing_docs)]

pub mod diff;
pub mod file;
pub mod json;
pub mod replayer;
pub mod setup;

pub use diff::{class_name, diff_captures, GroupDelta, OpDelta, ReplayDiff, DIFF_SCHEMA};
pub use file::CaptureFile;
pub use replayer::{replay, Replayed};
pub use setup::{build_disk, build_kernel, CandidateConfig, SetupStep, WorkloadSpec, DISK_MODELS};
