//! The schema-versioned on-disk capture format: `CAPTURE_*.jsonl`.
//!
//! Line 1 is the header — schema tag, completeness verdict, machine and
//! queue configuration, setup steps, fault plan. Every following line is
//! one captured op, in global capture order. The format is deterministic
//! (BTreeMap-backed, integers in decimal, the one `f64` as IEEE bits),
//! so byte-comparing two capture files *is* the identity property.

use std::fmt::Write as _;

use sleds_faults::{FaultPlan, FaultWindow};
use sleds_fs::{
    Capture, CapturedCall, CapturedOp, CapturedRingOp, ClassCost, OpOutcome, CAPTURE_SCHEMA,
};
use sleds_sim_core::{SimDuration, SimTime};

use crate::json::{self, escape, hex_decode, hex_encode, Json};
use crate::setup::{SetupStep, WorkloadSpec};

/// A capture plus the environment it ran in — everything replay needs.
#[derive(Clone, Debug)]
pub struct CaptureFile {
    /// The rebuildable environment.
    pub spec: WorkloadSpec,
    /// The recorded workload.
    pub capture: Capture,
}

impl CaptureFile {
    /// Serializes to the JSONL format. Deterministic byte-for-byte.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        out.push_str(&header_json(&self.spec, &self.capture));
        out.push('\n');
        for op in &self.capture.ops {
            out.push_str(&op_json(op));
            out.push('\n');
        }
        out
    }

    /// Parses the JSONL format back; rejects unknown schema tags.
    pub fn parse(text: &str) -> Result<CaptureFile, String> {
        let mut lines = text.lines();
        let header_line = lines.next().ok_or_else(|| "empty capture".to_string())?;
        let header = json::parse(header_line).map_err(|e| format!("header: {e}"))?;
        let schema = header.field("schema", "header")?.as_str("schema")?;
        if schema != CAPTURE_SCHEMA {
            return Err(format!(
                "unknown capture schema {schema:?} (expected {CAPTURE_SCHEMA:?})"
            ));
        }
        let spec = parse_spec(&header)?;
        let complete = header.field("complete", "header")?.as_bool("complete")?;
        let incomplete_reason = match header.opt_field("incomplete_reason", "header")? {
            Some(v) => Some(v.as_str("incomplete_reason")?.to_string()),
            None => None,
        };
        let budget = header.field("budget", "header")?.as_usize("budget")?;
        let base_ns = header.field("base_ns", "header")?.as_u64("base_ns")?;
        let declared_ops = header.field("ops", "header")?.as_usize("ops")?;
        let mut ops = Vec::new();
        for (i, line) in lines.enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("op line {}: {e}", i + 2))?;
            ops.push(parse_op(&v).map_err(|e| format!("op line {}: {e}", i + 2))?);
        }
        if ops.len() != declared_ops {
            return Err(format!(
                "header declares {declared_ops} ops, file carries {}",
                ops.len()
            ));
        }
        Ok(CaptureFile {
            spec,
            capture: Capture {
                complete,
                incomplete_reason,
                budget,
                base_ns,
                ops,
            },
        })
    }
}

fn header_json(spec: &WorkloadSpec, cap: &Capture) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"schema\":\"{CAPTURE_SCHEMA}\",\"complete\":{},\"incomplete_reason\":{},\
         \"budget\":{},\"base_ns\":{},\"ops\":{},\"machine\":\"{}\",\"cmd_queue_capacity\":{},\
         \"hedge_max\":{},\"hedge_deadline_mult_bits\":{},\"hedge_cancel_ns\":{},",
        cap.complete,
        match &cap.incomplete_reason {
            Some(r) => format!("\"{}\"", escape(r)),
            None => "null".to_string(),
        },
        cap.budget,
        cap.base_ns,
        cap.ops.len(),
        escape(&spec.machine),
        spec.cmd_queue_capacity,
        spec.hedge.max_hedges,
        spec.hedge.deadline_mult.to_bits(),
        spec.hedge.cancel_cost.as_nanos(),
    );
    s.push_str("\"setup\":[");
    for (i, step) in spec.setup.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&step_json(step));
    }
    s.push_str("],\"faults\":[");
    let mut first = true;
    for dev in spec.fault_plan.device_names() {
        let Some(inj) = spec.fault_plan.injector_for(dev) else {
            continue;
        };
        if !first {
            s.push(',');
        }
        first = false;
        let _ = write!(s, "{{\"dev\":\"{}\",\"windows\":[", escape(dev));
        for (j, w) in inj.windows().iter().enumerate() {
            if j > 0 {
                s.push(',');
            }
            s.push_str(&window_json(w));
        }
        s.push_str("]}");
    }
    s.push_str("]}");
    s
}

fn window_json(w: &FaultWindow) -> String {
    match *w {
        FaultWindow::Transient {
            start,
            end,
            budget,
            fail_cost,
        } => format!(
            "{{\"kind\":\"transient\",\"start_ns\":{},\"end_ns\":{},\"budget\":{},\
             \"fail_cost_ns\":{}}}",
            start.as_nanos(),
            end.as_nanos(),
            budget,
            fail_cost.as_nanos()
        ),
        FaultWindow::Degraded {
            start,
            end,
            multiplier,
        } => format!(
            "{{\"kind\":\"degraded\",\"start_ns\":{},\"end_ns\":{},\"multiplier_bits\":{}}}",
            start.as_nanos(),
            end.as_nanos(),
            multiplier.to_bits()
        ),
        FaultWindow::Offline {
            start,
            end,
            probe_cost,
        } => format!(
            "{{\"kind\":\"offline\",\"start_ns\":{},\"end_ns\":{},\"probe_cost_ns\":{}}}",
            start.as_nanos(),
            end.as_nanos(),
            probe_cost.as_nanos()
        ),
    }
}

fn layout_json(layout: &sleds_fs::VolumeLayout) -> String {
    use sleds_fs::VolumeLayout;
    match layout {
        VolumeLayout::Mirrored => "\"layout\":\"mirrored\"".to_string(),
        VolumeLayout::Striped { stripe_pages } => {
            format!("\"layout\":\"striped\",\"stripe_pages\":{stripe_pages}")
        }
        VolumeLayout::Coded { k } => format!("\"layout\":\"coded\",\"k\":{k}"),
    }
}

fn step_json(step: &SetupStep) -> String {
    match step {
        SetupStep::Mkdir { path } => {
            format!("{{\"step\":\"mkdir\",\"path\":\"{}\"}}", escape(path))
        }
        SetupStep::MountDisk { path, model, name } => format!(
            "{{\"step\":\"mount_disk\",\"path\":\"{}\",\"model\":\"{}\",\"name\":\"{}\"}}",
            escape(path),
            escape(model),
            escape(name)
        ),
        SetupStep::MountNfs { path, model, name } => format!(
            "{{\"step\":\"mount_nfs\",\"path\":\"{}\",\"model\":\"{}\",\"name\":\"{}\"}}",
            escape(path),
            escape(model),
            escape(name)
        ),
        SetupStep::MountCdrom { path, model, name } => format!(
            "{{\"step\":\"mount_cdrom\",\"path\":\"{}\",\"model\":\"{}\",\"name\":\"{}\"}}",
            escape(path),
            escape(model),
            escape(name)
        ),
        SetupStep::MountHsm {
            path,
            disk_model,
            disk_name,
            tape_model,
            tape_name,
            chunk_pages,
        } => format!(
            "{{\"step\":\"mount_hsm\",\"path\":\"{}\",\"disk_model\":\"{}\",\
             \"disk_name\":\"{}\",\"tape_model\":\"{}\",\"tape_name\":\"{}\",\
             \"chunk_pages\":{}}}",
            escape(path),
            escape(disk_model),
            escape(disk_name),
            escape(tape_model),
            escape(tape_name),
            chunk_pages
        ),
        SetupStep::MountVolume {
            path,
            layout,
            members,
        } => {
            let mut s = format!(
                "{{\"step\":\"mount_volume\",\"path\":\"{}\",{},\"members\":[",
                escape(path),
                layout_json(layout)
            );
            for (i, (model, name)) in members.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"model\":\"{}\",\"name\":\"{}\"}}",
                    escape(model),
                    escape(name)
                );
            }
            s.push_str("]}");
            s
        }
        SetupStep::InstallFile { path, data } => format!(
            "{{\"step\":\"install_file\",\"path\":\"{}\",\"data\":\"{}\"}}",
            escape(path),
            hex_encode(data)
        ),
        SetupStep::InstallSparseFile { path, size } => format!(
            "{{\"step\":\"install_sparse_file\",\"path\":\"{}\",\"size\":{}}}",
            escape(path),
            size
        ),
        SetupStep::WarmFilePages {
            path,
            first_page,
            pages,
        } => format!(
            "{{\"step\":\"warm_file_pages\",\"path\":\"{}\",\"first_page\":{},\"pages\":{}}}",
            escape(path),
            first_page,
            pages
        ),
        SetupStep::HsmMigrate { path, free } => format!(
            "{{\"step\":\"hsm_migrate\",\"path\":\"{}\",\"free\":{}}}",
            escape(path),
            free
        ),
        SetupStep::DropCaches => "{\"step\":\"drop_caches\"}".to_string(),
    }
}

fn flags_json(flags: &sleds_fs::OpenFlags) -> String {
    let mut s = String::new();
    if flags.read {
        s.push('r');
    }
    if flags.write {
        s.push('w');
    }
    if flags.create {
        s.push('c');
    }
    if flags.truncate {
        s.push('t');
    }
    if flags.append {
        s.push('a');
    }
    s
}

fn call_json(call: &CapturedCall) -> String {
    match call {
        CapturedCall::TenantRegister { name } => format!(
            "{{\"op\":\"tenant_register\",\"name\":\"{}\"}}",
            escape(name)
        ),
        CapturedCall::Open { path, flags } => format!(
            "{{\"op\":\"open\",\"path\":\"{}\",\"flags\":\"{}\"}}",
            escape(path),
            flags_json(flags)
        ),
        CapturedCall::Close { fd } => format!("{{\"op\":\"close\",\"fd\":{fd}}}"),
        CapturedCall::Lseek { fd, offset, whence } => {
            format!("{{\"op\":\"lseek\",\"fd\":{fd},\"offset\":{offset},\"whence\":{whence}}}")
        }
        CapturedCall::Read { fd, len } => format!("{{\"op\":\"read\",\"fd\":{fd},\"len\":{len}}}"),
        CapturedCall::Pread { fd, pos, len } => {
            format!("{{\"op\":\"pread\",\"fd\":{fd},\"pos\":{pos},\"len\":{len}}}")
        }
        CapturedCall::Write { fd, data } => format!(
            "{{\"op\":\"write\",\"fd\":{fd},\"data\":\"{}\"}}",
            hex_encode(data)
        ),
        CapturedCall::Fsync { fd } => format!("{{\"op\":\"fsync\",\"fd\":{fd}}}"),
        CapturedCall::Stat { path } => {
            format!("{{\"op\":\"stat\",\"path\":\"{}\"}}", escape(path))
        }
        CapturedCall::Fstat { fd } => format!("{{\"op\":\"fstat\",\"fd\":{fd}}}"),
        CapturedCall::Mkdir { path } => {
            format!("{{\"op\":\"mkdir\",\"path\":\"{}\"}}", escape(path))
        }
        CapturedCall::Readdir { path } => {
            format!("{{\"op\":\"readdir\",\"path\":\"{}\"}}", escape(path))
        }
        CapturedCall::Unlink { path } => {
            format!("{{\"op\":\"unlink\",\"path\":\"{}\"}}", escape(path))
        }
        CapturedCall::RingEnter { capacity, ops } => {
            let mut s = format!("{{\"op\":\"ring_enter\",\"capacity\":{capacity},\"ops\":[");
            for (i, r) in ops.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"user_data\":{},\"call\":{}}}",
                    r.user_data,
                    call_json(&r.call)
                );
            }
            s.push_str("]}");
            s
        }
    }
}

fn op_json(op: &CapturedOp) -> String {
    let o = &op.outcome;
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"seq\":{},\"tenant\":{},\"submit_ns\":{},\"fault_epoch\":{},\"path\":{},\
         \"call\":{},\"outcome\":{{\"ok\":{},\"errno\":{},\"ret\":{},\"data_len\":{},\
         \"data_fold\":{},\"complete_ns\":{},\"queue_wait_ns\":{},\"service_ns\":{},\
         \"device_commands\":{},\"device_bytes\":{},\"hedges\":{},\"classes\":[",
        op.seq,
        op.tenant,
        op.submit_ns,
        op.fault_epoch,
        match &op.path {
            Some(p) => format!("\"{}\"", escape(p)),
            None => "null".to_string(),
        },
        call_json(&op.call),
        o.ok,
        match &o.errno {
            Some(e) => format!("\"{}\"", escape(e)),
            None => "null".to_string(),
        },
        o.ret,
        o.data_len,
        o.data_fold,
        o.complete_ns,
        o.queue_wait_ns,
        o.service_ns,
        o.device_commands,
        o.device_bytes,
        o.hedges,
    );
    for (i, c) in o.classes.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(
            s,
            "{{\"class\":{},\"commands\":{},\"queue_wait_ns\":{},\"service_ns\":{},\
             \"bytes\":{}}}",
            c.class, c.commands, c.queue_wait_ns, c.service_ns, c.bytes
        );
    }
    s.push_str("]}}");
    s
}

fn parse_spec(header: &Json) -> Result<WorkloadSpec, String> {
    let machine = header.field("machine", "header")?.as_str("machine")?;
    let mut spec = WorkloadSpec::new(machine);
    spec.cmd_queue_capacity = header
        .field("cmd_queue_capacity", "header")?
        .as_usize("cmd_queue_capacity")?;
    spec.hedge = sleds_fs::HedgePolicy {
        max_hedges: {
            let m = header.field("hedge_max", "header")?.as_u64("hedge_max")?;
            u32::try_from(m).map_err(|_| format!("hedge_max {m} out of range"))?
        },
        deadline_mult: f64::from_bits(
            header
                .field("hedge_deadline_mult_bits", "header")?
                .as_u64("hedge_deadline_mult_bits")?,
        ),
        cancel_cost: SimDuration::from_nanos(
            header
                .field("hedge_cancel_ns", "header")?
                .as_u64("hedge_cancel_ns")?,
        ),
    };
    for v in header.field("setup", "header")?.as_arr("setup")? {
        spec.setup.push(parse_step(v)?);
    }
    let mut plan = FaultPlan::new();
    for entry in header.field("faults", "header")?.as_arr("faults")? {
        let dev = entry.field("dev", "fault entry")?.as_str("dev")?;
        for w in entry.field("windows", "fault entry")?.as_arr("windows")? {
            plan = parse_window(plan, dev, w)?;
        }
    }
    spec.fault_plan = plan;
    Ok(spec)
}

fn parse_window(plan: FaultPlan, dev: &str, w: &Json) -> Result<FaultPlan, String> {
    let kind = w.field("kind", "window")?.as_str("kind")?;
    let start = SimTime::from_nanos(w.field("start_ns", "window")?.as_u64("start_ns")?);
    let end = SimTime::from_nanos(w.field("end_ns", "window")?.as_u64("end_ns")?);
    match kind {
        "transient" => {
            let budget = w.field("budget", "window")?.as_u64("budget")?;
            let budget =
                u32::try_from(budget).map_err(|_| format!("budget {budget} out of range"))?;
            let cost =
                SimDuration::from_nanos(w.field("fail_cost_ns", "window")?.as_u64("fail_cost_ns")?);
            Ok(plan.transient(dev, start, end, budget, cost))
        }
        "degraded" => {
            let bits = w
                .field("multiplier_bits", "window")?
                .as_u64("multiplier_bits")?;
            Ok(plan.degraded(dev, start, end, f64::from_bits(bits)))
        }
        "offline" => {
            let cost = SimDuration::from_nanos(
                w.field("probe_cost_ns", "window")?
                    .as_u64("probe_cost_ns")?,
            );
            Ok(plan.offline(dev, start, end, cost))
        }
        other => Err(format!("unknown fault window kind {other:?}")),
    }
}

fn parse_step(v: &Json) -> Result<SetupStep, String> {
    let kind = v.field("step", "setup step")?.as_str("step")?;
    let path = |key: &str| -> Result<String, String> {
        Ok(v.field(key, "setup step")?.as_str(key)?.to_string())
    };
    match kind {
        "mkdir" => Ok(SetupStep::Mkdir {
            path: path("path")?,
        }),
        "mount_disk" => Ok(SetupStep::MountDisk {
            path: path("path")?,
            model: path("model")?,
            name: path("name")?,
        }),
        "mount_nfs" => Ok(SetupStep::MountNfs {
            path: path("path")?,
            model: path("model")?,
            name: path("name")?,
        }),
        "mount_cdrom" => Ok(SetupStep::MountCdrom {
            path: path("path")?,
            model: path("model")?,
            name: path("name")?,
        }),
        "mount_hsm" => Ok(SetupStep::MountHsm {
            path: path("path")?,
            disk_model: path("disk_model")?,
            disk_name: path("disk_name")?,
            tape_model: path("tape_model")?,
            tape_name: path("tape_name")?,
            chunk_pages: v
                .field("chunk_pages", "setup step")?
                .as_u64("chunk_pages")?,
        }),
        "mount_volume" => {
            use sleds_fs::VolumeLayout;
            let layout = match v.field("layout", "setup step")?.as_str("layout")? {
                "mirrored" => VolumeLayout::Mirrored,
                "striped" => VolumeLayout::Striped {
                    stripe_pages: v
                        .field("stripe_pages", "setup step")?
                        .as_u64("stripe_pages")?,
                },
                "coded" => VolumeLayout::Coded {
                    k: {
                        let k = v.field("k", "setup step")?.as_u64("k")?;
                        u32::try_from(k).map_err(|_| format!("coded k {k} out of range"))?
                    },
                },
                other => return Err(format!("unknown volume layout {other:?}")),
            };
            let mut members = Vec::new();
            for m in v.field("members", "setup step")?.as_arr("members")? {
                members.push((
                    m.field("model", "volume member")?
                        .as_str("model")?
                        .to_string(),
                    m.field("name", "volume member")?
                        .as_str("name")?
                        .to_string(),
                ));
            }
            Ok(SetupStep::MountVolume {
                path: path("path")?,
                layout,
                members,
            })
        }
        "install_file" => Ok(SetupStep::InstallFile {
            path: path("path")?,
            data: hex_decode(v.field("data", "setup step")?.as_str("data")?)?,
        }),
        "install_sparse_file" => Ok(SetupStep::InstallSparseFile {
            path: path("path")?,
            size: v.field("size", "setup step")?.as_u64("size")?,
        }),
        "warm_file_pages" => Ok(SetupStep::WarmFilePages {
            path: path("path")?,
            first_page: v.field("first_page", "setup step")?.as_u64("first_page")?,
            pages: v.field("pages", "setup step")?.as_u64("pages")?,
        }),
        "hsm_migrate" => Ok(SetupStep::HsmMigrate {
            path: path("path")?,
            free: v.field("free", "setup step")?.as_bool("free")?,
        }),
        "drop_caches" => Ok(SetupStep::DropCaches),
        other => Err(format!("unknown setup step {other:?}")),
    }
}

fn parse_flags(s: &str) -> Result<sleds_fs::OpenFlags, String> {
    let mut flags = sleds_fs::OpenFlags::default();
    for c in s.chars() {
        match c {
            'r' => flags.read = true,
            'w' => flags.write = true,
            'c' => flags.create = true,
            't' => flags.truncate = true,
            'a' => flags.append = true,
            other => return Err(format!("unknown open flag {other:?}")),
        }
    }
    Ok(flags)
}

fn parse_call(v: &Json) -> Result<CapturedCall, String> {
    let op = v.field("op", "call")?.as_str("op")?;
    let fd = || -> Result<u64, String> { v.field("fd", "call")?.as_u64("fd") };
    let path =
        || -> Result<String, String> { Ok(v.field("path", "call")?.as_str("path")?.to_string()) };
    match op {
        "tenant_register" => Ok(CapturedCall::TenantRegister {
            name: v.field("name", "call")?.as_str("name")?.to_string(),
        }),
        "open" => Ok(CapturedCall::Open {
            path: path()?,
            flags: parse_flags(v.field("flags", "call")?.as_str("flags")?)?,
        }),
        "close" => Ok(CapturedCall::Close { fd: fd()? }),
        "lseek" => {
            let whence = v.field("whence", "call")?.as_u64("whence")?;
            let whence =
                u8::try_from(whence).map_err(|_| format!("whence {whence} out of range"))?;
            Ok(CapturedCall::Lseek {
                fd: fd()?,
                offset: v.field("offset", "call")?.as_i64("offset")?,
                whence,
            })
        }
        "read" => Ok(CapturedCall::Read {
            fd: fd()?,
            len: v.field("len", "call")?.as_u64("len")?,
        }),
        "pread" => Ok(CapturedCall::Pread {
            fd: fd()?,
            pos: v.field("pos", "call")?.as_u64("pos")?,
            len: v.field("len", "call")?.as_u64("len")?,
        }),
        "write" => Ok(CapturedCall::Write {
            fd: fd()?,
            data: hex_decode(v.field("data", "call")?.as_str("data")?)?,
        }),
        "fsync" => Ok(CapturedCall::Fsync { fd: fd()? }),
        "stat" => Ok(CapturedCall::Stat { path: path()? }),
        "fstat" => Ok(CapturedCall::Fstat { fd: fd()? }),
        "mkdir" => Ok(CapturedCall::Mkdir { path: path()? }),
        "readdir" => Ok(CapturedCall::Readdir { path: path()? }),
        "unlink" => Ok(CapturedCall::Unlink { path: path()? }),
        "ring_enter" => {
            let mut ops = Vec::new();
            for r in v.field("ops", "call")?.as_arr("ops")? {
                ops.push(CapturedRingOp {
                    user_data: r.field("user_data", "ring op")?.as_u64("user_data")?,
                    call: parse_call(r.field("call", "ring op")?)?,
                });
            }
            Ok(CapturedCall::RingEnter {
                capacity: v.field("capacity", "call")?.as_u64("capacity")?,
                ops,
            })
        }
        other => Err(format!("unknown captured op {other:?}")),
    }
}

fn parse_op(v: &Json) -> Result<CapturedOp, String> {
    let o = v.field("outcome", "op")?;
    let mut classes = Vec::new();
    for c in o.field("classes", "outcome")?.as_arr("classes")? {
        classes.push(ClassCost {
            class: c.field("class", "class cost")?.as_u64("class")?,
            commands: c.field("commands", "class cost")?.as_u64("commands")?,
            queue_wait_ns: c
                .field("queue_wait_ns", "class cost")?
                .as_u64("queue_wait_ns")?,
            service_ns: c.field("service_ns", "class cost")?.as_u64("service_ns")?,
            bytes: c.field("bytes", "class cost")?.as_u64("bytes")?,
        });
    }
    Ok(CapturedOp {
        seq: v.field("seq", "op")?.as_u64("seq")?,
        tenant: v.field("tenant", "op")?.as_u64("tenant")?,
        submit_ns: v.field("submit_ns", "op")?.as_u64("submit_ns")?,
        fault_epoch: v.field("fault_epoch", "op")?.as_u64("fault_epoch")?,
        path: match v.opt_field("path", "op")? {
            Some(p) => Some(p.as_str("path")?.to_string()),
            None => None,
        },
        call: parse_call(v.field("call", "op")?)?,
        outcome: OpOutcome {
            ok: o.field("ok", "outcome")?.as_bool("ok")?,
            errno: match o.opt_field("errno", "outcome")? {
                Some(e) => Some(e.as_str("errno")?.to_string()),
                None => None,
            },
            ret: o.field("ret", "outcome")?.as_u64("ret")?,
            data_len: o.field("data_len", "outcome")?.as_u64("data_len")?,
            data_fold: o.field("data_fold", "outcome")?.as_u64("data_fold")?,
            complete_ns: o.field("complete_ns", "outcome")?.as_u64("complete_ns")?,
            queue_wait_ns: o
                .field("queue_wait_ns", "outcome")?
                .as_u64("queue_wait_ns")?,
            service_ns: o.field("service_ns", "outcome")?.as_u64("service_ns")?,
            device_commands: o
                .field("device_commands", "outcome")?
                .as_u64("device_commands")?,
            device_bytes: o.field("device_bytes", "outcome")?.as_u64("device_bytes")?,
            hedges: o.field("hedges", "outcome")?.as_u64("hedges")?,
            classes,
        },
    })
}
