//! Minimal, dependency-free JSON reader for capture files.
//!
//! The workspace is hermetic (no serde), so captures are written by
//! hand-rolled string building and read back by this parser. It supports
//! exactly what the capture schema emits: objects, arrays, strings,
//! integer numbers, booleans and null. All numbers in the schema are
//! integers (64-bit quantities like folds and nanosecond stamps are
//! emitted in decimal; the one `f64` in the model — a fault window's
//! degradation multiplier — travels as its IEEE bit pattern), parsed
//! into `i128` so nothing is rounded through a double.
//!
//! Everything returns `Result`: a malformed capture is a typed error,
//! never a panic (the replayer runs on the kernel path, D005).

use std::collections::BTreeMap;

/// A parsed JSON value. Numbers are integers only — see module docs.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Integer number (the schema emits nothing else).
    Int(i128),
    /// String, unescaped.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object; BTreeMap for deterministic iteration (D006).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, or an error naming `what`.
    pub fn as_obj(&self, what: &str) -> Result<&BTreeMap<String, Json>, String> {
        match self {
            Json::Obj(m) => Ok(m),
            other => Err(format!("{what}: expected object, got {other:?}")),
        }
    }

    /// The array items, or an error naming `what`.
    pub fn as_arr(&self, what: &str) -> Result<&[Json], String> {
        match self {
            Json::Arr(v) => Ok(v),
            other => Err(format!("{what}: expected array, got {other:?}")),
        }
    }

    /// The string value, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, String> {
        match self {
            Json::Str(s) => Ok(s),
            other => Err(format!("{what}: expected string, got {other:?}")),
        }
    }

    /// The boolean value, or an error naming `what`.
    pub fn as_bool(&self, what: &str) -> Result<bool, String> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(format!("{what}: expected bool, got {other:?}")),
        }
    }

    /// The integer as `u64`, or an error naming `what`.
    pub fn as_u64(&self, what: &str) -> Result<u64, String> {
        match self {
            Json::Int(n) => u64::try_from(*n).map_err(|_| format!("{what}: {n} out of u64 range")),
            other => Err(format!("{what}: expected integer, got {other:?}")),
        }
    }

    /// The integer as `i64`, or an error naming `what`.
    pub fn as_i64(&self, what: &str) -> Result<i64, String> {
        match self {
            Json::Int(n) => i64::try_from(*n).map_err(|_| format!("{what}: {n} out of i64 range")),
            other => Err(format!("{what}: expected integer, got {other:?}")),
        }
    }

    /// The integer as `usize`, or an error naming `what`.
    pub fn as_usize(&self, what: &str) -> Result<usize, String> {
        match self {
            Json::Int(n) => {
                usize::try_from(*n).map_err(|_| format!("{what}: {n} out of usize range"))
            }
            other => Err(format!("{what}: expected integer, got {other:?}")),
        }
    }

    /// Field `key` of an object, or an error naming `what`.
    pub fn field<'a>(&'a self, key: &str, what: &str) -> Result<&'a Json, String> {
        self.as_obj(what)?
            .get(key)
            .ok_or_else(|| format!("{what}: missing field {key:?}"))
    }

    /// Field `key` if present and non-null.
    pub fn opt_field<'a>(&'a self, key: &str, what: &str) -> Result<Option<&'a Json>, String> {
        Ok(self
            .as_obj(what)?
            .get(key)
            .filter(|v| !matches!(v, Json::Null)))
    }
}

/// Escapes `s` for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if u32::from(c) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", u32::from(c)));
            }
            c => out.push(c),
        }
    }
    out
}

/// Encodes bytes as lowercase hex.
pub fn hex_encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len() * 2);
    for b in data {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

/// Decodes lowercase/uppercase hex back to bytes.
pub fn hex_decode(s: &str) -> Result<Vec<u8>, String> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(2) {
        return Err(format!("hex string has odd length {}", bytes.len()));
    }
    fn nibble(b: u8) -> Result<u8, String> {
        match b {
            b'0'..=b'9' => Ok(b - b'0'),
            b'a'..=b'f' => Ok(b - b'a' + 10),
            b'A'..=b'F' => Ok(b - b'A' + 10),
            other => Err(format!("bad hex byte 0x{other:02x}")),
        }
    }
    let mut out = Vec::with_capacity(bytes.len() / 2);
    let mut i = 0;
    while i + 1 < bytes.len() {
        out.push(nibble(bytes[i])? * 16 + nibble(bytes[i + 1])?);
        i += 2;
    }
    Ok(out)
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

/// Maximum nesting depth; capture documents nest 5 levels, this bounds
/// adversarial input instead of recursing without limit.
const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        match self.bump() {
            Some(got) if got == b => Ok(()),
            Some(got) => Err(format!(
                "expected {:?} at offset {}, got {:?}",
                char::from(b),
                self.pos - 1,
                char::from(got)
            )),
            None => Err(format!("expected {:?}, got end of input", char::from(b))),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH}"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(format!(
                "unexpected byte 0x{other:02x} at offset {}",
                self.pos
            )),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Json::Obj(map)),
                _ => return Err(format!("bad object at offset {}", self.pos)),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Json::Arr(items)),
                _ => return Err(format!("bad array at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let mut code: u32 = 0;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let v = match d {
                                b'0'..=b'9' => u32::from(d - b'0'),
                                b'a'..=b'f' => u32::from(d - b'a' + 10),
                                b'A'..=b'F' => u32::from(d - b'A' + 10),
                                _ => return Err("bad \\u escape".to_string()),
                            };
                            code = code * 16 + v;
                        }
                        // The schema never emits surrogate pairs (all
                        // escapes are control bytes); reject rather than
                        // mis-decode one.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad \\u{code:04x} escape"))?,
                        );
                    }
                    _ => return Err("bad escape".to_string()),
                },
                Some(b) if b < 0x80 => out.push(char::from(b)),
                Some(b) => {
                    // Multi-byte UTF-8: find the full sequence in the
                    // original input and copy it verbatim.
                    let start = self.pos - 1;
                    let len = match b {
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        0xf0..=0xf7 => 4,
                        _ => return Err(format!("bad UTF-8 lead byte 0x{b:02x}")),
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
                None => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
            return Err(format!(
                "non-integer number at offset {start} (the capture schema emits integers only)"
            ));
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "bad number".to_string())?;
        text.parse::<i128>()
            .map(Json::Int)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = r#"{"a": [1, -2, {"b": "x\ny", "c": true}], "d": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.field("d", "doc").unwrap(), &Json::Null);
        let arr = v.field("a", "doc").unwrap().as_arr("a").unwrap();
        assert_eq!(arr[0].as_u64("n").unwrap(), 1);
        assert_eq!(arr[1].as_i64("n").unwrap(), -2);
        assert_eq!(arr[2].field("b", "o").unwrap().as_str("b").unwrap(), "x\ny");
    }

    #[test]
    fn big_u64_survives_exactly() {
        let n = u64::MAX - 3;
        let v = parse(&format!("{{\"fold\": {n}}}")).unwrap();
        assert_eq!(v.field("fold", "doc").unwrap().as_u64("fold").unwrap(), n);
    }

    #[test]
    fn floats_are_rejected() {
        assert!(parse("1.5").is_err());
        assert!(parse("1e9").is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        assert!(parse("{} x").is_err());
    }

    #[test]
    fn escape_roundtrips() {
        let s = "a\"b\\c\nd\te\u{1}f — π";
        let doc = format!("\"{}\"", escape(s));
        assert_eq!(parse(&doc).unwrap(), Json::Str(s.to_string()));
    }

    #[test]
    fn hex_roundtrips() {
        let data = [0u8, 1, 0xab, 0xff, 42];
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert!(hex_decode("abc").is_err());
        assert!(hex_decode("zz").is_err());
    }
}
