//! The what-if diff engine: pairs a base capture with a replayed one
//! and attributes every nanosecond of completion-time movement.
//!
//! Ops pair by position — replay preserves submit order, so op `i` of
//! the candidate *is* op `i` of the base, re-priced. Each pair yields a
//! completion-time delta split into queue-wait and service movement
//! (the per-op attribution PR 8's saturation observatory introduced);
//! whatever those two do not explain is the *residual* (CPU-side
//! movement — a different machine table, or fault retries burning
//! syscall time). The report totals exact ops (residual zero) so a
//! claim like "queue-wait + service deltas sum to the completion-time
//! delta" is checkable, not asserted.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use sleds_fs::{Capture, CapturedCall, LatencySummary};
use sleds_sim_core::stats::LogHistogram;

/// Schema tag for `results/REPLAY_diff.json`.
pub const DIFF_SCHEMA: &str = "sleds-replay-diff-v1";

/// How many largest-movement ops the report lists individually.
pub const TOP_MOVERS: usize = 10;

/// Device-class code → stable report name (mirrors the kernel's
/// class numbering).
pub fn class_name(code: u64) -> &'static str {
    match code {
        0 => "memory",
        1 => "disk",
        2 => "cdrom",
        3 => "network",
        4 => "tape",
        _ => "unknown",
    }
}

/// One paired op's movement, all in signed nanoseconds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OpDelta {
    /// Capture sequence number (same in both captures).
    pub seq: u64,
    /// Owning tenant.
    pub tenant: u64,
    /// Call name (`"pread"`, `"ring_enter"`, ...).
    pub call: &'static str,
    /// Resolved path, when the call had one.
    pub path: Option<String>,
    /// Base completion latency (complete − submit).
    pub base_latency_ns: u64,
    /// Candidate completion latency.
    pub cand_latency_ns: u64,
    /// Candidate − base latency.
    pub d_latency_ns: i64,
    /// Candidate − base device queue wait.
    pub d_queue_wait_ns: i64,
    /// Candidate − base device service time.
    pub d_service_ns: i64,
    /// `d_latency − d_queue_wait − d_service`: movement the device
    /// phases do not explain (CPU-side). Zero means exact attribution.
    pub residual_ns: i64,
}

/// Aggregated movement for one grouping key (tenant or device class).
#[derive(Clone, Debug, Default)]
pub struct GroupDelta {
    /// Ops in the group.
    pub ops: u64,
    /// Sum of latency deltas.
    pub d_latency_ns: i64,
    /// Sum of queue-wait deltas.
    pub d_queue_wait_ns: i64,
    /// Sum of service deltas.
    pub d_service_ns: i64,
    /// Base-side latency quantiles.
    pub base: LatencySummary,
    /// Candidate-side latency quantiles.
    pub cand: LatencySummary,
}

/// The full diff of a base capture against a candidate replay.
pub struct ReplayDiff {
    /// Paired ops in sequence order.
    pub ops: Vec<OpDelta>,
    /// Ops whose residual is exactly zero.
    pub exact_ops: u64,
    /// Whole-workload aggregate.
    pub total: GroupDelta,
    /// Per-tenant aggregates keyed by tenant id, with names.
    pub tenants: BTreeMap<u64, (String, GroupDelta)>,
    /// Per-device-class aggregates keyed by class code.
    pub classes: BTreeMap<u64, GroupDelta>,
}

struct GroupAcc {
    ops: u64,
    d_latency: i64,
    d_queue_wait: i64,
    d_service: i64,
    base_hist: LogHistogram,
    cand_hist: LogHistogram,
}

impl GroupAcc {
    fn new() -> GroupAcc {
        GroupAcc {
            ops: 0,
            d_latency: 0,
            d_queue_wait: 0,
            d_service: 0,
            base_hist: LogHistogram::new(),
            cand_hist: LogHistogram::new(),
        }
    }

    fn note(&mut self, d: &OpDelta) {
        self.ops += 1;
        self.d_latency += d.d_latency_ns;
        self.d_queue_wait += d.d_queue_wait_ns;
        self.d_service += d.d_service_ns;
        self.base_hist.record(d.base_latency_ns);
        self.cand_hist.record(d.cand_latency_ns);
    }

    fn into_group(self) -> GroupDelta {
        GroupDelta {
            ops: self.ops,
            d_latency_ns: self.d_latency,
            d_queue_wait_ns: self.d_queue_wait,
            d_service_ns: self.d_service,
            base: LatencySummary::of(&self.base_hist),
            cand: LatencySummary::of(&self.cand_hist),
        }
    }
}

fn signed_delta(cand: u64, base: u64) -> Result<i64, String> {
    let c = i64::try_from(cand).map_err(|_| format!("value {cand} overflows i64"))?;
    let b = i64::try_from(base).map_err(|_| format!("value {base} overflows i64"))?;
    Ok(c - b)
}

/// Pairs `base` against `cand` op-by-op and aggregates the movement.
///
/// Errors if the captures are structurally different (op counts, call
/// kinds, tenants) — a diff between mismatched workloads would silently
/// attribute nonsense.
pub fn diff_captures(base: &Capture, cand: &Capture) -> Result<ReplayDiff, String> {
    if base.ops.len() != cand.ops.len() {
        return Err(format!(
            "op count mismatch: base has {}, candidate has {}",
            base.ops.len(),
            cand.ops.len()
        ));
    }
    let mut tenant_names: BTreeMap<u64, String> = BTreeMap::new();
    tenant_names.insert(0, "main".to_string());

    let mut ops = Vec::with_capacity(base.ops.len());
    let mut total = GroupAcc::new();
    let mut tenants: BTreeMap<u64, GroupAcc> = BTreeMap::new();
    let mut classes: BTreeMap<u64, GroupAcc> = BTreeMap::new();
    let mut exact_ops = 0u64;

    for (b, c) in base.ops.iter().zip(cand.ops.iter()) {
        if b.call.name() != c.call.name() || b.tenant != c.tenant {
            return Err(format!(
                "op {} mismatch: base {}@tenant{}, candidate {}@tenant{}",
                b.seq,
                b.call.name(),
                b.tenant,
                c.call.name(),
                c.tenant
            ));
        }
        if let CapturedCall::TenantRegister { name } = &b.call {
            tenant_names.insert(b.outcome.ret, name.clone());
        }
        let base_latency = b.outcome.complete_ns.saturating_sub(b.submit_ns);
        let cand_latency = c.outcome.complete_ns.saturating_sub(c.submit_ns);
        let d_latency = signed_delta(cand_latency, base_latency)?;
        let d_queue_wait = signed_delta(c.outcome.queue_wait_ns, b.outcome.queue_wait_ns)?;
        let d_service = signed_delta(c.outcome.service_ns, b.outcome.service_ns)?;
        let d = OpDelta {
            seq: b.seq,
            tenant: b.tenant,
            call: b.call.name(),
            path: b.path.clone(),
            base_latency_ns: base_latency,
            cand_latency_ns: cand_latency,
            d_latency_ns: d_latency,
            d_queue_wait_ns: d_queue_wait,
            d_service_ns: d_service,
            residual_ns: d_latency - d_queue_wait - d_service,
        };
        if d.residual_ns == 0 {
            exact_ops += 1;
        }
        total.note(&d);
        tenants
            .entry(d.tenant)
            .or_insert_with(GroupAcc::new)
            .note(&d);
        // Class movement comes from the per-class cost rows, paired by
        // class code across the two outcomes.
        let mut codes: Vec<u64> = b.outcome.classes.iter().map(|x| x.class).collect();
        for x in &c.outcome.classes {
            if !codes.contains(&x.class) {
                codes.push(x.class);
            }
        }
        codes.sort_unstable();
        for code in codes {
            let bc = b.outcome.classes.iter().find(|x| x.class == code);
            let cc = c.outcome.classes.iter().find(|x| x.class == code);
            let b_q = bc.map(|x| x.queue_wait_ns).unwrap_or(0);
            let b_s = bc.map(|x| x.service_ns).unwrap_or(0);
            let c_q = cc.map(|x| x.queue_wait_ns).unwrap_or(0);
            let c_s = cc.map(|x| x.service_ns).unwrap_or(0);
            let acc = classes.entry(code).or_insert_with(GroupAcc::new);
            acc.ops += 1;
            acc.d_queue_wait += signed_delta(c_q, b_q)?;
            acc.d_service += signed_delta(c_s, b_s)?;
            acc.d_latency += signed_delta(c_q + c_s, b_q + b_s)?;
            acc.base_hist.record(b_q + b_s);
            acc.cand_hist.record(c_q + c_s);
        }
        ops.push(d);
    }

    Ok(ReplayDiff {
        ops,
        exact_ops,
        total: total.into_group(),
        tenants: tenants
            .into_iter()
            .map(|(id, acc)| {
                let name = tenant_names.get(&id).cloned().unwrap_or_default();
                (id, (name, acc.into_group()))
            })
            .collect(),
        classes: classes
            .into_iter()
            .map(|(k, v)| (k, v.into_group()))
            .collect(),
    })
}

fn summary_json(s: &LatencySummary) -> String {
    format!(
        "{{\"p50_ns\":{},\"p90_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}",
        s.p50_ns, s.p90_ns, s.p99_ns, s.p999_ns
    )
}

fn group_json(g: &GroupDelta) -> String {
    format!(
        "{{\"ops\":{},\"d_latency_ns\":{},\"d_queue_wait_ns\":{},\"d_service_ns\":{},\
         \"base\":{},\"candidate\":{}}}",
        g.ops,
        g.d_latency_ns,
        g.d_queue_wait_ns,
        g.d_service_ns,
        summary_json(&g.base),
        summary_json(&g.cand)
    )
}

impl ReplayDiff {
    /// The ops with the largest absolute latency movement, biggest
    /// first (ties broken by sequence for determinism).
    pub fn top_movers(&self, n: usize) -> Vec<&OpDelta> {
        let mut movers: Vec<&OpDelta> = self.ops.iter().collect();
        movers.sort_by(|a, b| {
            b.d_latency_ns
                .unsigned_abs()
                .cmp(&a.d_latency_ns.unsigned_abs())
                .then(a.seq.cmp(&b.seq))
        });
        movers.truncate(n);
        movers
    }

    /// Renders the report (`results/REPLAY_diff.json`). Deterministic.
    pub fn to_json(&self, base_label: &str, cand_label: &str) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\n  \"schema\": \"{DIFF_SCHEMA}\",\n  \"base\": \"{}\",\n  \
             \"candidate\": \"{}\",\n  \"ops\": {},\n  \"exact_ops\": {},\n  \
             \"residual_ops\": {},\n  \"total\": {},\n  \"tenants\": [",
            crate::json::escape(base_label),
            crate::json::escape(cand_label),
            self.ops.len(),
            self.exact_ops,
            self.ops.len() as u64 - self.exact_ops,
            group_json(&self.total),
        );
        for (i, (id, (name, g))) in self.tenants.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"tenant\":{},\"name\":\"{}\",\"delta\":{}}}",
                id,
                crate::json::escape(name),
                group_json(g)
            );
        }
        s.push_str("\n  ],\n  \"classes\": [");
        for (i, (code, g)) in self.classes.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"class\":{},\"name\":\"{}\",\"delta\":{}}}",
                code,
                class_name(*code),
                group_json(g)
            );
        }
        s.push_str("\n  ],\n  \"top_movers\": [");
        for (i, d) in self.top_movers(TOP_MOVERS).iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "\n    {{\"seq\":{},\"tenant\":{},\"call\":\"{}\",\"path\":{},\
                 \"base_latency_ns\":{},\"cand_latency_ns\":{},\"d_latency_ns\":{},\
                 \"d_queue_wait_ns\":{},\"d_service_ns\":{},\"residual_ns\":{}}}",
                d.seq,
                d.tenant,
                d.call,
                match &d.path {
                    Some(p) => format!("\"{}\"", crate::json::escape(p)),
                    None => "null".to_string(),
                },
                d.base_latency_ns,
                d.cand_latency_ns,
                d.d_latency_ns,
                d.d_queue_wait_ns,
                d.d_service_ns,
                d.residual_ns
            );
        }
        s.push_str("\n  ]\n}\n");
        s
    }
}
