//! lmbench-style calibration of the storage stack.
//!
//! The paper fills the kernel's sleds table at boot: a script in
//! `/etc/rc.d/init.d` runs lmbench against each storage device and NFS mount
//! and pushes one `(latency, bandwidth)` row per device through the
//! `FSLEDS_FILL` ioctl. This crate is that script: it measures each mounted
//! device *through the file system* (so the numbers include the same syscall
//! and copy costs applications experience — as lmbench's `lat_fs`/`bw_file_rd`
//! do) and produces the [`SledsTable`] everything else consumes.
//!
//! Nothing here peeks at device model parameters; the rows are measured, so
//! the Tables 2 and 3 reproduction is an actual experiment, not an echo of
//! configuration.

use sleds::{SledsEntry, SledsTable};
use sleds_fs::{Kernel, MountId, OpenFlags, Whence};
use sleds_sim_core::{DetRng, SimResult, PAGE_SIZE};

/// A measured `(latency, bandwidth)` pair, in seconds and bytes/second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Calibration {
    /// Latency to the first byte of a random access.
    pub latency: f64,
    /// Streaming bandwidth.
    pub bandwidth: f64,
}

/// Size of the scratch file used for device measurements.
const DEVICE_PROBE_BYTES: usize = 16 << 20;

/// Chunk size for streaming-bandwidth probes (lmbench uses 64 KiB too).
const STREAM_CHUNK: usize = 64 << 10;

/// Number of random-read probes for latency.
const LATENCY_PROBES: usize = 64;

/// Measures primary memory: the cost of delivering *cached* file data.
///
/// Uses `scratch_dir` (any writable mount) for a small probe file, which is
/// removed afterwards. Latency is the per-operation cost of a one-byte read
/// from a cached page with the syscall overhead subtracted; bandwidth is the
/// streaming rate of rereading a fully cached file.
pub fn measure_memory(kernel: &mut Kernel, scratch_dir: &str) -> SimResult<Calibration> {
    let path = format!("{scratch_dir}/__lmbench_mem");
    let bytes = 4 << 20; // comfortably smaller than the cache
    kernel.install_file(&path, &vec![0u8; bytes])?;
    let fd = kernel.open(&path, OpenFlags::RDONLY)?;
    // Warm every page.
    let mut pos = 0;
    while pos < bytes {
        pos += kernel.read(fd, STREAM_CHUNK)?.len();
    }

    // Latency: one-byte cached preads.
    let t0 = kernel.now();
    for i in 0..LATENCY_PROBES as u64 {
        kernel.pread(fd, (i * PAGE_SIZE) % bytes as u64, 1)?;
    }
    let per_op = (kernel.now() - t0).as_secs_f64() / LATENCY_PROBES as f64;
    let latency = (per_op - kernel.config().syscall_cpu.as_secs_f64()).max(0.0);

    // Bandwidth: stream the cached file.
    let t0 = kernel.now();
    let mut pos = 0u64;
    while (pos as usize) < bytes {
        pos += kernel.pread(fd, pos, STREAM_CHUNK)?.len() as u64;
    }
    let elapsed = (kernel.now() - t0).as_secs_f64();
    let bandwidth = bytes as f64 / elapsed;

    kernel.close(fd)?;
    kernel.unlink(&path)?;
    Ok(Calibration { latency, bandwidth })
}

/// Number of no-op syscalls in the boundary-crossing probe.
const CROSSING_PROBES: u64 = 256;

/// Measures the cost of one kernel boundary crossing — lmbench's
/// `lat_syscall null`: repeated no-op `lseek(fd, 0, SEEK_SET)` calls on an
/// open file, CPU divided by the count. This is the charge a ring batch
/// amortizes; `fill_table` stores it in the table's crossing row.
pub fn measure_crossing(kernel: &mut Kernel, scratch_dir: &str) -> SimResult<f64> {
    let path = format!("{scratch_dir}/__lmbench_null");
    kernel.install_file(&path, &[0u8])?;
    let fd = kernel.open(&path, OpenFlags::RDONLY)?;
    let t = kernel.start_job();
    for _ in 0..CROSSING_PROBES {
        kernel.lseek(fd, 0, Whence::Set)?;
    }
    let report = kernel.finish_job(&t);
    kernel.close(fd)?;
    kernel.unlink(&path)?;
    Ok(report.usage.cpu.as_secs_f64() / CROSSING_PROBES as f64)
}

/// Measures the device behind the mount at `dir`.
///
/// Latency comes from raw page-sized reads at random sectors across the
/// whole device, the way lmbench's disk probes seek across the full stroke;
/// bandwidth comes from a cold sequential scan of a scratch file through the
/// file system (so it includes the syscall and copy costs applications see).
/// The scratch file is removed afterwards.
pub fn measure_mount(kernel: &mut Kernel, dir: &str) -> SimResult<Calibration> {
    let mount = kernel.stat(dir)?.mount.ok_or_else(|| {
        sleds_sim_core::SimError::new(sleds_sim_core::Errno::Einval, format!("{dir}: not a mount"))
    })?;
    let dev = kernel.device_of_mount(mount).expect("mount has device");
    let cap = kernel.device_capacity(dev).expect("device registered");
    let path = format!("{dir}/__lmbench_dev");
    kernel.install_file(&path, &vec![0u8; DEVICE_PROBE_BYTES])?;
    let fd = kernel.open(&path, OpenFlags::RDONLY)?;

    // Latency: raw random page reads across the device's full stroke.
    let sectors_per_page = PAGE_SIZE / sleds_sim_core::SECTOR_SIZE;
    let mut rng = DetRng::new(0x1b_eb_c4);
    let mut total = 0.0;
    for _ in 0..LATENCY_PROBES {
        let sector = rng.range_u64(0, cap - sectors_per_page);
        let t0 = kernel.now();
        kernel.raw_device_read(dev, sector, sectors_per_page)?;
        total += (kernel.now() - t0).as_secs_f64();
    }
    let latency = total / LATENCY_PROBES as f64;

    // Bandwidth: cold sequential scan; drop the first chunk (it pays the
    // initial positioning) from the rate computation.
    kernel.drop_caches()?;
    kernel.pread(fd, 0, STREAM_CHUNK)?;
    let t0 = kernel.now();
    let mut pos = STREAM_CHUNK as u64;
    while (pos as usize) < DEVICE_PROBE_BYTES {
        pos += kernel.pread(fd, pos, STREAM_CHUNK)?.len() as u64;
    }
    let elapsed = (kernel.now() - t0).as_secs_f64();
    let bandwidth = (DEVICE_PROBE_BYTES - STREAM_CHUNK) as f64 / elapsed;

    kernel.close(fd)?;
    kernel.unlink(&path)?;
    kernel.drop_caches()?;
    Ok(Calibration { latency, bandwidth })
}

/// The boot script: measures memory plus every listed mount and returns the
/// filled sleds table (`FSLEDS_FILL`).
///
/// `mounts` pairs each mount's directory with its id; the first entry's
/// directory doubles as the scratch space for the memory probe. For HSM
/// mounts the *tape* row is filled from the tape device's nominal profile —
/// running random-read probes against a tape library at boot would be
/// antisocial, and the paper's implementation likewise keeps a configured
/// entry per device.
pub fn fill_table(kernel: &mut Kernel, mounts: &[(&str, MountId)]) -> SimResult<SledsTable> {
    let mut table = SledsTable::new();
    let scratch = mounts
        .first()
        .map(|(d, _)| *d)
        .expect("fill_table needs at least one mount");
    let mem = measure_memory(kernel, scratch)?;
    table.fill_memory(SledsEntry::new(mem.latency, mem.bandwidth));
    table.fill_crossing(measure_crossing(kernel, scratch)?);
    for (dir, mount) in mounts {
        let cal = measure_mount(kernel, dir)?;
        let dev = kernel
            .device_of_mount(*mount)
            .expect("mount id from caller");
        table.fill_device(dev, SledsEntry::new(cal.latency, cal.bandwidth));
        if let Some(tape) = kernel.tape_of_mount(*mount) {
            let profile = kernel.device_profile(tape).expect("tape device registered");
            table.fill_device(
                tape,
                SledsEntry::new(
                    profile.nominal_latency.as_secs_f64(),
                    profile.nominal_bandwidth.as_bytes_per_sec(),
                ),
            );
        }
    }
    Ok(table)
}

/// Zone-aware calibration: the paper's future-work extension.
///
/// Runs [`fill_table`], then asks each device to report its zones
/// ([`sleds_devices::BlockDevice::zone_map`]) and adds per-zone rows whose
/// bandwidths are the device's *relative* zone speeds anchored to the
/// *measured* flat bandwidth — so the syscall/copy overheads baked into the
/// measurement carry over to every zone.
pub fn fill_table_zoned(kernel: &mut Kernel, mounts: &[(&str, MountId)]) -> SimResult<SledsTable> {
    let mut table = fill_table(kernel, mounts)?;
    for (_, mount) in mounts {
        let dev = kernel
            .device_of_mount(*mount)
            .expect("mount id from caller");
        let spans = kernel.device_zone_map(dev).expect("device registered");
        if spans.len() < 2 {
            continue;
        }
        let flat = table.device(dev).expect("flat row just filled");
        let anchor = spans[0].bandwidth.as_bytes_per_sec();
        if anchor <= 0.0 {
            continue;
        }
        let scale = flat.bandwidth / anchor;
        let rows = spans
            .iter()
            .map(|z| {
                (
                    z.start_sector,
                    SledsEntry::new(flat.latency, z.bandwidth.as_bytes_per_sec() * scale),
                )
            })
            .collect();
        table.fill_device_zones(dev, rows);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_devices::{CdRomDevice, DiskDevice, NfsDevice};

    #[test]
    fn memory_row_matches_table2_model() {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        k.mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let cal = measure_memory(&mut k, "/data").unwrap();
        // Latency ~175 ns (the model's memory latency).
        assert!(
            (100e-9..400e-9).contains(&cal.latency),
            "memory latency {}",
            cal.latency
        );
        // Bandwidth ~48 MB/s.
        let mb = cal.bandwidth / 1e6;
        assert!((43.0..53.0).contains(&mb), "memory bandwidth {mb} MB/s");
    }

    #[test]
    fn crossing_probe_recovers_the_trap_cost() {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        k.mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let c = measure_crossing(&mut k, "/data").unwrap();
        let model = k.config().syscall_cpu.as_secs_f64();
        // lseek is a pure no-op in the model, so the probe recovers the
        // trap cost exactly.
        assert!((c - model).abs() < 1e-12, "crossing {c} vs model {model}");
    }

    #[test]
    fn disk_row_matches_table2() {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        k.mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let cal = measure_mount(&mut k, "/data").unwrap();
        let ms = cal.latency * 1e3;
        assert!((14.0..22.0).contains(&ms), "disk latency {ms} ms");
        let mb = cal.bandwidth / 1e6;
        assert!((7.5..10.5).contains(&mb), "disk bandwidth {mb} MB/s");
    }

    #[test]
    fn cdrom_row_matches_table2() {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        k.mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        k.mkdir("/cdrom").unwrap();
        k.mount_cdrom("/cdrom", CdRomDevice::table2_drive("cd0"))
            .unwrap();
        let cal = measure_mount(&mut k, "/cdrom").unwrap();
        let ms = cal.latency * 1e3;
        assert!((100.0..170.0).contains(&ms), "cdrom latency {ms} ms");
        let mb = cal.bandwidth / 1e6;
        assert!((2.4..3.2).contains(&mb), "cdrom bandwidth {mb} MB/s");
    }

    #[test]
    fn nfs_row_matches_table2() {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        k.mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        k.mkdir("/nfs").unwrap();
        k.mount_nfs("/nfs", NfsDevice::table2_mount("srv:/exp"))
            .unwrap();
        let cal = measure_mount(&mut k, "/nfs").unwrap();
        let ms = cal.latency * 1e3;
        assert!((240.0..300.0).contains(&ms), "nfs latency {ms} ms");
        let mb = cal.bandwidth / 1e6;
        assert!((0.9..1.15).contains(&mb), "nfs bandwidth {mb} MB/s");
    }

    #[test]
    fn fill_table_covers_all_mounts() {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        let m1 = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        k.mkdir("/nfs").unwrap();
        let m2 = k
            .mount_nfs("/nfs", NfsDevice::table2_mount("srv:/exp"))
            .unwrap();
        let table = fill_table(&mut k, &[("/data", m1), ("/nfs", m2)]).unwrap();
        assert!(table.is_filled());
        assert_eq!(table.device_count(), 2);
        let d1 = table.device(k.device_of_mount(m1).unwrap()).unwrap();
        let d2 = table.device(k.device_of_mount(m2).unwrap()).unwrap();
        assert!(d1.latency < d2.latency, "disk beats NFS on latency");
        assert!(d1.bandwidth > d2.bandwidth, "disk beats NFS on bandwidth");
    }

    #[test]
    fn zoned_table_orders_zones_and_anchors_to_measurement() {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        let m = k
            .mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        let table = fill_table_zoned(&mut k, &[("/data", m)]).unwrap();
        let dev = k.device_of_mount(m).unwrap();
        assert!(table.has_zones(dev));
        let flat = table.device(dev).unwrap();
        let outer = table.entry_at(dev, 0).unwrap();
        let cap = k.device_capacity(dev).unwrap();
        let inner = table.entry_at(dev, cap - 1).unwrap();
        // Outer zone is anchored to the measured flat bandwidth.
        assert!((outer.bandwidth - flat.bandwidth).abs() < 1.0);
        // Inner zone is slower, in proportion to the disk's geometry
        // (170/260 sectors per track for the table2 disk).
        let ratio = inner.bandwidth / outer.bandwidth;
        assert!((0.6..0.72).contains(&ratio), "zone ratio {ratio}");
        assert_eq!(outer.latency, flat.latency);
    }

    #[test]
    fn probes_clean_up_after_themselves() {
        let mut k = Kernel::table2();
        k.mkdir("/data").unwrap();
        k.mount_disk("/data", DiskDevice::table2_disk("hda"))
            .unwrap();
        measure_memory(&mut k, "/data").unwrap();
        measure_mount(&mut k, "/data").unwrap();
        assert!(k.readdir("/data").unwrap().is_empty());
        assert_eq!(k.cache_resident_pages(), 0, "caches dropped after probing");
    }
}
