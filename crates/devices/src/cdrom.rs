//! A CLV CD-ROM drive model.
//!
//! Constant-linear-velocity drives read at a fixed media rate, but seeking
//! is expensive: the sled must move and the spindle must change angular
//! velocity to keep the linear velocity constant at the new radius. The
//! model therefore charges a distance-dependent seek plus a fixed
//! re-synchronization settle for any discontiguous access, and nothing but
//! transfer time for sequential ones.
//!
//! Default parameters measure (via `sleds-lmbench`) to roughly Table 2's
//! 130 ms latency and 2.8 MB/s bandwidth.

use sleds_sim_core::{Bandwidth, DetRng, SimDuration, SimResult, SimTime, SECTOR_SIZE};

use crate::{
    apply_fault_overheads, check_range, fault_gate, BlockDevice, DevStats, DeviceClass,
    DeviceProfile, FaultInjector, FaultState, PhaseKind, PhaseLog, ServicePhase,
};

/// Timing parameters for a CD-ROM drive.
#[derive(Clone, Copy, Debug)]
pub struct CdRomParams {
    /// Media transfer rate (CLV, so constant across the disc).
    pub media_rate: Bandwidth,
    /// Fixed component of any seek (sled start/stop, focus).
    pub seek_base: SimDuration,
    /// Distance-dependent seek component for a full-stroke move.
    pub seek_full: SimDuration,
    /// Spindle re-synchronization after any seek.
    pub settle: SimDuration,
    /// Per-command controller overhead.
    pub overhead: SimDuration,
}

impl Default for CdRomParams {
    fn default() -> Self {
        CdRomParams {
            media_rate: Bandwidth::mb_per_sec(2.95),
            seek_base: SimDuration::from_millis(70),
            seek_full: SimDuration::from_millis(110),
            settle: SimDuration::from_millis(22),
            overhead: SimDuration::from_micros(600),
        }
    }
}

/// A CD-ROM drive with laser-position state.
#[derive(Clone, Debug)]
pub struct CdRomDevice {
    name: String,
    params: CdRomParams,
    capacity: u64,
    /// Sector just past the last one transferred; the laser tracks here.
    position: u64,
    stats: DevStats,
    phases: PhaseLog,
    jitter: Option<(DetRng, f64)>,
    faults: Option<FaultInjector>,
}

impl CdRomDevice {
    /// Creates a CD-ROM of `capacity_bytes` with the given parameters.
    pub fn new(name: impl Into<String>, capacity_bytes: u64, params: CdRomParams) -> Self {
        CdRomDevice {
            name: name.into(),
            params,
            capacity: capacity_bytes / SECTOR_SIZE,
            position: 0,
            stats: DevStats::default(),
            phases: PhaseLog::default(),
            jitter: None,
            faults: None,
        }
    }

    /// A 650 MB disc in a drive tuned to Table 2 (130 ms, 2.8 MB/s).
    pub fn table2_drive(name: impl Into<String>) -> Self {
        CdRomDevice::new(name, 650 << 20, CdRomParams::default())
    }

    /// Enables multiplicative jitter on positioning costs.
    pub fn with_jitter(mut self, rng: DetRng, amplitude: f64) -> Self {
        self.jitter = Some((rng, amplitude));
        self
    }

    /// Current laser position (sector just past the last transfer).
    pub fn position(&self) -> u64 {
        self.position
    }

    fn jitter_factor(&mut self) -> f64 {
        match &mut self.jitter {
            Some((rng, amp)) => {
                let amp = *amp;
                rng.jitter(amp)
            }
            None => 1.0,
        }
    }

    fn service(&mut self, start: u64, sectors: u64) -> (SimDuration, bool) {
        self.phases.clear();
        self.phases.add(PhaseKind::Overhead, self.params.overhead);
        let mut t = self.params.overhead;
        let repositioned = start != self.position;
        if repositioned {
            let dist_frac = start.abs_diff(self.position) as f64 / self.capacity.max(1) as f64;
            let seek_secs = self.params.seek_base.as_secs_f64()
                + dist_frac * self.params.seek_full.as_secs_f64()
                + self.params.settle.as_secs_f64();
            let jf = self.jitter_factor();
            let seek = SimDuration::from_secs_f64(seek_secs * jf);
            self.phases.add(PhaseKind::Seek, seek);
            t += seek;
        }
        let xfer = self.params.media_rate.transfer_time(sectors * SECTOR_SIZE);
        self.phases.add(PhaseKind::Transfer, xfer);
        t += xfer;
        self.position = start + sectors;
        (t, repositioned)
    }
}

impl BlockDevice for CdRomDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> DeviceClass {
        DeviceClass::CdRom
    }

    fn capacity_sectors(&self) -> u64 {
        self.capacity
    }

    fn profile(&self) -> DeviceProfile {
        let lat = SimDuration::from_secs_f64(
            self.params.seek_base.as_secs_f64()
                + self.params.seek_full.as_secs_f64() / 3.0
                + self.params.settle.as_secs_f64(),
        );
        DeviceProfile {
            class: DeviceClass::CdRom,
            nominal_latency: lat,
            nominal_bandwidth: self.params.media_rate,
        }
    }

    fn read(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity, start, sectors)?;
        let (mult, resume) = fault_gate(&mut self.faults, &mut self.phases, &self.name, now)?;
        let (t, repo) = self.service(start, sectors);
        let t = apply_fault_overheads(&mut self.phases, t, mult, resume);
        self.stats.note_read(sectors, t, repo);
        Ok(t)
    }

    fn write(&mut self, _start: u64, _sectors: u64, _now: SimTime) -> SimResult<SimDuration> {
        Err(sleds_sim_core::SimError::new(
            sleds_sim_core::Errno::Erofs,
            format!("{}: CD-ROM is read-only", self.name),
        ))
    }

    fn stats(&self) -> DevStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DevStats::default();
    }

    fn last_phases(&self) -> &[ServicePhase] {
        self.phases.as_slice()
    }

    fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    fn fault_epoch(&self, now: SimTime) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.epoch(now))
    }

    fn fault_state(&self, now: SimTime) -> FaultState {
        self.faults
            .as_ref()
            .map_or(FaultState::Healthy, |f| f.state(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phases_cover_overhead_seek_transfer() {
        let mut cd = CdRomDevice::table2_drive("cd0");
        cd.read(1000, 8, SimTime::ZERO).unwrap();
        let t = cd.read(0, 8, SimTime::ZERO).unwrap();
        let total: SimDuration = cd.last_phases().iter().map(|p| p.dur).sum();
        assert_eq!(total, t);
        let kinds: Vec<PhaseKind> = cd.last_phases().iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![PhaseKind::Overhead, PhaseKind::Seek, PhaseKind::Transfer]
        );
    }

    #[test]
    fn sequential_reads_skip_seek() {
        let mut cd = CdRomDevice::table2_drive("cd0");
        let t1 = cd.read(0, 128, SimTime::ZERO).unwrap();
        let t2 = cd.read(128, 128, SimTime::ZERO).unwrap();
        // First read seeks (position starts at 0 but the read begins there,
        // so actually no seek); second is contiguous.
        assert_eq!(t1, t2);
        let t3 = cd.read(0, 128, SimTime::ZERO).unwrap();
        assert!(
            t3 > t2 + SimDuration::from_millis(50),
            "backward seek is slow"
        );
    }

    #[test]
    fn streaming_bandwidth_near_table2() {
        let mut cd = CdRomDevice::table2_drive("cd0");
        let mut total = SimDuration::ZERO;
        let cmds = (16u64 << 20) / (64 << 10);
        for i in 0..cmds {
            total += cd.read(i * 128, 128, SimTime::ZERO).unwrap();
        }
        let bw = (16u64 << 20) as f64 / total.as_secs_f64() / 1e6;
        assert!((2.5..3.2).contains(&bw), "CD streams at {bw} MB/s");
    }

    #[test]
    fn random_latency_near_table2() {
        let mut cd = CdRomDevice::table2_drive("cd0");
        let mut rng = DetRng::new(7);
        let cap = cd.capacity_sectors();
        let n = 100;
        let mut total = 0.0;
        for _ in 0..n {
            let s = rng.range_u64(0, cap - 8);
            total += cd.read(s, 8, SimTime::ZERO).unwrap().as_secs_f64();
        }
        let avg_ms = total / n as f64 * 1e3;
        assert!(
            (100.0..170.0).contains(&avg_ms),
            "CD random latency {avg_ms} ms"
        );
    }

    #[test]
    fn writes_rejected() {
        let mut cd = CdRomDevice::table2_drive("cd0");
        let err = cd.write(0, 1, SimTime::ZERO).unwrap_err();
        assert_eq!(err.errno, sleds_sim_core::Errno::Erofs);
    }

    #[test]
    fn position_advances() {
        let mut cd = CdRomDevice::table2_drive("cd0");
        cd.read(100, 28, SimTime::ZERO).unwrap();
        assert_eq!(cd.position(), 128);
        assert_eq!(cd.stats().repositions, 1);
    }
}
