//! A zoned hard-disk model in the style of Ruemmler and Wilkes.
//!
//! The model tracks the head's cylinder and derives the rotational angle
//! from absolute virtual time (the platter never stops spinning), so service
//! time for a command is:
//!
//! ```text
//! controller overhead
//!   + seek(|current cylinder - target cylinder|)
//!   + rotational wait to the target sector
//!   + transfer (per-track rate of the zone, plus head/cylinder switches)
//! ```
//!
//! Zoned recording gives outer cylinders more sectors per track and thus
//! higher bandwidth — which is why the paper's future-work section wants
//! per-zone rows in the sleds table, and why our SLED generator can produce
//! different bandwidths for different parts of one file.
//!
//! The seek curve is the standard three-point fit: square-root shaped for
//! short distances, linear beyond one third of the stroke (see Ruemmler &
//! Wilkes, "An introduction to disk drive modeling", IEEE Computer 1994).

use sleds_sim_core::{Bandwidth, DetRng, SimDuration, SimResult, SimTime, SECTOR_SIZE};

use crate::{
    apply_fault_overheads, check_range, fault_gate, BlockDevice, DevStats, DeviceClass,
    DeviceProfile, FaultInjector, FaultState, PhaseKind, PhaseLog, ServicePhase,
};

/// A recording zone: a contiguous run of cylinders with uniform
/// sectors-per-track.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Zone {
    /// Number of cylinders in this zone.
    pub cylinders: u32,
    /// Sectors per track within the zone.
    pub sectors_per_track: u32,
}

/// Geometry and timing parameters of a disk.
#[derive(Clone, Debug)]
pub struct DiskGeometry {
    /// Number of recording surfaces (heads).
    pub heads: u32,
    /// Spindle speed in revolutions per minute.
    pub rpm: u32,
    /// Zones, ordered from the outermost (LBA 0) inward.
    pub zones: Vec<Zone>,
    /// Single-cylinder seek time.
    pub track_to_track: SimDuration,
    /// Average (one-third stroke) seek time.
    pub average_seek: SimDuration,
    /// Full-stroke seek time.
    pub full_stroke: SimDuration,
    /// Head-switch (surface change) time.
    pub head_switch: SimDuration,
    /// Fixed per-command controller overhead.
    pub controller_overhead: SimDuration,
}

impl DiskGeometry {
    /// Total cylinders across all zones.
    pub fn cylinders(&self) -> u32 {
        self.zones.iter().map(|z| z.cylinders).sum()
    }

    /// Total capacity in sectors.
    pub fn capacity_sectors(&self) -> u64 {
        self.zones
            .iter()
            .map(|z| z.cylinders as u64 * self.heads as u64 * z.sectors_per_track as u64)
            .sum()
    }

    /// One full revolution.
    pub fn rotation_period(&self) -> SimDuration {
        SimDuration::from_secs_f64(60.0 / self.rpm as f64)
    }

    /// Peak media rate of the outermost zone.
    pub fn peak_bandwidth(&self) -> Bandwidth {
        let spt = self.zones.first().map(|z| z.sectors_per_track).unwrap_or(0);
        let per_track_bytes = spt as f64 * SECTOR_SIZE as f64;
        Bandwidth::bytes_per_sec(per_track_bytes / self.rotation_period().as_secs_f64())
    }
}

/// Physical location of a sector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Chs {
    zone: usize,
    cylinder: u32,
    head: u32,
    sector: u32,
}

/// A hard disk with positional state.
#[derive(Clone, Debug)]
pub struct DiskDevice {
    name: String,
    geom: DiskGeometry,
    capacity: u64,
    current_cylinder: u32,
    /// Sector just past the last transfer. A command starting here streams
    /// out of the drive's read-ahead buffer: no seek, no rotational wait.
    next_sequential: u64,
    stats: DevStats,
    phases: PhaseLog,
    jitter: Option<(DetRng, f64)>,
    faults: Option<FaultInjector>,
    // Seek-curve coefficients, fitted once at construction.
    seek_sqrt_a: f64,
    seek_sqrt_b: f64,
    seek_lin_c: f64,
    seek_lin_f: f64,
    seek_knee: f64,
}

impl DiskDevice {
    /// Creates a disk from a geometry description.
    ///
    /// # Panics
    ///
    /// Panics if the geometry has no zones or a zero-sector zone; geometry is
    /// construction-time configuration, not runtime input.
    pub fn new(name: impl Into<String>, geom: DiskGeometry) -> Self {
        assert!(!geom.zones.is_empty(), "disk needs at least one zone");
        assert!(
            geom.zones
                .iter()
                .all(|z| z.sectors_per_track > 0 && z.cylinders > 0),
            "zones must be non-empty"
        );
        let capacity = geom.capacity_sectors();
        let cyls = geom.cylinders() as f64;
        let knee = (cyls / 3.0).max(2.0);
        let t2t = geom.track_to_track.as_secs_f64();
        let avg = geom.average_seek.as_secs_f64();
        let full = geom.full_stroke.as_secs_f64();
        // Square-root segment through (1, t2t) and (knee, avg).
        let b = (avg - t2t) / (knee.sqrt() - 1.0);
        let a = t2t - b;
        // Linear segment through (knee, avg) and (cyls-1, full).
        let f = (full - avg) / ((cyls - 1.0) - knee).max(1.0);
        let c = avg - f * knee;
        DiskDevice {
            name: name.into(),
            geom,
            capacity,
            current_cylinder: 0,
            next_sequential: u64::MAX,
            stats: DevStats::default(),
            phases: PhaseLog::default(),
            jitter: None,
            faults: None,
            seek_sqrt_a: a,
            seek_sqrt_b: b,
            seek_lin_c: c,
            seek_lin_f: f,
            seek_knee: knee,
        }
    }

    /// The disk used for the Unix-utility experiments: measures to roughly
    /// Table 2's 18 ms latency and 9 MB/s streaming bandwidth.
    pub fn table2_disk(name: impl Into<String>) -> Self {
        DiskDevice::new(
            name,
            DiskGeometry {
                heads: 4,
                rpm: 5400,
                zones: vec![
                    Zone {
                        cylinders: 4000,
                        sectors_per_track: 260,
                    },
                    Zone {
                        cylinders: 4000,
                        sectors_per_track: 220,
                    },
                    Zone {
                        cylinders: 4000,
                        sectors_per_track: 170,
                    },
                ],
                track_to_track: SimDuration::from_micros(1_800),
                average_seek: SimDuration::from_millis(12),
                full_stroke: SimDuration::from_millis(22),
                head_switch: SimDuration::from_micros(900),
                controller_overhead: SimDuration::from_micros(200),
            },
        )
    }

    /// The disk used for the LHEASOFT experiments: measures to roughly
    /// Table 3's 16.5 ms latency and 7 MB/s streaming bandwidth.
    pub fn table3_disk(name: impl Into<String>) -> Self {
        DiskDevice::new(
            name,
            DiskGeometry {
                heads: 4,
                rpm: 5400,
                zones: vec![
                    Zone {
                        cylinders: 4000,
                        sectors_per_track: 200,
                    },
                    Zone {
                        cylinders: 4000,
                        sectors_per_track: 170,
                    },
                    Zone {
                        cylinders: 4000,
                        sectors_per_track: 130,
                    },
                ],
                track_to_track: SimDuration::from_micros(1_700),
                average_seek: SimDuration::from_micros(10_500),
                full_stroke: SimDuration::from_millis(20),
                head_switch: SimDuration::from_micros(900),
                controller_overhead: SimDuration::from_micros(200),
            },
        )
    }

    /// Enables multiplicative jitter on positioning costs, representing
    /// background activity. `amplitude` is a fraction, e.g. `0.05` for ±5%.
    pub fn with_jitter(mut self, rng: DetRng, amplitude: f64) -> Self {
        self.jitter = Some((rng, amplitude));
        self
    }

    /// The geometry this disk was built with.
    pub fn geometry(&self) -> &DiskGeometry {
        &self.geom
    }

    /// The cylinder the head currently rests on.
    pub fn current_cylinder(&self) -> u32 {
        self.current_cylinder
    }

    /// Seek time for a cylinder distance `d`.
    pub fn seek_time(&self, d: u32) -> SimDuration {
        if d == 0 {
            return SimDuration::ZERO;
        }
        let d = d as f64;
        let secs = if d <= self.seek_knee {
            self.seek_sqrt_a + self.seek_sqrt_b * d.sqrt()
        } else {
            self.seek_lin_c + self.seek_lin_f * d
        };
        SimDuration::from_secs_f64(secs.max(0.0))
    }

    /// Bandwidth of the zone containing `sector` (sustained, including the
    /// head-switch dead time between tracks).
    pub fn zone_bandwidth(&self, sector: u64) -> Bandwidth {
        let chs = self.locate(sector);
        let spt = self.geom.zones[chs.zone].sectors_per_track;
        let track_bytes = spt as f64 * SECTOR_SIZE as f64;
        let track_time =
            self.geom.rotation_period().as_secs_f64() + self.geom.head_switch.as_secs_f64();
        Bandwidth::bytes_per_sec(track_bytes / track_time)
    }

    fn locate(&self, sector: u64) -> Chs {
        debug_assert!(sector < self.capacity);
        let mut remaining = sector;
        let mut cyl_base = 0u32;
        for (zi, z) in self.geom.zones.iter().enumerate() {
            let per_cyl = self.geom.heads as u64 * z.sectors_per_track as u64;
            let zone_sectors = z.cylinders as u64 * per_cyl;
            if remaining < zone_sectors {
                // sledlint::allow(D007, quotient < z.cylinders which is u32)
                let cyl_in_zone = (remaining / per_cyl) as u32;
                let within = remaining % per_cyl;
                return Chs {
                    zone: zi,
                    cylinder: cyl_base + cyl_in_zone,
                    // sledlint::allow(D007, quotient < geom.heads which is u32)
                    head: (within / z.sectors_per_track as u64) as u32,
                    // sledlint::allow(D007, remainder < sectors_per_track which is u32)
                    sector: (within % z.sectors_per_track as u64) as u32,
                };
            }
            remaining -= zone_sectors;
            cyl_base += z.cylinders;
        }
        // sledlint::allow(D005, every caller range-checks sector < capacity, and capacity is the sum of all zone_sectors)
        unreachable!("sector {sector} beyond capacity {}", self.capacity);
    }

    fn jitter_factor(&mut self) -> f64 {
        match &mut self.jitter {
            Some((rng, amp)) => {
                let amp = *amp;
                rng.jitter(amp)
            }
            None => 1.0,
        }
    }

    /// Angular position of the platter (fraction of a revolution) at `t`.
    fn angle_at(&self, t: SimTime) -> f64 {
        let period = self.geom.rotation_period().as_nanos();
        (t.as_nanos() % period) as f64 / period as f64
    }

    /// Computes the service time of a transfer and updates head position.
    fn service(&mut self, start: u64, sectors: u64, now: SimTime) -> SimDuration {
        let target = self.locate(start);
        let period = self.geom.rotation_period();
        let sequential = start == self.next_sequential;
        self.phases.clear();
        self.phases
            .add(PhaseKind::Overhead, self.geom.controller_overhead);
        let mut elapsed = self.geom.controller_overhead;
        if !sequential {
            // Random access: seek, then wait for the target sector to pass
            // under the head.
            let distance = self.current_cylinder.abs_diff(target.cylinder);
            let jf = self.jitter_factor();
            let seek = SimDuration::from_secs_f64(self.seek_time(distance).as_secs_f64() * jf);
            self.phases.add(PhaseKind::Seek, seek);
            elapsed += seek;
            let spt = self.geom.zones[target.zone].sectors_per_track;
            let target_angle = target.sector as f64 / spt as f64;
            let angle = self.angle_at(now + elapsed);
            let mut wait = target_angle - angle;
            if wait < 0.0 {
                wait += 1.0;
            }
            let rotation = SimDuration::from_secs_f64(wait * period.as_secs_f64());
            self.phases.add(PhaseKind::Rotation, rotation);
            elapsed += rotation;
        }
        // A sequential continuation streams out of the drive's read-ahead
        // buffer; the head keeps up with the media rate by construction.
        self.next_sequential = start + sectors;

        // Transfer, walking track and cylinder boundaries.
        let mut pos = target;
        let mut left = sectors;
        loop {
            let spt = self.geom.zones[pos.zone].sectors_per_track;
            let on_track = (spt - pos.sector) as u64;
            let take = on_track.min(left);
            let frac = take as f64 / spt as f64;
            let xfer = SimDuration::from_secs_f64(frac * period.as_secs_f64());
            self.phases.add(PhaseKind::Transfer, xfer);
            elapsed += xfer;
            left -= take;
            if left == 0 {
                // Head ends within (or just past) this track.
                self.current_cylinder = pos.cylinder;
                break;
            }
            // Advance to the next track: same cylinder next head, or next
            // cylinder head 0. Track skew is assumed to absorb the switch
            // time rotationally, so only the switch cost itself is added.
            if pos.head + 1 < self.geom.heads {
                pos.head += 1;
                self.phases
                    .add(PhaseKind::HeadSwitch, self.geom.head_switch);
                elapsed += self.geom.head_switch;
            } else {
                pos.head = 0;
                pos.cylinder += 1;
                self.phases
                    .add(PhaseKind::TrackSwitch, self.geom.track_to_track);
                elapsed += self.geom.track_to_track;
                // Did we cross into the next zone?
                pos.zone = self.locate(start + (sectors - left)).zone;
            }
            pos.sector = 0;
        }
        elapsed
    }
}

impl BlockDevice for DiskDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> DeviceClass {
        DeviceClass::Disk
    }

    fn capacity_sectors(&self) -> u64 {
        self.capacity
    }

    fn profile(&self) -> DeviceProfile {
        // Nominal latency: average seek plus half a revolution.
        let lat = self.geom.average_seek + self.geom.rotation_period() / 2;
        DeviceProfile {
            class: DeviceClass::Disk,
            nominal_latency: lat,
            nominal_bandwidth: self.zone_bandwidth(0),
        }
    }

    fn read(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity, start, sectors)?;
        let (mult, resume) = fault_gate(&mut self.faults, &mut self.phases, &self.name, now)?;
        let before = self.current_cylinder;
        let t = self.service(start, sectors, now);
        let t = apply_fault_overheads(&mut self.phases, t, mult, resume);
        self.stats
            .note_read(sectors, t, before != self.current_cylinder);
        Ok(t)
    }

    fn write(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity, start, sectors)?;
        let (mult, resume) = fault_gate(&mut self.faults, &mut self.phases, &self.name, now)?;
        let before = self.current_cylinder;
        let t = self.service(start, sectors, now);
        let t = apply_fault_overheads(&mut self.phases, t, mult, resume);
        self.stats
            .note_write(sectors, t, before != self.current_cylinder);
        Ok(t)
    }

    fn stats(&self) -> DevStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DevStats::default();
    }

    fn last_phases(&self) -> &[ServicePhase] {
        self.phases.as_slice()
    }

    fn zone_map(&self) -> Vec<crate::ZoneSpan> {
        let mut spans = Vec::with_capacity(self.geom.zones.len());
        let mut sector = 0u64;
        for z in &self.geom.zones {
            let sectors = z.cylinders as u64 * self.geom.heads as u64 * z.sectors_per_track as u64;
            spans.push(crate::ZoneSpan {
                start_sector: sector,
                sectors,
                bandwidth: self.zone_bandwidth(sector),
            });
            sector += sectors;
        }
        spans
    }

    fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    fn fault_epoch(&self, now: SimTime) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.epoch(now))
    }

    fn fault_state(&self, now: SimTime) -> FaultState {
        self.faults
            .as_ref()
            .map_or(FaultState::Healthy, |f| f.state(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_disk() -> DiskDevice {
        DiskDevice::new(
            "hda",
            DiskGeometry {
                heads: 2,
                rpm: 6000, // 10 ms/rev
                zones: vec![
                    Zone {
                        cylinders: 100,
                        sectors_per_track: 100,
                    },
                    Zone {
                        cylinders: 100,
                        sectors_per_track: 50,
                    },
                ],
                track_to_track: SimDuration::from_millis(1),
                average_seek: SimDuration::from_millis(8),
                full_stroke: SimDuration::from_millis(16),
                head_switch: SimDuration::from_micros(500),
                controller_overhead: SimDuration::from_micros(100),
            },
        )
    }

    #[test]
    fn geometry_capacity() {
        let d = small_disk();
        // 100 cyl * 2 heads * 100 spt + 100 * 2 * 50.
        assert_eq!(d.capacity_sectors(), 20_000 + 10_000);
        assert_eq!(d.geometry().cylinders(), 200);
    }

    #[test]
    fn locate_maps_zones_correctly() {
        let d = small_disk();
        let c = d.locate(0);
        assert_eq!((c.zone, c.cylinder, c.head, c.sector), (0, 0, 0, 0));
        let c = d.locate(100); // second track of cylinder 0
        assert_eq!((c.zone, c.cylinder, c.head, c.sector), (0, 0, 1, 0));
        let c = d.locate(200); // cylinder 1
        assert_eq!((c.zone, c.cylinder, c.head, c.sector), (0, 1, 0, 0));
        let c = d.locate(20_000); // first sector of zone 1
        assert_eq!((c.zone, c.cylinder, c.head, c.sector), (1, 100, 0, 0));
        let c = d.locate(29_999); // last sector
        assert_eq!((c.zone, c.cylinder, c.head, c.sector), (1, 199, 1, 49));
    }

    #[test]
    fn seek_curve_hits_calibration_points() {
        let d = small_disk();
        assert_eq!(d.seek_time(0), SimDuration::ZERO);
        let t2t = d.seek_time(1).as_secs_f64();
        assert!((t2t - 0.001).abs() < 1e-9, "t2t = {t2t}");
        let full = d.seek_time(199).as_secs_f64();
        assert!((full - 0.016).abs() < 1e-6, "full = {full}");
        // Monotone non-decreasing.
        let mut prev = 0.0;
        for dist in 0..200 {
            let t = d.seek_time(dist).as_secs_f64();
            assert!(t >= prev - 1e-12, "seek not monotone at {dist}");
            prev = t;
        }
    }

    #[test]
    fn sequential_reads_are_transfer_limited() {
        let mut d = small_disk();
        let mut now = SimTime::ZERO;
        // Warm up: position at sector 0.
        now += d.read(0, 1, now).unwrap();
        // Read a full track's worth sequentially in 10-sector commands.
        let mut total = SimDuration::ZERO;
        for i in 0..9 {
            let t = d.read(1 + i * 10, 10, now).unwrap();
            now += t;
            total += t;
        }
        // 90 sectors at 100 spt and 10ms/rev: pure transfer would be 9 ms.
        // Rotational waits for perfectly sequential requests should be ~0
        // because each request starts where the last ended.
        let secs = total.as_secs_f64();
        assert!(secs < 0.012, "sequential total {secs}s too slow");
        assert!(secs >= 0.009, "sequential total {secs}s impossibly fast");
    }

    #[test]
    fn random_read_pays_seek_and_rotation() {
        let mut d = small_disk();
        let mut now = SimTime::ZERO;
        now += d.read(0, 1, now).unwrap();
        // Far-away single sector: cylinder 199 distance, ~full stroke.
        let t = d.read(29_999, 1, now).unwrap();
        let secs = t.as_secs_f64();
        assert!(secs > 0.016, "expected seek+rotation, got {secs}");
        assert!(secs < 0.016 + 0.010 + 0.001, "too slow: {secs}");
    }

    #[test]
    fn zone_bandwidth_decreases_inward() {
        let d = small_disk();
        let outer = d.zone_bandwidth(0).as_bytes_per_sec();
        let inner = d.zone_bandwidth(25_000).as_bytes_per_sec();
        assert!(outer > inner);
        // Outer: 100 sectors * 512 B per 10.5 ms (rev + head switch).
        let expect = 100.0 * 512.0 / 0.0105;
        assert!((outer - expect).abs() / expect < 1e-9);
    }

    #[test]
    fn table2_disk_meets_its_targets() {
        let mut d = DiskDevice::table2_disk("hda");
        // Streaming: read 16 MiB in 64 KiB commands from sector 0.
        let mut now = SimTime::ZERO;
        let mut total = SimDuration::ZERO;
        let cmds = (16 << 20) / (64 << 10);
        for i in 0..cmds {
            let t = d.read(i * 128, 128, now).unwrap();
            now += t;
            total += t;
        }
        let bw = (16u64 << 20) as f64 / total.as_secs_f64() / 1e6;
        assert!(
            (9.5..12.5).contains(&bw),
            "table2 disk streams at {bw} MB/s"
        );

        // Random 4 KiB: average latency near 18 ms.
        let mut rng = sleds_sim_core::DetRng::new(42);
        let cap = d.capacity_sectors();
        let mut lat_total = 0.0;
        let n = 200;
        for _ in 0..n {
            let s = rng.range_u64(0, cap - 8);
            let t = d.read(s, 8, now).unwrap();
            now += t;
            lat_total += t.as_secs_f64();
        }
        let avg_ms = lat_total / n as f64 * 1e3;
        assert!(
            (14.0..22.0).contains(&avg_ms),
            "table2 disk random 4K latency {avg_ms} ms"
        );
    }

    #[test]
    fn zone_map_reports_every_zone() {
        let d = small_disk();
        let spans = d.zone_map();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start_sector, 0);
        assert_eq!(spans[0].sectors, 20_000);
        assert_eq!(spans[1].start_sector, 20_000);
        assert_eq!(spans[1].sectors, 10_000);
        assert!(
            spans[0].bandwidth.as_bytes_per_sec() > spans[1].bandwidth.as_bytes_per_sec(),
            "outer zone is faster"
        );
        let total: u64 = spans.iter().map(|s| s.sectors).sum();
        assert_eq!(total, d.capacity_sectors());
    }

    #[test]
    fn reads_update_head_position() {
        let mut d = small_disk();
        d.read(29_999, 1, SimTime::ZERO).unwrap();
        assert_eq!(d.current_cylinder(), 199);
        assert_eq!(d.stats().repositions, 1);
    }

    #[test]
    fn range_checks() {
        let mut d = small_disk();
        assert!(d.read(30_000, 1, SimTime::ZERO).is_err());
        assert!(d.write(29_999, 2, SimTime::ZERO).is_err());
        assert!(d.read(0, 0, SimTime::ZERO).is_err());
    }

    #[test]
    fn phase_breakdown_sums_to_service_time() {
        let mut d = small_disk();
        d.read(0, 1, SimTime::ZERO).unwrap();
        let t = d.read(29_999, 1, SimTime::from_nanos(50_000_000)).unwrap();
        let phases = d.last_phases();
        let total: SimDuration = phases.iter().map(|p| p.dur).sum();
        assert_eq!(total, t, "phases must account for all service time");
        let kinds: Vec<PhaseKind> = phases.iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PhaseKind::Overhead));
        assert!(kinds.contains(&PhaseKind::Seek));
        assert!(kinds.contains(&PhaseKind::Transfer));
        // A long transfer reports head/track switches too.
        let t = d.read(0, 250, SimTime::from_nanos(1_000_000_000)).unwrap();
        let total: SimDuration = d.last_phases().iter().map(|p| p.dur).sum();
        assert_eq!(total, t);
        let kinds: Vec<PhaseKind> = d.last_phases().iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PhaseKind::HeadSwitch));
        assert!(kinds.contains(&PhaseKind::TrackSwitch));
    }

    #[test]
    fn multi_track_transfer_crosses_boundaries() {
        let mut d = small_disk();
        // 250 sectors from sector 0: track 0 (100), head switch, track 1
        // (100), cylinder switch, 50 more.
        let t = d.read(0, 250, SimTime::ZERO).unwrap().as_secs_f64();
        // Overhead 0.1 ms puts the platter 0.01 rev past sector 0, so the
        // head waits 0.99 rev (9.9 ms); then 2.5 revs of transfer (25 ms),
        // one head switch (0.5 ms) and one track-to-track seek (1 ms).
        let expect = 0.0001 + 0.0099 + 0.025 + 0.0005 + 0.001;
        assert!((t - expect).abs() < 2e-4, "got {t}, expected ~{expect}");
        assert_eq!(d.current_cylinder(), 1);
    }

    #[test]
    fn injected_faults_keep_phase_sums_exact() {
        use crate::FaultPlan;
        use sleds_sim_core::Errno;
        let fail_cost = SimDuration::from_millis(3);
        let plan = FaultPlan::new()
            .transient(
                "hda",
                SimTime::ZERO,
                SimTime::from_nanos(1 << 40),
                1,
                fail_cost,
            )
            .degraded(
                "hda",
                SimTime::from_nanos(1 << 41),
                SimTime::from_nanos(1 << 42),
                3.0,
            );
        let mut d = small_disk();
        d.set_fault_injector(plan.injector_for("hda").unwrap());

        // First submission fails EAGAIN; the span is exactly the fail cost.
        let err = d.read(0, 8, SimTime::ZERO).unwrap_err();
        assert_eq!(err.errno, Errno::Eagain);
        let phases = d.last_phases();
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].kind, PhaseKind::Fault);
        assert_eq!(phases[0].dur, fail_cost);

        // The retried submission succeeds, pays the Retry resume overhead,
        // and its phases still sum to the returned service time.
        let t = d.read(0, 8, SimTime::ZERO).unwrap();
        let total: SimDuration = d.last_phases().iter().map(|p| p.dur).sum();
        assert_eq!(total, t);
        let retry: SimDuration = d
            .last_phases()
            .iter()
            .filter(|p| p.kind == PhaseKind::Retry)
            .map(|p| p.dur)
            .sum();
        assert_eq!(retry, fail_cost / 2);

        // Inside the degraded window the surplus lands in a Fault phase and
        // the command takes ~3x a clean one.
        let mut clean = small_disk();
        clean.read(0, 8, SimTime::ZERO).unwrap();
        let t_clean = clean.read(20_000, 8, SimTime::from_nanos(1 << 41)).unwrap();
        d.read(0, 8, SimTime::from_nanos(1 << 40)).unwrap(); // re-sync head state
        let t_deg = d.read(20_000, 8, SimTime::from_nanos(1 << 41)).unwrap();
        let total: SimDuration = d.last_phases().iter().map(|p| p.dur).sum();
        assert_eq!(total, t_deg);
        let ratio = t_deg.as_secs_f64() / t_clean.as_secs_f64();
        assert!((2.5..3.5).contains(&ratio), "degraded ratio {ratio}");
        assert_eq!(
            d.fault_state(SimTime::from_nanos(1 << 41)),
            FaultState::Degraded(3.0)
        );
        assert!(d.fault_epoch(SimTime::from_nanos(1 << 42)) > d.fault_epoch(SimTime::ZERO));
    }
}
