//! A serpentine tape drive model.
//!
//! Follows the spirit of Hillyer & Silberschatz's DLT characterization as
//! simplified by Sandsta & Midstraum: data is recorded in longitudinal
//! *wraps* that alternate direction, locates move the tape at a search speed
//! that is a multiple of the read speed, and every locate pays a fixed
//! minimum (ramp up, head settle). Mounting an unloaded cartridge pays a
//! load-and-thread time; unloading rewinds first.
//!
//! This is the device that gives hierarchical storage its "eleven orders of
//! magnitude" dynamic range in the paper's introduction: microseconds for
//! cached data versus minutes once a mount and a long locate are involved.

use sleds_sim_core::{Bandwidth, Errno, SimDuration, SimError, SimResult, SimTime, SECTOR_SIZE};

use crate::{
    apply_fault_overheads, check_range, fault_gate, BlockDevice, DevStats, DeviceClass,
    DeviceProfile, FaultInjector, FaultState, PhaseKind, PhaseLog, ServicePhase,
};

/// Timing and geometry parameters for a tape drive + cartridge.
#[derive(Clone, Copy, Debug)]
pub struct TapeParams {
    /// Cartridge capacity in bytes.
    pub capacity_bytes: u64,
    /// Number of serpentine wraps (tracks along the tape).
    pub wraps: u32,
    /// Load-and-thread time when mounting.
    pub load: SimDuration,
    /// Full-length rewind time (scaled by position when unloading).
    pub rewind_full: SimDuration,
    /// Fixed minimum cost of any locate.
    pub locate_base: SimDuration,
    /// Search speed as a multiple of streaming read speed.
    pub search_speedup: f64,
    /// Cost of changing wraps during a locate (head step + direction turn).
    pub wrap_change: SimDuration,
    /// Streaming rate.
    pub rate: Bandwidth,
    /// Stop/start penalty to resume streaming after any repositioning.
    pub stop_start: SimDuration,
}

impl Default for TapeParams {
    fn default() -> Self {
        // A late-1990s DLT-class drive: 20 GB native, 5 MB/s.
        TapeParams {
            capacity_bytes: 20 << 30,
            wraps: 52,
            load: SimDuration::from_secs(40),
            rewind_full: SimDuration::from_secs(90),
            locate_base: SimDuration::from_secs(2),
            search_speedup: 3.0,
            wrap_change: SimDuration::from_millis(1500),
            rate: Bandwidth::mb_per_sec(5.0),
            stop_start: SimDuration::from_millis(500),
        }
    }
}

/// Longitudinal coordinates of a sector on a serpentine tape.
#[derive(Clone, Copy, Debug, PartialEq)]
struct TapePos {
    wrap: u32,
    /// Physical position along the tape as a fraction of its length, 0 at
    /// the load point.
    long_frac: f64,
}

/// A tape drive with one (possibly unloaded) cartridge.
#[derive(Clone, Debug)]
pub struct TapeDevice {
    name: String,
    params: TapeParams,
    capacity: u64,
    sectors_per_wrap: u64,
    loaded: bool,
    /// Sector just past the head's position, if positioned.
    position: Option<u64>,
    stats: DevStats,
    phases: PhaseLog,
    faults: Option<FaultInjector>,
}

impl TapeDevice {
    /// Creates a tape drive with an unloaded cartridge.
    ///
    /// # Panics
    ///
    /// Panics if `wraps == 0`; parameters are construction-time config.
    pub fn new(name: impl Into<String>, params: TapeParams) -> Self {
        assert!(params.wraps > 0, "tape needs at least one wrap");
        let capacity = params.capacity_bytes / SECTOR_SIZE;
        TapeDevice {
            name: name.into(),
            sectors_per_wrap: (capacity / params.wraps as u64).max(1),
            params,
            capacity,
            loaded: false,
            position: None,
            stats: DevStats::default(),
            phases: PhaseLog::default(),
            faults: None,
        }
    }

    /// A default DLT-class drive.
    pub fn dlt(name: impl Into<String>) -> Self {
        TapeDevice::new(name, TapeParams::default())
    }

    /// Whether a cartridge is currently loaded and threaded.
    pub fn is_loaded(&self) -> bool {
        self.loaded
    }

    /// Mounts the cartridge if necessary; returns time spent.
    pub fn ensure_loaded(&mut self) -> SimDuration {
        if self.loaded {
            SimDuration::ZERO
        } else {
            self.loaded = true;
            self.position = Some(0);
            self.stats.repositions += 1;
            self.params.load
        }
    }

    /// Rewinds and unloads; returns time spent.
    pub fn unload(&mut self) -> SimDuration {
        if !self.loaded {
            return SimDuration::ZERO;
        }
        let frac = self
            .position
            .map(|s| {
                self.coords(s.min(self.capacity.saturating_sub(1)))
                    .long_frac
            })
            .unwrap_or(0.0);
        self.loaded = false;
        self.position = None;
        self.stats.repositions += 1;
        SimDuration::from_secs_f64(self.params.rewind_full.as_secs_f64() * frac.max(0.05))
    }

    fn coords(&self, sector: u64) -> TapePos {
        // sledlint::allow(D007, clamped to wraps - 1 which is u32)
        let wrap = (sector / self.sectors_per_wrap).min(self.params.wraps as u64 - 1) as u32;
        let within = sector - wrap as u64 * self.sectors_per_wrap;
        let frac = within as f64 / self.sectors_per_wrap as f64;
        // Even wraps run forward, odd wraps run backward.
        let long_frac = if wrap.is_multiple_of(2) {
            frac
        } else {
            1.0 - frac
        };
        TapePos { wrap, long_frac }
    }

    /// Time for one full pass of the tape at streaming speed.
    fn pass_time(&self) -> f64 {
        let wrap_bytes = self.sectors_per_wrap * SECTOR_SIZE;
        self.params.rate.transfer_time(wrap_bytes).as_secs_f64()
    }

    /// Locate from sector `from` to `target` sector.
    fn locate(&mut self, from: u64, target: u64) -> SimDuration {
        if from == target {
            return SimDuration::ZERO;
        }
        let a = self.coords(from.min(self.capacity - 1));
        let b = self.coords(target);
        let long_dist = (a.long_frac - b.long_frac).abs();
        let wraps_crossed = a.wrap.abs_diff(b.wrap) as f64;
        let secs = self.params.locate_base.as_secs_f64()
            + long_dist * self.pass_time() / self.params.search_speedup.max(1.0)
            + (wraps_crossed.min(1.0)) * self.params.wrap_change.as_secs_f64()
            + self.params.stop_start.as_secs_f64();
        self.stats.repositions += 1;
        SimDuration::from_secs_f64(secs)
    }

    fn service(&mut self, start: u64, sectors: u64) -> SimDuration {
        self.phases.clear();
        let mount = self.ensure_loaded();
        self.phases.add(PhaseKind::Mount, mount);
        let mut t = mount;
        // ensure_loaded positions a fresh mount at sector 0.
        let from = self.position.unwrap_or(0);
        if from != start {
            let locate = self.locate(from, start);
            self.phases.add(PhaseKind::Locate, locate);
            t += locate;
        }
        let stream = self.params.rate.transfer_time(sectors * SECTOR_SIZE);
        self.phases.add(PhaseKind::Stream, stream);
        t += stream;
        self.position = Some(start + sectors);
        t
    }
}

impl BlockDevice for TapeDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> DeviceClass {
        DeviceClass::Tape
    }

    fn capacity_sectors(&self) -> u64 {
        self.capacity
    }

    fn profile(&self) -> DeviceProfile {
        // Nominal: a mount plus an average locate (third of a pass at search
        // speed) — the tape's "first byte" cost when cold.
        let lat = self.params.load.as_secs_f64()
            + self.params.locate_base.as_secs_f64()
            + self.pass_time() / (3.0 * self.params.search_speedup.max(1.0));
        DeviceProfile {
            class: DeviceClass::Tape,
            nominal_latency: SimDuration::from_secs_f64(lat),
            nominal_bandwidth: self.params.rate,
        }
    }

    fn read(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity, start, sectors)?;
        let (mult, resume) = fault_gate(&mut self.faults, &mut self.phases, &self.name, now)?;
        let before = self.position;
        let t = self.service(start, sectors);
        let t = apply_fault_overheads(&mut self.phases, t, mult, resume);
        self.stats.note_read(sectors, t, before != Some(start));
        Ok(t)
    }

    fn write(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity, start, sectors)?;
        let (mult, resume) = fault_gate(&mut self.faults, &mut self.phases, &self.name, now)?;
        let before = self.position;
        let t = self.service(start, sectors);
        let t = apply_fault_overheads(&mut self.phases, t, mult, resume);
        self.stats.note_write(sectors, t, before != Some(start));
        Ok(t)
    }

    fn stats(&self) -> DevStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DevStats::default();
    }

    fn last_phases(&self) -> &[ServicePhase] {
        self.phases.as_slice()
    }

    fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    fn fault_epoch(&self, now: SimTime) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.epoch(now))
    }

    fn fault_state(&self, now: SimTime) -> FaultState {
        self.faults
            .as_ref()
            .map_or(FaultState::Healthy, |f| f.state(now))
    }
}

/// Returns an [`Errno::Enomedium`] error for jukebox slots with no cartridge.
pub(crate) fn no_medium(name: &str) -> SimError {
    SimError::new(Errno::Enomedium, format!("{name}: no cartridge present"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_read_pays_mount() {
        let mut t = TapeDevice::dlt("st0");
        assert!(!t.is_loaded());
        let d = t.read(0, 8, SimTime::ZERO).unwrap();
        assert!(d >= SimDuration::from_secs(40), "mount not charged: {d}");
        assert!(t.is_loaded());
    }

    #[test]
    fn sequential_streaming_after_mount() {
        let mut t = TapeDevice::dlt("st0");
        t.read(0, 8, SimTime::ZERO).unwrap();
        // 1 MiB contiguous at 5 MB/s ~ 0.21 s, no locate.
        let d = t.read(8, 2048, SimTime::ZERO).unwrap();
        let secs = d.as_secs_f64();
        assert!((0.15..0.3).contains(&secs), "streaming read {secs}");
    }

    #[test]
    fn far_locate_costs_seconds_but_less_than_reading_through() {
        let mut t = TapeDevice::dlt("st0");
        t.read(0, 8, SimTime::ZERO).unwrap();
        let cap = t.capacity_sectors();
        let d = t.read(cap / 2, 8, SimTime::ZERO).unwrap();
        let secs = d.as_secs_f64();
        assert!(secs > 2.0, "far locate too cheap: {secs}");
        // Reading halfway through the tape at 5 MB/s would take ~2000 s.
        assert!(secs < 120.0, "far locate too expensive: {secs}");
    }

    #[test]
    fn unload_scales_with_position() {
        let mut t = TapeDevice::dlt("st0");
        t.read(0, 8, SimTime::ZERO).unwrap();
        let near = t.unload();
        // The middle of a wrap is longitudinally farthest from the load
        // point (serpentine wraps start and end near it).
        let mid_wrap = t.sectors_per_wrap / 2;
        t.read(mid_wrap, 8, SimTime::ZERO).unwrap();
        let far = t.unload();
        assert!(
            far > near,
            "rewind from mid-tape ({far}) should exceed ({near})"
        );
        assert!(!t.is_loaded());
    }

    #[test]
    fn serpentine_coords_alternate_direction() {
        let t = TapeDevice::dlt("st0");
        let spw = t.sectors_per_wrap;
        let end_w0 = t.coords(spw - 1);
        let start_w1 = t.coords(spw);
        // End of wrap 0 and start of wrap 1 are physically adjacent.
        assert_eq!(end_w0.wrap, 0);
        assert_eq!(start_w1.wrap, 1);
        assert!((end_w0.long_frac - 1.0).abs() < 1e-3);
        assert!((start_w1.long_frac - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adjacent_wrap_locate_is_cheap() {
        let mut t = TapeDevice::dlt("st0");
        let spw = t.sectors_per_wrap;
        t.read(spw - 8, 8, SimTime::ZERO).unwrap(); // end of wrap 0
        let d = t.read(spw, 8, SimTime::ZERO).unwrap(); // start of wrap 1
        let secs = d.as_secs_f64();
        // locate_base + wrap change + stop/start, no longitudinal motion.
        assert!(secs < 6.0, "adjacent-wrap locate {secs}");
    }

    #[test]
    fn phases_cover_mount_locate_stream() {
        let mut t = TapeDevice::dlt("st0");
        let cap = t.capacity_sectors();
        let d = t.read(cap / 2, 8, SimTime::ZERO).unwrap();
        let phases = t.last_phases();
        let total: SimDuration = phases.iter().map(|p| p.dur).sum();
        assert_eq!(total, d);
        let kinds: Vec<PhaseKind> = phases.iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![PhaseKind::Mount, PhaseKind::Locate, PhaseKind::Stream]
        );
        // Sequential continuation: stream only.
        let d = t.read(cap / 2 + 8, 8, SimTime::ZERO).unwrap();
        assert_eq!(t.last_phases().len(), 1);
        assert_eq!(t.last_phases()[0].kind, PhaseKind::Stream);
        assert_eq!(t.last_phases()[0].dur, d);
    }

    #[test]
    fn range_checked() {
        let mut t = TapeDevice::dlt("st0");
        let cap = t.capacity_sectors();
        assert!(t.read(cap, 1, SimTime::ZERO).is_err());
    }
}
