//! The client side of a network file service.
//!
//! The paper measured its NFS mount at 270 ms to the first byte and 1 MB/s
//! of streaming bandwidth (Table 2) — a shared departmental server over
//! late-1990s ethernet. The paper gives no decomposition of that 270 ms, so
//! the model takes the measured pair as parameters: a discontiguous access
//! pays the first-byte penalty (request queueing at the busy server, its own
//! disk positioning, protocol round trips), while back-to-back sequential
//! reads are pipelined by read-ahead on the server and run at link
//! bandwidth.

use sleds_sim_core::{Bandwidth, DetRng, SimDuration, SimResult, SimTime, SECTOR_SIZE};

use crate::{
    apply_fault_overheads, check_range, fault_gate, BlockDevice, DevStats, DeviceClass,
    DeviceProfile, FaultInjector, FaultState, PhaseKind, PhaseLog, ServicePhase,
};

/// Timing parameters for an NFS mount.
#[derive(Clone, Copy, Debug)]
pub struct NfsParams {
    /// Cost of the first byte of a discontiguous access.
    pub first_byte: SimDuration,
    /// Streaming bandwidth once a sequential run is established.
    pub bandwidth: Bandwidth,
    /// Per-RPC client-side overhead (charged on every command).
    pub per_op: SimDuration,
}

impl Default for NfsParams {
    fn default() -> Self {
        NfsParams {
            first_byte: SimDuration::from_millis(265),
            bandwidth: Bandwidth::mb_per_sec(1.03),
            per_op: SimDuration::from_micros(800),
        }
    }
}

/// A remote file service reached over the network.
#[derive(Clone, Debug)]
pub struct NfsDevice {
    name: String,
    params: NfsParams,
    capacity: u64,
    /// Sector just past the last transfer; sequential runs continue here.
    next_sequential: u64,
    stats: DevStats,
    phases: PhaseLog,
    jitter: Option<(DetRng, f64)>,
    faults: Option<FaultInjector>,
}

impl NfsDevice {
    /// Creates an NFS device of `capacity_bytes`.
    pub fn new(name: impl Into<String>, capacity_bytes: u64, params: NfsParams) -> Self {
        NfsDevice {
            name: name.into(),
            params,
            capacity: capacity_bytes / SECTOR_SIZE,
            next_sequential: u64::MAX,
            stats: DevStats::default(),
            phases: PhaseLog::default(),
            jitter: None,
            faults: None,
        }
    }

    /// A 2 GiB export tuned to Table 2 (270 ms, 1.0 MB/s).
    pub fn table2_mount(name: impl Into<String>) -> Self {
        NfsDevice::new(name, 2 << 30, NfsParams::default())
    }

    /// A replica link to a metro-area site: low RPC latency, a fat pipe.
    /// The geo-topology model for redundant volumes is exactly this —
    /// each remote member is an NFS export whose link parameters encode
    /// the site distance.
    pub fn metro_link(name: impl Into<String>) -> Self {
        NfsDevice::new(
            name,
            4 << 30,
            NfsParams {
                first_byte: SimDuration::from_millis(2),
                bandwidth: Bandwidth::mb_per_sec(20.0),
                per_op: SimDuration::from_micros(200),
            },
        )
    }

    /// A replica link to a regional site (same coast): tens of
    /// milliseconds of RPC latency, a moderate pipe.
    pub fn regional_link(name: impl Into<String>) -> Self {
        NfsDevice::new(
            name,
            4 << 30,
            NfsParams {
                first_byte: SimDuration::from_millis(15),
                bandwidth: Bandwidth::mb_per_sec(8.0),
                per_op: SimDuration::from_micros(500),
            },
        )
    }

    /// A replica link to a continental site (cross-country): the RPC
    /// latency dominates small reads, the thin pipe dominates large ones.
    pub fn continental_link(name: impl Into<String>) -> Self {
        NfsDevice::new(
            name,
            4 << 30,
            NfsParams {
                first_byte: SimDuration::from_millis(80),
                bandwidth: Bandwidth::mb_per_sec(2.5),
                per_op: SimDuration::from_micros(1500),
            },
        )
    }

    /// Enables multiplicative jitter on the first-byte penalty, representing
    /// varying server load.
    pub fn with_jitter(mut self, rng: DetRng, amplitude: f64) -> Self {
        self.jitter = Some((rng, amplitude));
        self
    }

    fn jitter_factor(&mut self) -> f64 {
        match &mut self.jitter {
            Some((rng, amp)) => {
                let amp = *amp;
                rng.jitter(amp)
            }
            None => 1.0,
        }
    }

    fn service(&mut self, start: u64, sectors: u64) -> (SimDuration, bool) {
        self.phases.clear();
        self.phases.add(PhaseKind::Rpc, self.params.per_op);
        let mut t = self.params.per_op;
        let repositioned = start != self.next_sequential;
        if repositioned {
            let jf = self.jitter_factor();
            let first = SimDuration::from_secs_f64(self.params.first_byte.as_secs_f64() * jf);
            self.phases.add(PhaseKind::FirstByte, first);
            t += first;
        }
        let link = self.params.bandwidth.transfer_time(sectors * SECTOR_SIZE);
        self.phases.add(PhaseKind::Link, link);
        t += link;
        self.next_sequential = start + sectors;
        (t, repositioned)
    }
}

impl BlockDevice for NfsDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> DeviceClass {
        DeviceClass::Network
    }

    fn capacity_sectors(&self) -> u64 {
        self.capacity
    }

    fn profile(&self) -> DeviceProfile {
        DeviceProfile {
            class: DeviceClass::Network,
            nominal_latency: self.params.first_byte,
            nominal_bandwidth: self.params.bandwidth,
        }
    }

    fn read(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity, start, sectors)?;
        let (mult, resume) = fault_gate(&mut self.faults, &mut self.phases, &self.name, now)?;
        let (t, repo) = self.service(start, sectors);
        let t = apply_fault_overheads(&mut self.phases, t, mult, resume);
        self.stats.note_read(sectors, t, repo);
        Ok(t)
    }

    fn write(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity, start, sectors)?;
        let (mult, resume) = fault_gate(&mut self.faults, &mut self.phases, &self.name, now)?;
        let (t, repo) = self.service(start, sectors);
        let t = apply_fault_overheads(&mut self.phases, t, mult, resume);
        self.stats.note_write(sectors, t, repo);
        Ok(t)
    }

    fn stats(&self) -> DevStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DevStats::default();
    }

    fn last_phases(&self) -> &[ServicePhase] {
        self.phases.as_slice()
    }

    fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    fn fault_epoch(&self, now: SimTime) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.epoch(now))
    }

    fn fault_state(&self, now: SimTime) -> FaultState {
        self.faults
            .as_ref()
            .map_or(FaultState::Healthy, |f| f.state(now))
    }
}

/// Parameters for a modeled NFS *server* (as opposed to the flat
/// measured-pair [`NfsDevice`]).
#[derive(Clone, Copy, Debug)]
pub struct NfsServerParams {
    /// Network round trip charged on each discontiguous request.
    pub rtt: SimDuration,
    /// Link bandwidth.
    pub link: Bandwidth,
    /// Per-RPC client overhead.
    pub per_op: SimDuration,
    /// Server buffer-cache size in (4 KiB) pages.
    pub server_cache_pages: usize,
}

impl Default for NfsServerParams {
    fn default() -> Self {
        // A LAN server: fast link, so the server's own cache state is what
        // decides performance.
        NfsServerParams {
            rtt: SimDuration::from_millis(2),
            link: Bandwidth::mb_per_sec(10.0),
            per_op: SimDuration::from_micros(500),
            server_cache_pages: 6 << 10, // 24 MiB
        }
    }
}

/// An NFS server with its own disk and buffer cache.
///
/// Unlike [`NfsDevice`] (a flat latency/bandwidth pair, as the paper
/// measured its departmental mount), this models the server side: requests
/// that hit the server's cache cost a round trip plus link transfer;
/// misses add the server disk's positional costs. Its
/// [`BlockDevice::dynamic_probe`] reports which is which — the
/// client/server SLEDs vocabulary the paper proposes.
pub struct NfsServerDevice {
    name: String,
    params: NfsServerParams,
    disk: crate::disk::DiskDevice,
    cache: sleds_pagecache::PageCache,
    next_sequential: u64,
    stats: DevStats,
    phases: PhaseLog,
    faults: Option<FaultInjector>,
}

impl std::fmt::Debug for NfsServerDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NfsServerDevice")
            .field("name", &self.name)
            .field("cached_pages", &self.cache.len())
            .finish()
    }
}

/// Sectors per server-cache page.
const SRV_PAGE_SECTORS: u64 = 8;

impl NfsServerDevice {
    /// Creates a server around `disk`.
    pub fn new(
        name: impl Into<String>,
        disk: crate::disk::DiskDevice,
        params: NfsServerParams,
    ) -> Self {
        NfsServerDevice {
            name: name.into(),
            cache: sleds_pagecache::PageCache::lru(params.server_cache_pages.max(1)),
            params,
            disk,
            next_sequential: u64::MAX,
            stats: DevStats::default(),
            phases: PhaseLog::default(),
            faults: None,
        }
    }

    /// A LAN mount backed by the Table 2 disk.
    pub fn lan_mount(name: impl Into<String>) -> Self {
        NfsServerDevice::new(
            name,
            crate::disk::DiskDevice::table2_disk("srv-hda"),
            NfsServerParams::default(),
        )
    }

    /// Whether `sector` is currently in the server's cache.
    pub fn server_cached(&self, sector: u64) -> bool {
        self.cache
            .contains(sleds_pagecache::PageKey::new(0, sector / SRV_PAGE_SECTORS))
    }

    /// Pages currently in the server cache.
    pub fn server_cached_pages(&self) -> usize {
        self.cache.len()
    }

    fn service(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        self.phases.clear();
        self.phases.add(PhaseKind::Rpc, self.params.per_op);
        let mut t = self.params.per_op;
        if start != self.next_sequential {
            self.phases.add(PhaseKind::Rpc, self.params.rtt);
            t += self.params.rtt;
        }
        self.next_sequential = start + sectors;
        // Server-side: fault missing pages from the server disk.
        let first_page = start / SRV_PAGE_SECTORS;
        let last_page = (start + sectors - 1) / SRV_PAGE_SECTORS;
        let mut p = first_page;
        while p <= last_page {
            let key = sleds_pagecache::PageKey::new(0, p);
            if self.cache.lookup(key) {
                p += 1;
                continue;
            }
            // Cluster the miss run.
            let run_start = p;
            let mut run_len = 1u64;
            while run_start + run_len <= last_page
                && !self
                    .cache
                    .contains(sleds_pagecache::PageKey::new(0, run_start + run_len))
            {
                run_len += 1;
            }
            let disk_t = self.disk.read(
                run_start * SRV_PAGE_SECTORS,
                run_len * SRV_PAGE_SECTORS,
                now + t,
            )?;
            self.phases.add(PhaseKind::ServerDisk, disk_t);
            t += disk_t;
            for i in 0..run_len {
                self.cache
                    .insert(sleds_pagecache::PageKey::new(0, run_start + i), false);
            }
            p = run_start + run_len;
        }
        // Link transfer of the payload.
        let link = self.params.link.transfer_time(sectors * SECTOR_SIZE);
        self.phases.add(PhaseKind::Link, link);
        t += link;
        Ok(t)
    }
}

impl BlockDevice for NfsServerDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> DeviceClass {
        DeviceClass::Network
    }

    fn capacity_sectors(&self) -> u64 {
        self.disk.capacity_sectors()
    }

    fn profile(&self) -> DeviceProfile {
        let disk = self.disk.profile();
        DeviceProfile {
            class: DeviceClass::Network,
            nominal_latency: self.params.rtt + disk.nominal_latency,
            nominal_bandwidth: Bandwidth::bytes_per_sec(
                self.params
                    .link
                    .as_bytes_per_sec()
                    .min(disk.nominal_bandwidth.as_bytes_per_sec()),
            ),
        }
    }

    fn read(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity_sectors(), start, sectors)?;
        let (mult, resume) = fault_gate(&mut self.faults, &mut self.phases, &self.name, now)?;
        let t = self.service(start, sectors, now)?;
        let t = apply_fault_overheads(&mut self.phases, t, mult, resume);
        self.stats.note_read(sectors, t, false);
        Ok(t)
    }

    fn write(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity_sectors(), start, sectors)?;
        let (mult, resume) = fault_gate(&mut self.faults, &mut self.phases, &self.name, now)?;
        // Write-through: link + disk, dirtying the server cache as clean
        // copies (the server commits before replying, as NFSv2 did).
        self.phases.clear();
        self.phases
            .add(PhaseKind::Rpc, self.params.per_op + self.params.rtt);
        let mut t = self.params.per_op + self.params.rtt;
        let link = self.params.link.transfer_time(sectors * SECTOR_SIZE);
        self.phases.add(PhaseKind::Link, link);
        t += link;
        let disk_t = self.disk.write(start, sectors, now + t)?;
        self.phases.add(PhaseKind::ServerDisk, disk_t);
        t += disk_t;
        let first_page = start / SRV_PAGE_SECTORS;
        let last_page = (start + sectors - 1) / SRV_PAGE_SECTORS;
        for p in first_page..=last_page {
            self.cache
                .insert(sleds_pagecache::PageKey::new(0, p), false);
        }
        self.next_sequential = start + sectors;
        let t = apply_fault_overheads(&mut self.phases, t, mult, resume);
        self.stats.note_write(sectors, t, false);
        Ok(t)
    }

    fn stats(&self) -> DevStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DevStats::default();
    }

    fn last_phases(&self) -> &[ServicePhase] {
        self.phases.as_slice()
    }

    fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    fn fault_epoch(&self, now: SimTime) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.epoch(now))
    }

    fn fault_state(&self, now: SimTime) -> FaultState {
        self.faults
            .as_ref()
            .map_or(FaultState::Healthy, |f| f.state(now))
    }

    fn dynamic_probe(&self, sector: u64) -> Option<(f64, f64)> {
        let link = self.params.link.as_bytes_per_sec();
        if self.server_cached(sector) {
            Some((self.params.rtt.as_secs_f64(), link))
        } else {
            let disk = self.disk.profile();
            Some((
                self.params.rtt.as_secs_f64() + disk.nominal_latency.as_secs_f64(),
                link.min(disk.nominal_bandwidth.as_bytes_per_sec()),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_pays_first_byte() {
        let mut nfs = NfsDevice::table2_mount("srv:/export");
        let t = nfs.read(0, 8, SimTime::ZERO).unwrap();
        assert!(t >= SimDuration::from_millis(260), "first access {t}");
    }

    #[test]
    fn sequential_run_is_bandwidth_limited() {
        let mut nfs = NfsDevice::table2_mount("srv:/export");
        nfs.read(0, 128, SimTime::ZERO).unwrap();
        let t = nfs.read(128, 128, SimTime::ZERO).unwrap();
        // 64 KiB at ~1 MB/s is ~64 ms; no first-byte penalty.
        assert!(t < SimDuration::from_millis(80), "sequential read {t}");
        assert!(t > SimDuration::from_millis(50), "sequential read {t}");
    }

    #[test]
    fn streaming_bandwidth_near_table2() {
        let mut nfs = NfsDevice::table2_mount("srv:/export");
        let mut total = SimDuration::ZERO;
        let cmds = (8u64 << 20) / (64 << 10);
        for i in 0..cmds {
            total += nfs.read(i * 128, 128, SimTime::ZERO).unwrap();
        }
        let bw = (8u64 << 20) as f64 / total.as_secs_f64() / 1e6;
        assert!((0.9..1.15).contains(&bw), "NFS streams at {bw} MB/s");
    }

    #[test]
    fn writes_work_and_pay_same_costs() {
        let mut nfs = NfsDevice::table2_mount("srv:/export");
        let t = nfs.write(1000, 8, SimTime::ZERO).unwrap();
        assert!(t >= SimDuration::from_millis(260));
        let t2 = nfs.write(1008, 8, SimTime::ZERO).unwrap();
        assert!(t2 < SimDuration::from_millis(20));
    }

    #[test]
    fn server_cache_splits_costs() {
        let mut srv = NfsServerDevice::lan_mount("lan0");
        // Cold read: RTT + disk + link.
        let cold = srv.read(0, 128, SimTime::ZERO).unwrap();
        assert!(cold >= SimDuration::from_millis(10), "cold read {cold}");
        // Same range again: server cache hit, RTT + link only.
        let warm = srv.read(0, 128, SimTime::ZERO).unwrap();
        assert!(warm < SimDuration::from_millis(12), "warm read {warm}");
        assert!(warm < cold);
        assert!(srv.server_cached(0));
        assert!(!srv.server_cached(1 << 20));
    }

    #[test]
    fn server_probe_reports_dynamic_state() {
        let mut srv = NfsServerDevice::lan_mount("lan0");
        srv.read(0, 128, SimTime::ZERO).unwrap();
        let (hot_lat, hot_bw) = srv.dynamic_probe(0).unwrap();
        let (cold_lat, cold_bw) = srv.dynamic_probe(1 << 20).unwrap();
        assert!(
            hot_lat < cold_lat,
            "cached range is cheaper: {hot_lat} vs {cold_lat}"
        );
        assert!(hot_bw >= cold_bw);
        // Hot latency is just the round trip.
        assert!((hot_lat - 0.002).abs() < 1e-9);
    }

    #[test]
    fn server_writes_are_write_through_and_cache() {
        let mut srv = NfsServerDevice::lan_mount("lan0");
        let t = srv.write(256, 8, SimTime::ZERO).unwrap();
        assert!(t >= SimDuration::from_millis(2), "write pays rtt+disk: {t}");
        assert!(srv.server_cached(256), "written data is hot on the server");
    }

    #[test]
    fn phases_split_rpc_firstbyte_link_and_server_disk() {
        let mut nfs = NfsDevice::table2_mount("srv:/export");
        let t = nfs.read(0, 128, SimTime::ZERO).unwrap();
        let total: SimDuration = nfs.last_phases().iter().map(|p| p.dur).sum();
        assert_eq!(total, t);
        let kinds: Vec<PhaseKind> = nfs.last_phases().iter().map(|p| p.kind).collect();
        assert_eq!(
            kinds,
            vec![PhaseKind::Rpc, PhaseKind::FirstByte, PhaseKind::Link]
        );

        let mut srv = NfsServerDevice::lan_mount("lan0");
        let cold = srv.read(0, 128, SimTime::ZERO).unwrap();
        let total: SimDuration = srv.last_phases().iter().map(|p| p.dur).sum();
        assert_eq!(total, cold);
        assert!(srv
            .last_phases()
            .iter()
            .any(|p| p.kind == PhaseKind::ServerDisk));
        // Warm hit: no server-disk phase.
        srv.read(0, 128, SimTime::ZERO).unwrap();
        assert!(!srv
            .last_phases()
            .iter()
            .any(|p| p.kind == PhaseKind::ServerDisk));
    }

    #[test]
    fn flat_nfs_device_has_no_dynamic_probe() {
        let nfs = NfsDevice::table2_mount("srv:/x");
        assert!(nfs.dynamic_probe(0).is_none());
    }

    #[test]
    fn jitter_varies_first_byte() {
        let mut nfs = NfsDevice::table2_mount("srv:/export").with_jitter(DetRng::new(5), 0.2);
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..8 {
            // Alternate far-apart offsets so each read repositions.
            let t = nfs.read(i * 100_000, 8, SimTime::ZERO).unwrap();
            seen.insert(t.as_nanos());
        }
        assert!(seen.len() > 1, "jitter should vary the penalty");
    }
}
