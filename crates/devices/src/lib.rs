//! Positional storage device models for the SLEDs simulator.
//!
//! The paper characterizes each storage level by a `(latency, bandwidth)`
//! pair measured with lmbench (Tables 2 and 3). This crate provides the
//! devices those measurements are taken *of*: models that carry enough
//! dynamic state (head position, rotation phase, tape position, mounted
//! cartridges) that sequential access is cheap, discontiguous access pays
//! positioning costs, and the measured pairs emerge rather than being wired
//! in.
//!
//! All devices implement [`BlockDevice`]: a sector-addressed read/write
//! interface that takes the current virtual time and returns how long the
//! operation takes. Devices never touch the clock themselves — the kernel
//! owns it — so a device is an ordinary deterministic state machine.

pub mod cdrom;
pub mod disk;
pub mod jukebox;
pub mod memory;
pub mod nfs;
pub mod tape;

use sleds_sim_core::{Bandwidth, SimDuration, SimResult, SimTime};

pub use cdrom::CdRomDevice;
pub use disk::{DiskDevice, DiskGeometry, Zone};
pub use jukebox::Jukebox;
pub use memory::MemoryDevice;
pub use nfs::{NfsDevice, NfsServerDevice, NfsServerParams};
pub use sleds_faults::{Decision, FaultInjector, FaultPlan, FaultState, FaultWindow};
pub use tape::TapeDevice;

/// The broad class a device belongs to, mirroring the storage levels in the
/// paper's Tables 2 and 3.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DeviceClass {
    /// Primary memory (the file system buffer cache lives here).
    Memory,
    /// A local hard disk.
    Disk,
    /// A CD-ROM drive.
    CdRom,
    /// A network file service (client side of NFS).
    Network,
    /// A tape drive or tape library.
    Tape,
}

impl DeviceClass {
    /// Human-readable name matching the rows of Table 2.
    pub fn label(self) -> &'static str {
        match self {
            DeviceClass::Memory => "memory",
            DeviceClass::Disk => "hard disk",
            DeviceClass::CdRom => "CD-ROM",
            DeviceClass::Network => "NFS",
            DeviceClass::Tape => "tape",
        }
    }

    /// Stable numeric code carried in trace-event payloads and the
    /// per-class metrics arrays (`sleds_trace::class_label` is its
    /// inverse). Declaration order, starting at 0.
    pub fn code(self) -> u64 {
        match self {
            DeviceClass::Memory => 0,
            DeviceClass::Disk => 1,
            DeviceClass::CdRom => 2,
            DeviceClass::Network => 3,
            DeviceClass::Tape => 4,
        }
    }
}

/// Nominal performance characteristics of a device.
///
/// These are the *designed* numbers; the sleds table that applications see is
/// filled from lmbench-style measurement (`sleds-lmbench`), exactly as the
/// paper fills its kernel table from a boot-time script.
#[derive(Clone, Copy, Debug)]
pub struct DeviceProfile {
    /// Device class.
    pub class: DeviceClass,
    /// Typical latency to the first byte of a random access.
    pub nominal_latency: SimDuration,
    /// Typical streaming bandwidth.
    pub nominal_bandwidth: Bandwidth,
}

/// Per-device operation counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DevStats {
    /// Number of read commands issued.
    pub reads: u64,
    /// Number of write commands issued.
    pub writes: u64,
    /// Total sectors read.
    pub sectors_read: u64,
    /// Total sectors written.
    pub sectors_written: u64,
    /// Total time the device spent servicing commands.
    pub busy: SimDuration,
    /// Number of repositioning operations (seeks, locates, mounts).
    pub repositions: u64,
}

impl DevStats {
    /// Records a read of `sectors` sectors taking `took`.
    pub fn note_read(&mut self, sectors: u64, took: SimDuration, repositioned: bool) {
        self.reads += 1;
        self.sectors_read += sectors;
        self.busy += took;
        if repositioned {
            self.repositions += 1;
        }
    }

    /// Records a write of `sectors` sectors taking `took`.
    pub fn note_write(&mut self, sectors: u64, took: SimDuration, repositioned: bool) {
        self.writes += 1;
        self.sectors_written += sectors;
        self.busy += took;
        if repositioned {
            self.repositions += 1;
        }
    }
}

/// One mechanical component of a device's service time.
///
/// Devices decompose each command's duration into phases (seek vs.
/// rotation vs. transfer, locate vs. stream, RPC vs. link) so the tracing
/// layer can attribute virtual time *inside* a device, not just to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PhaseKind {
    /// Fixed per-command overhead (controller, protocol setup).
    Overhead,
    /// Disk arm or CD-ROM pickup movement.
    Seek,
    /// Rotational wait for the target sector.
    Rotation,
    /// Media or bus data movement.
    Transfer,
    /// Head-switch time between tracks of one cylinder.
    HeadSwitch,
    /// Track-to-track repositioning during a multi-track transfer.
    TrackSwitch,
    /// Cartridge load (tape mount, jukebox load).
    Mount,
    /// Longitudinal tape positioning.
    Locate,
    /// Streaming tape transfer.
    Stream,
    /// Network RPC round-trip overhead.
    Rpc,
    /// Server-side wait for the first byte after a reposition.
    FirstByte,
    /// Network link transfer.
    Link,
    /// Jukebox robot arm movement.
    RobotMove,
    /// Time an NFS server spent on its backing disk.
    ServerDisk,
    /// Virtual time burned by an injected fault (a failed submission's
    /// cost, or the surplus of a degraded-window command).
    Fault,
    /// Resubmission overhead paid by the first success after a transient
    /// failure.
    Retry,
    /// Time a command spent queued behind earlier commands on the same
    /// device before service began. Computed by the kernel's per-device
    /// command queue, not by the device model: the device never sees the
    /// wait, it only sees the (later) service start time.
    QueueWait,
}

impl PhaseKind {
    /// Short lowercase label, stable for trace output.
    pub fn label(self) -> &'static str {
        match self {
            PhaseKind::Overhead => "overhead",
            PhaseKind::Seek => "seek",
            PhaseKind::Rotation => "rotation",
            PhaseKind::Transfer => "transfer",
            PhaseKind::HeadSwitch => "head_switch",
            PhaseKind::TrackSwitch => "track_switch",
            PhaseKind::Mount => "mount",
            PhaseKind::Locate => "locate",
            PhaseKind::Stream => "stream",
            PhaseKind::Rpc => "rpc",
            PhaseKind::FirstByte => "first_byte",
            PhaseKind::Link => "link",
            PhaseKind::RobotMove => "robot_move",
            PhaseKind::ServerDisk => "server_disk",
            PhaseKind::Fault => "fault",
            PhaseKind::Retry => "retry",
            PhaseKind::QueueWait => "queue_wait",
        }
    }
}

/// A phase and how long it took within one command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServicePhase {
    /// Which mechanical component.
    pub kind: PhaseKind,
    /// Time spent in it.
    pub dur: SimDuration,
}

/// Per-command phase accumulator kept by each device model.
///
/// Cleared at the start of every command; repeated contributions of one
/// kind (e.g. head switches during a long transfer) accumulate into a
/// single entry, so the log stays bounded by the number of phase kinds and
/// its order is the deterministic first-occurrence order.
#[derive(Clone, Debug, Default)]
pub struct PhaseLog {
    phases: Vec<ServicePhase>,
}

impl PhaseLog {
    /// Empties the log for a new command.
    pub fn clear(&mut self) {
        self.phases.clear();
    }

    /// Adds `dur` to the `kind` phase (no-op for zero durations).
    pub fn add(&mut self, kind: PhaseKind, dur: SimDuration) {
        if dur.is_zero() {
            return;
        }
        for p in &mut self.phases {
            if p.kind == kind {
                p.dur += dur;
                return;
            }
        }
        self.phases.push(ServicePhase { kind, dur });
    }

    /// The recorded phases in first-occurrence order.
    pub fn as_slice(&self) -> &[ServicePhase] {
        &self.phases
    }

    /// Sum of all recorded phase durations.
    pub fn total(&self) -> SimDuration {
        self.phases.iter().map(|p| p.dur).sum()
    }
}

/// A contiguous sector span with uniform performance — one row of a
/// device's self-characterization.
///
/// The paper's future-work section asks for "entries which account for the
/// different bandwidths of different disk zones" and proposes that "devices
/// or subsystems could be engineered to report their own performance
/// characteristics"; [`BlockDevice::zone_map`] is that reporting interface,
/// and the zoned sleds table consumes it.
#[derive(Clone, Copy, Debug)]
pub struct ZoneSpan {
    /// First sector of the span.
    pub start_sector: u64,
    /// Number of sectors.
    pub sectors: u64,
    /// Sustained bandwidth within the span.
    pub bandwidth: Bandwidth,
}

/// A sector-addressed storage device with positional state.
///
/// `read`/`write` return the service time for the command; the caller (the
/// simulated kernel) advances the clock. Implementations update their
/// positional state assuming the command completes at `now + returned
/// duration`.
pub trait BlockDevice {
    /// Short device name, e.g. `"hda"`.
    fn name(&self) -> &str;

    /// The device's class.
    fn class(&self) -> DeviceClass;

    /// Total capacity in sectors.
    fn capacity_sectors(&self) -> u64;

    /// Nominal performance characteristics.
    fn profile(&self) -> DeviceProfile;

    /// Reads `sectors` sectors starting at `start`, returning service time.
    fn read(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration>;

    /// Writes `sectors` sectors starting at `start`, returning service time.
    fn write(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration>;

    /// Operation counters.
    fn stats(&self) -> DevStats;

    /// Resets operation counters (positional state is preserved).
    fn reset_stats(&mut self);

    /// Self-characterization: the device's performance zones.
    ///
    /// The default is a single span at the nominal bandwidth; zoned devices
    /// (disks) override this so a zone-aware sleds table can assign
    /// different bandwidths to different parts of one file — the paper's
    /// "future version" extension.
    fn zone_map(&self) -> Vec<ZoneSpan> {
        vec![ZoneSpan {
            start_sector: 0,
            sectors: self.capacity_sectors(),
            bandwidth: self.profile().nominal_bandwidth,
        }]
    }

    /// Mechanical breakdown of the most recent `read`/`write` service time,
    /// in service order. Devices that record phases clear and refill their
    /// [`PhaseLog`] on every command; the default reports nothing.
    fn last_phases(&self) -> &[ServicePhase] {
        &[]
    }

    /// Dynamic self-report: `(latency seconds, bandwidth bytes/s)` for
    /// retrieving `sector` *right now*, if the device knows.
    ///
    /// This is the paper's proposal that "SLEDs be the vocabulary of
    /// communication between clients and servers": a storage server with
    /// its own cache can tell the client which ranges are hot on its side.
    /// Devices without dynamic state to report return `None` and the sleds
    /// table's static rows apply.
    fn dynamic_probe(&self, _sector: u64) -> Option<(f64, f64)> {
        None
    }

    /// Installs a fault injector the device consults on every command.
    ///
    /// The default discards it: a device model that has not been taught to
    /// consult an injector simply never faults.
    fn set_fault_injector(&mut self, _injector: FaultInjector) {}

    /// The device's fault epoch at `now`: how many fault-window boundaries
    /// have passed. Monotone; the kernel folds it into `sled_generation` so
    /// cached SLED vectors invalidate when the health regime changes.
    fn fault_epoch(&self, _now: SimTime) -> u64 {
        0
    }

    /// Coarse health at `now`, for SLED pricing. Pure: never consumes
    /// transient fault budget.
    fn fault_state(&self, _now: SimTime) -> FaultState {
        FaultState::Healthy
    }
}

/// Consults an optional fault injector at the top of a command.
///
/// On a fail decision the phase log is reset to a single `Fault` phase
/// carrying the burned cost — the span still sums exactly to the virtual
/// time the failed submission consumed — and the injected errno is
/// returned. On proceed, yields `(multiplier, resume)` for
/// [`apply_fault_overheads`] once the mechanical service time is known.
pub(crate) fn fault_gate(
    faults: &mut Option<FaultInjector>,
    phases: &mut PhaseLog,
    name: &str,
    now: SimTime,
) -> SimResult<(f64, SimDuration)> {
    use sleds_sim_core::SimError;
    let decision = match faults.as_mut() {
        Some(inj) => inj.decide(now),
        None => Decision::CLEAN,
    };
    match decision {
        Decision::Fail { errno, cost } => {
            phases.clear();
            phases.add(PhaseKind::Fault, cost);
            Err(SimError::new(errno, format!("{name}: injected fault")))
        }
        Decision::Proceed { multiplier, resume } => Ok((multiplier, resume)),
    }
}

/// Folds fault overheads into a command that did proceed: the degraded
/// surplus (`t * (multiplier - 1)`) lands in a `Fault` phase and the
/// resubmission overhead in a `Retry` phase, so phases still sum exactly to
/// the returned service time.
pub(crate) fn apply_fault_overheads(
    phases: &mut PhaseLog,
    t: SimDuration,
    multiplier: f64,
    resume: SimDuration,
) -> SimDuration {
    let mut total = t;
    if multiplier > 1.0 {
        let surplus = SimDuration::from_secs_f64(t.as_secs_f64() * (multiplier - 1.0));
        phases.add(PhaseKind::Fault, surplus);
        total += surplus;
    }
    if !resume.is_zero() {
        phases.add(PhaseKind::Retry, resume);
        total += resume;
    }
    total
}

/// Validates a sector range against a device capacity.
///
/// Shared by every implementation so range errors are uniform.
pub(crate) fn check_range(name: &str, capacity: u64, start: u64, sectors: u64) -> SimResult<()> {
    use sleds_sim_core::{Errno, SimError};
    let end = start.checked_add(sectors);
    match end {
        Some(end) if end <= capacity && sectors > 0 => Ok(()),
        _ => Err(SimError::new(
            Errno::Einval,
            format!("{name}: sector range {start}+{sectors} exceeds capacity {capacity}"),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_labels() {
        assert_eq!(DeviceClass::Memory.label(), "memory");
        assert_eq!(DeviceClass::Network.label(), "NFS");
    }

    #[test]
    fn check_range_accepts_and_rejects() {
        assert!(check_range("d", 100, 0, 100).is_ok());
        assert!(check_range("d", 100, 99, 1).is_ok());
        assert!(check_range("d", 100, 99, 2).is_err());
        assert!(check_range("d", 100, 0, 0).is_err());
        assert!(check_range("d", 100, u64::MAX, 2).is_err());
    }

    #[test]
    fn phase_log_accumulates_by_kind_in_first_occurrence_order() {
        let mut log = PhaseLog::default();
        log.add(PhaseKind::Seek, SimDuration::from_micros(10));
        log.add(PhaseKind::Transfer, SimDuration::from_micros(5));
        log.add(PhaseKind::Rotation, SimDuration::ZERO); // elided
        log.add(PhaseKind::Seek, SimDuration::from_micros(2));
        let phases = log.as_slice();
        assert_eq!(phases.len(), 2);
        assert_eq!(phases[0].kind, PhaseKind::Seek);
        assert_eq!(phases[0].dur, SimDuration::from_micros(12));
        assert_eq!(phases[1].kind, PhaseKind::Transfer);
        assert_eq!(log.total(), SimDuration::from_micros(17));
        log.clear();
        assert!(log.as_slice().is_empty());
    }

    #[test]
    fn devstats_accumulate() {
        let mut s = DevStats::default();
        s.note_read(8, SimDuration::from_millis(5), true);
        s.note_write(4, SimDuration::from_millis(2), false);
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.sectors_read, 8);
        assert_eq!(s.sectors_written, 4);
        assert_eq!(s.repositions, 1);
        assert_eq!(s.busy, SimDuration::from_millis(7));
    }
}
