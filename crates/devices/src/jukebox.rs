//! A tape autochanger (jukebox).
//!
//! A jukebox holds many cartridges and a few drives; a robot arm exchanges
//! cartridges between slots and drives. Its address space is the
//! concatenation of its cartridges, so the HSM file system can treat the
//! whole library as one very large, very slow block device. The dynamic
//! state the paper cares about — *which tapes are mounted right now* — lives
//! here: a read that hits a mounted cartridge skips tens of seconds of robot
//! and load time.

use sleds_sim_core::{SimDuration, SimResult, SimTime};

use crate::tape::{no_medium, TapeDevice, TapeParams};
use crate::{
    apply_fault_overheads, check_range, fault_gate, BlockDevice, DevStats, DeviceClass,
    DeviceProfile, FaultInjector, FaultState, PhaseKind, PhaseLog, ServicePhase,
};

/// Robot timing for a jukebox.
#[derive(Clone, Copy, Debug)]
pub struct JukeboxParams {
    /// Time for the robot to move a cartridge between a slot and a drive.
    pub robot_move: SimDuration,
    /// Per-cartridge tape parameters.
    pub tape: TapeParams,
}

impl Default for JukeboxParams {
    fn default() -> Self {
        JukeboxParams {
            robot_move: SimDuration::from_secs(12),
            tape: TapeParams::default(),
        }
    }
}

/// A tape library: `cartridges` tapes, `drives` drives, one robot.
#[derive(Clone, Debug)]
pub struct Jukebox {
    name: String,
    params: JukeboxParams,
    cartridges: Vec<TapeDevice>,
    /// `drive_of[c] = Some(d)` when cartridge `c` is in drive `d`.
    drive_of: Vec<Option<usize>>,
    /// `in_drive[d] = Some(c)` when drive `d` holds cartridge `c`.
    in_drive: Vec<Option<usize>>,
    /// LRU order of drives (front = least recently used).
    drive_lru: Vec<usize>,
    cart_sectors: u64,
    stats: DevStats,
    phases: PhaseLog,
    faults: Option<FaultInjector>,
}

impl Jukebox {
    /// Creates a jukebox with `cartridges` tapes and `drives` drives.
    ///
    /// # Panics
    ///
    /// Panics if `cartridges == 0` or `drives == 0`.
    pub fn new(
        name: impl Into<String>,
        cartridges: usize,
        drives: usize,
        params: JukeboxParams,
    ) -> Self {
        assert!(cartridges > 0, "jukebox needs cartridges");
        assert!(drives > 0, "jukebox needs drives");
        let name = name.into();
        let tapes = (0..cartridges)
            .map(|i| TapeDevice::new(format!("{name}.tape{i}"), params.tape))
            .collect::<Vec<_>>();
        let cart_sectors = tapes[0].capacity_sectors();
        Jukebox {
            name,
            params,
            cartridges: tapes,
            drive_of: vec![None; cartridges],
            in_drive: vec![None; drives],
            drive_lru: (0..drives).collect(),
            cart_sectors,
            stats: DevStats::default(),
            phases: PhaseLog::default(),
            faults: None,
        }
    }

    /// Number of cartridges.
    pub fn cartridge_count(&self) -> usize {
        self.cartridges.len()
    }

    /// Number of drives.
    pub fn drive_count(&self) -> usize {
        self.in_drive.len()
    }

    /// Capacity of a single cartridge, in sectors.
    pub fn cartridge_sectors(&self) -> u64 {
        self.cart_sectors
    }

    /// Whether cartridge `c` is currently mounted in some drive.
    pub fn is_mounted(&self, c: usize) -> bool {
        self.drive_of.get(c).copied().flatten().is_some()
    }

    /// The cartridge that holds `sector`.
    pub fn cartridge_of(&self, sector: u64) -> usize {
        (sector / self.cart_sectors) as usize
    }

    fn touch_drive(&mut self, d: usize) {
        self.drive_lru.retain(|&x| x != d);
        self.drive_lru.push(d);
    }

    /// Ensures cartridge `c` is mounted; returns (drive, time spent).
    fn mount(&mut self, c: usize) -> SimResult<(usize, SimDuration)> {
        if c >= self.cartridges.len() {
            return Err(no_medium(&self.name));
        }
        if let Some(d) = self.drive_of[c] {
            self.touch_drive(d);
            return Ok((d, SimDuration::ZERO));
        }
        let mut spent = SimDuration::ZERO;
        // Pick the least recently used drive; empty drives come first.
        let d = self
            .in_drive
            .iter()
            .position(|slot| slot.is_none())
            .unwrap_or_else(|| self.drive_lru[0]);
        if let Some(old) = self.in_drive[d] {
            let unload = self.cartridges[old].unload();
            self.phases.add(PhaseKind::Mount, unload);
            spent += unload;
            self.phases
                .add(PhaseKind::RobotMove, self.params.robot_move);
            spent += self.params.robot_move; // drive -> slot
            self.drive_of[old] = None;
        }
        self.phases
            .add(PhaseKind::RobotMove, self.params.robot_move);
        spent += self.params.robot_move; // slot -> drive
        let load = self.cartridges[c].ensure_loaded();
        self.phases.add(PhaseKind::Mount, load);
        spent += load;
        self.in_drive[d] = Some(c);
        self.drive_of[c] = Some(d);
        self.touch_drive(d);
        self.stats.repositions += 1;
        Ok((d, spent))
    }

    fn service(
        &mut self,
        start: u64,
        sectors: u64,
        now: SimTime,
        write: bool,
    ) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity_sectors(), start, sectors)?;
        let c = self.cartridge_of(start);
        let end_cart = self.cartridge_of(start + sectors - 1);
        if c != end_cart {
            return Err(sleds_sim_core::SimError::new(
                sleds_sim_core::Errno::Einval,
                format!("{}: transfer crosses cartridge boundary", self.name),
            ));
        }
        self.phases.clear();
        let (mult, resume) = fault_gate(&mut self.faults, &mut self.phases, &self.name, now)?;
        let (_, mut t) = self.mount(c)?;
        let local = start - c as u64 * self.cart_sectors;
        t += if write {
            self.cartridges[c].write(local, sectors, now)?
        } else {
            self.cartridges[c].read(local, sectors, now)?
        };
        // Fold the cartridge's own breakdown (locate, stream) into ours so
        // `last_phases` covers the full service time.
        for i in 0..self.cartridges[c].last_phases().len() {
            let p = self.cartridges[c].last_phases()[i];
            self.phases.add(p.kind, p.dur);
        }
        let t = apply_fault_overheads(&mut self.phases, t, mult, resume);
        Ok(t)
    }
}

impl BlockDevice for Jukebox {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> DeviceClass {
        DeviceClass::Tape
    }

    fn capacity_sectors(&self) -> u64 {
        self.cart_sectors * self.cartridges.len() as u64
    }

    fn profile(&self) -> DeviceProfile {
        // Cold access: robot exchange plus the tape's own mount + locate.
        let tape_profile = self.cartridges[0].profile();
        DeviceProfile {
            class: DeviceClass::Tape,
            nominal_latency: tape_profile.nominal_latency + self.params.robot_move * 2,
            nominal_bandwidth: tape_profile.nominal_bandwidth,
        }
    }

    fn read(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        let t = self.service(start, sectors, now, false)?;
        self.stats.note_read(sectors, t, false);
        Ok(t)
    }

    fn write(&mut self, start: u64, sectors: u64, now: SimTime) -> SimResult<SimDuration> {
        let t = self.service(start, sectors, now, true)?;
        self.stats.note_write(sectors, t, false);
        Ok(t)
    }

    fn stats(&self) -> DevStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DevStats::default();
        for t in &mut self.cartridges {
            t.reset_stats();
        }
    }

    fn last_phases(&self) -> &[ServicePhase] {
        self.phases.as_slice()
    }

    fn set_fault_injector(&mut self, injector: FaultInjector) {
        self.faults = Some(injector);
    }

    fn fault_epoch(&self, now: SimTime) -> u64 {
        self.faults.as_ref().map_or(0, |f| f.epoch(now))
    }

    fn fault_state(&self, now: SimTime) -> FaultState {
        self.faults
            .as_ref()
            .map_or(FaultState::Healthy, |f| f.state(now))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_jukebox(drives: usize) -> Jukebox {
        Jukebox::new("jb0", 4, drives, JukeboxParams::default())
    }

    #[test]
    fn first_access_mounts_cartridge() {
        let mut jb = small_jukebox(1);
        assert!(!jb.is_mounted(0));
        let t = jb.read(0, 8, SimTime::ZERO).unwrap();
        // Robot move + load.
        assert!(t >= SimDuration::from_secs(50), "cold mount {t}");
        assert!(jb.is_mounted(0));
    }

    #[test]
    fn mounted_cartridge_skips_robot() {
        let mut jb = small_jukebox(1);
        jb.read(0, 8, SimTime::ZERO).unwrap();
        let t = jb.read(8, 8, SimTime::ZERO).unwrap();
        assert!(t < SimDuration::from_secs(1), "warm read {t}");
    }

    #[test]
    fn second_cartridge_evicts_lru_with_one_drive() {
        let mut jb = small_jukebox(1);
        let cart = jb.cartridge_sectors();
        jb.read(0, 8, SimTime::ZERO).unwrap();
        let t = jb.read(cart, 8, SimTime::ZERO).unwrap();
        // Unload (rewind) + two robot moves + load.
        assert!(t >= SimDuration::from_secs(60), "exchange {t}");
        assert!(!jb.is_mounted(0));
        assert!(jb.is_mounted(1));
    }

    #[test]
    fn two_drives_keep_both_mounted() {
        let mut jb = small_jukebox(2);
        let cart = jb.cartridge_sectors();
        jb.read(0, 8, SimTime::ZERO).unwrap();
        jb.read(cart, 8, SimTime::ZERO).unwrap();
        assert!(jb.is_mounted(0));
        assert!(jb.is_mounted(1));
        // Alternating reads now stay cheap.
        let t0 = jb.read(8, 8, SimTime::ZERO).unwrap();
        let t1 = jb.read(cart + 8, 8, SimTime::ZERO).unwrap();
        assert!(t0 < SimDuration::from_secs(1));
        assert!(t1 < SimDuration::from_secs(1));
    }

    #[test]
    fn lru_drive_is_victim() {
        let mut jb = small_jukebox(2);
        let cart = jb.cartridge_sectors();
        jb.read(0, 8, SimTime::ZERO).unwrap(); // cart 0 -> drive
        jb.read(cart, 8, SimTime::ZERO).unwrap(); // cart 1 -> drive
        jb.read(8, 8, SimTime::ZERO).unwrap(); // touch cart 0
        jb.read(2 * cart, 8, SimTime::ZERO).unwrap(); // cart 2 evicts cart 1
        assert!(jb.is_mounted(0));
        assert!(!jb.is_mounted(1));
        assert!(jb.is_mounted(2));
    }

    #[test]
    fn phases_cover_robot_mount_and_tape_time() {
        let mut jb = small_jukebox(1);
        let cart = jb.cartridge_sectors();
        let t = jb.read(cart + 1000, 8, SimTime::ZERO).unwrap();
        let total: SimDuration = jb.last_phases().iter().map(|p| p.dur).sum();
        assert_eq!(total, t);
        let kinds: Vec<PhaseKind> = jb.last_phases().iter().map(|p| p.kind).collect();
        assert!(kinds.contains(&PhaseKind::RobotMove));
        assert!(kinds.contains(&PhaseKind::Mount));
        assert!(kinds.contains(&PhaseKind::Locate));
        assert!(kinds.contains(&PhaseKind::Stream));
        // A warm sequential read is pure streaming.
        let t2 = jb.read(cart + 1008, 8, SimTime::ZERO).unwrap();
        let kinds2: Vec<PhaseKind> = jb.last_phases().iter().map(|p| p.kind).collect();
        assert_eq!(kinds2, vec![PhaseKind::Stream]);
        let total2: SimDuration = jb.last_phases().iter().map(|p| p.dur).sum();
        assert_eq!(total2, t2);
    }

    #[test]
    fn cross_cartridge_transfer_rejected() {
        let mut jb = small_jukebox(1);
        let cart = jb.cartridge_sectors();
        assert!(jb.read(cart - 4, 8, SimTime::ZERO).is_err());
    }

    #[test]
    fn capacity_is_sum_of_cartridges() {
        let jb = small_jukebox(1);
        assert_eq!(jb.capacity_sectors(), jb.cartridge_sectors() * 4);
        assert_eq!(jb.cartridge_of(jb.cartridge_sectors() * 3), 3);
    }
}
