//! Primary memory as a storage level.
//!
//! The paper's Table 2 lists memory at 175 ns latency and 48 MB/s copy
//! bandwidth: the cost of delivering *cached* data to an application through
//! `read(2)` (one memcpy on late-1990s hardware). This device models exactly
//! that — it is what a page-cache hit costs.

use sleds_sim_core::{Bandwidth, SimDuration, SimResult, SimTime};

use crate::{
    check_range, BlockDevice, DevStats, DeviceClass, DeviceProfile, PhaseKind, PhaseLog,
    ServicePhase,
};

/// A RAM "device": fixed latency plus copy bandwidth, no positional state.
#[derive(Debug, Clone)]
pub struct MemoryDevice {
    name: String,
    capacity_sectors: u64,
    latency: SimDuration,
    bandwidth: Bandwidth,
    stats: DevStats,
    phases: PhaseLog,
}

impl MemoryDevice {
    /// Creates a memory device.
    ///
    /// `latency` is the fixed per-access cost and `bandwidth` the copy rate.
    pub fn new(
        name: impl Into<String>,
        capacity_bytes: u64,
        latency: SimDuration,
        bandwidth: Bandwidth,
    ) -> Self {
        MemoryDevice {
            name: name.into(),
            capacity_sectors: capacity_bytes / sleds_sim_core::SECTOR_SIZE,
            latency,
            bandwidth,
            stats: DevStats::default(),
            phases: PhaseLog::default(),
        }
    }

    /// Memory as measured in Table 2 (Unix-utility machine): 175 ns, 48 MB/s.
    pub fn table2(name: impl Into<String>, capacity_bytes: u64) -> Self {
        MemoryDevice::new(
            name,
            capacity_bytes,
            SimDuration::from_nanos(175),
            Bandwidth::mb_per_sec(48.0),
        )
    }

    /// Memory as measured in Table 3 (LHEASOFT machine): 210 ns, 87 MB/s.
    pub fn table3(name: impl Into<String>, capacity_bytes: u64) -> Self {
        MemoryDevice::new(
            name,
            capacity_bytes,
            SimDuration::from_nanos(210),
            Bandwidth::mb_per_sec(87.0),
        )
    }

    fn xfer(&mut self, sectors: u64) -> SimDuration {
        let copy = self
            .bandwidth
            .transfer_time(sectors * sleds_sim_core::SECTOR_SIZE);
        self.phases.clear();
        self.phases.add(PhaseKind::Overhead, self.latency);
        self.phases.add(PhaseKind::Transfer, copy);
        self.latency + copy
    }
}

impl BlockDevice for MemoryDevice {
    fn name(&self) -> &str {
        &self.name
    }

    fn class(&self) -> DeviceClass {
        DeviceClass::Memory
    }

    fn capacity_sectors(&self) -> u64 {
        self.capacity_sectors
    }

    fn profile(&self) -> DeviceProfile {
        DeviceProfile {
            class: DeviceClass::Memory,
            nominal_latency: self.latency,
            nominal_bandwidth: self.bandwidth,
        }
    }

    fn read(&mut self, start: u64, sectors: u64, _now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity_sectors, start, sectors)?;
        let t = self.xfer(sectors);
        self.stats.note_read(sectors, t, false);
        Ok(t)
    }

    fn write(&mut self, start: u64, sectors: u64, _now: SimTime) -> SimResult<SimDuration> {
        check_range(&self.name, self.capacity_sectors, start, sectors)?;
        let t = self.xfer(sectors);
        self.stats.note_write(sectors, t, false);
        Ok(t)
    }

    fn stats(&self) -> DevStats {
        self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = DevStats::default();
    }

    fn last_phases(&self) -> &[ServicePhase] {
        self.phases.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sleds_sim_core::PAGE_SIZE;

    #[test]
    fn phases_split_latency_and_copy() {
        let mut m = MemoryDevice::table2("ram", 64 << 20);
        let t = m.read(0, 8, SimTime::ZERO).unwrap();
        let total: SimDuration = m.last_phases().iter().map(|p| p.dur).sum();
        assert_eq!(total, t);
        let kinds: Vec<PhaseKind> = m.last_phases().iter().map(|p| p.kind).collect();
        assert_eq!(kinds, vec![PhaseKind::Overhead, PhaseKind::Transfer]);
    }

    #[test]
    fn page_copy_cost_matches_table2() {
        let mut m = MemoryDevice::table2("ram", 64 << 20);
        let t = m.read(0, PAGE_SIZE / 512, SimTime::ZERO).expect("in range");
        // 175ns + 4096B / 48MB/s = 175ns + 85333ns.
        let expect = 175 + (4096.0 / 48e6 * 1e9) as u64;
        assert!((t.as_nanos() as i64 - expect as i64).abs() <= 1);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut m = MemoryDevice::table2("ram", 4096);
        assert!(m.read(8, 1, SimTime::ZERO).is_err());
        assert!(m.write(0, 9, SimTime::ZERO).is_err());
    }

    #[test]
    fn stats_track_reads_and_writes() {
        let mut m = MemoryDevice::table3("ram", 1 << 20);
        m.read(0, 8, SimTime::ZERO).unwrap();
        m.write(8, 8, SimTime::ZERO).unwrap();
        let s = m.stats();
        assert_eq!(s.reads, 1);
        assert_eq!(s.writes, 1);
        assert_eq!(s.sectors_read, 8);
        m.reset_stats();
        assert_eq!(m.stats(), DevStats::default());
    }
}
