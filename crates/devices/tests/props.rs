//! Property tests for the device models: bounds, monotonicity and state
//! invariants that must hold for any access sequence.
//!
//! Runs under the in-repo `check` harness; enable with
//! `cargo test -p sleds-devices --features proptests`.

use sleds_devices::{BlockDevice, CdRomDevice, DiskDevice, NfsDevice, NfsServerDevice, TapeDevice};
use sleds_sim_core::{check, SimDuration, SimTime};

/// Upper bound on any single disk command in the tests below: full-stroke
/// seek + a few revolutions + generous transfer time.
const DISK_CMD_BOUND_S: f64 = 0.5;

/// Every valid disk read completes in bounded, positive time, and the
/// head ends on the target cylinder region.
#[test]
fn disk_reads_are_bounded() {
    check::run("disk_reads_are_bounded", |rng| {
        let mut d = DiskDevice::table2_disk("hda");
        let cap = d.capacity_sectors();
        let mut now = SimTime::ZERO;
        let nops = rng.range_usize(1, 40);
        for _ in 0..nops {
            let start = rng.range_u64(0, 10_000_000) % (cap - 256);
            let len = rng.range_u64(1, 256);
            let t = d.read(start, len, now).unwrap();
            assert!(t > SimDuration::ZERO);
            assert!(t.as_secs_f64() < DISK_CMD_BOUND_S, "command took {t}");
            now += t;
        }
    });
}

/// Reading a span as one command costs no more than reading it as two
/// back-to-back commands, up to one track/head switch: a sequential
/// continuation streams from the drive's read-ahead buffer, which can
/// absorb a switch the single command pays explicitly.
#[test]
fn disk_splitting_never_helps_much() {
    check::run("disk_splitting_never_helps_much", |rng| {
        let start = rng.range_u64(0, 1_000_000);
        let first = rng.range_u64(8, 64);
        let second = rng.range_u64(8, 64);
        let mut whole = DiskDevice::table2_disk("a");
        let mut split = DiskDevice::table2_disk("b");
        let t_whole = whole.read(start, first + second, SimTime::ZERO).unwrap();
        let t1 = split.read(start, first, SimTime::ZERO).unwrap();
        let t2 = split
            .read(start + first, second, SimTime::ZERO + t1)
            .unwrap();
        let switch_allowance = SimDuration::from_millis(3);
        assert!(
            t_whole <= t1 + t2 + switch_allowance,
            "whole {t_whole} vs split {}",
            t1 + t2
        );
        // And the split never beats the whole by more than its own fixed
        // per-command costs in the other direction either.
        assert!(
            t1 + t2 <= t_whole + SimDuration::from_millis(25),
            "split {} vs whole {t_whole}",
            t1 + t2
        );
    });
}

/// The seek curve is monotone in distance.
#[test]
fn disk_seek_monotone() {
    check::run("disk_seek_monotone", |rng| {
        let disk = DiskDevice::table2_disk("hda");
        let d1 = rng.range_u64(0, 11_999) as u32;
        let d2 = rng.range_u64(0, 11_999) as u32;
        let (lo, hi) = if d1 <= d2 { (d1, d2) } else { (d2, d1) };
        assert!(disk.seek_time(lo) <= disk.seek_time(hi));
    });
}

/// CD-ROM: sequential continuation is never slower than the same read
/// after an intervening far seek.
#[test]
fn cdrom_seeks_cost() {
    check::run("cdrom_seeks_cost", |rng| {
        let start = rng.range_u64(0, 1_000_000);
        let len = rng.range_u64(8, 128);
        let mut a = CdRomDevice::table2_drive("a");
        let mut b = CdRomDevice::table2_drive("b");
        // a: two sequential reads.
        a.read(start, len, SimTime::ZERO).unwrap();
        let seq = a.read(start + len, len, SimTime::ZERO).unwrap();
        // b: same second read, but the laser parked far away.
        b.read(start, len, SimTime::ZERO).unwrap();
        b.read((start + 500_000) % 1_200_000, 8, SimTime::ZERO)
            .unwrap();
        let after_seek = b.read(start + len, len, SimTime::ZERO).unwrap();
        assert!(seq < after_seek);
    });
}

/// Tape locate time is bounded by a full pass plus fixed costs, and
/// repeated reads at the same position don't relocate.
#[test]
fn tape_locates_bounded() {
    check::run("tape_locates_bounded", |rng| {
        let mut t = TapeDevice::dlt("st0");
        let cap = t.capacity_sectors();
        let mut now = SimTime::ZERO;
        t.read(0, 8, now).unwrap(); // mount
        let ntargets = rng.range_usize(1, 12);
        for _ in 0..ntargets {
            let target = rng.range_u64(0, 40_000_000) % (cap - 8);
            let d = t.read(target, 8, now).unwrap();
            now += d;
            // locate_base + full longitudinal pass at search speed +
            // wrap change + stop/start + transfer: generously < 300 s.
            assert!(d.as_secs_f64() < 300.0, "locate took {d}");
            // Re-read of the next sectors streams.
            let d2 = t.read(target + 8, 8, now).unwrap();
            assert!(d2 < SimDuration::from_millis(10), "stream read {d2}");
            now += d2;
        }
    });
}

/// The NFS flat device: cost is exactly latency-once-then-bandwidth
/// for any split of a sequential scan.
#[test]
fn nfs_sequential_cost_is_split_invariant() {
    check::run("nfs_sequential_cost_is_split_invariant", |rng| {
        let nchunks = rng.range_usize(1, 20);
        let chunks: Vec<u64> = (0..nchunks).map(|_| rng.range_u64(8, 512)).collect();
        let mut one = NfsDevice::table2_mount("a");
        let mut many = NfsDevice::table2_mount("b");
        let total: u64 = chunks.iter().sum();
        let t_one = one.read(0, total, SimTime::ZERO).unwrap();
        let mut t_many = SimDuration::ZERO;
        let mut pos = 0;
        let mut per_op_count = 0;
        for c in &chunks {
            t_many += many.read(pos, *c, SimTime::ZERO).unwrap();
            pos += c;
            per_op_count += 1;
        }
        // The split pays one extra per-op overhead per chunk, nothing else.
        let per_op = SimDuration::from_micros(800);
        let expected_extra = per_op * (per_op_count - 1);
        let diff = t_many - t_one;
        assert!(
            diff <= expected_extra + SimDuration::from_micros(1),
            "diff {diff} vs expected {expected_extra}"
        );
    });
}

/// The NFS server's cache makes rereads cheaper, never dearer.
#[test]
fn nfs_server_rereads_never_dearer() {
    check::run("nfs_server_rereads_never_dearer", |rng| {
        let mut srv = NfsServerDevice::lan_mount("lan0");
        let nreads = rng.range_usize(1, 16);
        for _ in 0..nreads {
            let start = rng.range_u64(0, 100_000);
            let len = rng.range_u64(8, 64);
            let cold = srv.read(start, len, SimTime::ZERO).unwrap();
            // Break sequentiality so both pay the RTT.
            srv.read((start + 1_000_000) % 9_000_000, 8, SimTime::ZERO)
                .unwrap();
            let warm = srv.read(start, len, SimTime::ZERO).unwrap();
            assert!(warm <= cold, "warm {warm} > cold {cold}");
        }
    });
}
