//! The Pike VM: NFA execution in lockstep over the text.
//!
//! Threads carry their match start position and live in priority order
//! (earlier starts, and earlier alternatives, first). When a thread reaches
//! `Match`, every lower-priority thread is cut — so alternation prefers its
//! left branch and greedy loops keep extending — while higher-priority
//! threads may still produce a better match later. Runtime is
//! `O(instructions × text)`.

use crate::ast::ByteClass;
use crate::compile::{Inst, Prog};

/// A scheduled thread: program counter plus match start.
#[derive(Clone, Copy, Debug)]
struct Thread {
    pc: usize,
    start: usize,
}

/// Thread list with O(1) pc dedup via generation marks.
struct ThreadList {
    threads: Vec<Thread>,
    seen_gen: Vec<u64>,
    gen: u64,
}

impl ThreadList {
    fn new(prog_len: usize) -> Self {
        ThreadList {
            threads: Vec::with_capacity(prog_len),
            seen_gen: vec![0; prog_len],
            // Generations start at 1: a zeroed mark must mean "never seen".
            gen: 1,
        }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.gen += 1;
    }

    /// Adds `pc` (following epsilon edges) unless already present this
    /// generation. First add wins, preserving priority.
    fn add(&mut self, prog: &Prog, pc: usize, start: usize, pos: usize, len: usize) {
        if self.seen_gen[pc] == self.gen {
            return;
        }
        self.seen_gen[pc] = self.gen;
        match &prog.insts[pc] {
            Inst::Jump(next) => self.add(prog, *next, start, pos, len),
            Inst::Split(a, b) => {
                let (a, b) = (*a, *b);
                self.add(prog, a, start, pos, len);
                self.add(prog, b, start, pos, len);
            }
            Inst::AssertStart(next) => {
                if pos == 0 {
                    self.add(prog, *next, start, pos, len);
                }
            }
            Inst::AssertEnd(next) => {
                if pos == len {
                    self.add(prog, *next, start, pos, len);
                }
            }
            Inst::Class(..) | Inst::Match => self.threads.push(Thread { pc, start }),
        }
    }
}

/// Searches `hay` for the leftmost match; returns `(start, end)` offsets.
pub fn search(prog: &Prog, hay: &[u8]) -> Option<(usize, usize)> {
    let len = hay.len();
    let mut clist = ThreadList::new(prog.insts.len());
    let mut nlist = ThreadList::new(prog.insts.len());
    let mut matched: Option<(usize, usize)> = None;

    for pos in 0..=len {
        // New start threads have the lowest priority; stop seeding once a
        // match exists (leftmost preference).
        if matched.is_none() {
            clist.add(prog, 0, pos, pos, len);
        }
        if clist.threads.is_empty() {
            if matched.is_some() {
                break;
            }
            continue;
        }
        nlist.clear();
        let byte = hay.get(pos).copied();
        let mut cut = None;
        for (idx, th) in clist.threads.iter().enumerate() {
            match &prog.insts[th.pc] {
                Inst::Class(class, next) => {
                    if let Some(b) = byte {
                        if class_matches(class, b) {
                            nlist.add(prog, *next, th.start, pos + 1, len);
                        }
                    }
                }
                Inst::Match => {
                    // This thread outranks every later one: record and cut.
                    matched = Some((th.start, pos));
                    cut = Some(idx);
                    break;
                }
                // Epsilon instructions never appear in a thread list.
                _ => unreachable!("epsilon inst scheduled"),
            }
        }
        let _ = cut;
        std::mem::swap(&mut clist, &mut nlist);
    }
    matched
}

fn class_matches(class: &ByteClass, b: u8) -> bool {
    class.matches(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;
    use crate::compile::compile;

    fn search_str(pat: &str, hay: &str) -> Option<(usize, usize)> {
        search(&compile(&parse(pat).unwrap()), hay.as_bytes())
    }

    #[test]
    fn basic_spans() {
        assert_eq!(search_str("b", "abc"), Some((1, 2)));
        assert_eq!(search_str("bc", "abc"), Some((1, 3)));
        assert_eq!(search_str("z", "abc"), None);
    }

    #[test]
    fn greedy_extends() {
        assert_eq!(search_str("a+", "baaac"), Some((1, 4)));
        assert_eq!(search_str("a*", "baaac"), Some((0, 0)));
    }

    #[test]
    fn leftmost_beats_longer_later() {
        assert_eq!(search_str("ab|bcd", "xabcd"), Some((1, 3)));
    }

    #[test]
    fn anchors_at_vm_level() {
        assert_eq!(search_str("^ab", "ab"), Some((0, 2)));
        assert_eq!(search_str("^b", "ab"), None);
        assert_eq!(search_str("b$", "ab"), Some((1, 2)));
        assert_eq!(search_str("a$", "ab"), None);
        assert_eq!(search_str("^$", ""), Some((0, 0)));
    }

    #[test]
    fn empty_match_at_every_position() {
        assert_eq!(search_str("x*", "yyy"), Some((0, 0)));
    }

    #[test]
    fn thread_dedup_keeps_priority() {
        // Both branches reach the same state; the left one must win.
        assert_eq!(search_str("(a|a)b", "ab"), Some((0, 2)));
    }
}
