//! A small byte-oriented regular expression engine.
//!
//! The simulated `grep` needs a matcher; this crate provides one built the
//! classical way — a recursive-descent parser to an AST ([`ast`]), a
//! compiler to NFA byte-code ([`compile`]), and a Pike-VM executor
//! ([`vm`]) that runs in `O(pattern × text)` with no backtracking blowup.
//!
//! Supported syntax: literals, `.`, classes `[a-z0-9]` / `[^...]`, escapes
//! (`\d \D \w \W \s \S \n \r \t \\` and escaped metacharacters), anchors
//! `^` / `$`, repetition `* + ?`, alternation `|`, and grouping `(...)`.
//! Matching is leftmost: [`Regex::find`] returns the match that starts
//! earliest (preferring the longest among those), like grep.

pub mod ast;
pub mod compile;
pub mod vm;

use ast::parse;
use compile::{compile, Prog};

/// A compile error, with the byte position in the pattern.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegexError {
    /// Byte offset in the pattern where parsing failed.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for RegexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regex error at {}: {}", self.position, self.message)
    }
}

impl std::error::Error for RegexError {}

/// A compiled regular expression.
#[derive(Clone, Debug)]
pub struct Regex {
    prog: Prog,
    pattern: String,
}

impl Regex {
    /// Compiles a pattern.
    pub fn new(pattern: &str) -> Result<Regex, RegexError> {
        let ast = parse(pattern)?;
        Ok(Regex {
            prog: compile(&ast),
            pattern: pattern.to_string(),
        })
    }

    /// Compiles a fixed string (every byte literal), like `grep -F`.
    pub fn literal(text: &str) -> Regex {
        let mut escaped = String::with_capacity(text.len() * 2);
        for c in text.chars() {
            if "\\.^$*+?()[]|".contains(c) {
                escaped.push('\\');
            }
            escaped.push(c);
        }
        Regex::new(&escaped).expect("escaped literal always parses")
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of compiled instructions — a proxy for per-byte match cost,
    /// used by the simulator's CPU accounting.
    pub fn instruction_count(&self) -> usize {
        self.prog.insts.len()
    }

    /// Does the pattern match anywhere in `hay`?
    pub fn is_match(&self, hay: &[u8]) -> bool {
        vm::search(&self.prog, hay).is_some()
    }

    /// Finds the leftmost match, returning `(start, end)` byte offsets.
    pub fn find(&self, hay: &[u8]) -> Option<(usize, usize)> {
        vm::search(&self.prog, hay)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, hay: &str) -> bool {
        Regex::new(pat).unwrap().is_match(hay.as_bytes())
    }

    fn f(pat: &str, hay: &str) -> Option<(usize, usize)> {
        Regex::new(pat).unwrap().find(hay.as_bytes())
    }

    #[test]
    fn literals() {
        assert!(m("abc", "xxabcxx"));
        assert!(!m("abc", "ab"));
        assert!(m("", "anything"));
    }

    #[test]
    fn dot_and_classes() {
        assert!(m("a.c", "abc"));
        assert!(m("a.c", "a:c"));
        assert!(!m("a.c", "ac"));
        assert!(m("[a-c]x", "bx"));
        assert!(!m("[a-c]x", "dx"));
        assert!(m("[^a-c]x", "dx"));
        assert!(!m("[^a-c]x", "ax"));
        assert!(m("[abc-]", "-"));
        assert!(m("[]]", "]"));
    }

    #[test]
    fn escapes() {
        assert!(m(r"\d+", "x42y"));
        assert!(!m(r"\d", "abc"));
        assert!(m(r"\w+", "hello_9"));
        assert!(m(r"\s", "a b"));
        assert!(m(r"\.", "a.b"));
        assert!(!m(r"\.", "ab"));
        assert!(m(r"a\\b", r"a\b"));
        assert!(m(r"\S\S", "ab"));
        assert!(m(r"\D", "x"));
        assert!(!m(r"\D", "5"));
        assert!(!m(r"\W", "a9_"));
    }

    #[test]
    fn anchors() {
        assert!(m("^abc", "abcdef"));
        assert!(!m("^abc", "xabc"));
        assert!(m("def$", "abcdef"));
        assert!(!m("def$", "defabc"));
        assert!(m("^$", ""));
        assert!(!m("^$", "x"));
        assert!(m("^abc$", "abc"));
    }

    #[test]
    fn repetition() {
        assert!(m("ab*c", "ac"));
        assert!(m("ab*c", "abbbc"));
        assert!(m("ab+c", "abc"));
        assert!(!m("ab+c", "ac"));
        assert!(m("ab?c", "ac"));
        assert!(m("ab?c", "abc"));
        assert!(!m("ab?c", "abbc"));
        assert!(m("a[0-9]*z", "a123z"));
    }

    #[test]
    fn alternation_and_groups() {
        assert!(m("cat|dog", "hotdog"));
        assert!(m("cat|dog", "catnip"));
        assert!(!m("cat|dog", "bird"));
        assert!(m("a(b|c)d", "acd"));
        assert!(m("(ab)+", "ababab"));
        assert!(!m("^(ab)+$", "aba"));
        assert!(m("^(a|bc)*$", "abcbca"));
    }

    #[test]
    fn find_is_leftmost() {
        assert_eq!(f("o", "foo"), Some((1, 2)));
        assert_eq!(f("o+", "foo"), Some((1, 3)));
        assert_eq!(f("a|ab", "xab"), Some((1, 2)));
        assert_eq!(f("ab|a", "xab"), Some((1, 3)));
        assert_eq!(f("x", "abc"), None);
        assert_eq!(f("", "ab"), Some((0, 0)));
    }

    #[test]
    fn literal_constructor_escapes_everything() {
        let r = Regex::literal("a.c*");
        assert!(r.is_match(b"xa.c*y"));
        assert!(!r.is_match(b"abc"));
        assert!(!r.is_match(b"a.ccc"));
        let r = Regex::literal(r"\d[");
        assert!(r.is_match(br"\d["));
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in ["a(", "a)", "[a", "a**", "*a", "a|*", "a\\"] {
            let e = Regex::new(bad);
            assert!(e.is_err(), "{bad:?} should fail");
        }
        let err = Regex::new("ab(").unwrap_err();
        assert_eq!(err.position, 2);
    }

    #[test]
    fn kernel_grep_style_patterns() {
        // The paper's motivating example: searching a source tree for a
        // routine name.
        let r = Regex::new(r"sleds_pick_\w+\(").unwrap();
        assert!(r.is_match(b"    sleds_pick_init(fd, BUFSIZE);"));
        assert!(r.is_match(b"rc = sleds_pick_next_read(fd, &off, &n);"));
        assert!(!r.is_match(b"sleds_pick = 3;"));
    }

    #[test]
    fn binary_bytes_are_fine() {
        let r = Regex::new("a.c").unwrap();
        assert!(r.is_match(b"a\x00c"));
        assert!(r.is_match(b"\xffa\xfec\xfd"));
    }

    #[test]
    fn pathological_pattern_is_linear() {
        // (a?)^n a^n on a^n — classic backtracking killer; the Pike VM
        // must handle it instantly.
        let n = 24;
        let pat = format!("{}{}", "a?".repeat(n), "a".repeat(n));
        let hay = "a".repeat(n);
        assert!(m(&pat, &hay));
    }

    #[test]
    fn instruction_count_reflects_size() {
        let small = Regex::new("abc").unwrap();
        let big = Regex::new("(abc|def)+[0-9]{0}x*y+z?").unwrap_or_else(|_| {
            // `{0}` isn't supported syntax; use an equivalent larger pattern.
            Regex::new("(abc|def)+x*y+z?").unwrap()
        });
        assert!(big.instruction_count() > small.instruction_count());
    }
}
