//! AST to NFA byte-code.
//!
//! Thompson's construction: each AST node compiles to a small instruction
//! sequence; `Split` edges give the VM its nondeterminism. Instruction
//! operands are absolute program counters.

use crate::ast::{Ast, ByteClass};

/// One NFA instruction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inst {
    /// Consume one byte matching the class, then go to `next`.
    Class(ByteClass, usize),
    /// Try `a` first, then `b` (thread priority order).
    Split(usize, usize),
    /// Unconditional jump.
    Jump(usize),
    /// Zero-width start-of-text assertion.
    AssertStart(usize),
    /// Zero-width end-of-text assertion.
    AssertEnd(usize),
    /// Pattern matched.
    Match,
}

/// A compiled program. Execution starts at pc 0.
#[derive(Clone, Debug)]
pub struct Prog {
    /// Instructions; `Match` terminates a thread.
    pub insts: Vec<Inst>,
}

/// Compiles an AST to a program ending in `Match`.
pub fn compile(ast: &Ast) -> Prog {
    let mut insts = Vec::new();
    emit(ast, &mut insts);
    insts.push(Inst::Match);
    Prog { insts }
}

/// Emits code for `ast`; on fallthrough control reaches `insts.len()`.
fn emit(ast: &Ast, insts: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Class(c) => {
            let next = insts.len() + 1;
            insts.push(Inst::Class(c.clone(), next));
        }
        Ast::AnchorStart => {
            let next = insts.len() + 1;
            insts.push(Inst::AssertStart(next));
        }
        Ast::AnchorEnd => {
            let next = insts.len() + 1;
            insts.push(Inst::AssertEnd(next));
        }
        Ast::Concat(parts) => {
            for p in parts {
                emit(p, insts);
            }
        }
        Ast::Alternate(branches) => {
            // split b1, split b2, ... bn; each branch jumps to the end.
            let mut jump_fixups = Vec::new();
            let n = branches.len();
            for (i, b) in branches.iter().enumerate() {
                if i + 1 < n {
                    let split_at = insts.len();
                    insts.push(Inst::Split(0, 0)); // patched below
                    let branch_start = insts.len();
                    emit(b, insts);
                    jump_fixups.push(insts.len());
                    insts.push(Inst::Jump(0)); // patched at the very end
                    let after = insts.len();
                    insts[split_at] = Inst::Split(branch_start, after);
                } else {
                    emit(b, insts);
                }
            }
            let end = insts.len();
            for at in jump_fixups {
                insts[at] = Inst::Jump(end);
            }
        }
        Ast::Repeat {
            node,
            min,
            unbounded,
        } => match (min, unbounded) {
            (0, true) => {
                // a*: L: split body, out; body; jump L
                let l = insts.len();
                insts.push(Inst::Split(0, 0));
                let body = insts.len();
                emit(node, insts);
                insts.push(Inst::Jump(l));
                let out = insts.len();
                insts[l] = Inst::Split(body, out);
            }
            (1, true) => {
                // a+: body; split body, out
                let body = insts.len();
                emit(node, insts);
                let split_at = insts.len();
                insts.push(Inst::Split(0, 0));
                let out = insts.len();
                insts[split_at] = Inst::Split(body, out);
            }
            (_, false) => {
                // a?: split body, out; body
                let split_at = insts.len();
                insts.push(Inst::Split(0, 0));
                let body = insts.len();
                emit(node, insts);
                let out = insts.len();
                insts[split_at] = Inst::Split(body, out);
            }
            (_, true) => unreachable!("parser only produces min 0 or 1"),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse;

    fn prog(pat: &str) -> Prog {
        compile(&parse(pat).unwrap())
    }

    #[test]
    fn single_char_program() {
        let p = prog("a");
        assert_eq!(p.insts.len(), 2);
        assert!(matches!(p.insts[0], Inst::Class(_, 1)));
        assert_eq!(p.insts[1], Inst::Match);
    }

    #[test]
    fn star_builds_loop() {
        let p = prog("a*");
        // split, class, jump, match
        assert_eq!(p.insts.len(), 4);
        assert_eq!(p.insts[0], Inst::Split(1, 3));
        assert!(matches!(p.insts[1], Inst::Class(_, 2)));
        assert_eq!(p.insts[2], Inst::Jump(0));
    }

    #[test]
    fn plus_falls_through_then_splits_back() {
        let p = prog("a+");
        assert!(matches!(p.insts[0], Inst::Class(_, 1)));
        assert_eq!(p.insts[1], Inst::Split(0, 2));
        assert_eq!(p.insts[2], Inst::Match);
    }

    #[test]
    fn alternation_targets_are_in_bounds() {
        let p = prog("abc|de*f|[xyz]");
        for (i, inst) in p.insts.iter().enumerate() {
            let targets: Vec<usize> = match inst {
                Inst::Class(_, n) | Inst::Jump(n) | Inst::AssertStart(n) | Inst::AssertEnd(n) => {
                    vec![*n]
                }
                Inst::Split(a, b) => vec![*a, *b],
                Inst::Match => vec![],
            };
            for t in targets {
                assert!(t < p.insts.len(), "inst {i} jumps out of bounds to {t}");
            }
        }
    }

    #[test]
    fn every_program_ends_in_match() {
        for pat in ["", "a", "a|b|c", "(ab)*c+", "^x$"] {
            let p = prog(pat);
            assert_eq!(*p.insts.last().unwrap(), Inst::Match);
        }
    }
}
