//! Pattern parser: text to AST.

use crate::RegexError;

/// A set of byte ranges, possibly negated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ByteClass {
    /// Inclusive `(lo, hi)` ranges.
    pub ranges: Vec<(u8, u8)>,
    /// Match bytes *not* in the ranges.
    pub negated: bool,
}

impl ByteClass {
    /// A class matching exactly one byte.
    pub fn single(b: u8) -> Self {
        ByteClass {
            ranges: vec![(b, b)],
            negated: false,
        }
    }

    /// The `.` class: any byte except newline, as grep treats lines.
    pub fn dot() -> Self {
        ByteClass {
            ranges: vec![(b'\n', b'\n')],
            negated: true,
        }
    }

    /// Tests a byte against the class.
    pub fn matches(&self, b: u8) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= b && b <= hi);
        inside != self.negated
    }
}

/// Parsed pattern syntax.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Ast {
    /// Matches the empty string.
    Empty,
    /// One byte from a class.
    Class(ByteClass),
    /// Start-of-text anchor `^`.
    AnchorStart,
    /// End-of-text anchor `$`.
    AnchorEnd,
    /// Concatenation.
    Concat(Vec<Ast>),
    /// Alternation `a|b`.
    Alternate(Vec<Ast>),
    /// `a*` (min 0), `a+` (min 1), `a?` (0 or 1).
    Repeat {
        /// Repeated node.
        node: Box<Ast>,
        /// Minimum repetitions (0 or 1).
        min: u8,
        /// Whether more than one repetition is allowed.
        unbounded: bool,
    },
}

struct Parser<'a> {
    pat: &'a [u8],
    pos: usize,
}

/// Parses a pattern into an AST.
pub fn parse(pattern: &str) -> Result<Ast, RegexError> {
    let mut p = Parser {
        pat: pattern.as_bytes(),
        pos: 0,
    };
    let ast = p.alternation()?;
    if p.pos != p.pat.len() {
        return Err(p.error("unexpected ')'"));
    }
    Ok(ast)
}

impl<'a> Parser<'a> {
    fn error(&self, message: impl Into<String>) -> RegexError {
        RegexError {
            position: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.pat.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn alternation(&mut self) -> Result<Ast, RegexError> {
        let mut branches = vec![self.concat()?];
        while self.peek() == Some(b'|') {
            self.bump();
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alternate(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, RegexError> {
        let mut parts = Vec::new();
        while let Some(b) = self.peek() {
            if b == b'|' || b == b')' {
                break;
            }
            parts.push(self.repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    fn repeat(&mut self) -> Result<Ast, RegexError> {
        let atom = self.atom()?;
        match self.peek() {
            Some(q @ (b'*' | b'+' | b'?')) => {
                if matches!(atom, Ast::AnchorStart | Ast::AnchorEnd) {
                    return Err(self.error("cannot repeat an anchor"));
                }
                self.bump();
                // Reject double quantifiers like `a**`.
                if matches!(self.peek(), Some(b'*' | b'+' | b'?')) {
                    return Err(self.error("nothing to repeat"));
                }
                Ok(Ast::Repeat {
                    node: Box::new(atom),
                    min: if q == b'+' { 1 } else { 0 },
                    unbounded: q != b'?',
                })
            }
            _ => Ok(atom),
        }
    }

    fn atom(&mut self) -> Result<Ast, RegexError> {
        match self.bump() {
            None => Err(self.error("unexpected end of pattern")),
            Some(b'(') => {
                let inner = self.alternation()?;
                if self.bump() != Some(b')') {
                    self.pos -= 1;
                    return Err(self.error("unclosed group"));
                }
                Ok(inner)
            }
            Some(b'[') => Ok(Ast::Class(self.class()?)),
            Some(b'.') => Ok(Ast::Class(ByteClass::dot())),
            Some(b'^') => Ok(Ast::AnchorStart),
            Some(b'$') => Ok(Ast::AnchorEnd),
            Some(b'\\') => Ok(Ast::Class(self.escape()?)),
            Some(b @ (b'*' | b'+' | b'?')) => {
                self.pos -= 1;
                Err(self.error(format!("dangling quantifier '{}'", b as char)))
            }
            Some(b')') => {
                self.pos -= 1;
                Err(self.error("unmatched ')'"))
            }
            Some(b) => Ok(Ast::Class(ByteClass::single(b))),
        }
    }

    fn escape(&mut self) -> Result<ByteClass, RegexError> {
        let class = match self.bump() {
            None => return Err(self.error("trailing backslash")),
            Some(b'd') => ByteClass {
                ranges: vec![(b'0', b'9')],
                negated: false,
            },
            Some(b'D') => ByteClass {
                ranges: vec![(b'0', b'9')],
                negated: true,
            },
            Some(b'w') => ByteClass {
                ranges: vec![(b'a', b'z'), (b'A', b'Z'), (b'0', b'9'), (b'_', b'_')],
                negated: false,
            },
            Some(b'W') => ByteClass {
                ranges: vec![(b'a', b'z'), (b'A', b'Z'), (b'0', b'9'), (b'_', b'_')],
                negated: true,
            },
            Some(b's') => ByteClass {
                ranges: vec![(b' ', b' '), (b'\t', b'\r')],
                negated: false,
            },
            Some(b'S') => ByteClass {
                ranges: vec![(b' ', b' '), (b'\t', b'\r')],
                negated: true,
            },
            Some(b'n') => ByteClass::single(b'\n'),
            Some(b'r') => ByteClass::single(b'\r'),
            Some(b't') => ByteClass::single(b'\t'),
            Some(b'0') => ByteClass::single(0),
            Some(b) => ByteClass::single(b),
        };
        Ok(class)
    }

    fn class(&mut self) -> Result<ByteClass, RegexError> {
        let mut negated = false;
        if self.peek() == Some(b'^') {
            self.bump();
            negated = true;
        }
        let mut ranges = Vec::new();
        // POSIX quirk: a ']' immediately after '[' or '[^' is a literal.
        if self.peek() == Some(b']') {
            self.bump();
            ranges.push((b']', b']'));
        }
        loop {
            let lo = match self.bump() {
                None => return Err(self.error("unclosed character class")),
                Some(b']') => break,
                Some(b'\\') => {
                    let c = self.escape()?;
                    if c.ranges.len() == 1 && !c.negated && c.ranges[0].0 == c.ranges[0].1 {
                        c.ranges[0].0
                    } else {
                        // A multi-range escape inside a class contributes
                        // its ranges directly (e.g. `[\d]`).
                        if c.negated {
                            return Err(self.error("negated escape inside class"));
                        }
                        ranges.extend(c.ranges);
                        continue;
                    }
                }
                Some(b) => b,
            };
            if self.peek() == Some(b'-') && self.pat.get(self.pos + 1).is_some_and(|&b| b != b']') {
                self.bump(); // '-'
                let hi = match self.bump() {
                    None => return Err(self.error("unclosed character class")),
                    Some(b'\\') => {
                        let c = self.escape()?;
                        if c.ranges.len() == 1 && c.ranges[0].0 == c.ranges[0].1 {
                            c.ranges[0].0
                        } else {
                            return Err(self.error("bad range endpoint"));
                        }
                    }
                    Some(b) => b,
                };
                if hi < lo {
                    return Err(self.error("reversed range"));
                }
                ranges.push((lo, hi));
            } else {
                ranges.push((lo, lo));
            }
        }
        if ranges.is_empty() {
            return Err(self.error("empty character class"));
        }
        Ok(ByteClass { ranges, negated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byteclass_matching() {
        let c = ByteClass {
            ranges: vec![(b'a', b'c'), (b'x', b'x')],
            negated: false,
        };
        assert!(c.matches(b'b'));
        assert!(c.matches(b'x'));
        assert!(!c.matches(b'd'));
        let n = ByteClass {
            ranges: c.ranges.clone(),
            negated: true,
        };
        assert!(!n.matches(b'b'));
        assert!(n.matches(b'd'));
    }

    #[test]
    fn parse_shapes() {
        assert_eq!(parse("").unwrap(), Ast::Empty);
        assert!(matches!(parse("a").unwrap(), Ast::Class(_)));
        assert!(matches!(parse("ab").unwrap(), Ast::Concat(_)));
        assert!(matches!(parse("a|b").unwrap(), Ast::Alternate(_)));
        assert!(matches!(parse("a*").unwrap(), Ast::Repeat { min: 0, .. }));
        assert!(matches!(parse("a+").unwrap(), Ast::Repeat { min: 1, .. }));
        assert!(matches!(
            parse("a?").unwrap(),
            Ast::Repeat {
                unbounded: false,
                ..
            }
        ));
    }

    #[test]
    fn parse_class_details() {
        let Ast::Class(c) = parse("[a-z]").unwrap() else {
            panic!("expected class");
        };
        assert_eq!(c.ranges, vec![(b'a', b'z')]);
        let Ast::Class(c) = parse("[-a]").unwrap() else {
            panic!("expected class");
        };
        assert!(c.matches(b'-'));
        let Ast::Class(c) = parse("[a-]").unwrap() else {
            panic!("expected class");
        };
        assert!(c.matches(b'-'));
        assert!(c.matches(b'a'));
    }

    #[test]
    fn parse_errors() {
        assert!(parse("[z-a]").is_err());
        assert!(parse("[").is_err());
        assert!(parse("(a").is_err());
        assert!(parse(")").is_err());
        assert!(parse("\\").is_err());
        assert!(parse("+a").is_err());
        assert!(parse("^*").is_err());
    }

    #[test]
    fn group_flattens_to_inner() {
        assert_eq!(parse("(a)").unwrap(), parse("a").unwrap());
    }
}
