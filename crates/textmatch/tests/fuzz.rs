//! Fuzz-style property tests: the engine must never panic, must agree
//! with naive algorithms on simple pattern classes, and must behave
//! linearly on adversarial inputs.
//!
//! Runs under the in-repo `check` harness; enable with
//! `cargo test -p sleds-textmatch --features proptests`.

use sleds_sim_core::{check, DetRng};
use sleds_textmatch::Regex;

/// A random string drawn from an explicit alphabet, length in `[min, max]`.
fn from_alphabet(rng: &mut DetRng, alphabet: &[u8], min: usize, max: usize) -> String {
    let len = rng.range_usize(min, max + 1);
    (0..len)
        .map(|_| alphabet[rng.range_usize(0, alphabet.len())] as char)
        .collect()
}

/// Arbitrary pattern strings either compile or error — never panic —
/// and compiled patterns never panic on arbitrary haystacks.
#[test]
fn no_panics_on_arbitrary_patterns() {
    check::run("no_panics_on_arbitrary_patterns", |rng| {
        let pattern = check::ascii(rng, 20);
        let hay = check::bytes(rng, 200);
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match(&hay);
            let _ = re.find(&hay);
        }
    });
}

/// Literal patterns agree with substring search.
#[test]
fn literals_agree_with_substring_search() {
    check::run("literals_agree_with_substring_search", |rng| {
        let needle = from_alphabet(rng, b"abcdefghijklmnopqrstuvwxyz", 1, 6);
        let hay = from_alphabet(rng, b"abcdefghijklmnopqrstuvwxyz\n ", 0, 300);
        let re = Regex::new(&needle).unwrap();
        let expect = hay
            .as_bytes()
            .windows(needle.len())
            .position(|w| w == needle.as_bytes());
        match (re.find(hay.as_bytes()), expect) {
            (Some((s, e)), Some(pos)) => {
                assert_eq!(s, pos);
                assert_eq!(e, pos + needle.len());
            }
            (None, None) => {}
            (got, want) => panic!("find {got:?} vs naive {want:?}"),
        }
    });
}

/// Alternations of literals agree with trying each literal.
#[test]
fn alternation_agrees_with_any() {
    check::run("alternation_agrees_with_any", |rng| {
        let nwords = rng.range_usize(1, 5);
        let words: Vec<String> = (0..nwords)
            .map(|_| from_alphabet(rng, b"abcdefghijklmnopqrstuvwxyz", 1, 5))
            .collect();
        let hay = from_alphabet(rng, b"abcdefghijklmnopqrstuvwxyz ", 0, 200);
        let pattern = words.join("|");
        let re = Regex::new(&pattern).unwrap();
        let naive = words.iter().any(|w| hay.contains(w.as_str()));
        assert_eq!(re.is_match(hay.as_bytes()), naive);
    });
}

/// Anchored exact matches agree with string equality.
#[test]
fn full_anchored_match_is_equality() {
    check::run("full_anchored_match_is_equality", |rng| {
        let word = from_alphabet(rng, b"abcdefghijklmnopqrstuvwxyz", 0, 8);
        let hay = from_alphabet(rng, b"abcdefghijklmnopqrstuvwxyz", 0, 8);
        let re = Regex::new(&format!("^{word}$")).unwrap();
        assert_eq!(re.is_match(hay.as_bytes()), word == hay);
    });
}

/// `find` always returns a valid, in-bounds span whose text rematches.
#[test]
fn find_spans_are_valid() {
    check::run("find_spans_are_valid", |rng| {
        let pattern = from_alphabet(rng, b"abc.?*|()[]", 1, 8);
        let hay = from_alphabet(rng, b"abc", 0, 100);
        if let Ok(re) = Regex::new(&pattern) {
            if let Some((s, e)) = re.find(hay.as_bytes()) {
                assert!(s <= e);
                assert!(e <= hay.len());
                assert!(
                    re.is_match(&hay.as_bytes()[s..]),
                    "suffix from match start must still match"
                );
            }
        }
    });
}
