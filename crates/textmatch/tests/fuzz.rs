//! Fuzz-style property tests: the engine must never panic, must agree
//! with naive algorithms on simple pattern classes, and must behave
//! linearly on adversarial inputs.

use proptest::prelude::*;

use sleds_textmatch::Regex;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary pattern strings either compile or error — never panic —
    /// and compiled patterns never panic on arbitrary haystacks.
    #[test]
    fn no_panics_on_arbitrary_patterns(
        pattern in "[ -~]{0,20}",
        hay in prop::collection::vec(any::<u8>(), 0..200),
    ) {
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match(&hay);
            let _ = re.find(&hay);
        }
    }

    /// Literal patterns agree with substring search.
    #[test]
    fn literals_agree_with_substring_search(
        needle in "[a-z]{1,6}",
        hay in "[a-z\n ]{0,300}",
    ) {
        let re = Regex::new(&needle).unwrap();
        let expect = hay.as_bytes()
            .windows(needle.len())
            .position(|w| w == needle.as_bytes());
        match (re.find(hay.as_bytes()), expect) {
            (Some((s, e)), Some(pos)) => {
                prop_assert_eq!(s, pos);
                prop_assert_eq!(e, pos + needle.len());
            }
            (None, None) => {}
            (got, want) => prop_assert!(false, "find {got:?} vs naive {want:?}"),
        }
    }

    /// Alternations of literals agree with trying each literal.
    #[test]
    fn alternation_agrees_with_any(
        words in prop::collection::vec("[a-z]{1,5}", 1..5),
        hay in "[a-z ]{0,200}",
    ) {
        let pattern = words.join("|");
        let re = Regex::new(&pattern).unwrap();
        let naive = words.iter().any(|w| hay.contains(w.as_str()));
        prop_assert_eq!(re.is_match(hay.as_bytes()), naive);
    }

    /// Anchored exact matches agree with string equality.
    #[test]
    fn full_anchored_match_is_equality(word in "[a-z]{0,8}", hay in "[a-z]{0,8}") {
        let re = Regex::new(&format!("^{word}$")).unwrap();
        prop_assert_eq!(re.is_match(hay.as_bytes()), word == hay);
    }

    /// `find` always returns a valid, in-bounds span whose text rematches.
    #[test]
    fn find_spans_are_valid(
        pattern in "[a-c.?*|()\\[\\]]{1,8}",
        hay in "[a-c]{0,100}",
    ) {
        if let Ok(re) = Regex::new(&pattern) {
            if let Some((s, e)) = re.find(hay.as_bytes()) {
                prop_assert!(s <= e);
                prop_assert!(e <= hay.len());
                prop_assert!(re.is_match(&hay.as_bytes()[s..]),
                    "suffix from match start must still match");
            }
        }
    }
}
