//! Workspace discovery and the file walk.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::engine::{scan_source, Finding};

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", ".git", ".github"];

/// Fixture trees deliberately contain violations; they are test data for
/// sledlint itself, not workspace code.
const SKIP_REL_PATHS: &[&str] = &["crates/sledlint/tests/fixtures"];

/// Ascends from `start` to the first directory whose `Cargo.toml` declares
/// `[workspace]`.
pub fn find_workspace_root(start: &Path) -> io::Result<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() && fs::read_to_string(&manifest)?.contains("[workspace]") {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no workspace Cargo.toml found above {}", start.display()),
            ));
        }
    }
}

/// Every workspace `.rs` file the lint walks, workspace-relative and
/// sorted. `examples/`, `tests/` and `benches/` are included — the scope
/// policy in [`crate::rules`] relaxes which rules apply there (the relaxed
/// non-kernel profile), but determinism rules like D003 still hold.
pub fn workspace_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    collect_rs(root, root, &mut files)?;
    files.sort();
    Ok(files)
}

/// Scans every workspace `.rs` file. Returns `(files_scanned, findings)`,
/// findings ordered by path then line.
pub fn scan_workspace(root: &Path) -> io::Result<(usize, Vec<Finding>)> {
    let files = workspace_files(root)?;
    let mut findings = Vec::new();
    for path in &files {
        let src = fs::read_to_string(root.join(path))?;
        findings.extend(scan_source(path, &src));
    }
    Ok((files.len(), findings))
}

/// Recursively collects workspace-relative `.rs` paths (with `/` separators,
/// sorted traversal so output order is stable across platforms).
fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .collect::<io::Result<Vec<_>>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        let rel = rel_string(root, &path);
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            if SKIP_REL_PATHS.contains(&rel.as_str()) {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel);
        }
    }
    Ok(())
}

/// Workspace-relative path with `/` separators.
fn rel_string(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}
