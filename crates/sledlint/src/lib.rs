//! `sledlint` — a hermetic domain lint for the SLEDs simulator.
//!
//! The simulator's claim to reproduce SLEDs (Van Meter & Gao, OSDI 2000)
//! rests on a deterministic virtual clock and a trustworthy cost model. One
//! stray `Instant::now()`, one `HashMap` iteration in simulation state, or
//! one silent `as` truncation in a latency formula corrupts results without
//! failing a test. This crate makes those invariants machine-enforced:
//!
//! - [`lexer`] — a minimal Rust lexer (strings, comments, lifetimes, raw
//!   strings handled correctly; no parser).
//! - [`parser`] — shape parsing: `fn` item discovery and body ranges.
//! - [`cfg`] — per-fn control-flow graphs over domain events (mutations,
//!   generation bumps, clock advances, usage posts, span begin/end).
//! - [`flow`] — must-reach dataflow over those CFGs plus one-level call
//!   summaries, powering the flow-sensitive rules `D010`–`D013`.
//! - [`rules`] — the rule table (`D001`…`D013` plus waiver hygiene `W001`/
//!   `W002`) and the scope policy deciding where each rule applies.
//! - [`engine`] — detection, `#[cfg(test)]` region tracking, and
//!   `// sledlint::allow(RULE, reason)` waiver resolution.
//! - [`walk`] — workspace discovery and the file walk.
//!
//! The crate is deliberately dependency-free: PR 1 made the workspace
//! hermetic, and the lint gate must not be the thing that breaks that.

pub mod cfg;
pub mod engine;
pub mod flow;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod walk;

pub use engine::{scan_source, Finding};
pub use walk::{find_workspace_root, scan_workspace, workspace_files};
