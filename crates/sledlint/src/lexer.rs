//! A minimal Rust lexer: just enough token structure for domain linting.
//!
//! The rules sledlint enforces are lexical (banned identifiers, operator
//! contexts, attribute-delimited regions), so a full parser is unnecessary —
//! but a plain substring grep is *wrong*: `"std::time::Instant"` inside a
//! string literal, `unwrap()` in a doc comment, or `'a` lifetimes would all
//! confuse it. This lexer produces a token stream with strings, characters,
//! lifetimes, comments and raw identifiers handled correctly (including
//! nested block comments and `r#"…"#` raw strings), and keeps comments in a
//! side channel so the waiver parser can read them.

/// What a token is.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`as`, `unwrap`, `HashMap`, …).
    Ident,
    /// Numeric literal (lexed loosely; the rules never interpret values).
    Num,
    /// String or byte-string literal, raw or not.
    Str,
    /// Character literal.
    Char,
    /// Lifetime (`'a`).
    Lifetime,
    /// Punctuation or operator; multi-char operators are single tokens.
    Punct,
}

/// One token, with the line it starts on (1-based).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Tok {
    /// Kind of token.
    pub kind: TokKind,
    /// The token's text as written (raw identifiers keep their `r#`).
    pub text: String,
    /// 1-based line number of the token's first character.
    pub line: u32,
}

/// A comment (line or block), kept out of the token stream.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Comment {
    /// Full comment text including delimiters.
    pub text: String,
    /// 1-based line the comment starts on.
    pub line: u32,
}

/// The result of lexing one file.
#[derive(Clone, Debug, Default)]
pub struct Lexed {
    /// Code tokens in order.
    pub tokens: Vec<Tok>,
    /// Comments in order.
    pub comments: Vec<Comment>,
}

/// Multi-character operators joined by maximal munch. Order matters: longer
/// operators first so `<<=` never lexes as `<<` `=`.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "&&", "||", "::", "..", "->", "=>", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>",
];

/// Lexes `src` into tokens and comments. Never fails: unexpected bytes are
/// emitted as single-character punctuation, which at worst produces an
/// unmatchable token, never a missed string/comment boundary.
pub fn lex(src: &str) -> Lexed {
    let b: Vec<char> = src.chars().collect();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Advances past `n` chars, counting newlines.
    macro_rules! bump {
        ($n:expr) => {{
            for k in 0..$n {
                if b[i + k] == '\n' {
                    line += 1;
                }
            }
            i += $n;
        }};
    }

    while i < b.len() {
        let c = b[i];
        // Whitespace.
        if c.is_whitespace() {
            bump!(1);
            continue;
        }
        // Line comment.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '/' {
            let start = i;
            let start_line = line;
            while i < b.len() && b[i] != '\n' {
                i += 1;
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < b.len() && b[i + 1] == '*' {
            let start = i;
            let start_line = line;
            let mut depth = 0usize;
            while i < b.len() {
                if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                    depth += 1;
                    bump!(2);
                } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                    depth -= 1;
                    bump!(2);
                    if depth == 0 {
                        break;
                    }
                } else {
                    bump!(1);
                }
            }
            out.comments.push(Comment {
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Raw strings and raw/byte prefixes: r"", r#""#, b"", br#""#, c"".
        if matches!(c, 'r' | 'b' | 'c') {
            let mut j = i;
            // Allow br / rb-style two-letter prefixes.
            while j < b.len() && matches!(b[j], 'r' | 'b' | 'c') && j - i < 2 {
                j += 1;
            }
            let raw = b[i..j].contains(&'r');
            let mut hashes = 0usize;
            let mut k = j;
            while raw && k < b.len() && b[k] == '#' {
                hashes += 1;
                k += 1;
            }
            if k < b.len() && b[k] == '"' && (raw || hashes == 0) {
                let start = i;
                let start_line = line;
                bump!(k - i + 1);
                if raw {
                    // Scan to `"` followed by `hashes` hash marks.
                    'rawscan: while i < b.len() {
                        if b[i] == '"' {
                            let mut h = 0usize;
                            while i + 1 + h < b.len() && b[i + 1 + h] == '#' && h < hashes {
                                h += 1;
                            }
                            if h == hashes {
                                bump!(1 + hashes);
                                break 'rawscan;
                            }
                        }
                        bump!(1);
                    }
                } else {
                    lex_quoted(&b, &mut i, &mut line, '"');
                }
                out.tokens.push(Tok {
                    kind: TokKind::Str,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
                continue;
            }
            // Raw identifier r#name.
            if raw && hashes == 1 && k < b.len() && is_ident_start(b[k]) {
                let start = i;
                i = k;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Ident,
                    text: b[start..i].iter().collect(),
                    line,
                });
                continue;
            }
            // Fall through: plain identifier starting with r/b/c.
        }
        // Plain string.
        if c == '"' {
            let start = i;
            let start_line = line;
            bump!(1);
            lex_quoted(&b, &mut i, &mut line, '"');
            out.tokens.push(Tok {
                kind: TokKind::Str,
                text: b[start..i].iter().collect(),
                line: start_line,
            });
            continue;
        }
        // Lifetime or char literal.
        if c == '\'' {
            // `'a` / `'static` are lifetimes when not closed by a quote;
            // `'a'`, `'\n'`, `'\''` are char literals.
            let is_lifetime = i + 1 < b.len()
                && is_ident_start(b[i + 1])
                && !(i + 2 < b.len() && b[i + 2] == '\'');
            if is_lifetime {
                let start = i;
                i += 1;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                out.tokens.push(Tok {
                    kind: TokKind::Lifetime,
                    text: b[start..i].iter().collect(),
                    line,
                });
            } else {
                let start = i;
                let start_line = line;
                bump!(1);
                lex_quoted(&b, &mut i, &mut line, '\'');
                out.tokens.push(Tok {
                    kind: TokKind::Char,
                    text: b[start..i].iter().collect(),
                    line: start_line,
                });
            }
            continue;
        }
        // Identifier / keyword.
        if is_ident_start(c) {
            let start = i;
            while i < b.len() && is_ident_continue(b[i]) {
                i += 1;
            }
            out.tokens.push(Tok {
                kind: TokKind::Ident,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Number. Lexed loosely (digits, underscores, type suffixes, one
        // fraction, exponents); `1..2` must leave `..` intact.
        if c.is_ascii_digit() {
            let start = i;
            i += 1;
            while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                i += 1;
            }
            if i + 1 < b.len() && b[i] == '.' && b[i + 1].is_ascii_digit() {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            // Exponent sign: 1e-9 / 2.5E+3.
            if i < b.len()
                && (b[i] == '+' || b[i] == '-')
                && b[i - 1].eq_ignore_ascii_case(&'e')
                && b[start..i].iter().any(|d| d.is_ascii_digit())
            {
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == '_') {
                    i += 1;
                }
            }
            out.tokens.push(Tok {
                kind: TokKind::Num,
                text: b[start..i].iter().collect(),
                line,
            });
            continue;
        }
        // Operators, maximal munch.
        let mut matched = false;
        for op in OPERATORS {
            let n = op.len();
            if i + n <= b.len() && b[i..i + n].iter().collect::<String>() == **op {
                out.tokens.push(Tok {
                    kind: TokKind::Punct,
                    text: (*op).to_string(),
                    line,
                });
                i += n;
                matched = true;
                break;
            }
        }
        if matched {
            continue;
        }
        out.tokens.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        bump!(1);
    }
    out
}

/// Consumes a quoted literal body up to and including the closing `quote`,
/// honouring backslash escapes. `i` points just past the opening quote.
fn lex_quoted(b: &[char], i: &mut usize, line: &mut u32, quote: char) {
    while *i < b.len() {
        let c = b[*i];
        if c == '\n' {
            *line += 1;
        }
        if c == '\\' && *i + 1 < b.len() {
            *i += 2;
            continue;
        }
        *i += 1;
        if c == quote {
            return;
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text.clone())
            .collect()
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let x = "std::time::Instant now unwrap()";"#);
        assert!(idents(r#"let x = "Instant";"#) == vec!["let", "x"]);
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Str).count(),
            1
        );
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex(r##"let s = r#"a "quoted" HashMap"#; let t = 1;"##);
        let strs: Vec<_> = l.tokens.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("HashMap"));
        assert!(idents(r##"let s = r#"HashMap"#;"##)
            .iter()
            .all(|i| i != "HashMap"));
    }

    #[test]
    fn comments_are_side_channel() {
        let l = lex("// unwrap() here\nlet a = 1; /* nested /* Instant */ done */");
        assert_eq!(l.comments.len(), 2);
        assert!(l.comments[1].text.contains("done"));
        assert!(idents("// Instant\nfn f() {}")
            .iter()
            .all(|i| i != "Instant"));
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let l = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = l
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.tokens.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!((lifetimes, chars), (2, 1));
    }

    #[test]
    fn escaped_quote_char() {
        let l = lex(r"let c = '\''; let d = '\n';");
        assert_eq!(
            l.tokens.iter().filter(|t| t.kind == TokKind::Char).count(),
            2
        );
    }

    #[test]
    fn operators_munch_maximally() {
        let texts: Vec<String> = lex("a == b != c :: d .. e")
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.clone())
            .collect();
        assert_eq!(texts, vec!["==", "!=", "::", ".."]);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let l = lex("for i in 0..10 { let x = 1.5e-3f64; }");
        assert!(l.tokens.iter().any(|t| t.text == ".."));
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Num && t.text == "1.5e-3f64"));
    }

    #[test]
    fn raw_identifiers() {
        let l = lex("let r#type = 1;");
        assert!(l
            .tokens
            .iter()
            .any(|t| t.kind == TokKind::Ident && t.text == "r#type"));
    }

    #[test]
    fn line_numbers_track_newlines() {
        let l = lex("a\nb\n\"s\ntring\"\nc");
        let c = l.tokens.iter().find(|t| t.text == "c").unwrap();
        assert_eq!(c.line, 5);
    }
}
