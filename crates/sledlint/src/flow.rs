//! Flow-sensitive rules over the CFG: D010–D013.
//!
//! The core question every rule here asks is *must-reach*: given an
//! obligation event at a program point (a priced-state mutation, a clock
//! advance, a span begin), does **every** path from that point to the
//! function exit pass a satisfying event (a generation bump, a Rusage
//! post, a span end)? The analysis is a greatest fixpoint over the CFG —
//! `good(n) = sat(n) ∨ (succs(n) ≠ ∅ ∧ ∀s. good(s))` — so paths trapped in
//! loops are vacuously fine (they never exit) and every violation comes
//! with a concrete witness path, reported as the finding's trace.
//!
//! Calls are resolved one level deep against same-file summaries, and only
//! in the *satisfying* direction: a call to a helper that bumps/posts/ends
//! discharges the caller's obligation, but a helper's own mutation is the
//! helper's obligation (it gets flagged at its definition, not at every
//! call site).

use std::collections::BTreeMap;

use crate::cfg::{self, Cfg, Event};
use crate::engine::Candidate;
use crate::lexer::{Tok, TokKind};
use crate::parser::FnShape;

/// What one function is known to do, for one-level call resolution.
#[derive(Clone, Debug, Default)]
pub struct Summary {
    /// Contains a generation/epoch bump.
    pub bumps: bool,
    /// Posts to Rusage.
    pub posts: bool,
    /// Closes a trace span.
    pub ends: bool,
    /// Every identifier in the body (for D008's retry-fragment matching
    /// across helper functions).
    pub idents: Vec<String>,
}

/// Per-name summaries for every `fn` in the file. Same-name functions
/// (e.g. `new` on several types) are merged permissively: resolution is a
/// heuristic discharge, not a proof.
pub fn summaries(toks: &[Tok], shapes: &[FnShape]) -> BTreeMap<String, Summary> {
    let mut out: BTreeMap<String, Summary> = BTreeMap::new();
    for s in shapes {
        let e = out.entry(s.name.clone()).or_default();
        for i in s.body.0..=s.body.1.min(toks.len().saturating_sub(1)) {
            if s.in_inner(i) {
                continue;
            }
            if toks[i].kind == TokKind::Ident {
                e.idents.push(toks[i].text.clone());
            }
            match cfg::event_at(toks, i) {
                Some(Event::BumpGeneration) => e.bumps = true,
                Some(Event::PostRusage) => e.posts = true,
                Some(Event::EndSpan) => e.ends = true,
                _ => {}
            }
        }
    }
    out
}

/// Runs D010–D012 (must-reach over the CFG) and D013 (unit flow) on every
/// function, appending candidates for the engine to scope-filter.
pub(crate) fn flow_candidates(
    toks: &[Tok],
    shapes: &[FnShape],
    sums: &BTreeMap<String, Summary>,
    out: &mut Vec<Candidate>,
) {
    // D010 fires only where a generation exists to bump: a pure container
    // type (the extent-set, say) has no generation field of its own — its
    // pricing wrapper owns the spine, and the wrapper's file is where the
    // mutation-without-bump question is answerable.
    let file_has_generation = toks
        .iter()
        .any(|t| t.kind == TokKind::Ident && cfg::gen_ish(&t.text));

    for shape in shapes {
        let g = cfg::build(toks, shape);
        let reach = g.reachable();
        let fn_end_line = toks.get(shape.body.1).map(|t| t.line).unwrap_or(shape.line);

        let bump_sat = |e: &Event| match e {
            Event::BumpGeneration => true,
            Event::Call(n) => sums.get(n).is_some_and(|s| s.bumps),
            _ => false,
        };
        let post_sat = |e: &Event| match e {
            Event::PostRusage => true,
            Event::Call(n) => sums.get(n).is_some_and(|s| s.posts),
            _ => false,
        };
        let end_sat = |e: &Event| match e {
            Event::EndSpan => true,
            Event::Call(n) => sums.get(n).is_some_and(|s| s.ends),
            _ => false,
        };
        // D012 applies only to functions that close spans at all: a fn
        // with begins and no end is a span-opener API (the caller owns the
        // end), like the kernel's `trace_app_begin`.
        let closes_spans = g
            .nodes
            .iter()
            .enumerate()
            .any(|(n, node)| reach[n] && node.events.iter().any(|(e, _)| end_sat(e)));

        for (n, node) in g.nodes.iter().enumerate() {
            if !reach[n] {
                continue;
            }
            for (k, (e, line)) in node.events.iter().enumerate() {
                match e {
                    Event::MutatePriced(field) if file_has_generation => {
                        if let Some(trace) = must_reach(&g, n, k, &bump_sat, fn_end_line) {
                            out.push(Candidate {
                                rule: "D010",
                                line: *line,
                                message: format!(
                                    "`{field}` is SLED-priced state; a path from this mutation \
                                     reaches the exit of fn `{}` without a generation/epoch bump",
                                    shape.name
                                ),
                                trace,
                            });
                        }
                    }
                    Event::AdvanceClock => {
                        if let Some(trace) = must_reach(&g, n, k, &post_sat, fn_end_line) {
                            out.push(Candidate {
                                rule: "D011",
                                line: *line,
                                message: format!(
                                    "the virtual clock advances here but a path reaches the exit \
                                     of fn `{}` without posting the cost to Rusage",
                                    shape.name
                                ),
                                trace,
                            });
                        }
                    }
                    Event::BeginSpan if closes_spans => {
                        if let Some(trace) = must_reach(&g, n, k, &end_sat, fn_end_line) {
                            out.push(Candidate {
                                rule: "D012",
                                line: *line,
                                message: format!(
                                    "this trace span can reach the exit of fn `{}` without its \
                                     matching end; error paths must close spans too",
                                    shape.name
                                ),
                                trace,
                            });
                        }
                    }
                    _ => {}
                }
            }
        }

        unit_flow(toks, shape, out);
    }
}

/// Checks that every path from event `k` of node `n` to a sink passes an
/// event satisfying `sat`. Returns `None` when the obligation holds, or a
/// witness trace (line, description) along a violating path.
fn must_reach(
    g: &Cfg,
    n: usize,
    k: usize,
    sat: &dyn Fn(&Event) -> bool,
    fn_end_line: u32,
) -> Option<Vec<(u32, String)>> {
    if g.nodes[n].events[k + 1..].iter().any(|(e, _)| sat(e)) {
        return None;
    }
    let len = g.nodes.len();
    let node_sat: Vec<bool> = g
        .nodes
        .iter()
        .map(|node| node.events.iter().any(|(e, _)| sat(e)))
        .collect();
    // Greatest fixpoint: start optimistic, shrink until stable. Loops with
    // no exit stay `good` — a path that never reaches the exit owes nothing.
    let mut good = vec![true; len];
    loop {
        let mut changed = false;
        for m in 0..len {
            let succs = &g.nodes[m].succs;
            let v = node_sat[m] || (!succs.is_empty() && succs.iter().all(|&s| good[s]));
            if v != good[m] {
                good[m] = v;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let succs = &g.nodes[n].succs;
    if !succs.is_empty() && succs.iter().all(|&s| good[s]) {
        return None;
    }
    // Witness: BFS through ¬good nodes to a sink. Every ¬good node is
    // unsatisfied and either is a sink or has a ¬good successor, so the
    // search always terminates at the exit.
    let mut parent: Vec<Option<usize>> = vec![None; len];
    let mut queue: Vec<usize> = Vec::new();
    for &s in succs {
        if !good[s] && parent[s].is_none() {
            parent[s] = Some(n);
            queue.push(s);
        }
    }
    let mut sink = if succs.is_empty() { Some(n) } else { None };
    let mut qi = 0;
    while sink.is_none() && qi < queue.len() {
        let m = queue[qi];
        qi += 1;
        if g.nodes[m].succs.is_empty() {
            sink = Some(m);
            break;
        }
        for &s in &g.nodes[m].succs {
            if !good[s] && parent[s].is_none() {
                parent[s] = Some(m);
                queue.push(s);
            }
        }
    }
    let mut path = Vec::new();
    let mut cur = sink;
    while let Some(m) = cur {
        path.push(m);
        if m == n {
            break;
        }
        cur = parent[m];
    }
    path.reverse();

    let (ev, line) = &g.nodes[n].events[k];
    let mut trace = vec![(*line, event_phrase(ev))];
    for &m in path.iter().skip(1) {
        if let Some((e, l)) = g.nodes[m].events.first() {
            if trace.len() < 5 && trace.last().map(|(pl, _)| pl) != Some(l) {
                trace.push((*l, format!("then {}", event_phrase(e))));
            }
        }
    }
    trace.push((
        fn_end_line,
        "reaches the function exit unsatisfied".to_string(),
    ));
    Some(trace)
}

fn event_phrase(e: &Event) -> String {
    match e {
        Event::MutatePriced(f) => format!("mutates priced field `{f}`"),
        Event::BumpGeneration => "bumps a generation counter".to_string(),
        Event::AdvanceClock => "advances the virtual clock".to_string(),
        Event::PostRusage => "posts to Rusage".to_string(),
        Event::BeginSpan => "opens a trace span".to_string(),
        Event::EndSpan => "closes a trace span".to_string(),
        Event::Call(n) => format!("calls `{n}`"),
    }
}

/// The abstract unit a name carries, by suffix convention.
fn unit_of_name(s: &str) -> Option<&'static str> {
    let lower = s.to_ascii_lowercase();
    let seg = lower.rsplit('_').next().unwrap_or("");
    match seg {
        "ns" | "nanos" | "us" | "micros" | "ms" | "millis" | "secs" | "sec" | "time"
        | "latency" | "lat" => Some("time"),
        "bytes" | "byte" => Some("bytes"),
        "sectors" | "sector" => Some("sectors"),
        "pages" | "page" => Some("pages"),
        _ => None,
    }
}

/// D013: units (time/bytes/sectors/pages) are inferred from name suffixes,
/// propagated through simple `let` aliases, and checked at additive and
/// comparison operators. Multiplicative context (`*`, `/`, `as`) near the
/// operator reads as an intentional conversion and suppresses the check —
/// the rule hunts `span_pages + tail_sectors`, not `pages * SECTORS_PER_PAGE`.
fn unit_flow(toks: &[Tok], shape: &FnShape, out: &mut Vec<Candidate>) {
    let (start, end) = (shape.body.0 + 1, shape.body.1.min(toks.len()));
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");

    // Alias table: `let x = chain;` where the RHS is a bare path/call chain
    // with a recognizable unit.
    let mut env: BTreeMap<&str, &'static str> = BTreeMap::new();
    let mut i = start;
    while i < end {
        if shape.in_inner(i) || !(toks[i].kind == TokKind::Ident && toks[i].text == "let") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        if text(j) == "mut" {
            j += 1;
        }
        if toks.get(j).is_none_or(|t| t.kind != TokKind::Ident) {
            i += 1;
            continue;
        }
        let name = toks[j].text.as_str();
        // Skip an optional `: Type` annotation to the initializer.
        let mut depth = 0i32;
        let mut eq = None;
        let mut m = j + 1;
        while m < end {
            match text(m) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                "=" if depth == 0 => {
                    eq = Some(m);
                    break;
                }
                ";" if depth == 0 => break,
                _ => {}
            }
            m += 1;
        }
        if let Some(eq) = eq {
            if let Some(unit) = chain_unit(toks, eq + 1, end) {
                env.insert(name, unit);
            }
        }
        i = m.max(i + 1);
    }

    for i in start..end {
        if shape.in_inner(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != TokKind::Punct
            || !matches!(
                t.text.as_str(),
                "+" | "-" | "<" | ">" | "<=" | ">=" | "==" | "!="
            )
        {
            continue;
        }
        // A `*`, `/` or `as` anywhere in the same expression reads as an
        // intentional conversion (`sector + pages * SECTORS_PER_PAGE`), so
        // scan outward from the operator to the expression's edges: a
        // depth-0 terminator, an enclosing bracket, or a bounded distance.
        if conversion_nearby(toks, i, start, end) {
            continue;
        }
        let left = left_unit(toks, i, &env);
        let right = right_unit(toks, i, end, &env);
        if let (Some((ln, lu)), Some((rn, ru))) = (left, right) {
            if lu != ru {
                out.push(Candidate {
                    rule: "D013",
                    line: t.line,
                    message: format!(
                        "cross-unit arithmetic in fn `{}`: `{ln}` is {lu} but `{rn}` is {ru}; \
                         insert an explicit conversion or waive naming why the units agree",
                        shape.name
                    ),
                    trace: Vec::new(),
                });
            }
        }
    }
}

/// True when a `*`, `/` or `as` shares the expression around the operator
/// at `i`: multiplicative scaling and casts are how unit conversions are
/// written, and their presence makes a mixed-unit sum deliberate. The scan
/// stays inside the statement (depth-0 `;`/`,`/`{`/`}` or an unbalanced
/// bracket ends it) and is distance-bounded so pathological one-line
/// expressions stay cheap.
fn conversion_nearby(toks: &[Tok], i: usize, start: usize, end: usize) -> bool {
    const REACH: usize = 24;
    let hit = |t: &Tok| {
        (t.kind == TokKind::Punct && matches!(t.text.as_str(), "*" | "/"))
            || (t.kind == TokKind::Ident && t.text == "as")
    };
    let mut depth = 0i32;
    let fwd_end = end.min(i + 1 + REACH).min(toks.len());
    for t in &toks[(i + 1).min(fwd_end)..fwd_end] {
        if hit(t) {
            return true;
        }
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" | "," | "{" | "}" if depth == 0 => break,
                _ => {}
            }
        }
    }
    depth = 0;
    for t in toks[start..i].iter().rev().take(REACH) {
        if hit(t) {
            return true;
        }
        if t.kind == TokKind::Punct {
            match t.text.as_str() {
                ")" | "]" => depth += 1,
                "(" | "[" => {
                    depth -= 1;
                    if depth < 0 {
                        break;
                    }
                }
                ";" | "," | "{" | "}" if depth == 0 => break,
                _ => {}
            }
        }
    }
    false
}

/// Unit of a bare `ident (.ident)* (())? ?` chain starting at `i`, or None
/// when the expression is anything more complex.
fn chain_unit(toks: &[Tok], mut i: usize, end: usize) -> Option<&'static str> {
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    if toks.get(i).is_none_or(|t| t.kind != TokKind::Ident) {
        return None;
    }
    let mut last = i;
    while text(i + 1) == "." && toks.get(i + 2).is_some_and(|t| t.kind == TokKind::Ident) {
        i += 2;
        last = i;
    }
    let mut j = i + 1;
    if text(j) == "(" && text(j + 1) == ")" {
        j += 2;
    }
    if text(j) == "?" {
        j += 1;
    }
    if text(j) != ";" || j >= end {
        return None;
    }
    unit_of_name(&toks[last].text)
}

/// Unit of the operand ending just before the operator at `i`.
fn left_unit<'a>(
    toks: &'a [Tok],
    i: usize,
    env: &BTreeMap<&str, &'static str>,
) -> Option<(&'a str, &'static str)> {
    let p = i.checked_sub(1)?;
    let t = toks.get(p)?;
    if t.kind == TokKind::Punct && t.text == ")" {
        // Call result: unit comes from the callee's name (`x.as_nanos()`).
        let mut depth = 0usize;
        let mut j = p;
        loop {
            match toks[j].text.as_str() {
                ")" => depth += 1,
                "(" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j = j.checked_sub(1)?;
        }
        let callee = toks.get(j.checked_sub(1)?)?;
        if callee.kind != TokKind::Ident {
            return None;
        }
        return unit_of_name(&callee.text).map(|u| (callee.text.as_str(), u));
    }
    if t.kind != TokKind::Ident {
        return None;
    }
    let name = t.text.as_str();
    let is_field = p
        .checked_sub(1)
        .is_some_and(|q| toks[q].kind == TokKind::Punct && toks[q].text == ".");
    let unit = if is_field {
        unit_of_name(name)
    } else {
        env.get(name).copied().or_else(|| unit_of_name(name))
    };
    unit.map(|u| (name, u))
}

/// Unit of the operand starting just after the operator at `i`.
fn right_unit<'a>(
    toks: &'a [Tok],
    i: usize,
    end: usize,
    env: &BTreeMap<&str, &'static str>,
) -> Option<(&'a str, &'static str)> {
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    let mut j = i + 1;
    while j < end
        && toks[j].kind == TokKind::Punct
        && matches!(toks[j].text.as_str(), "&" | "-" | "!" | "(")
    {
        j += 1;
    }
    if toks.get(j).is_none_or(|t| t.kind != TokKind::Ident) {
        return None;
    }
    let bare_start = j;
    let mut last = j;
    while text(j + 1) == "." && toks.get(j + 2).is_some_and(|t| t.kind == TokKind::Ident) {
        j += 2;
        last = j;
    }
    let name = toks[last].text.as_str();
    let unit = if last == bare_start && text(last + 1) != "(" {
        env.get(name).copied().or_else(|| unit_of_name(name))
    } else {
        unit_of_name(name)
    };
    unit.map(|u| (name, u))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_fns;

    fn flow_rules(src: &str) -> Vec<(&'static str, u32)> {
        let toks = lex(src).tokens;
        let shapes = parse_fns(&toks);
        let sums = summaries(&toks, &shapes);
        let mut out = Vec::new();
        flow_candidates(&toks, &shapes, &sums, &mut out);
        out.into_iter().map(|c| (c.rule, c.line)).collect()
    }

    #[test]
    fn mutation_on_every_path_to_bump_is_clean() {
        let src = "fn f(&mut self) {\n\
                   self.resident.remove(p);\n\
                   self.generation += 1;\n}\n";
        assert!(flow_rules(src).is_empty());
    }

    #[test]
    fn branch_that_skips_the_bump_is_d010() {
        let src = "fn f(&mut self, hot: bool) {\n\
                   self.resident.insert(p);\n\
                   if hot {\n        self.generation += 1;\n    }\n}\n";
        assert_eq!(flow_rules(src), vec![("D010", 2)]);
    }

    #[test]
    fn container_file_without_any_generation_is_not_d010() {
        // A pure container type (like the extent-set) has no generation of
        // its own; the pricing wrapper that owns the spine is where D010
        // asks its question.
        let src = "fn remove(&mut self, p: u64) -> bool {\n\
                   self.runs.remove(&p);\n    true\n}\n";
        assert!(flow_rules(src).is_empty());
    }

    #[test]
    fn guard_before_the_mutation_is_clean() {
        // The early return happens before any mutation: nothing owed there.
        let src = "fn f(&mut self) -> bool {\n\
                   if !self.resident.contains(p) {\n        return false;\n    }\n\
                   self.resident.remove(p);\n\
                   self.generation += 1;\n\
                   true\n}\n";
        assert!(flow_rules(src).is_empty());
    }

    #[test]
    fn bump_via_same_file_helper_discharges_d010() {
        let src = "fn f(&mut self) {\n\
                   self.resident.insert(p);\n\
                   self.touch();\n}\n\
                   fn touch(&mut self) { self.generation += 1; }\n";
        assert!(flow_rules(src).is_empty());
    }

    #[test]
    fn question_mark_path_without_post_is_d011() {
        let src = "fn f(&mut self, d: D) -> R {\n\
                   self.clock.advance(d);\n\
                   let x = self.io()?;\n\
                   self.usage.cpu += d;\n\
                   Ok(x)\n}\n";
        assert_eq!(flow_rules(src), vec![("D011", 2)]);
    }

    #[test]
    fn span_closed_behind_a_closure_is_clean() {
        let src = "fn f(&mut self) -> R {\n\
                   self.tracer.begin(l, n, t0, a);\n\
                   let r = (|| { let x = self.io()?; Ok(x) })();\n\
                   self.tracer.end(t1);\n\
                   r\n}\n";
        assert!(flow_rules(src).is_empty());
    }

    #[test]
    fn span_opener_api_without_any_end_is_exempt() {
        let src = "fn open_span(&mut self) { self.tracer.begin(l, n, t, a); }\n";
        assert!(flow_rules(src).is_empty());
    }

    #[test]
    fn cross_unit_addition_through_a_local_is_d013() {
        let src = "fn f(first_latency_ns: u64, total_bytes: u64) -> bool {\n\
                   let budget = first_latency_ns;\n\
                   budget < total_bytes\n}\n";
        assert_eq!(flow_rules(src), vec![("D013", 3)]);
    }

    #[test]
    fn conversion_context_suppresses_d013() {
        let src = "fn f(span_pages: u64) -> u64 { span_pages * SECTORS_PER_PAGE }\n\
                   fn g(lat_ns: u64, total_bytes: u64, bw_bytes: u64) -> u64 {\n\
                   lat_ns + total_bytes / bw_bytes\n}\n";
        assert!(flow_rules(src).is_empty());
    }

    #[test]
    fn traces_name_the_witness_path() {
        let src = "fn f(&mut self, hot: bool) {\n\
                   self.resident.insert(p);\n\
                   if hot {\n        self.generation += 1;\n    }\n}\n";
        let toks = lex(src).tokens;
        let shapes = parse_fns(&toks);
        let sums = summaries(&toks, &shapes);
        let mut out = Vec::new();
        flow_candidates(&toks, &shapes, &sums, &mut out);
        assert_eq!(out.len(), 1);
        let trace = &out[0].trace;
        assert!(trace.len() >= 2, "trace too short: {trace:?}");
        assert!(trace[0].1.contains("resident"));
        assert!(trace.last().unwrap().1.contains("exit"));
    }
}
