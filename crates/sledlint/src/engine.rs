//! The rule engine: turns one lexed source file into findings.
//!
//! Scope policy lives in [`crate::rules`]; this module owns detection
//! (token patterns per rule), `#[cfg(test)]` region tracking, and waiver
//! resolution. Everything operates on a workspace-relative path plus file
//! contents, so tests can feed synthetic paths without touching the disk.

use std::collections::BTreeMap;

use crate::flow::{self, Summary};
use crate::lexer::{lex, Comment, Tok, TokKind};
use crate::parser;
use crate::rules::FileScope;

/// One lint finding.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule code (`D001`…`D013`, `W001`, `W002`).
    pub rule: &'static str,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line number.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// For flow rules: the witness path as (line, note) steps; empty for
    /// token rules.
    pub trace: Vec<(u32, String)>,
}

impl Finding {
    /// Renders as `path:line: CODE message` (the CLI output format).
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {} {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// A parsed `// sledlint::allow(RULE, reason)` comment.
struct Waiver {
    code: String,
    /// Line of the comment itself (covers trailing-comment form).
    line: u32,
    /// Next token-bearing line after the comment (covers standalone form).
    next_code_line: Option<u32>,
    used: bool,
}

impl Waiver {
    fn covers(&self, rule: &str, line: u32) -> bool {
        self.code == rule && (line == self.line || Some(line) == self.next_code_line)
    }
}

/// Scans one file. `rel_path` must be workspace-relative with `/` separators
/// (it drives scope policy); `src` is the file's contents.
pub fn scan_source(rel_path: &str, src: &str) -> Vec<Finding> {
    let lexed = lex(src);
    let scope = FileScope::classify(rel_path);
    let regions = test_regions(&lexed.tokens);
    let in_test = |line: u32| regions.iter().any(|&(a, b)| a <= line && line <= b);
    let shapes = parser::parse_fns(&lexed.tokens);
    let summaries = flow::summaries(&lexed.tokens, &shapes);

    let mut findings = Vec::new();
    let mut waivers = Vec::new();
    for c in &lexed.comments {
        match parse_waiver(c) {
            WaiverParse::None => {}
            WaiverParse::Malformed(detail) => findings.push(Finding {
                rule: "W001",
                path: rel_path.to_string(),
                line: c.line,
                message: format!(
                    "malformed waiver ({detail}); syntax is `// sledlint::allow(RULE, reason)`"
                ),
                trace: Vec::new(),
            }),
            WaiverParse::Ok(code) => waivers.push(Waiver {
                code,
                line: c.line,
                next_code_line: lexed.tokens.iter().map(|t| t.line).find(|&l| l > c.line),
                used: false,
            }),
        }
    }

    let mut cands = detect(&lexed.tokens, &summaries);
    flow::flow_candidates(&lexed.tokens, &shapes, &summaries, &mut cands);
    for cand in cands {
        if !scope.applies(cand.rule, in_test(cand.line)) {
            continue;
        }
        let mut waived = false;
        for w in &mut waivers {
            if w.covers(cand.rule, cand.line) {
                w.used = true;
                waived = true;
            }
        }
        if !waived {
            findings.push(Finding {
                rule: cand.rule,
                path: rel_path.to_string(),
                line: cand.line,
                message: cand.message,
                trace: cand.trace,
            });
        }
    }

    for w in &waivers {
        if !w.used {
            findings.push(Finding {
                rule: "W002",
                path: rel_path.to_string(),
                line: w.line,
                message: format!(
                    "waiver for {} matches no finding here; remove it or fix the rule code",
                    w.code
                ),
                trace: Vec::new(),
            });
        }
    }

    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

/// A candidate finding before scope/waiver filtering.
pub(crate) struct Candidate {
    pub(crate) rule: &'static str,
    pub(crate) line: u32,
    pub(crate) message: String,
    /// Witness path for flow rules; empty for token rules.
    pub(crate) trace: Vec<(u32, String)>,
}

/// A trace-less candidate (token rules).
fn cand(rule: &'static str, line: u32, message: String) -> Candidate {
    Candidate {
        rule,
        line,
        message,
        trace: Vec::new(),
    }
}

/// Identifiers that reach ambient (non-DetRng) randomness.
const RNG_IDENTS: &[&str] = &[
    "thread_rng",
    "OsRng",
    "getrandom",
    "from_entropy",
    "StdRng",
    "SmallRng",
];

/// Narrowing integer cast targets flagged by D007.
const NARROW_TYPES: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32"];

/// Identifier fragments that mark a loop as retry machinery (D008). Matched
/// case-sensitively as lowercase substrings, so data-model names like the
/// `PhaseKind::Retry` variant don't read as retry *logic*.
const RETRY_IDENT_PARTS: &[&str] = &["retry", "retries", "attempt", "resubmit"];

/// Identifiers whose presence proves a retry loop is bounded by a policy.
const RETRY_BOUND_IDENTS: &[&str] = &[
    "max_attempts",
    "max_retries",
    "retry_limit",
    "retry_budget",
    "timeout",
];

/// Runs every token detector over the token stream. `summaries` carries
/// per-fn facts for rules that look one call level deep (D008).
fn detect(toks: &[Tok], summaries: &BTreeMap<String, Summary>) -> Vec<Candidate> {
    let mut out = Vec::new();
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    for (i, t) in toks.iter().enumerate() {
        match t.kind {
            TokKind::Ident => match t.text.as_str() {
                "Instant" | "SystemTime" => out.push(cand(
                    "D001",
                    t.line,
                    format!(
                        "wall-clock API `{}`; simulated time must come from the virtual Clock",
                        t.text
                    ),
                )),
                "std" if text(i + 1) == "::" && matches!(text(i + 2), "thread" | "process") => out
                    .push(cand(
                        "D002",
                        t.line,
                        format!(
                            "host API `std::{}`; the simulator is single-threaded and hermetic",
                            text(i + 2)
                        ),
                    )),
                name if RNG_IDENTS.contains(&name) => out.push(cand(
                    "D003",
                    t.line,
                    format!("ambient randomness `{name}`; use DetRng with an explicit seed"),
                )),
                "rand" if text(i + 1) == "::" => out.push(cand(
                    "D003",
                    t.line,
                    "ambient randomness `rand::`; use DetRng with an explicit seed".to_string(),
                )),
                "HashMap" | "HashSet" => out.push(cand(
                    "D006",
                    t.line,
                    format!(
                        "`{}` in simulation state; use BTreeMap/BTreeSet for deterministic \
                         iteration, or waive with justification",
                        t.text
                    ),
                )),
                "unwrap" | "expect" if i > 0 && text(i - 1) == "." && text(i + 1) == "(" => out
                    .push(cand(
                        "D005",
                        t.line,
                        format!(
                            "`.{}()` on a kernel path; propagate SimError or waive naming the \
                             invariant",
                            t.text
                        ),
                    )),
                "panic" | "todo" | "unimplemented" | "unreachable" if text(i + 1) == "!" => out
                    .push(cand(
                        "D005",
                        t.line,
                        format!(
                            "`{}!` on a kernel path; propagate SimError or waive naming the \
                             invariant",
                            t.text
                        ),
                    )),
                "as" if NARROW_TYPES.contains(&text(i + 1)) => out.push(cand(
                    "D007",
                    t.line,
                    format!(
                        "narrowing cast `as {}`; prove it lossless with a waiver naming the \
                         bound, or use try_from",
                        text(i + 1)
                    ),
                )),
                _ => {}
            },
            TokKind::Punct if t.text == "==" || t.text == "!=" => {
                if let Some(name) = cmp_operand_terminals(toks, i)
                    .into_iter()
                    .find(|n| is_latency_name(n))
                {
                    out.push(cand(
                        "D004",
                        t.line,
                        format!(
                            "float `{}` on `{name}`; compare to_bits() identity or use \
                             total_cmp",
                            t.text
                        ),
                    ));
                }
            }
            _ => {}
        }
    }
    detect_retry_loops(toks, summaries, &mut out);
    detect_unbounded_queues(toks, &mut out);
    detect_unbounded_hedges(toks, &mut out);
    out
}

/// Identifiers that mark a fn body as a *hedge site* (D014): the places
/// that record issuing a redundant request. Call sites only — the scan
/// starts at the body brace, so the definitions of these hooks (whose
/// names sit in the signature) are not themselves sites.
const HEDGE_ISSUE_IDENTS: &[&str] = &["note_hedge", "io_hedge"];

/// Identifiers that prove the site's redundant requests are bounded.
const HEDGE_BOUND_IDENTS: &[&str] = &["max_hedges", "hedge_budget"];

/// D014: a kernel-path fn that issues hedged requests must reference both
/// a hedge bound (`max_hedges`/`hedge_budget`) and loser cancellation
/// (any `cancel…` identifier) in the same body. Without the bound, a
/// slow device fans out without limit; without the cancel, the loser's
/// queue occupancy is redundant work nobody accounts for.
fn detect_unbounded_hedges(toks: &[Tok], out: &mut Vec<Candidate>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "fn" {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        // Signature runs to the body `{`; a `;` first means a bodiless
        // trait declaration, which has no site to judge.
        let mut j = i + 2;
        while j < toks.len() && toks[j].text != "{" && toks[j].text != ";" {
            j += 1;
        }
        if j >= toks.len() || toks[j].text != "{" {
            continue;
        }
        let start = j;
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body = &toks[start..toks.len().min(j + 1)];
        let mentions = |pred: &dyn Fn(&str) -> bool| {
            body.iter()
                .any(|tok| tok.kind == TokKind::Ident && pred(&tok.text))
        };
        if !mentions(&|s| HEDGE_ISSUE_IDENTS.contains(&s)) {
            continue;
        }
        let bounded = mentions(&|s| HEDGE_BOUND_IDENTS.contains(&s));
        let cancelled = mentions(&|s| s.contains("cancel"));
        if !(bounded && cancelled) {
            out.push(cand(
                "D014",
                t.line,
                format!(
                    "fn `{}` issues hedged requests without {}; bound the fan-out by \
                     max_hedges/hedge_budget and cancel every loser, or waive naming what \
                     bounds it",
                    name.text,
                    match (bounded, cancelled) {
                        (false, false) => "a hedge bound or loser cancellation",
                        (false, true) => "a hedge bound",
                        _ => "loser cancellation",
                    }
                ),
            ));
        }
    }
}

/// Struct-name fragments that mark a type as a queue (D009).
const QUEUE_NAME_PARTS: &[&str] = &["Ring", "Queue", "Fifo"];

/// Growable containers a queue struct stores its entries in. A queue type
/// without one (a cursor, a completion record) has nothing to bound.
const QUEUE_CONTAINER_IDENTS: &[&str] = &["Vec", "VecDeque", "BinaryHeap"];

/// Field names that prove a queue struct carries its own capacity bound.
fn is_queue_bound_ident(s: &str) -> bool {
    matches!(s, "capacity" | "cap" | "bound" | "limit")
        || s.starts_with("max_")
        || s.ends_with("_capacity")
        || s.ends_with("_limit")
        || s.ends_with("_bound")
}

/// D009: a kernel-path struct named like a queue (`…Ring…`, `…Queue…`,
/// `…Fifo…`) whose body holds a growable container must also name a
/// capacity bound among its fields, so backpressure is structural rather
/// than hoped-for. Tuple and unit structs are skipped: the named-field
/// body is where a bound would live.
fn detect_unbounded_queues(toks: &[Tok], out: &mut Vec<Candidate>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || t.text != "struct" {
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        if !QUEUE_NAME_PARTS.iter().any(|p| name.text.contains(p)) {
            continue;
        }
        // Skip generic parameters to the body opener. A `(` at angle depth
        // zero means a tuple struct; one inside `<…>` is just an `Fn` bound.
        let mut j = i + 2;
        let mut angle = 0i32;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "<" => angle += 1,
                ">" => angle -= 1,
                ">>" => angle -= 2,
                "{" | ";" => break,
                "(" if angle == 0 => break,
                _ => {}
            }
            j += 1;
        }
        if j >= toks.len() || toks[j].text != "{" {
            continue;
        }
        let start = j;
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let body = &toks[start..toks.len().min(j + 1)];
        let holds_container = body.iter().any(|tok| {
            tok.kind == TokKind::Ident && QUEUE_CONTAINER_IDENTS.contains(&tok.text.as_str())
        });
        let has_bound = body
            .iter()
            .any(|tok| tok.kind == TokKind::Ident && is_queue_bound_ident(&tok.text));
        if holds_container && !has_bound {
            out.push(cand(
                "D009",
                t.line,
                format!(
                    "queue struct `{}` holds a growable container with no capacity bound; \
                     name the bound (capacity/cap/limit/max_*) or waive naming what bounds it",
                    name.text
                ),
            ));
        }
    }
}

/// D008: a `loop`/`while` whose span mentions retry machinery must also
/// reference a policy bound, or a persistent fault spins the simulation
/// forever. The span runs from the keyword through the matching `}` of the
/// body, so a bound in either the condition or the body satisfies the rule.
/// Calls to same-file helpers are looked through one level via `sums`: a
/// loop whose body only calls `resubmit_step(dev)` still mentions retry
/// machinery if the helper does, and a bound inside the helper still counts.
fn detect_retry_loops(toks: &[Tok], sums: &BTreeMap<String, Summary>, out: &mut Vec<Candidate>) {
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "loop" | "while") {
            continue;
        }
        let mut j = i + 1;
        while j < toks.len() && toks[j].text != "{" {
            j += 1;
        }
        let mut depth = 0usize;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "{" => depth += 1,
                "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        let span = &toks[i..toks.len().min(j + 1)];
        let mentions = |parts: &[&str]| {
            span.iter().enumerate().any(|(k, tok)| {
                if tok.kind != TokKind::Ident {
                    return false;
                }
                if parts.iter().any(|p| tok.text.contains(p)) {
                    return true;
                }
                // One level through same-file helpers, with the same
                // resolvability discipline as the CFG: bare calls,
                // `self.helper(..)` and `Self::helper(..)` only.
                let resolvable = span.get(k + 1).is_some_and(|n| n.text == "(")
                    && match k.checked_sub(1).map(|p| span[p].text.as_str()) {
                        Some(".") => k >= 2 && span[k - 2].text == "self",
                        Some("::") => k >= 2 && span[k - 2].text == "Self",
                        _ => true,
                    };
                resolvable
                    && sums.get(&tok.text).is_some_and(|s| {
                        s.idents
                            .iter()
                            .any(|id| parts.iter().any(|p| id.contains(p)))
                    })
            })
        };
        if mentions(RETRY_IDENT_PARTS) && !mentions(RETRY_BOUND_IDENTS) {
            out.push(cand(
                "D008",
                t.line,
                format!(
                    "`{}` retries without a policy bound; reference max_attempts/timeout \
                     (RetryPolicy) or waive naming what bounds it",
                    t.text
                ),
            ));
        }
    }
}

fn is_latency_name(s: &str) -> bool {
    s == "latency" || s == "bandwidth" || s.ends_with("_latency") || s.ends_with("_bandwidth")
}

/// Terminal identifiers of the operands of the comparison at `toks[i]`.
///
/// Left operand: only the token immediately before the operator (covers
/// `a.latency == …` since the field is that token). Right operand: skip
/// prefix sigils, then follow an `ident (.|:: ident)*` chain to its last
/// segment. A method call like `.to_bits()` becomes the terminal, so
/// already-fixed comparisons don't re-trigger.
fn cmp_operand_terminals(toks: &[Tok], i: usize) -> Vec<String> {
    let mut out = Vec::new();
    if i > 0 && toks[i - 1].kind == TokKind::Ident {
        out.push(toks[i - 1].text.clone());
    }
    let mut j = i + 1;
    while j < toks.len()
        && toks[j].kind == TokKind::Punct
        && matches!(toks[j].text.as_str(), "&" | "*" | "-" | "!" | "(")
    {
        j += 1;
    }
    if j < toks.len() && toks[j].kind == TokKind::Ident {
        while j + 2 < toks.len()
            && matches!(toks[j + 1].text.as_str(), "." | "::")
            && toks[j + 2].kind == TokKind::Ident
        {
            j += 2;
        }
        out.push(toks[j].text.clone());
    }
    out
}

/// Result of trying to read a comment as a waiver.
enum WaiverParse {
    None,
    Ok(String),
    Malformed(String),
}

/// Parses `sledlint::allow(RULE, reason)` out of a comment. The marker can
/// sit anywhere in the comment (trailing or standalone form).
fn parse_waiver(c: &Comment) -> WaiverParse {
    const MARKER: &str = "sledlint::allow";
    // Doc comments describe the syntax; only plain comments carry waivers.
    if ["///", "//!", "/**", "/*!"]
        .iter()
        .any(|p| c.text.starts_with(p))
    {
        return WaiverParse::None;
    }
    let Some(pos) = c.text.find(MARKER) else {
        return WaiverParse::None;
    };
    let rest = &c.text[pos + MARKER.len()..];
    let Some(body) = rest.strip_prefix('(') else {
        return WaiverParse::Malformed("missing `(` after sledlint::allow".to_string());
    };
    let Some(close) = body.rfind(')') else {
        return WaiverParse::Malformed("missing closing `)`".to_string());
    };
    let body = &body[..close];
    let Some((code, reason)) = body.split_once(',') else {
        return WaiverParse::Malformed("missing reason; a waiver must say why".to_string());
    };
    let code = code.trim();
    if !crate::rules::RULES.iter().any(|r| r.code == code) {
        return WaiverParse::Malformed(format!("unknown rule code `{code}`"));
    }
    if reason.trim().is_empty() {
        return WaiverParse::Malformed("empty reason; a waiver must say why".to_string());
    }
    WaiverParse::Ok(code.to_string())
}

/// Line ranges covered by `#[cfg(test)]` / `#[test]` items.
///
/// Heuristic, not a parse: on a `#[…]` attribute whose tokens include `test`
/// (and not `not`, so `#[cfg(not(test))]` stays live code), skip any further
/// attributes, then extend the region to the matching `}` of the item's first
/// brace — or to the terminating `;` for brace-less items.
fn test_regions(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].text == "#" && i + 1 < toks.len() && toks[i + 1].text == "[") {
            i += 1;
            continue;
        }
        let start_line = toks[i].line;
        let (is_test, after) = scan_attr(toks, i);
        if !is_test {
            i = after;
            continue;
        }
        // Skip stacked attributes between the test attribute and the item.
        let mut j = after;
        while j + 1 < toks.len() && toks[j].text == "#" && toks[j + 1].text == "[" {
            j = scan_attr(toks, j).1;
        }
        // Find the item body: first `{` at this level, else a `;`.
        let mut end_line = toks.get(j).map(|t| t.line).unwrap_or(start_line);
        while j < toks.len() {
            if toks[j].text == ";" {
                end_line = toks[j].line;
                j += 1;
                break;
            }
            if toks[j].text == "{" {
                let mut depth = 0usize;
                while j < toks.len() {
                    match toks[j].text.as_str() {
                        "{" => depth += 1,
                        "}" => {
                            depth -= 1;
                            if depth == 0 {
                                end_line = toks[j].line;
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                break;
            }
            end_line = toks[j].line;
            j += 1;
        }
        regions.push((start_line, end_line));
        i = j;
    }
    regions
}

/// Scans the attribute starting at `toks[i]` (`#` `[` …). Returns whether it
/// marks test-only code, and the index just past its closing `]`.
fn scan_attr(toks: &[Tok], i: usize) -> (bool, usize) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut j = i + 1;
    while j < toks.len() {
        match toks[j].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            "test" if toks[j].kind == TokKind::Ident => has_test = true,
            "not" if toks[j].kind == TokKind::Ident => has_not = true,
            _ => {}
        }
        j += 1;
    }
    (has_test && !has_not, j)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rules_hit(path: &str, src: &str) -> Vec<&'static str> {
        scan_source(path, src).into_iter().map(|f| f.rule).collect()
    }

    const KERNEL: &str = "crates/fs/src/sample.rs";

    #[test]
    fn cfg_test_region_exempts_d005() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\nmod tests {\n    fn t() { y.unwrap(); }\n}\n";
        let f = scan_source(KERNEL, src);
        assert_eq!(f.len(), 1);
        assert_eq!((f[0].rule, f[0].line), ("D005", 1));
    }

    #[test]
    fn cfg_not_test_stays_live() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        assert_eq!(rules_hit(KERNEL, src), vec!["D005"]);
    }

    #[test]
    fn trailing_waiver_suppresses() {
        let src = "let m: HashMap<u32, u32>; // sledlint::allow(D006, never iterated)\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }

    #[test]
    fn standalone_waiver_covers_next_code_line() {
        let src = "// sledlint::allow(D006, never iterated)\nlet m: HashMap<u32, u32>;\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }

    #[test]
    fn stacked_waivers_cover_one_line() {
        let src = "// sledlint::allow(D006, keyed access only)\n\
                   // sledlint::allow(D007, bounded by u16 field)\n\
                   let m: HashMap<u32, u32> = f(x as u32);\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }

    #[test]
    fn waiver_without_reason_is_w001() {
        let src = "let m: HashMap<u32, u32>; // sledlint::allow(D006)\n";
        let hits = rules_hit(KERNEL, src);
        assert!(hits.contains(&"W001") && hits.contains(&"D006"));
    }

    #[test]
    fn unused_waiver_is_w002() {
        let src = "// sledlint::allow(D006, nothing here)\nlet x = 1;\n";
        assert_eq!(rules_hit(KERNEL, src), vec!["W002"]);
    }

    #[test]
    fn unknown_rule_code_is_w001() {
        let src = "// sledlint::allow(D999, bogus)\nlet x = 1;\n";
        assert_eq!(rules_hit(KERNEL, src), vec!["W001"]);
    }

    #[test]
    fn d004_ignores_to_bits_form() {
        let src = "fn f() -> bool { a.latency.to_bits() == b.latency.to_bits() }\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }

    #[test]
    fn d004_flags_field_compare() {
        let src = "fn f() -> bool { a.latency == b.latency }\n";
        assert_eq!(rules_hit(KERNEL, src), vec!["D004"]);
    }

    #[test]
    fn strings_and_comments_do_not_trip_rules() {
        let src = "// HashMap unwrap() Instant std::thread\n\
                   let s = \"HashMap Instant rand::thread_rng\";\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }

    #[test]
    fn doc_comments_are_not_waivers() {
        let src = "/// Waive with `// sledlint::allow(RULE, reason)`.\nfn f() {}\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }

    #[test]
    fn unbounded_retry_loop_is_d008() {
        let src = "fn f(dev: &mut Dev) { loop { if dev.retry_once().is_ok() { break; } } }\n";
        assert_eq!(rules_hit(KERNEL, src), vec!["D008"]);
    }

    #[test]
    fn retry_loop_bounded_in_body_is_clean() {
        let src = "fn f(p: &Policy) {\n    let mut attempt = 0u32;\n    loop {\n        \
                   attempt += 1;\n        if attempt >= p.max_attempts { break; }\n    }\n}\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }

    #[test]
    fn retry_loop_bounded_in_while_condition_is_clean() {
        let src = "fn f(q: &mut Q, p: &Policy) {\n    while q.needs_resubmit() && \
                   q.elapsed() < p.timeout {\n        q.resubmit_one();\n    }\n}\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }

    #[test]
    fn plain_counting_loop_is_not_d008() {
        let src = "fn f(xs: &[u64]) -> u64 {\n    let mut sum = 0u64;\n    let mut i = 0;\n    \
                   while i < xs.len() {\n        sum += xs[i];\n        i += 1;\n    }\n    sum\n}\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }

    #[test]
    fn retry_enum_variant_is_not_retry_logic() {
        let src = "fn f(ps: &mut Vec<Phase>) {\n    let mut i = 0;\n    while i < ps.len() {\n        \
                   if ps[i].kind == PhaseKind::Retry { ps[i].scale(); }\n        i += 1;\n    }\n}\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }

    #[test]
    fn unwrap_or_is_not_d005() {
        let src = "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }\n";
        assert!(rules_hit(KERNEL, src).is_empty());
    }
}
