//! CLI for sledlint.
//!
//! Usage:
//!   sledlint [--root <dir>]   scan the workspace (default: ascend from cwd)
//!   sledlint --json           machine-readable findings on stdout
//!   sledlint --list           print the rule table
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = tool error (bad usage,
//! unreadable workspace). `--json` keeps the same exit codes, so CI can
//! both archive the report and gate on it.

use std::path::PathBuf;
use std::process::ExitCode;

use sledlint::rules::RULES;
use sledlint::{find_workspace_root, scan_workspace, Finding};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root_arg: Option<PathBuf> = None;
    let mut json = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                print_rules();
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("sledlint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!(
                    "sledlint: unknown argument `{other}` (try --list, --json or --root <dir>)"
                );
                return ExitCode::from(2);
            }
        }
    }

    let start = match root_arg {
        Some(dir) => dir,
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("sledlint: cannot determine current directory: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let root = match find_workspace_root(&start) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sledlint: {e}");
            return ExitCode::from(2);
        }
    };
    match scan_workspace(&root) {
        Ok((files, findings)) => {
            if json {
                println!("{}", render_json(files, &findings));
            } else {
                for f in &findings {
                    println!("{}", f.render());
                    for (line, note) in &f.trace {
                        println!("    line {line}: {note}");
                    }
                }
                if findings.is_empty() {
                    println!("sledlint: clean ({files} files scanned)");
                } else {
                    println!(
                        "sledlint: {} finding(s) in {files} files scanned",
                        findings.len()
                    );
                }
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("sledlint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_rules() {
    println!("sledlint rules (waive with `// sledlint::allow(RULE, reason)`):");
    for r in RULES {
        println!("  {}  {:<24} {}", r.code, r.name, r.invariant);
    }
}

/// The stable machine-readable report (`schema` bumps on breaking change).
/// Findings are one object per line so text diffs stay readable; the
/// baseline gate in `scripts/check.sh` diffs this output directly.
fn render_json(files: usize, findings: &[Finding]) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"tool\": \"sledlint\",\n");
    out.push_str("  \"schema\": 1,\n");
    out.push_str("  \"rules\": [");
    for (i, r) in RULES.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&json_str(r.code));
    }
    out.push_str("],\n");
    out.push_str(&format!("  \"files_scanned\": {files},\n"));
    out.push_str("  \"findings\": [");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(if i > 0 { ",\n    " } else { "\n    " });
        out.push_str(&format!(
            "{{\"file\": {}, \"line\": {}, \"rule\": {}, \"message\": {}, \"trace\": [",
            json_str(&f.path),
            f.line,
            json_str(f.rule),
            json_str(&f.message)
        ));
        for (j, (line, note)) in f.trace.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "{{\"line\": {line}, \"note\": {}}}",
                json_str(note)
            ));
        }
        out.push_str("]}");
    }
    if findings.is_empty() {
        out.push_str("]\n");
    } else {
        out.push_str("\n  ]\n");
    }
    out.push('}');
    out
}

/// JSON string escaping, dependency-free (the workspace is hermetic).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}
