//! CLI for sledlint.
//!
//! Usage:
//!   sledlint [--root <dir>]   scan the workspace (default: ascend from cwd)
//!   sledlint --list           print the rule table
//!
//! Exit codes: 0 = clean, 1 = violations found, 2 = tool error (bad usage,
//! unreadable workspace).

use std::path::PathBuf;
use std::process::ExitCode;

use sledlint::rules::RULES;
use sledlint::{find_workspace_root, scan_workspace};

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let mut root_arg: Option<PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list" => {
                print_rules();
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(dir) => root_arg = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("sledlint: --root requires a directory argument");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("sledlint: unknown argument `{other}` (try --list or --root <dir>)");
                return ExitCode::from(2);
            }
        }
    }

    let start = match root_arg {
        Some(dir) => dir,
        None => match std::env::current_dir() {
            Ok(d) => d,
            Err(e) => {
                eprintln!("sledlint: cannot determine current directory: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let root = match find_workspace_root(&start) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sledlint: {e}");
            return ExitCode::from(2);
        }
    };
    match scan_workspace(&root) {
        Ok((files, findings)) => {
            for f in &findings {
                println!("{}", f.render());
            }
            if findings.is_empty() {
                println!("sledlint: clean ({files} files scanned)");
                ExitCode::SUCCESS
            } else {
                println!(
                    "sledlint: {} finding(s) in {files} files scanned",
                    findings.len()
                );
                ExitCode::from(1)
            }
        }
        Err(e) => {
            eprintln!("sledlint: scan failed: {e}");
            ExitCode::from(2)
        }
    }
}

fn print_rules() {
    println!("sledlint rules (waive with `// sledlint::allow(RULE, reason)`):");
    for r in RULES {
        println!("  {}  {:<24} {}", r.code, r.name, r.invariant);
    }
}
