//! Intraprocedural control-flow graphs over domain events.
//!
//! Each function body becomes a small graph whose nodes carry the *domain
//! events* the flow rules care about — priced-state mutations, generation
//! bumps, clock advances, Rusage posts, trace-span begins/ends, and calls —
//! in source order. Branches (`if`/`else`, `match`), loops (`loop`/`while`/
//! `for` with their zero-iteration edge), early exits (`return`, `?`,
//! `break`, `continue`) and closures all become edges, so "does every path
//! from X reach a Y" is answerable by [`crate::flow`].
//!
//! Closures are analyzed *inline*: a `?` or `return` inside a closure jumps
//! to the closure's local join (the closure returns, the enclosing function
//! continues), which is exactly why the kernel's
//! `begin; let r = (|| { … ? … })(); end;` span pattern verifies as
//! balanced. A closure also gets a skip edge, since `.map(|x| …)`-style
//! bodies may run zero times.

use crate::lexer::{Tok, TokKind};
use crate::parser::{match_brace, FnShape};

/// Field names holding SLED-priced state: mutating one without a
/// generation/epoch bump lets a memoized SLED vector go stale (D010).
/// `resident` is the page cache's residency extent set; `runs` is the
/// inode layout map.
pub const PRICED_FIELDS: &[&str] = &["resident", "runs"];

/// Container methods that mutate their receiver in place.
const MUT_METHODS: &[&str] = &[
    "insert",
    "remove",
    "push",
    "pop",
    "clear",
    "extend",
    "drain",
    "retain",
    "truncate",
    "append",
    "split_off",
    "push_back",
    "pop_front",
    "sort",
    "sort_by",
    "sort_by_key",
    "set",
];

/// A domain event the flow rules reason about.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// In-place mutation of a SLED-priced field (the name carried).
    MutatePriced(String),
    /// A generation/epoch counter moved (`gen`/`*generation*`/`*epoch*`
    /// assignment, or a `bump_*`/`set_*` call naming one).
    BumpGeneration,
    /// The virtual clock advanced (`…clock.advance(…)`).
    AdvanceClock,
    /// A cost was posted to resource accounting (`…usage.… op …`).
    PostRusage,
    /// `…tracer.begin(…)` opened a trace span.
    BeginSpan,
    /// `…tracer.end(…)` closed a trace span.
    EndSpan,
    /// Any other call, by callee name — resolved against one-level
    /// same-file summaries at analysis time.
    Call(String),
}

/// One CFG node: events in source order, then successor edges.
#[derive(Clone, Debug, Default)]
pub struct Node {
    /// Events in this straight-line region, with their source lines.
    pub events: Vec<(Event, u32)>,
    /// Successor node indices.
    pub succs: Vec<usize>,
}

/// A function body's control-flow graph.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// All nodes; `entry` and `exit` index into this.
    pub nodes: Vec<Node>,
    /// Where execution starts.
    pub entry: usize,
    /// The single exit node (normal returns, `?`, and `return` all edge
    /// here). Carries no events.
    pub exit: usize,
}

impl Cfg {
    /// Nodes reachable from entry, as a membership vector.
    pub fn reachable(&self) -> Vec<bool> {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![self.entry];
        seen[self.entry] = true;
        while let Some(n) = stack.pop() {
            for &s in &self.nodes[n].succs {
                if !seen[s] {
                    seen[s] = true;
                    stack.push(s);
                }
            }
        }
        seen
    }
}

/// Builds the CFG for one function body.
pub fn build(toks: &[Tok], shape: &FnShape) -> Cfg {
    let mut b = Builder {
        toks,
        nodes: Vec::new(),
        loops: Vec::new(),
    };
    let entry = b.node();
    let exit = b.node();
    let last = b.block(shape.body.0 + 1, shape.body.1, entry, exit);
    b.edge(last, exit);
    Cfg {
        nodes: b.nodes,
        entry,
        exit,
    }
}

struct Builder<'a> {
    toks: &'a [Tok],
    nodes: Vec<Node>,
    /// Innermost-last `(continue_target, break_target)` pairs.
    loops: Vec<(usize, usize)>,
}

impl Builder<'_> {
    fn node(&mut self) -> usize {
        self.nodes.push(Node::default());
        self.nodes.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize) {
        if !self.nodes[from].succs.contains(&to) {
            self.nodes[from].succs.push(to);
        }
    }

    fn text(&self, i: usize) -> &str {
        self.toks.get(i).map(|t| t.text.as_str()).unwrap_or("")
    }

    /// Extracts events from `from..to` without control-flow interpretation
    /// (conditions, match scrutinees/patterns, return expressions).
    fn events_linear(&mut self, from: usize, to: usize, into: usize) {
        for k in from..to.min(self.toks.len()) {
            if let Some(ev) = event_at(self.toks, k) {
                let line = self.toks[k].line;
                self.nodes[into].events.push((ev, line));
            }
        }
    }

    /// First `{` at paren/bracket depth 0 in `from..to`. For `if let` /
    /// `while let` heads, pass `after_eq` to first skip to the top-level
    /// `=`, so struct *patterns*' braces are not mistaken for the body.
    fn block_open(&self, mut from: usize, to: usize, after_eq: bool) -> Option<usize> {
        let mut depth = 0i32;
        let mut need_eq = after_eq;
        while from < to {
            match self.text(from) {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "=" if depth == 0 => need_eq = false,
                "{" if depth == 0 && !need_eq => return Some(from),
                _ => {}
            }
            from += 1;
        }
        None
    }

    /// Walks the statement list in `i..end` starting from node `cur`;
    /// `ret` is where `return` and `?` edges go (the fn exit, or a
    /// closure's local join). Returns the node that falls off the end.
    fn block(&mut self, mut i: usize, end: usize, mut cur: usize, ret: usize) -> usize {
        while i < end {
            let t = &self.toks[i];
            match (t.kind, t.text.as_str()) {
                (TokKind::Ident, "fn") => {
                    // Nested item: analyzed as its own shape; skip it here.
                    let mut j = i + 1;
                    let mut depth = 0i32;
                    let open = loop {
                        match self.text(j) {
                            "" => break None,
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "{" if depth == 0 => break Some(j),
                            ";" if depth == 0 => break None,
                            _ => {}
                        }
                        j += 1;
                    };
                    i = match open.and_then(|o| match_brace(self.toks, o)) {
                        Some(close) => close + 1,
                        None => j.max(i + 1),
                    };
                }
                (TokKind::Ident, "if") => {
                    let (join, next) = self.if_construct(i, end, cur, ret);
                    cur = join;
                    i = next;
                }
                (TokKind::Ident, "match") => {
                    let (join, next) = self.match_construct(i, end, cur, ret);
                    cur = join;
                    i = next;
                }
                (TokKind::Ident, "while") => {
                    let is_let = self.text(i + 1) == "let";
                    let Some(open) = self.block_open(i + 1, end, is_let) else {
                        i += 1;
                        continue;
                    };
                    let close = match_brace(self.toks, open).unwrap_or(end);
                    let head = self.node();
                    self.edge(cur, head);
                    self.events_linear(i + 1, open, head);
                    let join = self.node();
                    let bentry = self.node();
                    self.edge(head, bentry);
                    self.edge(head, join); // zero-iteration path
                    self.loops.push((head, join));
                    let bexit = self.block(open + 1, close, bentry, ret);
                    self.loops.pop();
                    self.edge(bexit, head);
                    cur = join;
                    i = close + 1;
                }
                (TokKind::Ident, "for") => {
                    let mut k = i + 1;
                    let mut depth = 0i32;
                    while k < end {
                        match self.text(k) {
                            "(" | "[" => depth += 1,
                            ")" | "]" => depth -= 1,
                            "in" if depth == 0 && self.toks[k].kind == TokKind::Ident => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    let Some(open) = self.block_open(k, end, false) else {
                        i += 1;
                        continue;
                    };
                    let close = match_brace(self.toks, open).unwrap_or(end);
                    let head = self.node();
                    self.edge(cur, head);
                    self.events_linear(k + 1, open, head);
                    let join = self.node();
                    let bentry = self.node();
                    self.edge(head, bentry);
                    self.edge(head, join);
                    self.loops.push((head, join));
                    let bexit = self.block(open + 1, close, bentry, ret);
                    self.loops.pop();
                    self.edge(bexit, head);
                    cur = join;
                    i = close + 1;
                }
                (TokKind::Ident, "loop") => {
                    let Some(open) = self.block_open(i + 1, end, false) else {
                        i += 1;
                        continue;
                    };
                    let close = match_brace(self.toks, open).unwrap_or(end);
                    let bentry = self.node();
                    let join = self.node();
                    self.edge(cur, bentry);
                    self.loops.push((bentry, join));
                    let bexit = self.block(open + 1, close, bentry, ret);
                    self.loops.pop();
                    // No fallthrough to join: only `break` leaves a `loop`.
                    self.edge(bexit, bentry);
                    cur = join;
                    i = close + 1;
                }
                (TokKind::Ident, "return") => {
                    let stop = self.stmt_end(i + 1, end);
                    self.events_linear(i + 1, stop, cur);
                    self.edge(cur, ret);
                    cur = self.node(); // unreachable continuation
                    i = stop + 1;
                }
                (TokKind::Ident, "break") => {
                    let stop = self.stmt_end(i + 1, end);
                    self.events_linear(i + 1, stop, cur);
                    let target = self.loops.last().map(|&(_, b)| b).unwrap_or(ret);
                    self.edge(cur, target);
                    cur = self.node();
                    i = stop + 1;
                }
                (TokKind::Ident, "continue") => {
                    let target = self.loops.last().map(|&(c, _)| c).unwrap_or(ret);
                    self.edge(cur, target);
                    cur = self.node();
                    i = self.stmt_end(i + 1, end) + 1;
                }
                (TokKind::Punct, "?") => {
                    // Either early-exits or proceeds: split so events after
                    // the `?` cannot satisfy obligations on the exit path.
                    let next = self.node();
                    self.edge(cur, ret);
                    self.edge(cur, next);
                    cur = next;
                    i += 1;
                }
                (TokKind::Punct, "|") | (TokKind::Punct, "||") if self.closure_position(i) => {
                    let body_start = if t.text == "||" {
                        i + 1
                    } else {
                        let mut j = i + 1;
                        let mut depth = 0i32;
                        while j < end {
                            match self.text(j) {
                                "(" | "[" => depth += 1,
                                ")" | "]" => depth -= 1,
                                "|" if depth == 0 => break,
                                _ => {}
                            }
                            j += 1;
                        }
                        j + 1
                    };
                    let (bstart, bend, next) = if self.text(body_start) == "{" {
                        let close = match_brace(self.toks, body_start).unwrap_or(end);
                        (body_start + 1, close, close + 1)
                    } else {
                        let stop = self.expr_end(body_start, end);
                        (body_start, stop, stop)
                    };
                    let join = self.node();
                    self.edge(cur, join); // the closure may run zero times
                    let centry = self.node();
                    self.edge(cur, centry);
                    let saved = std::mem::take(&mut self.loops);
                    let cexit = self.block(bstart, bend, centry, join);
                    self.loops = saved;
                    self.edge(cexit, join);
                    cur = join;
                    i = next;
                }
                (TokKind::Punct, "{") => {
                    let close = match_brace(self.toks, i).unwrap_or(end);
                    cur = self.block(i + 1, close, cur, ret);
                    i = close + 1;
                }
                _ => {
                    if let Some(ev) = event_at(self.toks, i) {
                        let line = t.line;
                        self.nodes[cur].events.push((ev, line));
                    }
                    i += 1;
                }
            }
        }
        cur
    }

    /// `if` / `else if` / `else` chain starting at the `if` token.
    fn if_construct(&mut self, i: usize, end: usize, cur: usize, ret: usize) -> (usize, usize) {
        let join = self.node();
        let mut cond = cur;
        let mut p = i;
        loop {
            let is_let = self.text(p + 1) == "let";
            let Some(open) = self.block_open(p + 1, end, is_let) else {
                self.edge(cond, join);
                return (join, p + 1);
            };
            self.events_linear(p + 1, open, cond);
            let close = match_brace(self.toks, open).unwrap_or(end);
            let bentry = self.node();
            self.edge(cond, bentry);
            let bexit = self.block(open + 1, close, bentry, ret);
            self.edge(bexit, join);
            let q = close + 1;
            if q < end && self.text(q) == "else" {
                if self.text(q + 1) == "if" {
                    let c2 = self.node();
                    self.edge(cond, c2);
                    cond = c2;
                    p = q + 1;
                    continue;
                }
                if self.text(q + 1) == "{" {
                    let close2 = match_brace(self.toks, q + 1).unwrap_or(end);
                    let eentry = self.node();
                    self.edge(cond, eentry);
                    let eexit = self.block(q + 2, close2, eentry, ret);
                    self.edge(eexit, join);
                    return (join, close2 + 1);
                }
            }
            self.edge(cond, join); // condition false, no else
            return (join, q);
        }
    }

    /// `match` starting at the `match` token: one node per arm.
    fn match_construct(&mut self, i: usize, end: usize, cur: usize, ret: usize) -> (usize, usize) {
        let Some(open) = self.block_open(i + 1, end, false) else {
            return (cur, i + 1);
        };
        self.events_linear(i + 1, open, cur);
        let close = match_brace(self.toks, open).unwrap_or(end);
        let join = self.node();
        let mut any_arm = false;
        let mut j = open + 1;
        while j < close {
            // Pattern (and guard) up to the arm's `=>`.
            let mut depth = 0i32;
            let mut k = j;
            while k < close {
                match self.text(k) {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => depth -= 1,
                    "=>" if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            if k >= close {
                break;
            }
            let aentry = self.node();
            self.edge(cur, aentry);
            self.events_linear(j, k, aentry);
            let (bstart, bend, next) = if self.text(k + 1) == "{" {
                let c2 = match_brace(self.toks, k + 1).unwrap_or(close);
                let after = if self.text(c2 + 1) == "," {
                    c2 + 2
                } else {
                    c2 + 1
                };
                (k + 2, c2, after)
            } else {
                let mut depth = 0i32;
                let mut m = k + 1;
                while m < close {
                    match self.text(m) {
                        "(" | "[" | "{" => depth += 1,
                        ")" | "]" | "}" => depth -= 1,
                        "," if depth == 0 => break,
                        _ => {}
                    }
                    m += 1;
                }
                (k + 1, m, m + 1)
            };
            let aexit = self.block(bstart, bend, aentry, ret);
            self.edge(aexit, join);
            any_arm = true;
            j = next;
        }
        if !any_arm {
            self.edge(cur, join);
        }
        (join, close + 1)
    }

    /// End of a `return`/`break` expression: the `;` at depth 0, or `end`.
    fn stmt_end(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth == 0 => return i,
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// End of an expression-bodied closure: the `,`/`;`/`)`/`]` that closes
    /// it at relative depth 0 (exclusive).
    fn expr_end(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0i32;
        while i < end {
            match self.text(i) {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" if depth == 0 => return i,
                ")" | "]" | "}" => depth -= 1,
                "," | ";" if depth == 0 => return i,
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// Is the `|`/`||` at `i` a closure head (vs. binary or / or-pattern)?
    /// A closure can only start where an expression starts: after an
    /// opening delimiter, separator, assignment, or an expression-position
    /// keyword. After a value (ident, literal, `)`, `]`) it is an operator.
    fn closure_position(&self, i: usize) -> bool {
        let Some(prev) = i.checked_sub(1).and_then(|p| self.toks.get(p)) else {
            return true;
        };
        match prev.kind {
            TokKind::Ident => matches!(prev.text.as_str(), "move" | "return" | "else" | "in"),
            TokKind::Punct => matches!(
                prev.text.as_str(),
                "(" | "," | "=" | "=>" | "{" | ";" | ":" | "[" | "&" | "&&"
            ),
            _ => false,
        }
    }
}

/// `s` names a generation/epoch counter.
pub(crate) fn gen_ish(s: &str) -> bool {
    s == "gen" || s.contains("generation") || s.contains("epoch")
}

fn is_assign_op(s: &str) -> bool {
    matches!(
        s,
        "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "&=" | "|=" | "<<=" | ">>="
    )
}

/// The field-access chain ending just before token `k` (exclusive):
/// `self.usage.cpu +=` at the `+=` yields `["self", "usage", "cpu"]`.
fn chain_before(toks: &[Tok], k: usize) -> Vec<&str> {
    let mut out = Vec::new();
    let mut j = k;
    while let Some(p) = j.checked_sub(1) {
        let Some(t) = toks.get(p) else { break };
        if t.kind != TokKind::Ident {
            break;
        }
        out.push(t.text.as_str());
        match p.checked_sub(1).map(|q| toks[q].text.as_str()) {
            Some(".") => j = p - 1,
            _ => break,
        }
    }
    out.reverse();
    out
}

/// Extracts the domain event anchored at token `i`, if any.
pub fn event_at(toks: &[Tok], i: usize) -> Option<Event> {
    let t = toks.get(i)?;
    let text = |j: usize| toks.get(j).map(|t| t.text.as_str()).unwrap_or("");
    match t.kind {
        TokKind::Punct if is_assign_op(&t.text) => {
            let chain = chain_before(toks, i);
            if chain.len() < 2 {
                return None;
            }
            let last = *chain.last().unwrap();
            if chain.contains(&"usage") {
                Some(Event::PostRusage)
            } else if PRICED_FIELDS.contains(&last) {
                Some(Event::MutatePriced(last.to_string()))
            } else if gen_ish(last) {
                Some(Event::BumpGeneration)
            } else {
                None
            }
        }
        // `&mut self.runs` handed to a helper mutates priced state too.
        TokKind::Punct if t.text == "&" && text(i + 1) == "mut" => {
            let mut j = i + 2;
            let mut last = None;
            let mut len = 0;
            while toks.get(j).is_some_and(|t| t.kind == TokKind::Ident) {
                last = Some(toks[j].text.as_str());
                len += 1;
                if text(j + 1) == "." {
                    j += 2;
                } else {
                    break;
                }
            }
            match last {
                Some(f) if len >= 2 && PRICED_FIELDS.contains(&f) => {
                    Some(Event::MutatePriced(f.to_string()))
                }
                _ => None,
            }
        }
        TokKind::Ident if text(i + 1) == "(" => {
            let name = t.text.as_str();
            if matches!(
                name,
                "if" | "while" | "for" | "match" | "loop" | "return" | "fn"
            ) {
                return None;
            }
            let method_of = (text(i.wrapping_sub(1)) == ".").then(|| chain_before(toks, i - 1));
            if let Some(chain) = &method_of {
                if name == "advance" && chain.contains(&"clock") {
                    return Some(Event::AdvanceClock);
                }
                if chain.contains(&"tracer") {
                    if name == "begin" {
                        return Some(Event::BeginSpan);
                    }
                    if name == "end" {
                        return Some(Event::EndSpan);
                    }
                }
                if MUT_METHODS.contains(&name) {
                    if let Some(f) = chain.last().filter(|f| PRICED_FIELDS.contains(f)) {
                        return Some(Event::MutatePriced((*f).to_string()));
                    }
                }
            }
            if (name.starts_with("bump") || name.starts_with("set_")) && gen_ish(name) {
                return Some(Event::BumpGeneration);
            }
            // Only calls that can plausibly resolve against same-file
            // summaries become Call events: bare `helper(..)`,
            // `self.helper(..)`, or `Self::helper(..)`. A method on another
            // receiver (`cache.contains(..)`, `PageKey::new(..)`) would
            // match a same-file fn name by coincidence only.
            let resolvable = match text(i.wrapping_sub(1)) {
                "." => text(i.wrapping_sub(2)) == "self",
                "::" => text(i.wrapping_sub(2)) == "Self",
                _ => true,
            };
            resolvable.then(|| Event::Call(name.to_string()))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_fns;

    fn cfg_of(src: &str) -> Cfg {
        let toks = lex(src).tokens;
        let shapes = parse_fns(&toks);
        assert_eq!(shapes.len(), 1, "expected one fn in {src}");
        build(&toks, &shapes[0])
    }

    fn all_events(cfg: &Cfg) -> Vec<Event> {
        cfg.nodes
            .iter()
            .flat_map(|n| n.events.iter().map(|(e, _)| e.clone()))
            .collect()
    }

    #[test]
    fn events_are_extracted_with_receivers() {
        let cfg = cfg_of(
            "fn f(&mut self) {\n\
             self.resident.remove(p);\n\
             self.generation += 1;\n\
             self.clock.advance(d);\n\
             self.usage.cpu += d;\n\
             self.tracer.begin(l, n, t, a);\n\
             self.tracer.end(t);\n\
             helper(&mut self.runs);\n\
             }\n",
        );
        let evs = all_events(&cfg);
        assert!(evs.contains(&Event::MutatePriced("resident".into())));
        assert!(evs.contains(&Event::BumpGeneration));
        assert!(evs.contains(&Event::AdvanceClock));
        assert!(evs.contains(&Event::PostRusage));
        assert!(evs.contains(&Event::BeginSpan));
        assert!(evs.contains(&Event::EndSpan));
        assert!(evs.contains(&Event::MutatePriced("runs".into())));
        assert!(evs.contains(&Event::Call("helper".into())));
    }

    #[test]
    fn getters_named_like_generations_are_not_bumps() {
        let cfg = cfg_of("fn f(&self) -> u64 { self.pages.generation() + self.fault_epoch(now) }");
        assert!(!all_events(&cfg).contains(&Event::BumpGeneration));
    }

    #[test]
    fn question_mark_splits_toward_exit() {
        let cfg = cfg_of("fn f(&mut self) -> R { let x = self.g()?; self.h(); Ok(x) }");
        // The node holding the `g` call must edge to both exit and the
        // continuation holding `h`.
        let g_node = cfg
            .nodes
            .iter()
            .position(|n| n.events.contains(&(Event::Call("g".into()), 1)))
            .unwrap();
        assert!(cfg.nodes[g_node].succs.contains(&cfg.exit));
        assert_eq!(cfg.nodes[g_node].succs.len(), 2);
    }

    #[test]
    fn loop_without_break_does_not_fall_through() {
        let cfg = cfg_of("fn f(&mut self) { loop { self.tick(); } self.done(); }");
        let reach = cfg.reachable();
        let done = cfg
            .nodes
            .iter()
            .position(|n| n.events.contains(&(Event::Call("done".into()), 1)));
        assert!(done.is_none_or(|n| !reach[n]));
    }

    #[test]
    fn closures_are_inline_with_local_early_exit() {
        // `?` inside the closure must NOT edge to the fn exit: the enclosing
        // fn continues (this is the kernel's span-balance pattern).
        let cfg = cfg_of(
            "fn f(&mut self) -> R {\n\
             self.tracer.begin(l, n, t, a);\n\
             let r = (|| { let x = self.g()?; Ok(x) })();\n\
             self.tracer.end(t);\n\
             r\n}\n",
        );
        let g_node = cfg
            .nodes
            .iter()
            .position(|n| n.events.iter().any(|(e, _)| *e == Event::Call("g".into())))
            .unwrap();
        assert!(!cfg.nodes[g_node].succs.contains(&cfg.exit));
    }

    #[test]
    fn logical_or_is_not_a_closure() {
        let cfg = cfg_of("fn f(a: bool, b: bool) { if a || b { self.g(); } }");
        let reach = cfg.reachable();
        let g = cfg
            .nodes
            .iter()
            .position(|n| n.events.iter().any(|(e, _)| *e == Event::Call("g".into())))
            .unwrap();
        assert!(reach[g]);
    }
}
