//! The rule table: codes, what each rule protects, and where it applies.
//!
//! Detection lives in [`crate::engine`]; this module is the single place
//! that answers "which rules exist" (for `--list`) and "does rule R apply
//! to file F" (scope policy).

/// One lint rule.
pub struct Rule {
    /// Stable code (`D00x` for domain rules, `W00x` for waiver hygiene).
    pub code: &'static str,
    /// Short name.
    pub name: &'static str,
    /// The invariant the rule protects, shown by `--list`.
    pub invariant: &'static str,
}

/// All rules, in code order.
pub const RULES: &[Rule] = &[
    Rule {
        code: "D001",
        name: "no-wall-clock",
        invariant: "Instant/SystemTime outside crates/bench: simulated time must come from the \
                    virtual Clock, or results depend on host speed",
    },
    Rule {
        code: "D002",
        name: "no-host-concurrency",
        invariant: "std::thread/std::process outside bench and tests: the simulator is a \
                    single-threaded deterministic event loop",
    },
    Rule {
        code: "D003",
        name: "no-ambient-randomness",
        invariant: "thread_rng/OsRng/rand:: anywhere: all randomness flows through DetRng with \
                    an explicit seed so runs replay bit-identically",
    },
    Rule {
        code: "D004",
        name: "no-float-eq-latency",
        invariant: "float ==/!= on latency/bandwidth values: rounding makes equality \
                    meaningless; compare to_bits() identity or use total_cmp",
    },
    Rule {
        code: "D005",
        name: "no-panic-kernel-path",
        invariant: "unwrap/expect/panic!/todo! in kernel-path crates (core, devices, fs, \
                    pagecache) outside #[cfg(test)]: syscalls must fail with typed SimError, \
                    not abort the simulation",
    },
    Rule {
        code: "D006",
        name: "no-hash-iteration-order",
        invariant: "HashMap/HashSet in simulation state: per-instance RandomState makes \
                    iteration order differ across runs, corrupting virtual time and \
                    accounting; use BTreeMap/BTreeSet",
    },
    Rule {
        code: "D007",
        name: "no-unchecked-narrowing",
        invariant: "narrowing `as` casts (u8/u16/u32/i8/i16/i32) in kernel-path arithmetic: \
                    silent truncation corrupts the cost model; waive naming the bound that \
                    makes the cast lossless",
    },
    Rule {
        code: "D008",
        name: "no-unbounded-retry",
        invariant: "a `loop`/`while` that retries I/O in kernel-path code without referencing a \
                    policy bound (max_attempts/timeout): a persistent fault would spin the \
                    simulation forever; bound every retry loop by RetryPolicy",
    },
    Rule {
        code: "D009",
        name: "no-unbounded-queue",
        invariant: "a kernel-path Ring/Queue/Fifo struct holding a growable container \
                    (Vec/VecDeque/BinaryHeap) without a named capacity bound \
                    (capacity/cap/bound/limit/max_*): backpressure must be structural, or a \
                    stalled consumer grows memory without limit",
    },
    Rule {
        code: "D010",
        name: "generation-spine-integrity",
        invariant: "a kernel-path fn that mutates SLED-priced state (residency extents, run \
                    lists) must reach a generation/epoch bump on every exit path, or stale \
                    cached prices survive the mutation and FSLEDS_WALK quotes the wrong cost",
    },
    Rule {
        code: "D011",
        name: "clock-charge-completeness",
        invariant: "every path that advances the virtual clock must also post the charge to \
                    Rusage before returning: time that passes without being billed breaks the \
                    conservation law the accuracy windows audit",
    },
    Rule {
        code: "D012",
        name: "trace-span-balance",
        invariant: "a fn that ends trace spans must end every span it begins on all exit \
                    paths, including `?` and early returns, or nesting depth drifts and the \
                    span tree becomes unparseable",
    },
    Rule {
        code: "D013",
        name: "unit-flow-safety",
        invariant: "adding/comparing values whose names carry different units (ns vs bytes vs \
                    sectors vs pages), directly or through a local alias, without a visible \
                    conversion: unit confusion silently corrupts the cost model",
    },
    Rule {
        code: "D014",
        name: "hedge-bounded-and-cancelled",
        invariant: "a kernel-path fn that issues hedged requests (note_hedge/io_hedge) without \
                    referencing a hedge bound (max_hedges/hedge_budget) and loser cancellation \
                    (cancel): unbounded hedging multiplies device load, and an uncancelled \
                    loser is redundant work nobody accounts for",
    },
    Rule {
        code: "W001",
        name: "malformed-waiver",
        invariant: "a sledlint::allow comment that does not parse as (RULE, reason) suppresses \
                    nothing and must be fixed",
    },
    Rule {
        code: "W002",
        name: "unused-waiver",
        invariant: "a waiver that matches no finding on its line is stale and must be removed",
    },
];

/// Crates whose `src/` is a kernel path (syscall/cost-model code). The
/// tracer is included: its hooks run inside syscalls, so a panic there
/// aborts an experiment batch just like one in the kernel proper. The fault
/// planner is included for the same reason: injectors run on the device
/// command path. The replayer is included because it re-issues captured
/// ops on the syscall boundary: a panic there kills a what-if run.
pub const KERNEL_CRATES: &[&str] = &[
    "core",
    "devices",
    "fs",
    "pagecache",
    "trace",
    "faults",
    "replay",
];

/// Crates exempt from wall-clock/host-API rules: `bench` measures the host
/// on purpose, and `sledlint` itself is a host tool (it exits the process).
pub const HOST_TOOL_CRATES: &[&str] = &["bench", "sledlint"];

/// Where a file sits in the workspace, derived from its relative path.
#[derive(Clone, Debug)]
pub struct FileScope {
    /// Crate name (`fs`, `bench`, …) or `"root"` for the top-level package.
    pub crate_name: String,
    /// True for files under a `tests/`, `benches/` or `examples/` segment.
    pub test_context: bool,
    /// True for `src/` files of a kernel-path crate.
    pub kernel_path: bool,
}

impl FileScope {
    /// Classifies a workspace-relative path (always `/`-separated).
    pub fn classify(rel_path: &str) -> FileScope {
        let segs: Vec<&str> = rel_path.split('/').collect();
        let crate_name = if segs.len() >= 2 && segs[0] == "crates" {
            segs[1].to_string()
        } else {
            "root".to_string()
        };
        let test_context = segs
            .iter()
            .any(|s| matches!(*s, "tests" | "benches" | "examples"));
        let kernel_path =
            KERNEL_CRATES.contains(&crate_name.as_str()) && segs.get(2) == Some(&"src");
        FileScope {
            crate_name,
            test_context,
            kernel_path,
        }
    }

    fn host_tool(&self) -> bool {
        HOST_TOOL_CRATES.contains(&self.crate_name.as_str())
    }

    /// Does `code` apply at this location? `in_test_region` is true inside a
    /// `#[cfg(test)]`/`#[test]` item.
    pub fn applies(&self, code: &str, in_test_region: bool) -> bool {
        match code {
            "D001" => !self.host_tool(),
            "D002" => !self.host_tool() && !self.test_context && !in_test_region,
            "D003" => true,
            "D004" => !self.test_context && !in_test_region,
            "D005" | "D006" | "D007" | "D008" | "D009" | "D010" | "D011" | "D012" | "D013"
            | "D014" => self.kernel_path && !self.test_context && !in_test_region,
            _ => true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_kernel_src() {
        let s = FileScope::classify("crates/fs/src/kernel.rs");
        assert!(s.kernel_path && !s.test_context);
        assert_eq!(s.crate_name, "fs");
        assert!(s.applies("D005", false));
        assert!(!s.applies("D005", true));
    }

    #[test]
    fn classify_tests_dir() {
        let s = FileScope::classify("crates/fs/tests/determinism.rs");
        assert!(s.test_context && !s.kernel_path);
        assert!(!s.applies("D005", false));
        assert!(s.applies("D003", false));
    }

    #[test]
    fn bench_is_host_tool() {
        let s = FileScope::classify("crates/bench/src/microbench.rs");
        assert!(!s.applies("D001", false));
        assert!(!s.applies("D002", false));
        assert!(s.applies("D003", false));
    }

    #[test]
    fn root_package() {
        let s = FileScope::classify("src/lib.rs");
        assert_eq!(s.crate_name, "root");
        assert!(s.applies("D001", false));
        assert!(!s.applies("D006", false));
    }
}
