//! Shape parsing: `fn` item discovery over the token stream.
//!
//! The flow rules (D010–D013) need to know where functions are — nothing
//! more. This is not a Rust parser: it finds `fn` items (free functions and
//! methods alike), their names, and their body token ranges, and records
//! which bodies nest inside which so the CFG builder and the summary scan
//! can treat inner items as separate analysis units.

use crate::lexer::{Tok, TokKind};

/// One `fn` item with a body: free function, inherent or trait method.
#[derive(Clone, Debug)]
pub struct FnShape {
    /// The function's name.
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token indices of the body's `{` and its matching `}` (inclusive).
    pub body: (usize, usize),
    /// Body ranges of `fn` items nested inside this body. Closures are not
    /// listed: the CFG builder sees those inline, which is what makes the
    /// kernel's `let r = (|| { … ? … })();` span pattern analyzable.
    pub inner: Vec<(usize, usize)>,
}

impl FnShape {
    /// True when token index `i` falls inside a nested `fn` item's body.
    pub fn in_inner(&self, i: usize) -> bool {
        self.inner.iter().any(|&(a, b)| a <= i && i <= b)
    }
}

/// Finds every `fn` item with a body. Trait-method declarations (ending in
/// `;`) are skipped. The body is the first `{` after the signature at
/// paren/bracket depth zero: generic parameters, argument lists, return
/// types and where clauses contain no braces, so that `{` is the body.
pub fn parse_fns(toks: &[Tok]) -> Vec<FnShape> {
    let mut out: Vec<FnShape> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].kind == TokKind::Ident && toks[i].text == "fn") {
            i += 1;
            continue;
        }
        let Some(name) = toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        let mut j = i + 2;
        let mut depth = 0i32;
        let body_start = loop {
            match toks.get(j) {
                None => break None,
                Some(t) if t.kind == TokKind::Punct => match t.text.as_str() {
                    "(" | "[" => depth += 1,
                    ")" | "]" => depth -= 1,
                    "{" if depth == 0 => break Some(j),
                    ";" if depth == 0 => break None,
                    _ => {}
                },
                _ => {}
            }
            j += 1;
        };
        let Some(start) = body_start else {
            i = j.max(i + 2);
            continue;
        };
        let Some(end) = match_brace(toks, start) else {
            break; // unbalanced tail; nothing complete remains
        };
        out.push(FnShape {
            name: name.text.clone(),
            line: toks[i].line,
            body: (start, end),
            inner: Vec::new(),
        });
        // Keep scanning inside the body so nested fns get their own shapes.
        i += 2;
    }
    let ranges: Vec<(usize, usize)> = out.iter().map(|s| s.body).collect();
    for s in &mut out {
        s.inner = ranges
            .iter()
            .filter(|&&(a, b)| s.body.0 < a && b < s.body.1)
            .copied()
            .collect();
    }
    out
}

/// Token index of the `}` matching the `{` at `open`.
pub fn match_brace(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        if t.kind != TokKind::Punct {
            continue;
        }
        match t.text.as_str() {
            "{" => depth += 1,
            "}" => {
                depth = depth.checked_sub(1)?;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn names(src: &str) -> Vec<String> {
        parse_fns(&lex(src).tokens)
            .into_iter()
            .map(|s| s.name)
            .collect()
    }

    #[test]
    fn finds_free_fns_and_methods() {
        let src = "fn a() {}\nimpl K {\n    fn b(&mut self) -> u64 { 1 }\n}\n";
        assert_eq!(names(src), vec!["a", "b"]);
    }

    #[test]
    fn generics_and_where_clauses_do_not_confuse_the_body_scan() {
        let src = "fn g<T: Into<Vec<u8>>>(x: T) -> [u8; 4] where T: Clone { f(x) }\n";
        let shapes = parse_fns(&lex(src).tokens);
        assert_eq!(shapes.len(), 1);
        let toks = lex(src).tokens;
        assert_eq!(toks[shapes[0].body.0].text, "{");
        assert_eq!(toks[shapes[0].body.1].text, "}");
    }

    #[test]
    fn trait_declarations_without_bodies_are_skipped() {
        let src =
            "trait T {\n    fn decl(&self) -> u64;\n    fn with_body(&self) -> u64 { 0 }\n}\n";
        assert_eq!(names(src), vec!["with_body"]);
    }

    #[test]
    fn nested_fns_are_their_own_shapes_and_recorded_as_inner() {
        let src = "fn outer() {\n    fn inner() { x(); }\n    inner();\n}\n";
        let shapes = parse_fns(&lex(src).tokens);
        assert_eq!(shapes.len(), 2);
        let outer = shapes.iter().find(|s| s.name == "outer").unwrap();
        let inner = shapes.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(outer.inner, vec![inner.body]);
        assert!(outer.in_inner(inner.body.0));
    }
}
