//! Fixture-driven tests: every rule fails on its violating sample and stays
//! quiet on its clean one, waivers parse in both positions, and the
//! string/comment cases never false-positive. Fixtures live under
//! `tests/fixtures/` and are scanned under a fake kernel-path location so
//! every rule is in scope.

use std::fs;
use std::path::{Path, PathBuf};

use sledlint::{scan_source, Finding};

/// Scanned-as path: a kernel crate's src/, where all seven rules apply.
const KERNEL_PATH: &str = "crates/fs/src/fixture.rs";

fn fixture(name: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn scan_fixture(name: &str) -> Vec<Finding> {
    scan_source(KERNEL_PATH, &fixture(name))
}

#[test]
fn every_rule_fires_on_violating_and_not_on_clean() {
    for rule in [
        "D001", "D002", "D003", "D004", "D005", "D006", "D007", "D008", "D009", "D010", "D011",
        "D012", "D013", "D014",
    ] {
        let lower = rule.to_lowercase();
        let bad = scan_fixture(&format!("{lower}_violating.rs"));
        assert!(
            !bad.is_empty(),
            "{rule}: violating sample produced no findings"
        );
        assert!(
            bad.iter().all(|f| f.rule == rule),
            "{rule}: violating sample produced other rules too: {bad:?}"
        );
        let good = scan_fixture(&format!("{lower}_clean.rs"));
        assert!(
            good.is_empty(),
            "{rule}: clean sample produced findings: {good:?}"
        );
    }
}

#[test]
fn violating_samples_report_the_expected_count() {
    // Spot-check multiplicity so a rule can't pass by firing once on a file
    // with several violations.
    assert_eq!(scan_fixture("d001_violating.rs").len(), 3);
    assert_eq!(scan_fixture("d002_violating.rs").len(), 2);
    assert_eq!(scan_fixture("d003_violating.rs").len(), 4);
    assert_eq!(scan_fixture("d004_violating.rs").len(), 2);
    assert_eq!(scan_fixture("d005_violating.rs").len(), 4);
    assert_eq!(scan_fixture("d006_violating.rs").len(), 4);
    assert_eq!(scan_fixture("d007_violating.rs").len(), 1);
    assert_eq!(scan_fixture("d008_violating.rs").len(), 3);
    assert_eq!(scan_fixture("d009_violating.rs").len(), 4);
    assert_eq!(scan_fixture("d010_violating.rs").len(), 2);
    assert_eq!(scan_fixture("d011_violating.rs").len(), 2);
    assert_eq!(scan_fixture("d012_violating.rs").len(), 2);
    assert_eq!(scan_fixture("d013_violating.rs").len(), 2);
    assert_eq!(scan_fixture("d014_violating.rs").len(), 2);
}

#[test]
fn flow_findings_carry_witness_traces() {
    // D010–D012 violations explain themselves: the trace walks from the
    // obligation to the exit it escapes through.
    for name in [
        "d010_violating.rs",
        "d011_violating.rs",
        "d012_violating.rs",
    ] {
        for f in scan_fixture(name) {
            assert!(
                !f.trace.is_empty(),
                "{name}: finding without a trace: {f:?}"
            );
            assert!(
                f.trace.last().unwrap().1.contains("exit"),
                "{name}: trace does not end at the exit: {:?}",
                f.trace
            );
        }
    }
}

#[test]
fn waivers_suppress_in_both_positions() {
    let f = scan_fixture("waivers.rs");
    assert!(f.is_empty(), "waived findings leaked: {f:?}");
}

#[test]
fn waiver_without_reason_is_malformed_and_suppresses_nothing() {
    let f = scan_fixture("waiver_malformed.rs");
    let rules: Vec<&str> = f.iter().map(|f| f.rule).collect();
    assert!(rules.contains(&"W001"), "missing W001 in {rules:?}");
    assert!(rules.contains(&"D007"), "missing D007 in {rules:?}");
}

#[test]
fn unused_waiver_is_flagged() {
    let f = scan_fixture("waiver_unused.rs");
    assert_eq!(f.len(), 1, "expected exactly W002: {f:?}");
    assert_eq!(f[0].rule, "W002");
}

#[test]
fn strings_comments_and_lifetimes_do_not_false_positive() {
    let f = scan_fixture("false_positives.rs");
    assert!(f.is_empty(), "false positives: {f:?}");
}

#[test]
fn scope_exempts_bench_and_tests() {
    let src = fixture("d001_violating.rs");
    assert!(scan_source("crates/bench/src/micro.rs", &src).is_empty());
    let src = fixture("d005_violating.rs");
    assert!(scan_source("crates/fs/tests/kernel.rs", &src).is_empty());
    assert!(!scan_source("crates/fs/src/kernel.rs", &src).is_empty());
}

#[test]
fn workspace_is_clean() {
    // The acceptance gate, as a test: the tree this crate ships in has zero
    // unwaived findings.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = sledlint::find_workspace_root(&manifest).expect("workspace root");
    let (files, findings) = sledlint::scan_workspace(&root).expect("scan");
    assert!(files > 50, "suspiciously few files scanned: {files}");
    assert!(
        findings.is_empty(),
        "workspace has unwaived findings:\n{}",
        findings
            .iter()
            .map(Finding::render)
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn walk_covers_examples_and_tests_with_the_relaxed_profile() {
    // The walk reaches beyond crates/*/src: examples and integration tests
    // are scanned too, under the relaxed non-kernel profile — kernel-only
    // rules (D005, D010–D013) are out of scope there, determinism rules
    // (D003) still apply.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = sledlint::find_workspace_root(&manifest).expect("workspace root");
    let files = sledlint::workspace_files(&root).expect("walk");
    assert!(
        files.iter().any(|f| f.starts_with("examples/")),
        "walk misses examples/: {files:?}"
    );
    assert!(
        files.iter().any(|f| f.contains("/tests/")),
        "walk misses tests/: {files:?}"
    );

    let src = fixture("d010_violating.rs");
    assert!(
        scan_source("crates/fs/tests/kernel.rs", &src).is_empty(),
        "flow rules must relax outside kernel src"
    );
    assert!(
        scan_source("examples/walkthrough.rs", &src).is_empty(),
        "flow rules must relax in examples"
    );
    let src = fixture("d003_violating.rs");
    assert!(
        !scan_source("examples/walkthrough.rs", &src).is_empty(),
        "determinism rules still apply in examples"
    );
}

#[test]
fn fixture_dir_is_excluded_from_workspace_scan() {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = sledlint::find_workspace_root(&manifest).expect("workspace root");
    let marker = Path::new("crates/sledlint/tests/fixtures/d006_violating.rs");
    assert!(root.join(marker).is_file(), "fixture moved?");
    let (_, findings) = sledlint::scan_workspace(&root).expect("scan");
    assert!(findings
        .iter()
        .all(|f| !f.path.starts_with("crates/sledlint/tests/fixtures/")));
}

#[test]
fn trace_crate_is_kernel_path_and_clean() {
    // The tracer runs inside syscalls, so `crates/trace/src` is a kernel
    // path: the wall-clock rule (and the other kernel rules) must be in
    // scope there, and the shipped sources must satisfy them with no
    // waivers. `EventPhase::Mark` exists precisely so the crate never
    // needs a D001 waiver for a domain name.
    let src = fixture("d001_violating.rs");
    let f = scan_source("crates/trace/src/fixture.rs", &src);
    assert!(
        f.iter().any(|f| f.rule == "D001"),
        "D001 must apply under crates/trace/src: {f:?}"
    );
    let src = fixture("d005_violating.rs");
    assert!(
        !scan_source("crates/trace/src/fixture.rs", &src).is_empty(),
        "D005 must apply under crates/trace/src"
    );

    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    let root = sledlint::find_workspace_root(&manifest).expect("workspace root");
    let dir = root.join("crates/trace/src");
    let mut scanned = 0;
    for entry in fs::read_dir(&dir).expect("read crates/trace/src") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        let rel = format!(
            "crates/trace/src/{}",
            path.file_name().expect("name").to_string_lossy()
        );
        let src = fs::read_to_string(&path).expect("read source");
        let f = scan_source(&rel, &src);
        assert!(f.is_empty(), "{rel} has findings: {f:?}");
        assert!(
            !src.contains("sledlint::allow"),
            "{rel} must stay waiver-free"
        );
        scanned += 1;
    }
    assert!(scanned >= 8, "expected the tracer's modules, got {scanned}");
}
