fn locate(sector: u64, spt: u64) -> u32 {
    // sledlint::allow(D007)
    (sector / spt) as u32
}
