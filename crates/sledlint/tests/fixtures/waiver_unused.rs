// sledlint::allow(D006, nothing on the next line uses a hash map)
fn nothing() -> u64 {
    42
}
