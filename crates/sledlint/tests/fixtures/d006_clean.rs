use std::collections::{BTreeMap, BTreeSet};

struct State {
    inodes: BTreeMap<u64, Inode>,
    dirty: BTreeSet<u64>,
}
