fn fan_out(jobs: &mut Vec<Job>) {
    // Single-threaded event loop: jobs interleave on the virtual clock.
    jobs.sort_by_key(|j| j.deadline);
}
