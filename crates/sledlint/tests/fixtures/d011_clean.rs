// D011 clean fixture: every clock advance posts its charge before any
// path can exit — immediately, or through a same-file helper that does
// the posting.

impl Kernel {
    fn charge(&mut self, d: SimDuration) -> SimResult<u64> {
        self.clock.advance(d);
        self.usage.cpu += d;
        let r = self.submit()?;
        Ok(r)
    }

    fn charge_via_helper(&mut self, extents: u64) {
        self.clock.advance(self.cfg.walk_cost(extents));
        self.post_cpu(extents);
    }

    fn post_cpu(&mut self, extents: u64) {
        self.usage.cpu += self.cfg.walk_cost(extents);
    }
}
