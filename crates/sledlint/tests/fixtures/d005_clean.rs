fn syscall(map: &Fds, fd: u64) -> SimResult<u64> {
    let of = map
        .get(&fd)
        .ok_or_else(|| SimError::new(Errno::Ebadf, "closed fd"))?;
    Ok(of.ino)
}
